//! # ampom-cluster — openMosix-style cluster load balancing
//!
//! The paper's introduction motivates lightweight migration with "HPC
//! clusters having thousands of compute nodes with changing loads", and
//! its §7 concludes that "new scheduling policies can make use of AMPoM on
//! openMosix to perform more aggressive migrations since the performance
//! penalty of suboptimal decisions has been dramatically decreased."
//!
//! This crate builds the cluster-level substrate needed to measure that
//! claim at scale:
//!
//! * [`gossip`] — MOSIX/openMosix's probabilistic load dissemination:
//!   each node periodically sends its load vector to a randomly chosen
//!   peer, so every node has a *stale, partial* view of cluster load —
//!   exactly the information a real openMosix balancer works from,
//! * [`job`] — batch jobs with CPU demand and memory footprints,
//! * [`balancer`] — the migration decision rule (greedy: move work toward
//!   the least-loaded *known* node when the imbalance justifies it),
//! * [`simulation`] — the tick-driven cluster simulator combining
//!   arrivals, gossip, decisions, processor-sharing execution and the
//!   migration cost model calibrated from the paper's Figure 5/6 results,
//! * [`life`] — the cluster-life engine: Poisson arrivals over a Table 1
//!   kernel mix, bounded [`gossip::WindowView`] dissemination at
//!   300–1000+ nodes, lifecycle placement with remigration and
//!   home-return chains, and a compute/apply tick split that is
//!   bit-identical across thread counts.
//!
//! The headline experiment (`hpcc-repro ext-cluster`, and
//! `examples/cluster_balance.rs`) compares eager-openMosix migration
//! against AMPoM migration under both conservative and aggressive
//! policies on a skewed-arrival cluster.

pub mod balancer;
pub mod gossip;
pub mod job;
pub mod life;
pub mod simulation;

pub use balancer::{BalancePolicy, Migratable, MigrationModel};
pub use gossip::{GossipConfig, LoadView, WindowView};
pub use job::{Job, JobId};
pub use life::{run_cluster_life, CrashEvent, JobMix, JobSpec, LifeConfig, LifeJob, LifeOutcome};
pub use simulation::{simulate, ClusterConfig, ClusterOutcome};
