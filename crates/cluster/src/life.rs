//! The cluster-life engine: job arrivals, windowed gossip, lifecycle
//! placement and home-return chains at 300–1000+ nodes.
//!
//! The tick simulator in [`crate::simulation`] answers one question —
//! *does aggressive balancing pay off under a given migration scheme?* —
//! on a 16-node cluster it can afford to model with full per-node load
//! vectors. This module is the ROADMAP item 1 engine: a cluster *lives*
//! for a simulated horizon under Poisson arrivals over a kernel mix
//! ([`JobMix`]), disseminates load through bounded
//! [`crate::gossip::WindowView`]s (openMosix's oM_infoD at a scale where
//! full vectors are unaffordable), and composes the PR 8 lifecycle cost
//! model: out-migrations pay the calibrated freeze, remigrations move the
//! stub-less body again, and home-returns ship only the dirty footprint
//! ([`ampom_core::lifecycle::LifecycleCostModel`]).
//!
//! ## Deputy-chain avoidance
//!
//! openMosix never chains deputies: when an away process moves a second
//! time, the *home* deputy is re-pointed at the new remote node — the
//! intermediate node keeps nothing. The engine models this explicitly:
//! every job carries a live-stub count, out-migration sets it to 1,
//! remigration re-points (count unchanged), home-return clears it, and
//! the engine asserts the count never reaches 2. The run's observed
//! maximum is exported so tests can pin the invariant from the outside.
//!
//! ## Determinism across thread counts
//!
//! Each tick splits into a **compute** phase — every node plans its
//! gossip send and migration decision from an immutable pre-tick snapshot
//! using a per-`(tick, node)` forked RNG — and a sequential **apply**
//! phase that replays the plans in node-index order. Plans depend only on
//! the snapshot, never on other nodes' plans, so slicing the compute
//! phase across any number of worker threads cannot change a single bit
//! of the outcome. [`LifeOutcome::fingerprint`] condenses the run for the
//! equality tests.

use ampom_core::lifecycle::LifecycleCostModel;
use ampom_core::migration::Scheme;
use ampom_net::calibration::fast_ethernet;
use ampom_net::link::{Link, LinkConfig};
use ampom_obs::Series;
use ampom_sim::rng::SimRng;
use ampom_sim::stats::OnlineStats;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_workloads::sizes::{sizes_for, Kernel};

use crate::balancer::{contention_factor, BalancePolicy, Migratable, MigrationModel};
use crate::gossip::{plan_gossip, LoadEntry, WindowView};
use crate::job::JobId;
use crate::simulation::freeze_bytes;

/// Fork label for the arrival-schedule stream.
const ARRIVAL_SALT: u64 = 0x4152_5256; // "ARRV"
/// Fork label for the per-tick node streams.
const NODE_SALT: u64 = 0x4E4F_4445; // "NODE"

/// One entry of the arrival mix: a kernel with its Table 1 footprint, a
/// mean demand, and how much of the footprint the kernel dirties while
/// away (drives the home-return bill).
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Which HPCC kernel the job runs.
    pub kernel: Kernel,
    /// Resident-set size in MB.
    pub memory_mb: u64,
    /// Mean CPU demand (exponentially distributed per job).
    pub mean_demand: SimDuration,
    /// Fraction of the footprint dirtied while away.
    pub dirty_fraction: f64,
    /// Relative arrival weight.
    pub weight: u64,
}

/// The arrival mix: jobs are drawn by weight.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// The specs, drawn proportionally to their weights.
    pub specs: Vec<JobSpec>,
}

impl JobMix {
    /// The paper's Table 1 mix: one spec per kernel at the second problem
    /// size, dirty fractions following each kernel's store behaviour
    /// (DGEMM writes C, STREAM writes one of its three arrays per pass,
    /// RandomAccess updates nearly its whole table, FFT writes in place).
    pub fn paper_mix() -> Self {
        let spec = |kernel: Kernel, mean_demand_s: u64, dirty_fraction: f64| JobSpec {
            kernel,
            memory_mb: sizes_for(kernel)[1].memory_mb,
            mean_demand: SimDuration::from_secs(mean_demand_s),
            dirty_fraction,
            weight: 1,
        };
        JobMix {
            specs: vec![
                spec(Kernel::Dgemm, 120, 0.35),
                spec(Kernel::Stream, 60, 0.67),
                spec(Kernel::RandomAccess, 90, 0.9),
                spec(Kernel::Fft, 90, 0.5),
            ],
        }
    }

    /// Mean demand across the mix, weighted.
    pub fn mean_demand(&self) -> SimDuration {
        let total_w: u64 = self.specs.iter().map(|s| s.weight).sum();
        let weighted: f64 = self
            .specs
            .iter()
            .map(|s| s.mean_demand.as_secs_f64() * s.weight as f64)
            .sum();
        SimDuration::from_secs_f64(weighted / total_w.max(1) as f64)
    }

    fn draw(&self, rng: &mut SimRng) -> &JobSpec {
        let total_w: u64 = self.specs.iter().map(|s| s.weight).sum();
        let mut pick = rng.below(total_w.max(1));
        for s in &self.specs {
            if pick < s.weight {
                return s;
            }
            pick -= s.weight;
        }
        self.specs.last().expect("non-empty mix")
    }
}

/// A node crash: the node fails at `at`, losing every job it runs *and*
/// every away job homed on it (the deputy dependency — an away process
/// cannot outlive its home deputy), and rejoins `down_for` later with an
/// empty queue and a reset gossip window.
#[derive(Debug, Clone, Copy)]
pub struct CrashEvent {
    /// The node that fails.
    pub node: usize,
    /// When it fails.
    pub at: SimTime,
    /// How long it stays down.
    pub down_for: SimDuration,
}

/// Cluster-life configuration.
#[derive(Debug, Clone)]
pub struct LifeConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Simulated horizon; arrivals stop and the run is cut here.
    pub horizon: SimDuration,
    /// Mean inter-arrival time of the cluster-wide Poisson stream.
    pub mean_interarrival: SimDuration,
    /// Fraction of nodes receiving arrivals (openMosix's home-node skew:
    /// jobs appear where users submit them).
    pub arrival_node_fraction: f64,
    /// Hard cap on generated arrivals (`None`: the horizon decides).
    pub max_jobs: Option<u64>,
    /// The arrival mix.
    pub mix: JobMix,
    /// Migration mechanism.
    pub scheme: Scheme,
    /// Balancing policy.
    pub policy: BalancePolicy,
    /// Gossip window capacity per node.
    pub window: usize,
    /// Entries older than this are refused at merge time and distrusted
    /// for decisions.
    pub max_age: SimDuration,
    /// Believed load advantage required before an away job returns home.
    pub return_margin: f64,
    /// A tick with at least this many migrations counts as a storm tick.
    pub storm_threshold: u64,
    /// Per-node link configuration.
    pub network: LinkConfig,
    /// Switch-fabric capacity as a multiple of one link.
    pub fabric_capacity_links: u64,
    /// Deputy solo saturation (contention model, as in
    /// [`crate::simulation::ClusterConfig`]).
    pub deputy_solo_saturation: f64,
    /// Node crash schedule.
    pub crashes: Vec<CrashEvent>,
    /// RNG seed.
    pub seed: u64,
    /// Compute-phase worker threads; never affects results.
    pub threads: usize,
}

impl LifeConfig {
    /// A cluster of `nodes` under the paper mix at ~70% offered load for
    /// one simulated hour.
    pub fn standard(nodes: usize, scheme: Scheme) -> Self {
        let mix = JobMix::paper_mix();
        // Offered load ≈ 0.7: cluster arrival rate = 0.7·nodes/E[demand].
        let interarrival = (mix.mean_demand().as_secs_f64() / (0.7 * nodes as f64)).max(1e-3);
        LifeConfig {
            nodes,
            horizon: SimDuration::from_secs(3600),
            mean_interarrival: SimDuration::from_secs_f64(interarrival),
            arrival_node_fraction: 0.25,
            max_jobs: None,
            mix,
            scheme,
            policy: BalancePolicy::Aggressive,
            window: 64,
            max_age: SimDuration::from_secs(8),
            return_margin: 2.0,
            storm_threshold: (nodes as u64 / 8).max(4),
            network: fast_ethernet(),
            fabric_capacity_links: (nodes as u64 / 4).max(8),
            deputy_solo_saturation: 0.1,
            crashes: Vec::new(),
            seed: 0xC1FE,
            threads: 1,
        }
    }

    /// Checks every knob against its documented domain.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("life.nodes must be at least 2".into());
        }
        if self.horizon.is_zero() {
            return Err("life.horizon must be positive".into());
        }
        if self.mean_interarrival.is_zero() {
            return Err("life.mean_interarrival must be positive".into());
        }
        if self.mix.specs.is_empty() {
            return Err("life.mix must have at least one spec".into());
        }
        if self.window == 0 {
            return Err("life.window must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.arrival_node_fraction) || self.arrival_node_fraction == 0.0 {
            return Err("life.arrival_node_fraction must be in (0, 1]".into());
        }
        for c in &self.crashes {
            if c.node >= self.nodes {
                return Err(format!("crash names node {} of {}", c.node, self.nodes));
            }
        }
        Ok(())
    }
}

/// A job in the cluster-life engine.
#[derive(Debug, Clone)]
pub struct LifeJob {
    /// Identifier.
    pub id: JobId,
    /// The kernel it runs.
    pub kernel: Kernel,
    /// When it arrived.
    pub arrived: SimTime,
    /// Total CPU demand.
    pub demand: SimDuration,
    /// CPU work still outstanding.
    pub remaining: SimDuration,
    /// Resident-set size in MB.
    pub memory_mb: u64,
    /// Fraction of the footprint dirtied while away.
    pub dirty_fraction: f64,
    /// Times migrated (u64 — never truncates over a long horizon).
    pub migrations: u64,
    /// When the last migration's thaw completed.
    pub last_migrated: Option<SimTime>,
    /// The home node (fixed at arrival; the deputy lives here).
    pub home: usize,
    /// Live deputy stubs; chain avoidance keeps this ≤ 1 always.
    pub stubs: u8,
}

impl Migratable for LifeJob {
    fn remaining(&self) -> SimDuration {
        self.remaining
    }
    fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.arrived)
    }
    fn last_migrated(&self) -> Option<SimTime> {
        self.last_migrated
    }
    fn is_done(&self) -> bool {
        self.remaining.is_zero()
    }
}

/// Aggregate outcome of a cluster-life run. Every counter is u64.
#[derive(Debug, Clone)]
pub struct LifeOutcome {
    /// Jobs that arrived inside the horizon.
    pub arrived: u64,
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs lost to crashes (on a dead node, or homed on one).
    pub failed: u64,
    /// Jobs still queued or in-flight at the horizon.
    pub running_at_horizon: u64,
    /// All migrations (out + remigrations + returns).
    pub migrations: u64,
    /// Home → away out-migrations.
    pub out_migrations: u64,
    /// Away → away remigrations (stub re-pointed, never chained).
    pub remigrations: u64,
    /// Away → home returns.
    pub returns_home: u64,
    /// Gossip messages delivered.
    pub gossip_messages: u64,
    /// Window merges that changed a view.
    pub gossip_entries_merged: u64,
    /// Ticks whose migration count reached the storm threshold.
    pub storm_ticks: u64,
    /// Largest per-tick migration count observed.
    pub peak_migrations_per_tick: u64,
    /// Largest live-stub count any job ever had (chain avoidance: 1).
    pub max_live_stubs: u64,
    /// Total freeze time paid.
    pub freeze_paid: SimDuration,
    /// Total bytes moved by migrations and returns.
    pub bytes_moved: u64,
    /// Completed-job slowdown statistics.
    pub slowdown: OnlineStats,
    /// Median completed-job slowdown.
    pub p50_slowdown: f64,
    /// Tail (p99) completed-job slowdown.
    pub p99_slowdown: f64,
    /// Time-averaged stddev of per-node run-queue lengths.
    pub mean_load_stddev: f64,
    /// Load stddev at the final tick.
    pub final_load_stddev: f64,
    /// Load stddev over time (bounded, self-decimating).
    pub load_stddev_series: Series,
    /// Completions per simulated hour.
    pub throughput_jobs_per_hour: f64,
}

impl LifeOutcome {
    /// FNV-1a condensation of the run: every counter and the bit patterns
    /// of the derived floats. Equal fingerprints across thread counts and
    /// re-runs are the determinism contract.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.arrived);
        mix(self.completed);
        mix(self.failed);
        mix(self.running_at_horizon);
        mix(self.migrations);
        mix(self.out_migrations);
        mix(self.remigrations);
        mix(self.returns_home);
        mix(self.gossip_messages);
        mix(self.gossip_entries_merged);
        mix(self.storm_ticks);
        mix(self.peak_migrations_per_tick);
        mix(self.max_live_stubs);
        mix(self.freeze_paid.as_nanos());
        mix(self.bytes_moved);
        mix(self.slowdown.mean().to_bits());
        mix(self.p50_slowdown.to_bits());
        mix(self.p99_slowdown.to_bits());
        mix(self.mean_load_stddev.to_bits());
        mix(self.final_load_stddev.to_bits());
        h
    }

    /// Conservation check: every arrived job is exactly once completed,
    /// failed, or still running at the horizon.
    pub fn conserves_jobs(&self) -> bool {
        self.arrived == self.completed + self.failed + self.running_at_horizon
    }
}

struct LifeNode {
    queue: Vec<LifeJob>,
    /// Jobs frozen mid-migration with their thaw time.
    arriving: Vec<(SimTime, LifeJob)>,
    uplink: Link,
    downlink: Link,
    /// Away jobs homed here (they share this node's deputy).
    away: u64,
    up: bool,
    restart_at: Option<SimTime>,
}

/// One node's plan for a tick, computed from the pre-tick snapshot.
struct TickPlan {
    gossip: Option<(usize, Vec<(usize, LoadEntry)>)>,
    action: Option<PlannedMove>,
}

enum PlannedMove {
    /// Push `job` to `target` (out-migration or remigration).
    Migrate {
        job: JobId,
        target: usize,
        believed: f64,
    },
    /// Send the away job `job` back to its home.
    Return { job: JobId },
}

/// Runs `f(i)` for every `i in 0..n`, slicing across `threads` workers in
/// contiguous chunks and concatenating in index order. `f` must depend
/// only on `i` and captured immutable state, which is exactly why the
/// result — and everything the caller derives from it — is bit-identical
/// regardless of `threads`.
fn par_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 64 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("compute worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Runs the cluster-life simulation over the configured horizon.
///
/// # Panics
/// Panics if the configuration fails [`LifeConfig::validate`], or if the
/// deputy-chain invariant would be violated (a job acquiring a second
/// live stub — that would be an engine bug, not a configuration error).
pub fn run_cluster_life(cfg: &LifeConfig) -> LifeOutcome {
    cfg.validate().expect("invalid LifeConfig");
    let tick = SimDuration::from_secs(1);
    let model = MigrationModel { scheme: cfg.scheme };
    let costs = LifecycleCostModel::new(cfg.scheme);
    let base_rng = SimRng::seed_from_u64(cfg.seed);

    // Pre-generate the Poisson arrival schedule (time, node, job). The
    // schedule is a pure function of (seed, config), independent of
    // everything the tick loop does.
    let mut arrival_rng = base_rng.fork(ARRIVAL_SALT);
    let arrival_nodes =
        ((cfg.nodes as f64 * cfg.arrival_node_fraction).ceil() as usize).clamp(1, cfg.nodes);
    let mut arrivals: Vec<(SimTime, usize, LifeJob)> = Vec::new();
    let mut t = SimTime::ZERO;
    let horizon_end = SimTime::ZERO + cfg.horizon;
    let mut next_id = 0u64;
    loop {
        if let Some(cap) = cfg.max_jobs {
            if next_id >= cap {
                break;
            }
        }
        let gap = arrival_rng.exponential(cfg.mean_interarrival.as_secs_f64());
        t += SimDuration::from_secs_f64(gap.max(1e-6));
        if t >= horizon_end {
            break;
        }
        let spec = *cfg.mix.draw(&mut arrival_rng);
        let demand = arrival_rng
            .exponential(spec.mean_demand.as_secs_f64())
            .max(1.0);
        let node = arrival_rng.below(arrival_nodes as u64) as usize;
        arrivals.push((
            t,
            node,
            LifeJob {
                id: JobId(next_id),
                kernel: spec.kernel,
                arrived: t,
                demand: SimDuration::from_secs_f64(demand),
                remaining: SimDuration::from_secs_f64(demand),
                memory_mb: spec.memory_mb,
                dirty_fraction: spec.dirty_fraction,
                migrations: 0,
                last_migrated: None,
                home: node,
                stubs: 0,
            },
        ));
        next_id += 1;
    }

    let mut nodes: Vec<LifeNode> = (0..cfg.nodes)
        .map(|_| LifeNode {
            queue: Vec::new(),
            arriving: Vec::new(),
            uplink: Link::new(cfg.network),
            downlink: Link::new(cfg.network),
            away: 0,
            up: true,
            restart_at: None,
        })
        .collect();
    let mut fabric = Link::new(LinkConfig {
        capacity_bytes_per_sec: cfg.network.capacity_bytes_per_sec
            * cfg.fabric_capacity_links.max(1),
        latency: cfg.network.latency,
    });
    let mut views: Vec<WindowView> = (0..cfg.nodes)
        .map(|i| WindowView::new(i, cfg.window))
        .collect();
    let mut crashes = cfg.crashes.clone();
    crashes.sort_by_key(|c| (c.at, c.node));
    let mut next_crash = 0usize;

    let mut next_arrival = 0usize;
    let mut out = LifeOutcome {
        arrived: 0,
        completed: 0,
        failed: 0,
        running_at_horizon: 0,
        migrations: 0,
        out_migrations: 0,
        remigrations: 0,
        returns_home: 0,
        gossip_messages: 0,
        gossip_entries_merged: 0,
        storm_ticks: 0,
        peak_migrations_per_tick: 0,
        max_live_stubs: 0,
        freeze_paid: SimDuration::ZERO,
        bytes_moved: 0,
        slowdown: OnlineStats::new(),
        p50_slowdown: 0.0,
        p99_slowdown: 0.0,
        mean_load_stddev: 0.0,
        final_load_stddev: 0.0,
        load_stddev_series: Series::new(512),
        throughput_jobs_per_hour: 0.0,
    };
    let mut slowdowns: Vec<f64> = Vec::new();
    let mut stddev_stats = OnlineStats::new();
    let mut final_stddev = 0.0;

    let ticks = cfg.horizon.as_nanos().div_ceil(tick.as_nanos());
    for tick_idx in 0..ticks {
        let now = SimTime::ZERO + SimDuration::from_secs(tick_idx);

        // 1. Crashes and restarts.
        while next_crash < crashes.len() && crashes[next_crash].at <= now {
            let c = crashes[next_crash];
            next_crash += 1;
            if !nodes[c.node].up {
                continue;
            }
            nodes[c.node].up = false;
            nodes[c.node].restart_at = Some(c.at + c.down_for);
            nodes[c.node].away = 0;
            // Jobs on the dead node are lost; away jobs among them
            // release their home deputy.
            let queue = std::mem::take(&mut nodes[c.node].queue);
            let arriving = std::mem::take(&mut nodes[c.node].arriving);
            for j in queue
                .into_iter()
                .chain(arriving.into_iter().map(|(_, j)| j))
            {
                out.failed += 1;
                if j.home != c.node {
                    nodes[j.home].away = nodes[j.home].away.saturating_sub(1);
                }
            }
            // Away jobs homed on the dead node lose their deputy and die
            // with it wherever they run.
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == c.node {
                    continue;
                }
                let before = node.queue.len() + node.arriving.len();
                node.queue.retain(|j| j.home != c.node);
                node.arriving.retain(|(_, j)| j.home != c.node);
                out.failed += (before - node.queue.len() - node.arriving.len()) as u64;
            }
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            if let Some(at) = node.restart_at {
                if at <= now {
                    node.up = true;
                    node.restart_at = None;
                    views[i].reset(now);
                }
            }
        }

        // 2. Arrivals due this tick; a down arrival node reroutes to the
        //    next up node (deterministic scan).
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (_, node, mut job) = arrivals[next_arrival].clone();
            next_arrival += 1;
            let target = (0..cfg.nodes)
                .map(|k| (node + k) % cfg.nodes)
                .find(|&k| nodes[k].up);
            match target {
                Some(k) => {
                    job.home = k;
                    nodes[k].queue.push(job);
                    out.arrived += 1;
                }
                None => {
                    out.arrived += 1;
                    out.failed += 1;
                }
            }
        }

        // 3. Thaw migrants whose freeze completed.
        for node in nodes.iter_mut() {
            if !node.up {
                continue;
            }
            let (ready, pending): (Vec<_>, Vec<_>) =
                node.arriving.drain(..).partition(|(at, _)| *at <= now);
            node.arriving = pending;
            node.queue.extend(ready.into_iter().map(|(_, j)| j));
        }

        // 4. Refresh own loads.
        for (i, node) in nodes.iter().enumerate() {
            if node.up {
                views[i].set_own(node.queue.len() as f64, now);
            }
        }

        // 5. Compute phase: every up node plans gossip and (at most) one
        //    move from the immutable pre-tick snapshot. Parallel; see the
        //    module docs for why this cannot perturb determinism.
        let plans: Vec<TickPlan> = {
            let nodes = &nodes;
            let views = &views;
            let base = &base_rng;
            par_map(cfg.threads, cfg.nodes, move |i| {
                if !nodes[i].up {
                    return TickPlan {
                        gossip: None,
                        action: None,
                    };
                }
                let mut rng = base.fork(tick_idx).fork(NODE_SALT ^ i as u64);
                let gossip = plan_gossip(&views[i], cfg.nodes, &mut rng);
                let my_load = nodes[i].queue.len() as f64;

                // Home-return first: an away job goes home when the home
                // looks comfortably cheaper (return chains compose out of
                // one hop per tick).
                let mut action = None;
                let rested = |j: &LifeJob| match j.last_migrated {
                    Some(at) => now.saturating_since(at) >= crate::balancer::RESIDENCY,
                    None => true,
                };
                let returner = nodes[i]
                    .queue
                    .iter()
                    .filter(|j| j.home != i && rested(j) && !j.is_done())
                    .filter(|j| {
                        views[i].entry(j.home).is_some_and(|e| {
                            now.saturating_since(e.measured_at) <= cfg.max_age
                                && my_load - e.load >= cfg.return_margin
                        })
                    })
                    .max_by_key(|j| j.remaining);
                if let Some(j) = returner {
                    action = Some(PlannedMove::Return { job: j.id });
                } else if let Some((target, believed)) =
                    views[i].least_loaded_peer(now, cfg.max_age)
                {
                    let gap = my_load - believed;
                    if let Some(idx) = cfg.policy.pick_migrant(&nodes[i].queue, now, gap) {
                        action = Some(PlannedMove::Migrate {
                            job: nodes[i].queue[idx].id,
                            target,
                            believed,
                        });
                    }
                }
                TickPlan { gossip, action }
            })
        };

        // 6. Apply phase, sequential in node-index order.
        let mut migrations_this_tick = 0u64;
        for (i, plan) in plans.into_iter().enumerate() {
            if let Some((target, payload)) = plan.gossip {
                if nodes[target].up {
                    out.gossip_messages += 1;
                    for (node, entry) in payload {
                        if node != target && views[target].merge(node, entry, now, cfg.max_age) {
                            out.gossip_entries_merged += 1;
                        }
                    }
                }
            }
            let Some(action) = plan.action else { continue };
            let (job_id, target, believed) = match action {
                PlannedMove::Migrate {
                    job,
                    target,
                    believed,
                } => (job, target, Some(believed)),
                PlannedMove::Return { job } => {
                    let home = nodes[i]
                        .queue
                        .iter()
                        .find(|j| j.id == job)
                        .map(|j| j.home)
                        .expect("planned returner present");
                    (job, home, None)
                }
            };
            if target == i || !nodes[target].up {
                continue;
            }
            let Some(idx) = nodes[i].queue.iter().position(|j| j.id == job_id) else {
                continue;
            };
            let mut job = nodes[i].queue.swap_remove(idx);
            let going_home = target == job.home;
            let was_away = i != job.home;
            // Outbound and remigration moves pay the scheme's freeze
            // bytes; a home-return ships only the dirty footprint in
            // writeback batches.
            let bytes = if going_home {
                costs.return_bytes(job.memory_mb, job.dirty_fraction)
            } else {
                freeze_bytes(cfg.scheme, job.memory_mb)
            };
            let sw_total = if going_home {
                costs.return_freeze(job.memory_mb, job.dirty_fraction)
            } else {
                costs.outbound_freeze(job.memory_mb)
            };
            let wire = cfg.network.serialization_time(bytes).min(sw_total);
            let sw_cost = sw_total - wire;
            let up_hop = nodes[i].uplink.transmit(now, bytes);
            let through = fabric.transmit(up_hop.arrives, bytes);
            let down_hop = nodes[target].downlink.transmit(through.arrives, bytes);
            let thaw = down_hop.arrives + sw_cost;
            out.freeze_paid += thaw.since(now);
            out.bytes_moved += bytes;
            out.migrations += 1;
            migrations_this_tick += 1;
            job.migrations += 1;
            job.last_migrated = Some(thaw);
            // Deputy-chain avoidance: the stub lives at home, always.
            match (was_away, going_home) {
                (false, false) => {
                    // Out-migration: the home deputy comes alive.
                    job.stubs += 1;
                    nodes[job.home].away += 1;
                }
                (true, false) => {
                    // Remigration: the home stub is re-pointed at the new
                    // node; no intermediate stub is ever created.
                    out.remigrations += 1;
                }
                (true, true) => {
                    // Home-return: the stub is merged away.
                    job.stubs = job.stubs.saturating_sub(1);
                    nodes[job.home].away = nodes[job.home].away.saturating_sub(1);
                    out.returns_home += 1;
                }
                (false, true) => unreachable!("going home while at home"),
            }
            if !was_away && !going_home {
                out.out_migrations += 1;
            }
            assert!(
                job.stubs <= 1,
                "deputy-chain violation: job {:?} holds {} stubs",
                job.id,
                job.stubs
            );
            out.max_live_stubs = out.max_live_stubs.max(u64::from(job.stubs));
            nodes[target].arriving.push((thaw, job));
            if let Some(believed) = believed {
                // Pessimistic bump so later deciders this round do not
                // herd onto the same target.
                views[i].merge(
                    target,
                    LoadEntry {
                        load: believed + 1.0,
                        measured_at: now,
                    },
                    now,
                    cfg.max_age,
                );
            }
        }
        out.peak_migrations_per_tick = out.peak_migrations_per_tick.max(migrations_this_tick);
        if migrations_this_tick >= cfg.storm_threshold {
            out.storm_ticks += 1;
        }

        // 7. Processor sharing: away jobs pay the contention-scaled
        //    remote-paging tax against their home deputy at *today's*
        //    away count, so returning home genuinely stops the bleeding.
        let away_snapshot: Vec<u64> = nodes.iter().map(|n| n.away).collect();
        let mut freed_homes: Vec<usize> = Vec::new();
        for (at, node) in nodes.iter_mut().enumerate() {
            if !node.up || node.queue.is_empty() {
                continue;
            }
            let share = tick / node.queue.len() as u64;
            for job in node.queue.iter_mut() {
                let tax = if job.home != at {
                    model.slowdown()
                        * contention_factor(
                            cfg.deputy_solo_saturation,
                            away_snapshot[job.home].max(1),
                        )
                } else {
                    0.0
                };
                let useful = SimDuration::from_secs_f64(share.as_secs_f64() / (1.0 + tax))
                    .min(job.remaining);
                job.remaining -= useful;
            }
            let mut k = 0;
            while k < node.queue.len() {
                if node.queue[k].is_done() {
                    let j = node.queue.swap_remove(k);
                    if j.home != at {
                        freed_homes.push(j.home);
                    }
                    out.completed += 1;
                    let turnaround = (now + tick).saturating_since(j.arrived);
                    let slowdown = turnaround.as_secs_f64() / j.demand.as_secs_f64().max(1e-9);
                    out.slowdown.record(slowdown);
                    slowdowns.push(slowdown);
                } else {
                    k += 1;
                }
            }
        }
        for home in freed_homes {
            nodes[home].away = nodes[home].away.saturating_sub(1);
        }

        // 8. Balance-quality sample over up nodes.
        let mut count = 0u64;
        let mut sum = 0.0;
        for n in nodes.iter().filter(|n| n.up) {
            sum += n.queue.len() as f64;
            count += 1;
        }
        if count > 0 {
            let mean = sum / count as f64;
            let var = nodes
                .iter()
                .filter(|n| n.up)
                .map(|n| (n.queue.len() as f64 - mean).powi(2))
                .sum::<f64>()
                / count as f64;
            final_stddev = var.sqrt();
            stddev_stats.record(final_stddev);
            out.load_stddev_series
                .record(now.since(SimTime::ZERO).as_secs_f64(), final_stddev);
        }
    }

    out.running_at_horizon = nodes
        .iter()
        .map(|n| (n.queue.len() + n.arriving.len()) as u64)
        .sum();
    // Arrivals past the generated schedule never materialised; only the
    // delivered ones were counted.
    slowdowns.sort_by(f64::total_cmp);
    let quantile = |q: f64| -> f64 {
        if slowdowns.is_empty() {
            return 0.0;
        }
        let idx = ((slowdowns.len() as f64 - 1.0) * q).round() as usize;
        slowdowns[idx.min(slowdowns.len() - 1)]
    };
    out.p50_slowdown = quantile(0.50);
    out.p99_slowdown = quantile(0.99);
    out.mean_load_stddev = stddev_stats.mean();
    out.final_load_stddev = final_stddev;
    out.throughput_jobs_per_hour = out.completed as f64 / (cfg.horizon.as_secs_f64() / 3600.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scheme: Scheme) -> LifeConfig {
        let mut cfg = LifeConfig::standard(8, scheme);
        cfg.horizon = SimDuration::from_secs(300);
        cfg.mean_interarrival = SimDuration::from_secs(4);
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn life_run_completes_and_conserves() {
        let out = run_cluster_life(&small(Scheme::Ampom));
        assert!(out.arrived > 0);
        assert!(out.completed > 0);
        assert!(out.conserves_jobs(), "{out:?}");
        assert_eq!(out.failed, 0);
        assert_eq!(
            out.migrations,
            out.out_migrations + out.remigrations + out.returns_home
        );
    }

    #[test]
    fn thread_count_is_invisible() {
        let mut one = small(Scheme::Ampom);
        one.nodes = 70; // above the par_map sequential cutoff
        one.threads = 1;
        let mut four = one.clone();
        four.threads = 4;
        let a = run_cluster_life(&one);
        let b = run_cluster_life(&four);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn chain_avoidance_holds() {
        let mut cfg = small(Scheme::Ampom);
        cfg.return_margin = 1000.0; // never return: remigration chains only
        let out = run_cluster_life(&cfg);
        assert!(out.max_live_stubs <= 1);
    }

    #[test]
    fn crashes_fail_jobs_but_conserve_accounting() {
        let mut cfg = small(Scheme::Ampom);
        cfg.crashes = vec![CrashEvent {
            node: 0,
            at: SimTime::ZERO + SimDuration::from_secs(100),
            down_for: SimDuration::from_secs(60),
        }];
        let out = run_cluster_life(&cfg);
        assert!(
            out.failed > 0,
            "node 0 takes arrivals; its crash kills jobs"
        );
        assert!(out.conserves_jobs(), "{out:?}");
    }

    #[test]
    fn paper_mix_draws_cover_all_kernels() {
        let mix = JobMix::paper_mix();
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(mix.draw(&mut rng).kernel);
        }
        assert_eq!(seen.len(), 4);
        assert!(mix.mean_demand() > SimDuration::from_secs(80));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = LifeConfig::standard(8, Scheme::Ampom);
        cfg.nodes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = LifeConfig::standard(8, Scheme::Ampom);
        cfg.window = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = LifeConfig::standard(8, Scheme::Ampom);
        cfg.crashes = vec![CrashEvent {
            node: 99,
            at: SimTime::ZERO,
            down_for: SimDuration::from_secs(1),
        }];
        assert!(cfg.validate().is_err());
    }
}
