//! MOSIX/openMosix probabilistic load dissemination.
//!
//! openMosix nodes do not query a central server: every time unit each
//! node sends its own load, plus a random half of what it knows about
//! other nodes, to one randomly chosen peer (Barak & Litman's MOSIX
//! information dissemination, inherited by openMosix's oM_infoD). Each
//! node therefore holds a **stale, partial load vector** — the balancer
//! must decide from that, not from ground truth. Staleness is the reason
//! suboptimal migrations happen, which is precisely why the paper argues
//! cheap freezes matter (§7).

use ampom_sim::rng::SimRng;
use ampom_sim::time::SimTime;

/// One entry of a node's load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadEntry {
    /// The reported load (run-queue length).
    pub load: f64,
    /// When the owner measured it.
    pub measured_at: SimTime,
}

/// A node's (stale, partial) view of cluster load.
#[derive(Debug, Clone)]
pub struct LoadView {
    entries: Vec<Option<LoadEntry>>,
    me: usize,
}

impl LoadView {
    /// A fresh view for node `me` of an `n`-node cluster: it knows only
    /// itself.
    pub fn new(n: usize, me: usize) -> Self {
        assert!(me < n);
        let mut entries = vec![None; n];
        entries[me] = Some(LoadEntry {
            load: 0.0,
            measured_at: SimTime::ZERO,
        });
        LoadView { entries, me }
    }

    /// Updates this node's own entry.
    pub fn set_own(&mut self, load: f64, now: SimTime) {
        self.entries[self.me] = Some(LoadEntry {
            load,
            measured_at: now,
        });
    }

    /// Merges a received entry under the pinned freshness rule of
    /// [`merge_wins`]: strictly fresher wins; at equal timestamps the
    /// higher load wins.
    pub fn merge(&mut self, node: usize, entry: LoadEntry) {
        match self.entries[node] {
            Some(existing) if !merge_wins(existing, entry) => {}
            _ => self.entries[node] = Some(entry),
        }
    }

    /// The entry for `node`, if known.
    pub fn entry(&self, node: usize) -> Option<LoadEntry> {
        self.entries[node]
    }

    /// How many peers this node knows about (excluding itself).
    pub fn known_peers(&self) -> usize {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, e)| i != self.me && e.is_some())
            .count()
    }

    /// The least-loaded node this view knows of (other than `me`),
    /// ignoring entries older than `max_age` relative to `now`.
    pub fn least_loaded_peer(
        &self,
        now: SimTime,
        max_age: ampom_sim::time::SimDuration,
    ) -> Option<(usize, f64)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.me)
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .filter(|(_, e)| now.saturating_since(e.measured_at) <= max_age)
            .map(|(i, e)| (i, e.load))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// A random half of the known entries (the MOSIX gossip payload),
    /// always including this node's own entry first.
    pub fn gossip_payload(&self, rng: &mut SimRng) -> Vec<(usize, LoadEntry)> {
        let mut known: Vec<(usize, LoadEntry)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.me)
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .collect();
        rng.shuffle(&mut known);
        known.truncate(known.len() / 2);
        let mut payload = vec![(self.me, self.entries[self.me].expect("own entry"))];
        payload.extend(known);
        payload
    }
}

/// The pinned merge rule: does `incoming` replace `existing`?
///
/// * A strictly fresher measurement always wins.
/// * At **equal timestamps** the **higher load** wins. Equal-timestamp
///   conflicts are routine at scale: the balancer's pessimistic
///   post-migration bump carries the same tick timestamp as the owner's
///   own measurement, and two gossip paths can deliver both within one
///   round. Higher-load-wins keeps the pessimism (no herding onto a node
///   that was just picked) and, unlike first-or-last-writer-wins, is
///   commutative and associative — the merged view is independent of
///   delivery order, which the deterministic parallel engine relies on.
/// * An equal-timestamp, equal-load entry does not replace (no-op).
pub fn merge_wins(existing: LoadEntry, incoming: LoadEntry) -> bool {
    incoming.measured_at > existing.measured_at
        || (incoming.measured_at == existing.measured_at && incoming.load > existing.load)
}

/// A bounded, age-stamped load window — the 1000-node form of
/// [`LoadView`].
///
/// A full `LoadView` holds one slot per cluster node, which is fine at 16
/// nodes and pure waste at 1000+: MOSIX's dissemination deliberately keeps
/// only a *window* of the freshest vector entries per node, because stale
/// entries are worse than no entries. `WindowView` keeps at most
/// `capacity` peer entries, rejects entries already older than the
/// staleness bound at merge time, and evicts the stalest entry when full
/// (ties broken by the higher node id, so eviction is deterministic).
#[derive(Debug, Clone)]
pub struct WindowView {
    me: usize,
    own: LoadEntry,
    window: Vec<(usize, LoadEntry)>,
    capacity: usize,
}

impl WindowView {
    /// A fresh window for node `me` holding at most `capacity` peers.
    pub fn new(me: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "WindowView needs a positive capacity");
        WindowView {
            me,
            own: LoadEntry {
                load: 0.0,
                measured_at: SimTime::ZERO,
            },
            window: Vec::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// This node's id.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Updates this node's own entry.
    pub fn set_own(&mut self, load: f64, now: SimTime) {
        self.own = LoadEntry {
            load,
            measured_at: now,
        };
    }

    /// This node's own entry.
    pub fn own(&self) -> LoadEntry {
        self.own
    }

    /// Forgets everything but the own entry (a restarted node rejoins
    /// with an empty window).
    pub fn reset(&mut self, now: SimTime) {
        self.window.clear();
        self.own = LoadEntry {
            load: 0.0,
            measured_at: now,
        };
    }

    /// The entry for `node`, if inside the window.
    pub fn entry(&self, node: usize) -> Option<LoadEntry> {
        if node == self.me {
            return Some(self.own);
        }
        self.window
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, e)| e)
    }

    /// How many peers the window currently holds.
    pub fn known_peers(&self) -> usize {
        self.window.len()
    }

    /// Age of the stalest window entry at `now` (zero for an empty
    /// window).
    pub fn max_entry_age(&self, now: SimTime) -> ampom_sim::time::SimDuration {
        self.window
            .iter()
            .map(|(_, e)| now.saturating_since(e.measured_at))
            .max()
            .unwrap_or(ampom_sim::time::SimDuration::ZERO)
    }

    /// Merges a received entry under the staleness bound: entries already
    /// older than `max_age` at merge time are refused outright (a windowed
    /// view never spends a slot on an entry it would not act on), fresher
    /// entries win per [`merge_wins`], and a full window evicts its
    /// stalest entry. Returns `true` when the window changed.
    pub fn merge(
        &mut self,
        node: usize,
        entry: LoadEntry,
        now: SimTime,
        max_age: ampom_sim::time::SimDuration,
    ) -> bool {
        if node == self.me {
            return false;
        }
        if now.saturating_since(entry.measured_at) > max_age {
            return false;
        }
        if let Some(slot) = self.window.iter_mut().find(|(n, _)| *n == node) {
            if merge_wins(slot.1, entry) {
                slot.1 = entry;
                return true;
            }
            return false;
        }
        if self.window.len() >= self.capacity {
            // Evict the stalest entry; ties broken toward the higher node
            // id so eviction is a pure function of the window contents.
            let victim = self
                .window
                .iter()
                .enumerate()
                .min_by(|(_, (an, ae)), (_, (bn, be))| {
                    ae.measured_at.cmp(&be.measured_at).then(bn.cmp(an))
                })
                .map(|(i, _)| i)
                .expect("non-empty window");
            if !merge_wins(self.window[victim].1, entry)
                && self.window[victim].1.measured_at >= entry.measured_at
            {
                // The incoming entry is staler than everything held.
                return false;
            }
            self.window.swap_remove(victim);
        }
        self.window.push((node, entry));
        true
    }

    /// The least-loaded known peer with a fresh-enough entry, ties broken
    /// toward the lower node id (deterministic regardless of window
    /// order).
    pub fn least_loaded_peer(
        &self,
        now: SimTime,
        max_age: ampom_sim::time::SimDuration,
    ) -> Option<(usize, f64)> {
        self.window
            .iter()
            .filter(|(_, e)| now.saturating_since(e.measured_at) <= max_age)
            .map(|&(n, e)| (n, e.load))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The MOSIX gossip payload: this node's own entry first, then a
    /// random half of the window.
    pub fn payload(&self, rng: &mut SimRng) -> Vec<(usize, LoadEntry)> {
        let mut known: Vec<(usize, LoadEntry)> = self.window.clone();
        rng.shuffle(&mut known);
        known.truncate(known.len() / 2);
        let mut payload = Vec::with_capacity(known.len() + 1);
        payload.push((self.me, self.own));
        payload.extend(known);
        payload
    }
}

/// One node's gossip plan for a tick: the chosen peer and the payload it
/// sends there. Pure in `(view, rng)`, so an engine can compute all
/// plans in parallel from an immutable snapshot and apply them in node
/// order — the deliveries are then independent of the thread count.
pub fn plan_gossip(
    view: &WindowView,
    nodes: usize,
    rng: &mut SimRng,
) -> Option<(usize, Vec<(usize, LoadEntry)>)> {
    if nodes < 2 {
        return None;
    }
    let mut target = rng.below(nodes as u64 - 1) as usize;
    if target >= view.me() {
        target += 1;
    }
    Some((target, view.payload(rng)))
}

/// Gossip parameters.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Entries older than this are not trusted for decisions.
    pub max_age: ampom_sim::time::SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            max_age: ampom_sim::time::SimDuration::from_secs(8),
        }
    }
}

/// One gossip round: every node sends its payload to one random peer.
pub fn gossip_round(views: &mut [LoadView], now: SimTime, rng: &mut SimRng) {
    let n = views.len();
    if n < 2 {
        return;
    }
    // Collect sends first so a round is "simultaneous" (no intra-round
    // relaying), then deliver.
    let mut deliveries: Vec<(usize, Vec<(usize, LoadEntry)>)> = Vec::with_capacity(n);
    for (i, view) in views.iter().enumerate() {
        let mut target = rng.below(n as u64 - 1) as usize;
        if target >= i {
            target += 1;
        }
        let mut forked = rng.fork(now.as_nanos() ^ i as u64);
        deliveries.push((target, view.gossip_payload(&mut forked)));
    }
    for (target, payload) in deliveries {
        for (node, entry) in payload {
            if node != target {
                views[target].merge(node, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn fresh_view_knows_only_itself() {
        let v = LoadView::new(8, 3);
        assert_eq!(v.known_peers(), 0);
        assert!(v.entry(3).is_some());
        assert!(v.entry(0).is_none());
    }

    #[test]
    fn merge_keeps_fresher_entry() {
        let mut v = LoadView::new(4, 0);
        v.merge(
            1,
            LoadEntry {
                load: 5.0,
                measured_at: t(10),
            },
        );
        v.merge(
            1,
            LoadEntry {
                load: 9.0,
                measured_at: t(5),
            },
        ); // staler
        assert_eq!(v.entry(1).unwrap().load, 5.0);
        v.merge(
            1,
            LoadEntry {
                load: 2.0,
                measured_at: t(20),
            },
        ); // fresher
        assert_eq!(v.entry(1).unwrap().load, 2.0);
    }

    #[test]
    fn least_loaded_respects_staleness() {
        let mut v = LoadView::new(4, 0);
        v.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(0),
            },
        );
        v.merge(
            2,
            LoadEntry {
                load: 3.0,
                measured_at: t(9),
            },
        );
        let now = t(10);
        // Node 1 is cheaper but its entry is 10 s old; with max_age 8 s it
        // is distrusted.
        let pick = v.least_loaded_peer(now, SimDuration::from_secs(8));
        assert_eq!(pick, Some((2, 3.0)));
        // With a looser bound node 1 wins.
        let pick = v.least_loaded_peer(now, SimDuration::from_secs(60));
        assert_eq!(pick, Some((1, 1.0)));
    }

    #[test]
    fn gossip_spreads_information() {
        let n = 16;
        let mut views: Vec<LoadView> = (0..n).map(|i| LoadView::new(n, i)).collect();
        let mut rng = SimRng::seed_from_u64(11);
        for (i, v) in views.iter_mut().enumerate() {
            v.set_own(i as f64, t(0));
        }
        for round in 0..20 {
            gossip_round(&mut views, t(round), &mut rng);
        }
        // After 20 rounds of push gossip every node should know most of
        // the cluster.
        let avg_known: f64 = views.iter().map(|v| v.known_peers() as f64).sum::<f64>() / n as f64;
        assert!(avg_known > (n - 1) as f64 * 0.7, "avg known {avg_known}");
    }

    #[test]
    fn gossip_payload_contains_self_first() {
        let mut v = LoadView::new(8, 2);
        v.set_own(4.0, t(1));
        v.merge(
            0,
            LoadEntry {
                load: 1.0,
                measured_at: t(1),
            },
        );
        v.merge(
            5,
            LoadEntry {
                load: 2.0,
                measured_at: t(1),
            },
        );
        let mut rng = SimRng::seed_from_u64(3);
        let payload = v.gossip_payload(&mut rng);
        assert_eq!(payload[0].0, 2);
        assert_eq!(payload[0].1.load, 4.0);
        // Half of the two known peers = 1 extra entry.
        assert_eq!(payload.len(), 2);
    }

    #[test]
    fn merge_equal_timestamp_higher_load_wins() {
        // Regression for the previously unpinned tie-break: the old rule
        // (`existing.measured_at >= entry.measured_at` keeps existing)
        // silently dropped the balancer's pessimistic bump whenever it
        // carried the same tick timestamp as the owner's measurement.
        let mut v = LoadView::new(4, 0);
        v.merge(
            1,
            LoadEntry {
                load: 2.0,
                measured_at: t(7),
            },
        );
        v.merge(
            1,
            LoadEntry {
                load: 3.0,
                measured_at: t(7),
            },
        ); // same timestamp, higher load: wins
        assert_eq!(v.entry(1).unwrap().load, 3.0);
        v.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(7),
            },
        ); // same timestamp, lower load: loses
        assert_eq!(v.entry(1).unwrap().load, 3.0);
    }

    #[test]
    fn merge_rule_is_order_independent() {
        // Any delivery order of the same entry set converges to the same
        // view — the property the parallel engine's sequential-apply
        // phase relies on.
        let entries = [
            LoadEntry {
                load: 2.0,
                measured_at: t(7),
            },
            LoadEntry {
                load: 5.0,
                measured_at: t(7),
            },
            LoadEntry {
                load: 9.0,
                measured_at: t(3),
            },
            LoadEntry {
                load: 1.0,
                measured_at: t(7),
            },
        ];
        // All 4! orders, generated by repeated rotation/swap: simplest is
        // to test a handful of distinct permutations.
        let orders: [[usize; 4]; 6] = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [1, 0, 3, 2],
            [2, 3, 0, 1],
            [1, 3, 0, 2],
            [2, 0, 3, 1],
        ];
        for order in orders {
            let mut v = LoadView::new(2, 0);
            for &k in &order {
                v.merge(1, entries[k]);
            }
            let got = v.entry(1).unwrap();
            assert_eq!((got.load, got.measured_at), (5.0, t(7)), "order {order:?}");
        }
    }

    #[test]
    fn window_refuses_stale_entries_at_merge_time() {
        let mut w = WindowView::new(0, 8);
        let max_age = SimDuration::from_secs(8);
        assert!(!w.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(0),
            },
            t(20),
            max_age,
        ));
        assert_eq!(w.known_peers(), 0);
        assert!(w.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(15),
            },
            t(20),
            max_age,
        ));
        assert_eq!(w.known_peers(), 1);
    }

    #[test]
    fn window_evicts_stalest_deterministically() {
        let mut w = WindowView::new(0, 2);
        let max_age = SimDuration::from_secs(3600);
        w.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(10),
            },
            t(10),
            max_age,
        );
        w.merge(
            2,
            LoadEntry {
                load: 2.0,
                measured_at: t(10),
            },
            t(10),
            max_age,
        );
        // Full window; a fresher entry for node 3 evicts the stalest.
        // Both held entries share t(10), so the tie goes to the higher
        // node id: node 2 is evicted.
        assert!(w.merge(
            3,
            LoadEntry {
                load: 9.0,
                measured_at: t(11),
            },
            t(11),
            max_age,
        ));
        assert_eq!(w.known_peers(), 2);
        assert!(w.entry(1).is_some());
        assert!(w.entry(2).is_none());
        assert!(w.entry(3).is_some());
        // An entry staler than everything held is refused even though the
        // window is full of other nodes.
        assert!(!w.merge(
            4,
            LoadEntry {
                load: 0.1,
                measured_at: t(9),
            },
            t(11),
            max_age,
        ));
        assert!(w.entry(4).is_none());
    }

    #[test]
    fn window_least_loaded_breaks_ties_by_node_id() {
        let mut w = WindowView::new(0, 8);
        let max_age = SimDuration::from_secs(60);
        for node in [5, 2, 7] {
            w.merge(
                node,
                LoadEntry {
                    load: 1.0,
                    measured_at: t(1),
                },
                t(1),
                max_age,
            );
        }
        assert_eq!(w.least_loaded_peer(t(2), max_age), Some((2, 1.0)));
    }

    #[test]
    fn plan_gossip_never_targets_self() {
        let mut w = WindowView::new(3, 8);
        w.set_own(1.0, t(0));
        let mut rng = SimRng::seed_from_u64(99);
        for _ in 0..200 {
            let (target, payload) = plan_gossip(&w, 8, &mut rng).unwrap();
            assert_ne!(target, 3);
            assert!(target < 8);
            assert_eq!(payload[0].0, 3);
        }
        assert!(plan_gossip(&w, 1, &mut rng).is_none());
    }

    #[test]
    fn single_node_cluster_gossips_harmlessly() {
        let mut views = vec![LoadView::new(1, 0)];
        let mut rng = SimRng::seed_from_u64(1);
        gossip_round(&mut views, t(0), &mut rng);
        assert_eq!(views[0].known_peers(), 0);
    }
}
