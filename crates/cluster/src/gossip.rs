//! MOSIX/openMosix probabilistic load dissemination.
//!
//! openMosix nodes do not query a central server: every time unit each
//! node sends its own load, plus a random half of what it knows about
//! other nodes, to one randomly chosen peer (Barak & Litman's MOSIX
//! information dissemination, inherited by openMosix's oM_infoD). Each
//! node therefore holds a **stale, partial load vector** — the balancer
//! must decide from that, not from ground truth. Staleness is the reason
//! suboptimal migrations happen, which is precisely why the paper argues
//! cheap freezes matter (§7).

use ampom_sim::rng::SimRng;
use ampom_sim::time::SimTime;

/// One entry of a node's load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadEntry {
    /// The reported load (run-queue length).
    pub load: f64,
    /// When the owner measured it.
    pub measured_at: SimTime,
}

/// A node's (stale, partial) view of cluster load.
#[derive(Debug, Clone)]
pub struct LoadView {
    entries: Vec<Option<LoadEntry>>,
    me: usize,
}

impl LoadView {
    /// A fresh view for node `me` of an `n`-node cluster: it knows only
    /// itself.
    pub fn new(n: usize, me: usize) -> Self {
        assert!(me < n);
        let mut entries = vec![None; n];
        entries[me] = Some(LoadEntry {
            load: 0.0,
            measured_at: SimTime::ZERO,
        });
        LoadView { entries, me }
    }

    /// Updates this node's own entry.
    pub fn set_own(&mut self, load: f64, now: SimTime) {
        self.entries[self.me] = Some(LoadEntry {
            load,
            measured_at: now,
        });
    }

    /// Merges a received entry, keeping the fresher measurement.
    pub fn merge(&mut self, node: usize, entry: LoadEntry) {
        match self.entries[node] {
            Some(existing) if existing.measured_at >= entry.measured_at => {}
            _ => self.entries[node] = Some(entry),
        }
    }

    /// The entry for `node`, if known.
    pub fn entry(&self, node: usize) -> Option<LoadEntry> {
        self.entries[node]
    }

    /// How many peers this node knows about (excluding itself).
    pub fn known_peers(&self) -> usize {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, e)| i != self.me && e.is_some())
            .count()
    }

    /// The least-loaded node this view knows of (other than `me`),
    /// ignoring entries older than `max_age` relative to `now`.
    pub fn least_loaded_peer(
        &self,
        now: SimTime,
        max_age: ampom_sim::time::SimDuration,
    ) -> Option<(usize, f64)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.me)
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .filter(|(_, e)| now.saturating_since(e.measured_at) <= max_age)
            .map(|(i, e)| (i, e.load))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// A random half of the known entries (the MOSIX gossip payload),
    /// always including this node's own entry first.
    pub fn gossip_payload(&self, rng: &mut SimRng) -> Vec<(usize, LoadEntry)> {
        let mut known: Vec<(usize, LoadEntry)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.me)
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .collect();
        rng.shuffle(&mut known);
        known.truncate(known.len() / 2);
        let mut payload = vec![(self.me, self.entries[self.me].expect("own entry"))];
        payload.extend(known);
        payload
    }
}

/// Gossip parameters.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Entries older than this are not trusted for decisions.
    pub max_age: ampom_sim::time::SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            max_age: ampom_sim::time::SimDuration::from_secs(8),
        }
    }
}

/// One gossip round: every node sends its payload to one random peer.
pub fn gossip_round(views: &mut [LoadView], now: SimTime, rng: &mut SimRng) {
    let n = views.len();
    if n < 2 {
        return;
    }
    // Collect sends first so a round is "simultaneous" (no intra-round
    // relaying), then deliver.
    let mut deliveries: Vec<(usize, Vec<(usize, LoadEntry)>)> = Vec::with_capacity(n);
    for (i, view) in views.iter().enumerate() {
        let mut target = rng.below(n as u64 - 1) as usize;
        if target >= i {
            target += 1;
        }
        let mut forked = rng.fork(now.as_nanos() ^ i as u64);
        deliveries.push((target, view.gossip_payload(&mut forked)));
    }
    for (target, payload) in deliveries {
        for (node, entry) in payload {
            if node != target {
                views[target].merge(node, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn fresh_view_knows_only_itself() {
        let v = LoadView::new(8, 3);
        assert_eq!(v.known_peers(), 0);
        assert!(v.entry(3).is_some());
        assert!(v.entry(0).is_none());
    }

    #[test]
    fn merge_keeps_fresher_entry() {
        let mut v = LoadView::new(4, 0);
        v.merge(
            1,
            LoadEntry {
                load: 5.0,
                measured_at: t(10),
            },
        );
        v.merge(
            1,
            LoadEntry {
                load: 9.0,
                measured_at: t(5),
            },
        ); // staler
        assert_eq!(v.entry(1).unwrap().load, 5.0);
        v.merge(
            1,
            LoadEntry {
                load: 2.0,
                measured_at: t(20),
            },
        ); // fresher
        assert_eq!(v.entry(1).unwrap().load, 2.0);
    }

    #[test]
    fn least_loaded_respects_staleness() {
        let mut v = LoadView::new(4, 0);
        v.merge(
            1,
            LoadEntry {
                load: 1.0,
                measured_at: t(0),
            },
        );
        v.merge(
            2,
            LoadEntry {
                load: 3.0,
                measured_at: t(9),
            },
        );
        let now = t(10);
        // Node 1 is cheaper but its entry is 10 s old; with max_age 8 s it
        // is distrusted.
        let pick = v.least_loaded_peer(now, SimDuration::from_secs(8));
        assert_eq!(pick, Some((2, 3.0)));
        // With a looser bound node 1 wins.
        let pick = v.least_loaded_peer(now, SimDuration::from_secs(60));
        assert_eq!(pick, Some((1, 1.0)));
    }

    #[test]
    fn gossip_spreads_information() {
        let n = 16;
        let mut views: Vec<LoadView> = (0..n).map(|i| LoadView::new(n, i)).collect();
        let mut rng = SimRng::seed_from_u64(11);
        for (i, v) in views.iter_mut().enumerate() {
            v.set_own(i as f64, t(0));
        }
        for round in 0..20 {
            gossip_round(&mut views, t(round), &mut rng);
        }
        // After 20 rounds of push gossip every node should know most of
        // the cluster.
        let avg_known: f64 = views.iter().map(|v| v.known_peers() as f64).sum::<f64>() / n as f64;
        assert!(avg_known > (n - 1) as f64 * 0.7, "avg known {avg_known}");
    }

    #[test]
    fn gossip_payload_contains_self_first() {
        let mut v = LoadView::new(8, 2);
        v.set_own(4.0, t(1));
        v.merge(
            0,
            LoadEntry {
                load: 1.0,
                measured_at: t(1),
            },
        );
        v.merge(
            5,
            LoadEntry {
                load: 2.0,
                measured_at: t(1),
            },
        );
        let mut rng = SimRng::seed_from_u64(3);
        let payload = v.gossip_payload(&mut rng);
        assert_eq!(payload[0].0, 2);
        assert_eq!(payload[0].1.load, 4.0);
        // Half of the two known peers = 1 extra entry.
        assert_eq!(payload.len(), 2);
    }

    #[test]
    fn single_node_cluster_gossips_harmlessly() {
        let mut views = vec![LoadView::new(1, 0)];
        let mut rng = SimRng::seed_from_u64(1);
        gossip_round(&mut views, t(0), &mut rng);
        assert_eq!(views[0].known_peers(), 0);
    }
}
