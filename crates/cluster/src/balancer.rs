//! Migration decision policies and the migration cost model.

use ampom_core::migration::Scheme;
use ampom_core::scheduler::{freeze_time, post_migration_slowdown};
use ampom_sim::time::{SimDuration, SimTime};

use crate::job::Job;

/// Which migration mechanism the cluster uses, with its cost model taken
/// from the single-migration experiments (Figures 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationModel {
    /// The mechanism.
    pub scheme: Scheme,
}

impl MigrationModel {
    /// Freeze time for migrating `job`.
    pub fn freeze(&self, job: &Job) -> SimDuration {
        freeze_time(self.scheme, job.memory_mb)
    }

    /// Remote-paging tax applied to the job's remaining work.
    pub fn slowdown(&self) -> f64 {
        post_migration_slowdown(self.scheme)
    }

    /// Remote-paging tax when the job's home deputy concurrently serves
    /// `migrants` away-jobs: the flat tax scaled by
    /// [`contention_factor`].
    pub fn slowdown_shared(&self, migrants: u64, solo_saturation: f64) -> f64 {
        self.slowdown() * contention_factor(solo_saturation, migrants)
    }
}

/// How much deputy sharing stretches remote paging.
///
/// A solo migrant keeps its home deputy busy for `solo_saturation` of
/// its runtime (measured by the multi-migrant sweep: saturation grows
/// linearly in the migrant count until the service capacity is
/// exhausted). While `n * solo_saturation <= 1` the deputy still has
/// headroom and each migrant is served at full speed; past that point
/// the shared capacity divides, and every page wait stretches by the
/// overload ratio.
pub fn contention_factor(solo_saturation: f64, migrants: u64) -> f64 {
    (migrants as f64 * solo_saturation.clamp(0.0, 1.0)).max(1.0)
}

/// What a balancing policy needs to know about a runnable job. Both the
/// tick-simulator's [`Job`] and the cluster-life engine's `LifeJob`
/// implement this, so [`BalancePolicy::pick_migrant`] is the single
/// decision rule for both.
pub trait Migratable {
    /// CPU work still outstanding.
    fn remaining(&self) -> SimDuration;
    /// Age at `now`.
    fn age(&self, now: SimTime) -> SimDuration;
    /// When the job last completed a migration, if ever.
    fn last_migrated(&self) -> Option<SimTime>;
    /// True when all work is done.
    fn is_done(&self) -> bool;
}

impl Migratable for Job {
    fn remaining(&self) -> SimDuration {
        self.remaining
    }
    fn age(&self, now: SimTime) -> SimDuration {
        Job::age(self, now)
    }
    fn last_migrated(&self) -> Option<SimTime> {
        self.last_migrated
    }
    fn is_done(&self) -> bool {
        Job::is_done(self)
    }
}

/// Minimum believed load gap before any policy considers migrating: with
/// a gap of ≤ 2 run-queue entries the move cannot improve mean response
/// time enough to risk a suboptimal decision on stale information.
pub const MIN_GAP: f64 = 2.0;

/// Minimum residency after a migration before a job may move again —
/// openMosix-style stabilization that prevents ping-ponging on stale load
/// views.
pub const RESIDENCY: SimDuration = SimDuration::from_secs(10);

/// When a node considers pushing work away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BalancePolicy {
    /// Migrate only jobs older than the threshold (Harchol-Balter &
    /// Downey-style lifetime filtering — the paper's reference \[10\]).
    LifetimeThreshold(SimDuration),
    /// Migrate whenever the believed imbalance exceeds one job.
    Aggressive,
}

impl BalancePolicy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BalancePolicy::LifetimeThreshold(_) => "lifetime-threshold",
            BalancePolicy::Aggressive => "aggressive",
        }
    }

    /// Picks the job to migrate from `jobs` (a node's run queue) given the
    /// believed load gap, or `None` if the policy declines.
    ///
    /// Both policies move the job with the most remaining work among the
    /// eligible ones (it amortises the freeze best); they differ in
    /// eligibility.
    pub fn pick_migrant<J: Migratable>(
        &self,
        jobs: &[J],
        now: SimTime,
        load_gap: f64,
    ) -> Option<usize> {
        if load_gap < MIN_GAP {
            return None;
        }
        let rested = |j: &J| match j.last_migrated() {
            Some(at) => now.saturating_since(at) >= RESIDENCY,
            None => true,
        };
        let eligible = |j: &J| {
            rested(j)
                && match self {
                    BalancePolicy::LifetimeThreshold(min_age) => j.age(now) >= *min_age,
                    BalancePolicy::Aggressive => true,
                }
        };
        jobs.iter()
            .enumerate()
            .filter(|(_, j)| eligible(j) && !j.is_done())
            .max_by_key(|(_, j)| j.remaining())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn job(id: u64, arrived_s: u64, remaining_s: u64) -> Job {
        let mut j = Job::new(
            JobId(id),
            SimTime::ZERO + SimDuration::from_secs(arrived_s),
            SimDuration::from_secs(remaining_s),
            115,
        );
        j.remaining = SimDuration::from_secs(remaining_s);
        j
    }

    #[test]
    fn aggressive_picks_biggest_remaining() {
        let jobs = vec![job(1, 0, 10), job(2, 0, 50), job(3, 0, 30)];
        let now = SimTime::ZERO + SimDuration::from_secs(5);
        let pick = BalancePolicy::Aggressive.pick_migrant(&jobs, now, 3.0);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn no_migration_without_imbalance() {
        let jobs = vec![job(1, 0, 10)];
        let now = SimTime::ZERO;
        assert_eq!(
            BalancePolicy::Aggressive.pick_migrant(&jobs, now, 1.9),
            None
        );
        assert_eq!(
            BalancePolicy::Aggressive.pick_migrant(&jobs, now, 0.5),
            None
        );
    }

    #[test]
    fn residency_cooldown_blocks_ping_pong() {
        let mut j = job(1, 0, 100);
        j.last_migrated = Some(SimTime::ZERO + SimDuration::from_secs(5));
        let jobs = vec![j];
        // 5 s after the move: still resting.
        let soon = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(
            BalancePolicy::Aggressive.pick_migrant(&jobs, soon, 5.0),
            None
        );
        // 15 s after: eligible again.
        let later = SimTime::ZERO + SimDuration::from_secs(20);
        assert_eq!(
            BalancePolicy::Aggressive.pick_migrant(&jobs, later, 5.0),
            Some(0)
        );
    }

    #[test]
    fn threshold_filters_young_jobs() {
        let jobs = vec![job(1, 9, 100), job(2, 0, 10)];
        let now = SimTime::ZERO + SimDuration::from_secs(10);
        let policy = BalancePolicy::LifetimeThreshold(SimDuration::from_secs(5));
        // Job 1 is 1 s old (too young); job 2 is 10 s old.
        assert_eq!(policy.pick_migrant(&jobs, now, 3.0), Some(1));
        // With nothing old enough, decline.
        let young = vec![job(1, 9, 100)];
        assert_eq!(policy.pick_migrant(&young, now, 3.0), None);
    }

    #[test]
    fn contention_kicks_in_only_past_deputy_capacity() {
        // Headroom: 4 migrants at 10% solo saturation still fit.
        assert_eq!(contention_factor(0.1, 1), 1.0);
        assert_eq!(contention_factor(0.1, 4), 1.0);
        // Overload: 20 migrants want 2x the deputy; paging halves.
        assert!((contention_factor(0.1, 20) - 2.0).abs() < 1e-12);
        // Degenerate inputs stay sane.
        assert_eq!(contention_factor(-1.0, 50), 1.0);
        assert_eq!(contention_factor(2.0, 3), 3.0);

        let ampom = MigrationModel {
            scheme: Scheme::Ampom,
        };
        assert_eq!(ampom.slowdown_shared(1, 0.1), ampom.slowdown());
        assert!((ampom.slowdown_shared(30, 0.1) - ampom.slowdown() * 3.0).abs() < 1e-12);
    }

    #[test]
    fn contention_counter_survives_u32_boundary() {
        // Mirrors the PR 9 `pages.len() as u32` fix: cluster-scale
        // counters are u64 end to end. A migrant count past u32::MAX
        // must keep scaling linearly instead of wrapping to ~0.
        let beyond = u64::from(u32::MAX) + 5;
        let factor = contention_factor(1.0, beyond);
        assert!(
            (factor - beyond as f64).abs() < 8.0,
            "factor {factor} must track {beyond}, not wrap"
        );
        assert!(contention_factor(1.0, beyond) > contention_factor(1.0, u64::from(u32::MAX)));
    }

    #[test]
    fn migration_model_costs_track_scheme() {
        let eager = MigrationModel {
            scheme: Scheme::OpenMosix,
        };
        let ampom = MigrationModel {
            scheme: Scheme::Ampom,
        };
        let j = job(1, 0, 100);
        assert!(eager.freeze(&j) > ampom.freeze(&j) * 10);
        assert_eq!(eager.slowdown(), 0.0);
        assert!(ampom.slowdown() > 0.0 && ampom.slowdown() < 0.1);
    }
}
