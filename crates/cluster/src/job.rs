//! Batch jobs.

use ampom_sim::time::{SimDuration, SimTime};

/// Unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// A CPU-bound batch job with a memory footprint.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// When the job arrived.
    pub arrived: SimTime,
    /// Total CPU demand.
    pub demand: SimDuration,
    /// CPU work still outstanding.
    pub remaining: SimDuration,
    /// Resident-set size in MB (drives migration cost).
    pub memory_mb: u64,
    /// Number of times the job has been migrated. u64: cluster-life runs
    /// accumulate migrations over the whole horizon, and a capped counter
    /// would truncate silently (the PR 9 `pages.len() as u32` lesson).
    pub migrations: u64,
    /// When the job last completed a migration (residency cooldowns key
    /// off this; openMosix likewise requires a minimum residency before a
    /// process is eligible to move again).
    pub last_migrated: Option<SimTime>,
    /// The node the job first migrated away from. In the openMosix home
    /// model a migrated process keeps paging through its home node's
    /// deputy, so every away-job loads that node's shared page service.
    pub home: Option<usize>,
}

impl Job {
    /// Creates a job arriving at `arrived`.
    pub fn new(id: JobId, arrived: SimTime, demand: SimDuration, memory_mb: u64) -> Self {
        Job {
            id,
            arrived,
            demand,
            remaining: demand,
            memory_mb,
            migrations: 0,
            last_migrated: None,
            home: None,
        }
    }

    /// The job's age at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.arrived)
    }

    /// True when all work is done.
    pub fn is_done(&self) -> bool {
        self.remaining.is_zero()
    }
}

/// A completed job's accounting record.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The job.
    pub id: JobId,
    /// Turnaround: arrival to completion.
    pub turnaround: SimDuration,
    /// Pure CPU demand (ideal single-node, idle-machine runtime).
    pub demand: SimDuration,
    /// Times migrated.
    pub migrations: u64,
}

impl Completion {
    /// Slowdown factor: turnaround / demand (≥ 1 in an idle cluster).
    pub fn slowdown(&self) -> f64 {
        let d = self.demand.as_secs_f64();
        if d <= 0.0 {
            1.0
        } else {
            self.turnaround.as_secs_f64() / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_lifecycle() {
        let t0 = SimTime::ZERO;
        let mut j = Job::new(JobId(1), t0, SimDuration::from_secs(10), 115);
        assert!(!j.is_done());
        assert_eq!(
            j.age(t0 + SimDuration::from_secs(3)),
            SimDuration::from_secs(3)
        );
        j.remaining = SimDuration::ZERO;
        assert!(j.is_done());
    }

    #[test]
    fn slowdown_is_turnaround_over_demand() {
        let c = Completion {
            id: JobId(1),
            turnaround: SimDuration::from_secs(30),
            demand: SimDuration::from_secs(10),
            migrations: 1,
        };
        assert!((c.slowdown() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_slowdown_is_one() {
        let c = Completion {
            id: JobId(1),
            turnaround: SimDuration::from_secs(30),
            demand: SimDuration::ZERO,
            migrations: 0,
        };
        assert_eq!(c.slowdown(), 1.0);
    }
}
