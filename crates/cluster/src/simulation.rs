//! The tick-driven cluster simulator.
//!
//! Each tick (1 s of simulated time): jobs arrive, nodes gossip their
//! loads, every overloaded node may push one job toward the least-loaded
//! peer it *believes* exists, and run queues execute under processor
//! sharing. Migration costs come from the calibrated single-migration
//! model: the job is frozen for the scheme's freeze time and, for lazy
//! schemes, its remaining work is taxed by the remote-paging slowdown.
//!
//! Migration *transfers contend for the network*: every node has an
//! uplink and a downlink ([`ampom_net::link::Link`]), and a migration's
//! bytes serialize through the source's uplink and then the target's
//! downlink. Concurrent eager migrations therefore queue behind each
//! other — a cluster-scale cost invisible in single-migration
//! experiments, and another reason sub-second AMPoM freezes compose
//! better than 20-second eager copies.

use ampom_core::migration::Scheme;
use ampom_mem::page::PAGE_SIZE;
use ampom_net::calibration::fast_ethernet;
use ampom_net::link::{Link, LinkConfig};
use ampom_sim::rng::SimRng;
use ampom_sim::stats::OnlineStats;
use ampom_sim::time::{SimDuration, SimTime};

use crate::balancer::{BalancePolicy, MigrationModel};
use crate::gossip::{gossip_round, GossipConfig, LoadView};
use crate::job::{Completion, Job, JobId};

/// Cluster experiment configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Mean job CPU demand.
    pub mean_demand: SimDuration,
    /// Job memory footprint in MB.
    pub job_memory_mb: u64,
    /// Mean inter-arrival time (Poisson arrivals).
    pub mean_interarrival: SimDuration,
    /// Fraction of nodes receiving arrivals (skew: openMosix's home-node
    /// model places jobs where users submit them).
    pub arrival_node_fraction: f64,
    /// Balancing policy.
    pub policy: BalancePolicy,
    /// Migration mechanism.
    pub scheme: Scheme,
    /// Gossip parameters.
    pub gossip: GossipConfig,
    /// Per-node link configuration (migration transfers contend on it).
    pub network: LinkConfig,
    /// Aggregate switch-fabric capacity as a multiple of one link's
    /// capacity (a 300-port Fast Ethernet switch has a finite backplane).
    /// Every migration payload also serializes through the fabric.
    pub fabric_capacity_links: u64,
    /// Fraction of a home deputy one solo migrant keeps busy (the
    /// multi-migrant sweep's saturation at N=1). The remote-paging tax
    /// scales by [`crate::balancer::contention_factor`] once a home
    /// node's away-jobs collectively exceed its deputy capacity.
    pub deputy_solo_saturation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// A 16-node cluster with skewed arrivals — the default experiment.
    pub fn standard(policy: BalancePolicy, scheme: Scheme) -> Self {
        ClusterConfig {
            nodes: 16,
            jobs: 120,
            mean_demand: SimDuration::from_secs(90),
            job_memory_mb: 230,
            mean_interarrival: SimDuration::from_secs(2),
            arrival_node_fraction: 0.25,
            policy,
            scheme,
            gossip: GossipConfig::default(),
            network: fast_ethernet(),
            fabric_capacity_links: 8,
            // The multisweep's measured solo saturation for a paging-heavy
            // kernel on Fast Ethernet is ~0.1; see DESIGN.md §12.
            deputy_solo_saturation: 0.1,
            seed: 0xC1u64,
        }
    }
}

/// Aggregate outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Wall time until the last job finished.
    pub makespan: SimDuration,
    /// Per-job slowdown statistics (turnaround / demand).
    pub slowdown: OnlineStats,
    /// Migrations performed.
    pub migrations: u64,
    /// Total freeze time paid across all migrations.
    pub freeze_paid: SimDuration,
    /// Time-averaged standard deviation of node loads (balance quality).
    pub mean_load_stddev: f64,
    /// All completions.
    pub completions: Vec<Completion>,
}

struct NodeState {
    queue: Vec<Job>,
    /// Jobs frozen mid-migration land here with their thaw time.
    arriving: Vec<(SimTime, Job)>,
    /// Outbound link: migration payloads leave through here.
    uplink: Link,
    /// Inbound link: migration payloads arrive through here.
    downlink: Link,
    /// Jobs currently running elsewhere whose home deputy this node is:
    /// they share its page service, so their count sets the contention
    /// factor of the paging tax. u64 like every cluster counter: a
    /// long-horizon run must never truncate silently.
    away: u64,
}

/// Bytes a migration moves during its freeze, per scheme.
pub fn freeze_bytes(scheme: Scheme, memory_mb: u64) -> u64 {
    let pages = memory_mb * 1024 * 1024 / PAGE_SIZE;
    match scheme {
        Scheme::OpenMosix => memory_mb * 1024 * 1024,
        Scheme::Ampom => 3 * PAGE_SIZE + pages * 6,
        Scheme::NoPrefetch | Scheme::Ffa => 3 * PAGE_SIZE,
    }
}

/// Runs the cluster simulation to completion (all jobs finished).
pub fn simulate(cfg: &ClusterConfig) -> ClusterOutcome {
    assert!(cfg.nodes >= 2, "need at least two nodes");
    assert!(cfg.jobs > 0);
    let tick = SimDuration::from_secs(1);
    let model = MigrationModel { scheme: cfg.scheme };
    let rng = SimRng::seed_from_u64(cfg.seed);
    let mut arrival_rng = rng.fork(1);
    let mut gossip_rng = rng.fork(2);

    // Pre-generate the arrival schedule.
    let arrival_nodes =
        ((cfg.nodes as f64 * cfg.arrival_node_fraction).ceil() as usize).clamp(1, cfg.nodes);
    let mut arrivals: Vec<(SimTime, Job)> = Vec::with_capacity(cfg.jobs);
    let mut t = SimTime::ZERO;
    for i in 0..cfg.jobs {
        let gap = arrival_rng.exponential(cfg.mean_interarrival.as_secs_f64());
        t += SimDuration::from_secs_f64(gap.max(1e-6));
        let demand = arrival_rng
            .exponential(cfg.mean_demand.as_secs_f64())
            .max(1.0);
        arrivals.push((
            t,
            Job::new(
                JobId(i as u64),
                t,
                SimDuration::from_secs_f64(demand),
                cfg.job_memory_mb,
            ),
        ));
    }

    let mut nodes: Vec<NodeState> = (0..cfg.nodes)
        .map(|_| NodeState {
            queue: Vec::new(),
            arriving: Vec::new(),
            uplink: Link::new(cfg.network),
            downlink: Link::new(cfg.network),
            away: 0,
        })
        .collect();
    let mut fabric = Link::new(LinkConfig {
        capacity_bytes_per_sec: cfg.network.capacity_bytes_per_sec
            * cfg.fabric_capacity_links.max(1),
        latency: cfg.network.latency,
    });
    let mut views: Vec<LoadView> = (0..cfg.nodes)
        .map(|i| LoadView::new(cfg.nodes, i))
        .collect();

    let mut now = SimTime::ZERO;
    let mut next_arrival = 0usize;
    let mut completions: Vec<Completion> = Vec::new();
    let mut migrations = 0u64;
    let mut freeze_paid = SimDuration::ZERO;
    let mut load_stddev = OnlineStats::new();

    // Hard bound far beyond any sane makespan, to terminate pathological
    // configurations in tests.
    for _ in 0..200_000 {
        if next_arrival >= arrivals.len()
            && nodes
                .iter()
                .all(|n| n.queue.is_empty() && n.arriving.is_empty())
        {
            break;
        }

        // 1. Arrivals due this tick.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (_, job) = arrivals[next_arrival].clone();
            let target = (arrival_rng.below(arrival_nodes as u64)) as usize;
            nodes[target].queue.push(job);
            next_arrival += 1;
        }

        // 2. Thaw migrants whose freeze completed.
        for node in nodes.iter_mut() {
            let (ready, pending): (Vec<_>, Vec<_>) =
                node.arriving.drain(..).partition(|(at, _)| *at <= now);
            node.arriving = pending;
            node.queue.extend(ready.into_iter().map(|(_, j)| j));
        }

        // 3. Refresh own loads and gossip.
        for (i, node) in nodes.iter().enumerate() {
            views[i].set_own(node.queue.len() as f64, now);
        }
        gossip_round(&mut views, now, &mut gossip_rng);

        // 4. Migration decisions: each node compares itself to the best
        //    peer it believes in.
        for i in 0..cfg.nodes {
            let my_load = nodes[i].queue.len() as f64;
            let Some((target, believed)) = views[i].least_loaded_peer(now, cfg.gossip.max_age)
            else {
                continue;
            };
            let gap = my_load - believed;
            if let Some(idx) = cfg.policy.pick_migrant(&nodes[i].queue, now, gap) {
                let mut job = nodes[i].queue.swap_remove(idx);
                // The freeze transfer contends for both endpoints' links:
                // serialize through the source uplink, then the target
                // downlink. Software costs come from the calibrated model.
                let bytes = freeze_bytes(cfg.scheme, job.memory_mb);
                let sw_cost = model.freeze(&job) // base + per-entry costs
                    - cfg.network.serialization_time(bytes).min(model.freeze(&job));
                let up = nodes[i].uplink.transmit(now, bytes);
                let through = fabric.transmit(up.arrives, bytes);
                let down = nodes[target].downlink.transmit(through.arrives, bytes);
                let thaw = down.arrives + sw_cost;
                let freeze = thaw.since(now);
                freeze_paid += freeze;
                migrations += 1;
                job.migrations += 1;
                job.last_migrated = Some(thaw);
                // Home-deputy accounting: the first move fixes the home;
                // later moves only change the away set when they cross
                // the home boundary.
                let home = *job.home.get_or_insert(i);
                let was_away = i != home;
                let now_away = target != home;
                match (was_away, now_away) {
                    (false, true) => nodes[home].away += 1,
                    (true, false) => nodes[home].away = nodes[home].away.saturating_sub(1),
                    _ => {}
                }
                // The remote-paging tax inflates the remaining work,
                // stretched by how many migrants share the home deputy.
                // A job migrating *back home* pages locally: no tax.
                if now_away {
                    let tax =
                        model.slowdown_shared(nodes[home].away.max(1), cfg.deputy_solo_saturation);
                    job.remaining =
                        SimDuration::from_secs_f64(job.remaining.as_secs_f64() * (1.0 + tax));
                }
                nodes[target].arriving.push((thaw, job));
                // Pessimistically bump the local belief about the target
                // so consecutive decisions do not herd onto one node.
                views[i].merge(
                    target,
                    crate::gossip::LoadEntry {
                        load: believed + 1.0,
                        measured_at: now,
                    },
                );
            }
        }

        // 5. Execute one tick of processor sharing per node.
        let mut freed_homes: Vec<usize> = Vec::new();
        for (at, node) in nodes.iter_mut().enumerate() {
            if node.queue.is_empty() {
                continue;
            }
            let share = tick / node.queue.len() as u64;
            for job in node.queue.iter_mut() {
                let used = share.min(job.remaining);
                job.remaining -= used;
            }
            let done: Vec<Job> = node.queue.iter().filter(|j| j.is_done()).cloned().collect();
            node.queue.retain(|j| !j.is_done());
            for j in done {
                // A finished away-job releases its home deputy share.
                if let Some(home) = j.home {
                    if home != at {
                        freed_homes.push(home);
                    }
                }
                completions.push(Completion {
                    id: j.id,
                    turnaround: (now + tick).saturating_since(j.arrived),
                    demand: j.demand,
                    migrations: j.migrations,
                });
            }
        }
        for home in freed_homes {
            nodes[home].away = nodes[home].away.saturating_sub(1);
        }

        // 6. Balance-quality sample.
        let loads: Vec<f64> = nodes.iter().map(|n| n.queue.len() as f64).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        let var = loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / loads.len() as f64;
        load_stddev.record(var.sqrt());

        now += tick;
    }

    let mut slowdown = OnlineStats::new();
    for c in &completions {
        slowdown.record(c.slowdown());
    }

    ClusterOutcome {
        makespan: now.since(SimTime::ZERO),
        slowdown,
        migrations,
        freeze_paid,
        mean_load_stddev: load_stddev.mean(),
        completions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(policy: BalancePolicy, scheme: Scheme, seed: u64) -> ClusterOutcome {
        let mut cfg = ClusterConfig::standard(policy, scheme);
        cfg.seed = seed;
        simulate(&cfg)
    }

    #[test]
    fn all_jobs_complete() {
        let out = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 1);
        assert_eq!(out.completions.len(), 120);
        assert!(out.makespan > SimDuration::ZERO);
    }

    #[test]
    fn balancing_spreads_load() {
        // Without balancing (threshold so high nothing qualifies), skewed
        // arrivals leave most nodes idle.
        let never = BalancePolicy::LifetimeThreshold(SimDuration::from_secs(1_000_000));
        let unbalanced = outcome(never, Scheme::Ampom, 2);
        let balanced = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 2);
        assert!(balanced.migrations > 0);
        assert_eq!(unbalanced.migrations, 0);
        assert!(
            balanced.slowdown.mean() < unbalanced.slowdown.mean(),
            "balanced {:.2} vs unbalanced {:.2}",
            balanced.slowdown.mean(),
            unbalanced.slowdown.mean()
        );
        assert!(balanced.mean_load_stddev < unbalanced.mean_load_stddev);
    }

    #[test]
    fn ampom_supports_aggressive_balancing_better_than_eager() {
        // The §7 claim at cluster scale: with cheap freezes, aggressive
        // migration yields better slowdowns than with eager migration.
        let ampom = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 3);
        let eager = outcome(BalancePolicy::Aggressive, Scheme::OpenMosix, 3);
        assert!(
            ampom.slowdown.mean() <= eager.slowdown.mean(),
            "AMPoM {:.2} vs eager {:.2}",
            ampom.slowdown.mean(),
            eager.slowdown.mean()
        );
        assert!(ampom.freeze_paid < eager.freeze_paid);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 9);
        let b = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 9);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.completions.len(), b.completions.len());
    }

    #[test]
    fn migrated_jobs_carry_their_count() {
        let out = outcome(BalancePolicy::Aggressive, Scheme::Ampom, 4);
        let migrated: u64 = out.completions.iter().map(|c| c.migrations).sum();
        assert_eq!(migrated, out.migrations);
    }

    #[test]
    fn constrained_fabric_slows_concurrent_eager_migrations() {
        let run = |fabric_links| {
            let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::OpenMosix);
            cfg.jobs = 40;
            cfg.fabric_capacity_links = fabric_links;
            simulate(&cfg)
        };
        let wide = run(64);
        let narrow = run(1);
        assert!(narrow.migrations > 0 && wide.migrations > 0);
        let narrow_per = narrow.freeze_paid.as_secs_f64() / narrow.migrations as f64;
        let wide_per = wide.freeze_paid.as_secs_f64() / wide.migrations as f64;
        assert!(
            narrow_per > wide_per,
            "fabric bottleneck must inflate freezes: {narrow_per:.1} vs {wide_per:.1}"
        );
    }

    #[test]
    fn freeze_bytes_per_scheme() {
        // Eager moves the footprint; AMPoM moves 3 pages + 6 B/page of
        // MPT; NoPrefetch moves 3 pages.
        assert_eq!(freeze_bytes(Scheme::OpenMosix, 230), 230 * 1024 * 1024);
        let pages = 230u64 * 1024 * 1024 / 4096;
        assert_eq!(freeze_bytes(Scheme::Ampom, 230), 3 * 4096 + pages * 6);
        assert_eq!(freeze_bytes(Scheme::NoPrefetch, 230), 3 * 4096);
    }

    #[test]
    fn concurrent_eager_migrations_contend_on_links() {
        // Under the aggressive policy, eager migrations queue behind each
        // other on the shared links, so the *average* freeze paid exceeds
        // the uncontended single-migration freeze.
        let out = outcome(BalancePolicy::Aggressive, Scheme::OpenMosix, 5);
        assert!(out.migrations > 0);
        let avg_freeze = out.freeze_paid.as_secs_f64() / out.migrations as f64;
        let solo = ampom_core::scheduler::freeze_time(Scheme::OpenMosix, 230).as_secs_f64();
        assert!(
            avg_freeze > solo,
            "contended {avg_freeze:.1}s vs uncontended {solo:.1}s"
        );
    }

    #[test]
    fn deputy_contention_taxes_crowded_homes() {
        // Same schedule, same decisions — only the deputy-sharing model
        // differs. A saturating deputy (every solo migrant uses its full
        // service capacity) must make away-jobs strictly slower than an
        // idle one (contention factor pinned at 1).
        let run = |solo_saturation| {
            let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::Ampom);
            cfg.deputy_solo_saturation = solo_saturation;
            simulate(&cfg)
        };
        let idle = run(0.0);
        let crowded = run(1.0);
        assert!(idle.migrations > 0);
        assert!(
            crowded.slowdown.mean() > idle.slowdown.mean(),
            "crowded homes {:.3} must exceed idle deputies {:.3}",
            crowded.slowdown.mean(),
            idle.slowdown.mean()
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_cluster_rejected() {
        let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::Ampom);
        cfg.nodes = 1;
        let _ = simulate(&cfg);
    }
}
