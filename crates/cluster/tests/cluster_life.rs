//! Property and golden tests for the cluster-life engine: windowed
//! gossip freshness, thread-count/re-run determinism, job conservation,
//! deputy-chain avoidance, a pinned 16-node/100-job fingerprint, and the
//! `results/ext_gossip.csv` seed-data reproduction.

use ampom_cluster::gossip::{plan_gossip, GossipConfig, LoadEntry, WindowView};
use ampom_cluster::{
    run_cluster_life, simulate, BalancePolicy, ClusterConfig, CrashEvent, LifeConfig,
};
use ampom_core::migration::Scheme;
use ampom_sim::propcheck::forall;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};

/// The CI fault seed (default 42), so the suite exercises exactly the
/// trajectory the smoke jobs run.
fn env_seed() -> u64 {
    std::env::var("AMPOM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn life(nodes: usize, scheme: Scheme, horizon_s: u64, seed: u64) -> LifeConfig {
    let mut cfg = LifeConfig::standard(nodes, scheme);
    cfg.horizon = SimDuration::from_secs(horizon_s);
    cfg.seed = seed;
    cfg
}

/// After a warm-up of randomized push rounds, every node's window holds
/// at least one entry inside the staleness bound — the windowed view
/// keeps a usable, age-bounded picture of the cluster even when its
/// capacity is far below the node count. (Every received payload leads
/// with the sender's zero-age own entry, so a node only lacks a fresh
/// entry if nobody picked it for `max_age` straight rounds — vanishing
/// at the bound used here.)
#[test]
fn windowed_gossip_bounds_view_age() {
    forall("window-age-bound", 16, |g| {
        let n = g.usize(6..20);
        let capacity = g.usize(2..n);
        let seed = g.u64(0..1000);
        let max_age = SimDuration::from_secs(20);
        let mut views: Vec<WindowView> = (0..n).map(|i| WindowView::new(i, capacity)).collect();
        let mut rng = SimRng::seed_from_u64(seed);
        let rounds = 4 * n as u64 + 20;
        let mut now = SimTime::ZERO;
        for round in 0..rounds {
            now = SimTime::ZERO + SimDuration::from_secs(round);
            for (i, v) in views.iter_mut().enumerate() {
                v.set_own(i as f64, now);
            }
            let plans: Vec<(usize, Vec<(usize, LoadEntry)>)> = (0..n)
                .filter_map(|i| plan_gossip(&views[i], n, &mut rng))
                .collect();
            for (target, payload) in plans {
                for (node, entry) in payload {
                    views[target].merge(node, entry, now, max_age);
                }
            }
        }
        for (i, v) in views.iter().enumerate() {
            assert!(
                v.known_peers() > 0,
                "node {i}/{n} (cap {capacity}) knows nobody after {rounds} rounds"
            );
            assert!(
                v.least_loaded_peer(now, max_age).is_some(),
                "node {i}/{n} (cap {capacity}) holds only stale entries"
            );
            // The window never exceeds its capacity and never holds an
            // entry older than the run itself.
            assert!(v.known_peers() <= capacity);
            assert!(v.max_entry_age(now) <= SimDuration::from_secs(rounds));
        }
    });
}

/// The determinism contract: the same config produces bit-identical
/// outcomes at 1, 2 and 8 threads, and again on a re-run.
#[test]
fn clusterlife_is_bit_identical_across_thread_counts() {
    let base = life(24, Scheme::Ampom, 400, env_seed());
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8, 8] {
        let mut cfg = base.clone();
        cfg.threads = threads;
        let out = run_cluster_life(&cfg);
        prints.push((threads, out.fingerprint(), out.completed, out.migrations));
    }
    for w in prints.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "fingerprint diverged between {} and {} threads: {:?} vs {:?}",
            w[0].0, w[1].0, w[0], w[1]
        );
    }
}

/// Job conservation across random configurations: every arrived job is
/// exactly once completed, failed, or still running; the migration kinds
/// sum to the total; and without crashes nothing can fail.
#[test]
fn clusterlife_conserves_jobs() {
    forall("life-conservation", 8, |g| {
        let nodes = g.usize(4..32);
        let scheme = *g.choose(&[Scheme::Ampom, Scheme::OpenMosix, Scheme::NoPrefetch]);
        let mut cfg = life(nodes, scheme, g.u64(120..360), g.u64(0..1000));
        let crashed = g.bool(0.5);
        if crashed {
            cfg.crashes = vec![CrashEvent {
                node: g.usize(0..nodes),
                at: SimTime::ZERO + SimDuration::from_secs(g.u64(10..60)),
                down_for: SimDuration::from_secs(g.u64(5..120)),
            }];
        }
        let out = run_cluster_life(&cfg);
        assert!(
            out.conserves_jobs(),
            "{} arrived != {} + {} + {}",
            out.arrived,
            out.completed,
            out.failed,
            out.running_at_horizon
        );
        assert_eq!(
            out.migrations,
            out.out_migrations + out.remigrations + out.returns_home
        );
        if !crashed {
            assert_eq!(out.failed, 0, "no crash, yet {} jobs failed", out.failed);
        }
        assert!(out.arrived > 0, "a ≥2-minute horizon must admit arrivals");
    });
}

/// Deputy-chain avoidance: however aggressively jobs remigrate and
/// return home — even across crashes — no job ever holds more than one
/// live deputy stub.
#[test]
fn clusterlife_never_chains_deputies() {
    forall("life-chain-avoidance", 8, |g| {
        let nodes = g.usize(4..24);
        let mut cfg = life(nodes, Scheme::Ampom, g.u64(120..300), g.u64(0..1000));
        // A low return margin maximises home-return churn, the case most
        // likely to leave a stale stub behind.
        cfg.return_margin = 0.5;
        if g.bool(0.5) {
            cfg.crashes = vec![CrashEvent {
                node: g.usize(0..nodes),
                at: SimTime::ZERO + SimDuration::from_secs(g.u64(10..60)),
                down_for: SimDuration::from_secs(g.u64(5..60)),
            }];
        }
        let out = run_cluster_life(&cfg);
        assert!(
            out.max_live_stubs <= 1,
            "{} live deputy stubs observed for one job",
            out.max_live_stubs
        );
        assert!(out.returns_home > 0 || out.out_migrations == 0);
    });
}

/// Golden fingerprint: a 16-node, 100-job run is pinned bit-for-bit.
/// Any engine change that alters the trajectory must update this
/// constant knowingly.
#[test]
fn clusterlife_golden_16_node_100_job_fingerprint() {
    let mut cfg = life(16, Scheme::Ampom, 3600, 0xC1FE);
    cfg.max_jobs = Some(100);
    let out = run_cluster_life(&cfg);
    assert_eq!(out.arrived, 100);
    assert!(out.conserves_jobs());
    assert_eq!(
        out.fingerprint(),
        GOLDEN_FINGERPRINT,
        "pinned 16-node/100-job trajectory moved: completed={} migrations={} \
         returns={} fingerprint={:#018x}",
        out.completed,
        out.migrations,
        out.returns_home,
        out.fingerprint()
    );
}

const GOLDEN_FINGERPRINT: u64 = 0x7d82_dcb6_f5e1_c230;

/// The committed `results/ext_gossip.csv` seed data reproduces from the
/// legacy simulator it was generated with — the new engine composes the
/// same gossip and balancer substrate, so this ties the cluster-life
/// work back to the seed experiment.
#[test]
fn ext_gossip_csv_reproduces() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/ext_gossip.csv");
    let committed = std::fs::read_to_string(path).expect("committed results/ext_gossip.csv");
    let mut fresh = vec!["max entry age (s),mean slowdown,migrations,load stddev".to_string()];
    for age in [1u64, 4, 8, 32, 3600] {
        let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::Ampom);
        cfg.gossip = GossipConfig {
            max_age: SimDuration::from_secs(age),
        };
        let out = simulate(&cfg);
        fresh.push(format!(
            "{age},{:.2},{},{:.2}",
            out.slowdown.mean(),
            out.migrations,
            out.mean_load_stddev
        ));
    }
    let committed: Vec<&str> = committed.lines().map(str::trim_end).collect();
    assert_eq!(
        committed, fresh,
        "results/ext_gossip.csv no longer reproduces; regenerate it with \
         `hpcc-repro ext-gossip --csv results`"
    );
}
