//! Property tests for the cluster substrate.

use ampom_cluster::gossip::{gossip_round, LoadEntry, LoadView};
use ampom_cluster::{simulate, BalancePolicy, ClusterConfig};
use ampom_core::migration::Scheme;
use ampom_sim::propcheck::forall;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};

#[test]
fn gossip_eventually_informs_everyone() {
    forall("gossip-informs", 16, |g| {
        let n = g.usize(4..24);
        let seed = g.u64(0..100);
        let mut views: Vec<LoadView> = (0..n).map(|i| LoadView::new(n, i)).collect();
        let mut rng = SimRng::seed_from_u64(seed);
        for (i, v) in views.iter_mut().enumerate() {
            v.set_own(i as f64, SimTime::ZERO);
        }
        // Push gossip spreads in O(log n) rounds w.h.p.; 4·n rounds is
        // overwhelming.
        for round in 0..(4 * n as u64) {
            gossip_round(
                &mut views,
                SimTime::ZERO + SimDuration::from_secs(round),
                &mut rng,
            );
        }
        for v in &views {
            assert!(
                v.known_peers() >= (n - 1) / 2,
                "a node knows only {} of {} peers",
                v.known_peers(),
                n - 1
            );
        }
    });
}

#[test]
fn gossip_never_invents_or_ages_entries() {
    forall("gossip-no-corruption", 16, |g| {
        let n = g.usize(3..12);
        let rounds = g.u64(1..30);
        let seed = g.u64(0..50);
        let mut views: Vec<LoadView> = (0..n).map(|i| LoadView::new(n, i)).collect();
        let mut rng = SimRng::seed_from_u64(seed);
        for (i, v) in views.iter_mut().enumerate() {
            v.set_own(10.0 + i as f64, SimTime::ZERO);
        }
        for round in 0..rounds {
            gossip_round(
                &mut views,
                SimTime::ZERO + SimDuration::from_secs(round),
                &mut rng,
            );
        }
        // Every known entry matches the owner's true load (loads never
        // changed, so any deviation means corruption in transit).
        for v in &views {
            for node in 0..n {
                if let Some(e) = v.entry(node) {
                    assert_eq!(e.load, 10.0 + node as f64);
                }
            }
        }
    });
}

#[test]
fn merge_never_regresses_freshness() {
    forall("merge-freshness", 64, |g| {
        let loads = g.vec(1..40, |g| (g.unit_f64() * 100.0, g.u64(0..1000)));
        let mut v = LoadView::new(4, 0);
        let mut freshest = None;
        for &(load, at_s) in &loads {
            let at = SimTime::ZERO + SimDuration::from_secs(at_s);
            v.merge(
                1,
                LoadEntry {
                    load,
                    measured_at: at,
                },
            );
            // Oracle mirrors the pinned rule: strictly fresher wins, and
            // at equal timestamps the higher load wins.
            match freshest {
                None => freshest = Some((at, load)),
                Some((best, best_load)) if at > best || (at == best && load > best_load) => {
                    freshest = Some((at, load))
                }
                _ => {}
            }
            let entry = v.entry(1).unwrap();
            let (best_at, best_load) = freshest.unwrap();
            assert_eq!(entry.measured_at, best_at);
            assert_eq!(entry.load, best_load);
        }
    });
}

#[test]
fn cluster_conserves_jobs() {
    forall("cluster-conserves-jobs", 8, |g| {
        let jobs = g.usize(5..40);
        let seed = g.u64(0..20);
        let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, Scheme::Ampom);
        cfg.nodes = 6;
        cfg.jobs = jobs;
        cfg.seed = seed;
        let out = simulate(&cfg);
        assert_eq!(out.completions.len(), jobs);
        // Every job's slowdown is at least ~1 (it cannot finish faster
        // than its demand).
        for c in &out.completions {
            assert!(c.slowdown() > 0.99, "slowdown {}", c.slowdown());
        }
    });
}

#[test]
fn ampom_cluster_never_pays_more_freeze_than_eager() {
    forall("ampom-freeze-cheaper", 6, |g| {
        let seed = g.u64(0..10);
        let mk = |scheme| {
            let mut cfg = ClusterConfig::standard(BalancePolicy::Aggressive, scheme);
            cfg.nodes = 6;
            cfg.jobs = 20;
            cfg.seed = seed;
            simulate(&cfg)
        };
        let ampom = mk(Scheme::Ampom);
        let eager = mk(Scheme::OpenMosix);
        if ampom.migrations > 0 && eager.migrations > 0 {
            let ampom_per = ampom.freeze_paid.as_secs_f64() / ampom.migrations as f64;
            let eager_per = eager.freeze_paid.as_secs_f64() / eager.migrations as f64;
            assert!(ampom_per < eager_per);
        }
    });
}
