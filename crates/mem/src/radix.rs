//! A two-level (x86 Linux 2.4 style) radix page table.
//!
//! The openMosix migration code walks the real kernel page table to build
//! the wire-format MPT (6 bytes per present page, §5.2). This module is
//! that structural substrate: a page *directory* of 1024 entries, each
//! pointing to a 1024-entry page *table*, exactly the 32-bit x86 layout
//! the paper's kernel used. It provides:
//!
//! * present-bit bookkeeping with sparse second-level allocation,
//! * walk-cost accounting (how many directory + table loads a scan
//!   performs — the physical basis of the calibrated per-MPT-entry
//!   freeze cost),
//! * [`RadixPageTable::pack_mpt`] — producing the 6-byte-per-page wire
//!   image whose size must agree with the flat
//!   [`crate::table::PageTablePair::mpt_bytes`] accounting.

use crate::page::PageId;

/// Entries per level (x86: 1024 PDEs × 1024 PTEs covering 4 GB).
pub const FANOUT: usize = 1024;

/// One second-level table: a present bitmap plus the entry payloads.
struct Leaf {
    present: [bool; FANOUT],
    present_count: u32,
}

impl Leaf {
    fn new() -> Box<Leaf> {
        Box::new(Leaf {
            present: [false; FANOUT],
            present_count: 0,
        })
    }
}

/// A two-level page table over a 22-bit page-number space (4 GB of 4 KB
/// pages), with sparse leaf allocation.
pub struct RadixPageTable {
    directory: Vec<Option<Box<Leaf>>>,
    present_total: u64,
}

impl Default for RadixPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RadixPageTable {
    /// An empty table (no leaves allocated).
    pub fn new() -> Self {
        RadixPageTable {
            directory: (0..FANOUT).map(|_| None).collect(),
            present_total: 0,
        }
    }

    fn split(page: PageId) -> (usize, usize) {
        let idx = page.index() as usize;
        assert!(idx < FANOUT * FANOUT, "page {page} beyond 4 GB");
        (idx / FANOUT, idx % FANOUT)
    }

    /// Maps a page (sets its present bit), allocating the leaf on demand.
    /// Returns `true` if the page was newly mapped.
    pub fn map(&mut self, page: PageId) -> bool {
        let (d, t) = Self::split(page);
        let leaf = self.directory[d].get_or_insert_with(Leaf::new);
        if leaf.present[t] {
            return false;
        }
        leaf.present[t] = true;
        leaf.present_count += 1;
        self.present_total += 1;
        true
    }

    /// Unmaps a page. Returns `true` if it was mapped. Empty leaves are
    /// freed (as the kernel frees empty page tables).
    pub fn unmap(&mut self, page: PageId) -> bool {
        let (d, t) = Self::split(page);
        let Some(leaf) = self.directory[d].as_mut() else {
            return false;
        };
        if !leaf.present[t] {
            return false;
        }
        leaf.present[t] = false;
        leaf.present_count -= 1;
        self.present_total -= 1;
        if leaf.present_count == 0 {
            self.directory[d] = None;
        }
        true
    }

    /// True if the page is mapped.
    pub fn is_mapped(&self, page: PageId) -> bool {
        let (d, t) = Self::split(page);
        self.directory[d]
            .as_ref()
            .is_some_and(|leaf| leaf.present[t])
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.present_total
    }

    /// Number of allocated second-level tables.
    pub fn allocated_leaves(&self) -> u64 {
        self.directory.iter().filter(|l| l.is_some()).count() as u64
    }

    /// Kernel memory the table structures occupy (4 KB per allocated leaf
    /// plus the 4 KB directory) — the overhead a real migration must also
    /// recreate on the destination.
    pub fn structure_bytes(&self) -> u64 {
        (1 + self.allocated_leaves()) * 4096
    }

    /// Scans the whole table and packs the wire-format MPT: 6 bytes per
    /// present page (§5.2). Returns `(mpt_bytes, walk_loads)` where
    /// `walk_loads` counts directory-entry and table-entry loads — the
    /// work the freeze-time walk performs.
    pub fn pack_mpt(&self) -> (u64, u64) {
        let mut loads = 0u64;
        let mut entries = 0u64;
        for leaf in &self.directory {
            loads += 1; // the PDE
            if let Some(leaf) = leaf {
                loads += FANOUT as u64; // every PTE is inspected
                entries += leaf.present_count as u64;
            }
        }
        (entries * 6, loads)
    }

    /// Iterates over all mapped pages in address order.
    pub fn mapped(&self) -> impl Iterator<Item = PageId> + '_ {
        self.directory
            .iter()
            .enumerate()
            .filter_map(|(d, leaf)| leaf.as_ref().map(|l| (d, l)))
            .flat_map(|(d, leaf)| {
                leaf.present
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p)
                    .map(move |(t, _)| PageId((d * FANOUT + t) as u64))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PageTablePair;

    #[test]
    fn map_unmap_round_trip() {
        let mut t = RadixPageTable::new();
        assert!(t.map(PageId(5)));
        assert!(!t.map(PageId(5)), "double map is a no-op");
        assert!(t.is_mapped(PageId(5)));
        assert_eq!(t.mapped_pages(), 1);
        assert!(t.unmap(PageId(5)));
        assert!(!t.unmap(PageId(5)));
        assert!(!t.is_mapped(PageId(5)));
        assert_eq!(t.mapped_pages(), 0);
    }

    #[test]
    fn leaves_allocate_sparsely_and_free_when_empty() {
        let mut t = RadixPageTable::new();
        assert_eq!(t.allocated_leaves(), 0);
        t.map(PageId(0)); // leaf 0
        t.map(PageId(FANOUT as u64 * 3)); // leaf 3
        assert_eq!(t.allocated_leaves(), 2);
        assert_eq!(t.structure_bytes(), 3 * 4096);
        t.unmap(PageId(0));
        assert_eq!(t.allocated_leaves(), 1);
    }

    #[test]
    fn packed_mpt_agrees_with_flat_accounting() {
        // The structural table and the flat MPT/HPT pair must report the
        // same wire size for the same mapped set.
        let pages: Vec<PageId> = (0..5000u64).map(|i| PageId(i * 7)).collect();
        let mut radix = RadixPageTable::new();
        for &p in &pages {
            radix.map(p);
        }
        let pair = PageTablePair::at_migration(pages.iter().copied());
        let (mpt_bytes, walk_loads) = radix.pack_mpt();
        assert_eq!(mpt_bytes, pair.mpt_bytes());
        // The walk inspects every PDE plus each allocated leaf in full.
        assert_eq!(
            walk_loads,
            FANOUT as u64 + radix.allocated_leaves() * FANOUT as u64
        );
    }

    #[test]
    fn mapped_iteration_is_sorted_and_complete() {
        let mut t = RadixPageTable::new();
        let pages = [7u64, 1, 1029, 4096 * 100, 2];
        for &p in &pages {
            t.map(PageId(p));
        }
        let got: Vec<u64> = t.mapped().map(|p| p.index()).collect();
        let mut want: Vec<u64> = pages.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn dense_575mb_mapping_matches_paper_mpt_size() {
        // 147 200 pages → 883 200 B of MPT, the Figure 5 slope.
        let mut t = RadixPageTable::new();
        for i in 0..147_200u64 {
            t.map(PageId(i));
        }
        let (mpt, _) = t.pack_mpt();
        assert_eq!(mpt, 147_200 * 6);
        // Dense mapping needs ⌈147200/1024⌉ = 144 leaves.
        assert_eq!(t.allocated_leaves(), 144);
    }

    #[test]
    #[should_panic(expected = "beyond 4 GB")]
    fn out_of_range_page_rejected() {
        let mut t = RadixPageTable::new();
        t.map(PageId((FANOUT * FANOUT) as u64));
    }
}
