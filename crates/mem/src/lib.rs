//! # ampom-mem — the virtual-memory substrate
//!
//! A user-level model of the pieces of the Linux 2.4 virtual-memory system
//! that openMosix and AMPoM manipulate:
//!
//! * [`page::PageId`] — page-granular addresses (the unit AMPoM reasons in),
//! * [`region`] — the code / data / heap / stack layout of an address space
//!   (the paper migrates "the currently-accessed code, stack, and data
//!   pages" at freeze time),
//! * [`space::AddressSpace`] — per-page residency and dirty state on the
//!   node currently executing the process,
//! * [`table`] — the **master page table (MPT)** and **home page table
//!   (HPT)** with the ownership-transfer rules of paper §2.2,
//! * [`working_set`] — distinct-page tracking used by the Figure 10
//!   small-working-set experiment and its analytics,
//! * [`eviction`] — CLOCK page replacement for destination nodes whose
//!   RAM cannot hold the whole migrant (the testbed's 512 MB nodes vs
//!   575 MB processes),
//! * [`radix`] — the two-level x86 page-table structure the freeze-time
//!   MPT walk operates on,
//! * [`writeback`] — the migrant-side write-set (versioned delta batches)
//!   and deputy-side sink with exactly-once apply accounting,
//! * [`replica`] — a Mitosis-style node-local MPT replica with lazy
//!   invalidation-driven coherence.
//!
//! Nothing here knows about networks or prefetching; `ampom-core` composes
//! these pieces with `ampom-net` into the full migration machinery.

pub mod eviction;
pub mod page;
pub mod radix;
pub mod region;
pub mod replica;
pub mod space;
pub mod table;
pub mod working_set;
pub mod writeback;

pub use eviction::ClockEvictor;
pub use page::{PageId, PAGE_SIZE};
pub use region::{MemoryLayout, Region, RegionKind};
pub use replica::MptReplica;
pub use space::{AddressSpace, PageState};
pub use table::{PageLocation, PageTablePair};
pub use working_set::WorkingSetTracker;
pub use writeback::{WriteSet, WritebackSink};
