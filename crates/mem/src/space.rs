//! Per-page residency state on the executing node.
//!
//! After a lightweight migration the destination node holds only a few
//! pages; the rest are either still stored at the home node (`Remote`) or
//! were never touched at all (`Untouched` — a fresh anonymous page that can
//! be created locally without any network traffic, which is why AMPoM wins
//! the Figure 10 small-working-set experiment: "they would allocate new
//! pages after migration rather than using the existing ones").

use crate::page::PageId;
use crate::region::MemoryLayout;

/// Residency state of one page, from the executing node's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageState {
    /// Never allocated or touched; first touch zero-fills locally.
    #[default]
    Untouched,
    /// In local RAM. `dirty` tracks whether it has been written since it
    /// was last cleaned (eager openMosix migration moves exactly the dirty
    /// pages).
    Resident {
        /// Written since last cleaned.
        dirty: bool,
    },
    /// Mapped, but its contents live on the home node; access faults and
    /// requires a remote fetch.
    Remote,
}

/// What happened when the process touched a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// Page was resident; no fault.
    Hit,
    /// Page was untouched; a zero page was created locally (minor fault,
    /// no network traffic).
    LocalAllocate,
    /// Page contents are on the home node; a remote fault is required.
    RemoteFault,
}

/// The executing node's view of one process's address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    layout: MemoryLayout,
    states: Vec<PageState>,
    resident: u64,
    dirty: u64,
    remote: u64,
}

impl AddressSpace {
    /// A fresh address space with every page untouched.
    pub fn new(layout: MemoryLayout) -> Self {
        let n = layout.total_pages() as usize;
        AddressSpace {
            layout,
            states: vec![PageState::Untouched; n],
            resident: 0,
            dirty: 0,
            remote: 0,
        }
    }

    /// The address-space layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Total pages in the layout.
    pub fn total_pages(&self) -> u64 {
        self.states.len() as u64
    }

    /// Current state of `page`.
    ///
    /// # Panics
    /// Panics if `page` is outside the layout.
    pub fn state(&self, page: PageId) -> PageState {
        self.states[self.index(page)]
    }

    /// True if an access to `page` would not fault remotely.
    pub fn is_resident(&self, page: PageId) -> bool {
        matches!(self.state(page), PageState::Resident { .. })
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of resident *dirty* pages (what eager openMosix migrates).
    pub fn dirty_pages(&self) -> u64 {
        self.dirty
    }

    /// Number of pages whose contents are on the home node.
    pub fn remote_pages(&self) -> u64 {
        self.remote
    }

    /// Touches `page` (read or write), updating residency state and dirty
    /// bits, and reports what kind of fault (if any) occurred. On
    /// `RemoteFault` the state is *not* changed — the caller must fetch the
    /// page and then call [`AddressSpace::install`].
    pub fn touch(&mut self, page: PageId, write: bool) -> TouchOutcome {
        let i = self.index(page);
        match self.states[i] {
            PageState::Resident { dirty } => {
                if write && !dirty {
                    self.states[i] = PageState::Resident { dirty: true };
                    self.dirty += 1;
                }
                TouchOutcome::Hit
            }
            PageState::Untouched => {
                // Anonymous zero-fill: created locally, dirty immediately
                // (the kernel must consider it dirty; there is no backing
                // store).
                self.states[i] = PageState::Resident { dirty: true };
                self.resident += 1;
                self.dirty += 1;
                TouchOutcome::LocalAllocate
            }
            PageState::Remote => TouchOutcome::RemoteFault,
        }
    }

    /// Installs a page that just arrived from the home node. Arriving pages
    /// carry their home-node contents and are clean until written.
    ///
    /// # Panics
    /// Panics if the page was not in the `Remote` state — installing over a
    /// resident page would double-count residency, and installing an
    /// untouched page means the remote protocol fetched something it never
    /// needed.
    pub fn install(&mut self, page: PageId) {
        let i = self.index(page);
        assert_eq!(
            self.states[i],
            PageState::Remote,
            "install of non-remote page {page}"
        );
        self.states[i] = PageState::Resident { dirty: false };
        self.resident += 1;
        self.remote -= 1;
    }

    /// Marks `page` as stored remotely (used when constructing the
    /// post-migration view: pages left behind become `Remote`).
    pub fn mark_remote(&mut self, page: PageId) {
        let i = self.index(page);
        match self.states[i] {
            PageState::Remote => {}
            PageState::Resident { dirty } => {
                self.resident -= 1;
                if dirty {
                    self.dirty -= 1;
                }
                self.states[i] = PageState::Remote;
                self.remote += 1;
            }
            PageState::Untouched => {
                self.states[i] = PageState::Remote;
                self.remote += 1;
            }
        }
    }

    /// Marks a resident page clean (after it has been copied out, e.g. by
    /// the eager migration or the FFA file-server flush).
    pub fn clean(&mut self, page: PageId) {
        let i = self.index(page);
        if let PageState::Resident { dirty: true } = self.states[i] {
            self.states[i] = PageState::Resident { dirty: false };
            self.dirty -= 1;
        }
    }

    /// Iterator over all pages currently in the given state category.
    pub fn pages_where<'a>(
        &'a self,
        pred: impl Fn(PageState) -> bool + 'a,
    ) -> impl Iterator<Item = PageId> + 'a {
        self.states
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| pred(s))
            .map(|(i, _)| PageId(i as u64))
    }

    /// Recomputes the cached counters from scratch and asserts they match —
    /// a consistency check used by property tests.
    pub fn check_counters(&self) {
        let mut resident = 0;
        let mut dirty = 0;
        let mut remote = 0;
        for s in &self.states {
            match s {
                PageState::Resident { dirty: d } => {
                    resident += 1;
                    if *d {
                        dirty += 1;
                    }
                }
                PageState::Remote => remote += 1,
                PageState::Untouched => {}
            }
        }
        assert_eq!(resident, self.resident, "resident counter drift");
        assert_eq!(dirty, self.dirty, "dirty counter drift");
        assert_eq!(remote, self.remote, "remote counter drift");
    }

    fn index(&self, page: PageId) -> usize {
        let i = page.index() as usize;
        assert!(
            i < self.states.len(),
            "page {page} outside address space of {} pages",
            self.states.len()
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> AddressSpace {
        AddressSpace::new(MemoryLayout::new(4096, 4 * 4096, 4096))
    }

    #[test]
    fn fresh_space_is_untouched() {
        let s = small_space();
        assert_eq!(s.total_pages(), 6);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.dirty_pages(), 0);
        assert_eq!(s.remote_pages(), 0);
        assert_eq!(s.state(PageId(0)), PageState::Untouched);
    }

    #[test]
    fn first_touch_allocates_locally_and_dirties() {
        let mut s = small_space();
        assert_eq!(s.touch(PageId(1), false), TouchOutcome::LocalAllocate);
        assert_eq!(s.state(PageId(1)), PageState::Resident { dirty: true });
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.dirty_pages(), 1);
        assert_eq!(s.touch(PageId(1), true), TouchOutcome::Hit);
        s.check_counters();
    }

    #[test]
    fn remote_pages_fault_until_installed() {
        let mut s = small_space();
        s.mark_remote(PageId(2));
        assert_eq!(s.touch(PageId(2), false), TouchOutcome::RemoteFault);
        assert_eq!(s.remote_pages(), 1);
        s.install(PageId(2));
        assert_eq!(s.state(PageId(2)), PageState::Resident { dirty: false });
        assert_eq!(s.touch(PageId(2), false), TouchOutcome::Hit);
        assert_eq!(s.dirty_pages(), 0);
        // A write dirties the clean arrival.
        s.touch(PageId(2), true);
        assert_eq!(s.dirty_pages(), 1);
        s.check_counters();
    }

    #[test]
    fn mark_remote_transitions_from_any_state() {
        let mut s = small_space();
        s.touch(PageId(0), true); // resident dirty
        s.mark_remote(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::Remote);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.dirty_pages(), 0);
        s.mark_remote(PageId(1)); // from untouched
        assert_eq!(s.remote_pages(), 2);
        s.mark_remote(PageId(1)); // idempotent
        assert_eq!(s.remote_pages(), 2);
        s.check_counters();
    }

    #[test]
    fn clean_resets_dirty_bit_only() {
        let mut s = small_space();
        s.touch(PageId(3), true);
        s.clean(PageId(3));
        assert_eq!(s.state(PageId(3)), PageState::Resident { dirty: false });
        assert_eq!(s.dirty_pages(), 0);
        s.clean(PageId(3)); // idempotent
        s.check_counters();
    }

    #[test]
    #[should_panic(expected = "install of non-remote")]
    fn installing_resident_page_panics() {
        let mut s = small_space();
        s.touch(PageId(0), false);
        s.install(PageId(0));
    }

    #[test]
    #[should_panic(expected = "outside address space")]
    fn out_of_range_page_panics() {
        let s = small_space();
        let _ = s.state(PageId(100));
    }

    #[test]
    fn pages_where_filters() {
        let mut s = small_space();
        s.touch(PageId(0), true);
        s.mark_remote(PageId(4));
        let remote: Vec<_> = s.pages_where(|st| st == PageState::Remote).collect();
        assert_eq!(remote, vec![PageId(4)]);
        let dirty: Vec<_> = s
            .pages_where(|st| matches!(st, PageState::Resident { dirty: true }))
            .collect();
        assert_eq!(dirty, vec![PageId(0)]);
    }
}
