//! A Mitosis-style node-local replica of the master page table.
//!
//! Mitosis (arXiv:1910.05398) replicates page tables across sockets so
//! hot walks never cross the interconnect; the same argument applies to a
//! migrant's MPT lookups, which today always consult the authoritative
//! [`PageTablePair`]. [`MptReplica`] caches `page → location` entries on
//! the node doing the lookups and keeps them coherent **lazily**: a
//! transfer, writeback or return event *invalidates* the affected entry
//! (cheap, local), and the next lookup of an invalidated entry refreshes
//! it from the authoritative table while every other hot lookup is served
//! locally.
//!
//! The replica is an accelerator, never an authority: its answers must be
//! bit-identical to the table's, a property
//! [`MptReplica::check_equivalence`] asserts and the propcheck suite
//! exercises under random transfer/writeback/return interleavings.

use std::collections::BTreeMap;

use crate::page::PageId;
use crate::table::{PageLocation, PageTablePair};

/// Plain counters an [`MptReplica`] accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaCounters {
    /// Lookups answered from a valid local entry (no authoritative trip).
    pub local_hits: u64,
    /// Lookups that refreshed an invalidated entry from the table.
    pub stale_refreshes: u64,
    /// Lookups of pages the replica had never seen (also refreshed).
    pub cold_misses: u64,
    /// Invalidation events applied.
    pub invalidations: u64,
}

/// One replica entry: `None` means invalidated (refresh on next lookup).
type Entry = Option<Option<PageLocation>>;

/// The node-local MPT replica.
#[derive(Debug, Clone, Default)]
pub struct MptReplica {
    /// `page → Some(location)` for valid entries, `page → None` for
    /// invalidated ones; absent pages are cold.
    entries: BTreeMap<PageId, Entry>,
    /// Accumulated counters.
    pub counters: ReplicaCounters,
}

impl MptReplica {
    /// An empty (all-cold) replica.
    pub fn new() -> Self {
        MptReplica::default()
    }

    /// Seeds the replica from the authoritative table — the bulk copy a
    /// migration's MPT shipment already paid for.
    pub fn from_table(table: &PageTablePair) -> Self {
        let mut r = MptReplica::new();
        for page in table.hpt_pages() {
            r.entries.insert(page, Some(Some(PageLocation::Origin)));
        }
        // hpt_pages only lists origin pages; walk the rest via lookup.
        r
    }

    /// Looks `page` up, serving from the local entry when valid and
    /// lazily refreshing from `table` when invalidated or cold. The
    /// answer always equals `table.lookup(page)`.
    pub fn lookup(&mut self, page: PageId, table: &PageTablePair) -> Option<PageLocation> {
        match self.entries.get(&page) {
            Some(Some(loc)) => {
                self.counters.local_hits += 1;
                *loc
            }
            Some(None) => {
                self.counters.stale_refreshes += 1;
                let loc = table.lookup(page);
                self.entries.insert(page, Some(loc));
                loc
            }
            None => {
                self.counters.cold_misses += 1;
                let loc = table.lookup(page);
                self.entries.insert(page, Some(loc));
                loc
            }
        }
    }

    /// Invalidates `page`'s entry — the update-log hook a transfer,
    /// writeback or home-return event calls. Idempotent; invalidating a
    /// cold page records the event so a later lookup refreshes it.
    pub fn invalidate(&mut self, page: PageId) {
        self.counters.invalidations += 1;
        self.entries.insert(page, None);
    }

    /// Applies a batch of update-log events (each an invalidation).
    pub fn apply_updates(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            self.invalidate(p);
        }
    }

    /// Number of entries currently valid (servable without a refresh).
    pub fn valid_entries(&self) -> u64 {
        self.entries.values().filter(|e| e.is_some()).count() as u64
    }

    /// Asserts every *valid* entry agrees with the authoritative table.
    /// Invalidated and cold entries are trivially coherent (they refresh
    /// before answering).
    ///
    /// # Panics
    /// Panics on the first divergent entry.
    pub fn check_equivalence(&self, table: &PageTablePair) {
        for (&page, entry) in &self.entries {
            if let Some(cached) = entry {
                let truth = table.lookup(page);
                assert_eq!(
                    *cached, truth,
                    "replica diverged on page {page}: cached {cached:?}, table {truth:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pages: u64) -> PageTablePair {
        PageTablePair::at_migration((0..pages).map(PageId))
    }

    #[test]
    fn hot_lookups_stay_local_until_invalidated() {
        let mut t = table(4);
        let mut r = MptReplica::new();
        assert_eq!(r.lookup(PageId(1), &t), Some(PageLocation::Origin));
        assert_eq!(r.counters.cold_misses, 1);
        assert_eq!(r.lookup(PageId(1), &t), Some(PageLocation::Origin));
        assert_eq!(r.counters.local_hits, 1, "second lookup served locally");

        t.transfer_to_destination(PageId(1));
        r.invalidate(PageId(1));
        assert_eq!(r.lookup(PageId(1), &t), Some(PageLocation::Destination));
        assert_eq!(r.counters.stale_refreshes, 1);
        r.check_equivalence(&t);
    }

    #[test]
    fn seeding_from_the_table_serves_origin_pages_hot() {
        let t = table(8);
        let mut r = MptReplica::from_table(&t);
        assert_eq!(r.valid_entries(), 8);
        for p in 0..8 {
            assert_eq!(r.lookup(PageId(p), &t), Some(PageLocation::Origin));
        }
        assert_eq!(r.counters.local_hits, 8);
        assert_eq!(r.counters.cold_misses, 0);
        r.check_equivalence(&t);
    }

    #[test]
    #[should_panic(expected = "replica diverged")]
    fn a_missed_invalidation_is_caught_by_the_equivalence_check() {
        let mut t = table(2);
        let mut r = MptReplica::from_table(&t);
        let _ = r.lookup(PageId(0), &t);
        t.transfer_to_destination(PageId(0)); // no invalidate: a bug
        r.check_equivalence(&t);
    }

    #[test]
    fn unmapped_pages_replicate_as_unmapped() {
        let mut t = table(2);
        let mut r = MptReplica::new();
        assert_eq!(r.lookup(PageId(9), &t), None);
        assert_eq!(r.lookup(PageId(9), &t), None);
        assert_eq!(r.counters.local_hits, 1);
        t.create_at_destination(PageId(9));
        r.invalidate(PageId(9));
        assert_eq!(r.lookup(PageId(9), &t), Some(PageLocation::Destination));
        r.check_equivalence(&t);
    }
}
