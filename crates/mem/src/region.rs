//! Address-space layout.
//!
//! openMosix's lightweight migration (and the original Freeze Free
//! Algorithm) transfers "the current data (heap), code, and stack pages"
//! at freeze time — one page from each region. [`MemoryLayout`] carves a
//! process's pages into those regions so the migration code can find them.
//!
//! The layout mirrors a classic 32-bit Linux process: code at the bottom,
//! then the data/heap segment (which dominates — HPCC kernels put their
//! matrices there), and a small stack at the top.

use crate::page::{pages_for_bytes, PageId, PageRange};

/// Which segment of the address space a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Executable text.
    Code,
    /// Initialised data + heap (the paper treats "data (heap)" as one
    /// region; HPCC's matrices live here).
    Data,
    /// The stack.
    Stack,
}

impl RegionKind {
    /// All region kinds, in address order.
    pub const ALL: [RegionKind; 3] = [RegionKind::Code, RegionKind::Data, RegionKind::Stack];
}

/// One contiguous segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The segment's role.
    pub kind: RegionKind,
    /// Pages it covers.
    pub pages: PageRange,
}

/// The full layout of one process's address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    code: Region,
    data: Region,
    stack: Region,
}

impl MemoryLayout {
    /// Default code size: HPCC binaries are well under 1 MB of text.
    pub const DEFAULT_CODE_BYTES: u64 = 512 * 1024;
    /// Default stack size: 128 KB covers the benchmark kernels.
    pub const DEFAULT_STACK_BYTES: u64 = 128 * 1024;

    /// Builds a layout whose data segment holds `data_bytes`, with default
    /// code and stack sizes.
    pub fn with_data_bytes(data_bytes: u64) -> Self {
        MemoryLayout::new(
            Self::DEFAULT_CODE_BYTES,
            data_bytes,
            Self::DEFAULT_STACK_BYTES,
        )
    }

    /// Builds a layout with explicit segment sizes (each rounded up to
    /// whole pages; every segment gets at least one page).
    pub fn new(code_bytes: u64, data_bytes: u64, stack_bytes: u64) -> Self {
        let code_pages = pages_for_bytes(code_bytes).max(1);
        let data_pages = pages_for_bytes(data_bytes).max(1);
        let stack_pages = pages_for_bytes(stack_bytes).max(1);
        let code = Region {
            kind: RegionKind::Code,
            pages: PageRange::new(PageId(0), PageId(code_pages)),
        };
        let data = Region {
            kind: RegionKind::Data,
            pages: PageRange::new(PageId(code_pages), PageId(code_pages + data_pages)),
        };
        let stack = Region {
            kind: RegionKind::Stack,
            pages: PageRange::new(
                PageId(code_pages + data_pages),
                PageId(code_pages + data_pages + stack_pages),
            ),
        };
        MemoryLayout { code, data, stack }
    }

    /// The region of the given kind.
    pub fn region(&self, kind: RegionKind) -> &Region {
        match kind {
            RegionKind::Code => &self.code,
            RegionKind::Data => &self.data,
            RegionKind::Stack => &self.stack,
        }
    }

    /// The region containing `page`, or `None` if the page is outside the
    /// layout.
    pub fn region_of(&self, page: PageId) -> Option<RegionKind> {
        RegionKind::ALL
            .into_iter()
            .find(|&k| self.region(k).pages.contains(page))
    }

    /// Total pages across all regions.
    pub fn total_pages(&self) -> u64 {
        RegionKind::ALL
            .into_iter()
            .map(|k| self.region(k).pages.len())
            .sum()
    }

    /// Total bytes across all regions.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * crate::page::PAGE_SIZE
    }

    /// Every page in the address space, in address order.
    pub fn all_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        RegionKind::ALL
            .into_iter()
            .flat_map(|k| self.region(k).pages.iter())
    }

    /// First data page — where the HPCC generators start laying out arrays.
    pub fn data_start(&self) -> PageId {
        self.data.pages.start
    }

    /// The data region's page range.
    pub fn data_pages(&self) -> &PageRange {
        &self.data.pages
    }

    /// The "currently accessed" code, data, and stack pages that both FFA
    /// and AMPoM ship at freeze time. We take the first code page (the hot
    /// entry point), the given current data page, and the top-of-stack
    /// page.
    pub fn freeze_pages(&self, current_data: PageId) -> [PageId; 3] {
        let data = if self.data.pages.contains(current_data) {
            current_data
        } else {
            self.data.pages.start
        };
        [
            self.code.pages.start,
            data,
            PageId(self.stack.pages.end.index() - 1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    #[test]
    fn regions_are_contiguous_and_ordered() {
        let l = MemoryLayout::new(8192, 40960, 4096);
        assert_eq!(l.region(RegionKind::Code).pages.len(), 2);
        assert_eq!(l.region(RegionKind::Data).pages.len(), 10);
        assert_eq!(l.region(RegionKind::Stack).pages.len(), 1);
        assert_eq!(
            l.region(RegionKind::Code).pages.end,
            l.region(RegionKind::Data).pages.start
        );
        assert_eq!(
            l.region(RegionKind::Data).pages.end,
            l.region(RegionKind::Stack).pages.start
        );
        assert_eq!(l.total_pages(), 13);
        assert_eq!(l.total_bytes(), 13 * PAGE_SIZE);
    }

    #[test]
    fn region_of_classifies_pages() {
        let l = MemoryLayout::new(4096, 8192, 4096);
        assert_eq!(l.region_of(PageId(0)), Some(RegionKind::Code));
        assert_eq!(l.region_of(PageId(1)), Some(RegionKind::Data));
        assert_eq!(l.region_of(PageId(2)), Some(RegionKind::Data));
        assert_eq!(l.region_of(PageId(3)), Some(RegionKind::Stack));
        assert_eq!(l.region_of(PageId(4)), None);
    }

    #[test]
    fn sizes_round_up_and_floor_at_one_page() {
        let l = MemoryLayout::new(1, 0, PAGE_SIZE + 1);
        assert_eq!(l.region(RegionKind::Code).pages.len(), 1);
        assert_eq!(l.region(RegionKind::Data).pages.len(), 1);
        assert_eq!(l.region(RegionKind::Stack).pages.len(), 2);
    }

    #[test]
    fn freeze_pages_picks_one_per_region() {
        let l = MemoryLayout::new(4096, 16384, 4096);
        let current = PageId(2);
        let [c, d, s] = l.freeze_pages(current);
        assert_eq!(l.region_of(c), Some(RegionKind::Code));
        assert_eq!(d, current);
        assert_eq!(l.region_of(s), Some(RegionKind::Stack));
    }

    #[test]
    fn freeze_pages_falls_back_when_current_outside_data() {
        let l = MemoryLayout::new(4096, 16384, 4096);
        let [_, d, _] = l.freeze_pages(PageId(999));
        assert_eq!(d, l.data_start());
    }

    #[test]
    fn all_pages_covers_everything_once() {
        let l = MemoryLayout::new(4096, 12288, 4096);
        let pages: Vec<_> = l.all_pages().collect();
        assert_eq!(pages.len() as u64, l.total_pages());
        let mut sorted = pages.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pages.len());
    }

    #[test]
    fn with_data_bytes_defaults() {
        let l = MemoryLayout::with_data_bytes(115 * 1024 * 1024);
        assert_eq!(
            l.region(RegionKind::Data).pages.len(),
            pages_for_bytes(115 * 1024 * 1024)
        );
        assert_eq!(
            l.region(RegionKind::Code).pages.len(),
            pages_for_bytes(MemoryLayout::DEFAULT_CODE_BYTES)
        );
    }
}
