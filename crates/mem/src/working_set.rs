//! Working-set tracking.
//!
//! Denning's working set `W(t, τ)` — the distinct pages referenced in the
//! last `τ` time units — is the quantity behind the paper's Figure 10
//! argument: migrants whose working set is smaller than their address
//! space benefit most from lazy transfer. [`WorkingSetTracker`] measures
//! both the cumulative footprint (distinct pages ever touched) and the
//! windowed working set of a reference stream.

use std::collections::{HashMap, HashSet, VecDeque};

use ampom_sim::time::{SimDuration, SimTime};

use crate::page::PageId;

/// Tracks footprint and windowed working set over a page-reference stream.
#[derive(Debug)]
pub struct WorkingSetTracker {
    window: SimDuration,
    /// Recent references, oldest first.
    recent: VecDeque<(SimTime, PageId)>,
    /// Reference counts within the window.
    in_window: HashMap<PageId, u32>,
    /// Every page ever referenced.
    footprint: HashSet<PageId>,
    /// Total references observed.
    touches: u64,
    last_time: SimTime,
}

impl WorkingSetTracker {
    /// Creates a tracker with working-set window `window` (the `τ`).
    pub fn new(window: SimDuration) -> Self {
        WorkingSetTracker {
            window,
            recent: VecDeque::new(),
            in_window: HashMap::new(),
            footprint: HashSet::new(),
            touches: 0,
            last_time: SimTime::ZERO,
        }
    }

    /// Records a reference to `page` at time `now` (non-decreasing).
    pub fn record(&mut self, now: SimTime, page: PageId) {
        assert!(now >= self.last_time, "references must be time-ordered");
        self.last_time = now;
        self.touches += 1;
        self.footprint.insert(page);
        self.recent.push_back((now, page));
        *self.in_window.entry(page).or_insert(0) += 1;
        self.expire(now);
    }

    /// The working set size `|W(now, τ)|` using the most recent reference
    /// time as `now`.
    pub fn working_set_size(&self) -> u64 {
        self.in_window.len() as u64
    }

    /// Distinct pages ever referenced.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint.len() as u64
    }

    /// Total references observed.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Fraction of references that re-touched an already-seen page — a
    /// cheap temporal-locality indicator (1 − footprint/touches).
    pub fn reuse_fraction(&self) -> f64 {
        if self.touches == 0 {
            return 0.0;
        }
        1.0 - self.footprint.len() as f64 / self.touches as f64
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = if now.as_nanos() > self.window.as_nanos() {
            now - self.window
        } else {
            SimTime::ZERO
        };
        while let Some(&(t, page)) = self.recent.front() {
            if t >= cutoff {
                break;
            }
            self.recent.pop_front();
            match self.in_window.get_mut(&page) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.in_window.remove(&page);
                }
                None => unreachable!("window count desync"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn footprint_counts_distinct_pages() {
        let mut w = WorkingSetTracker::new(SimDuration::from_secs(1));
        for (i, p) in [1u64, 2, 1, 3, 1].into_iter().enumerate() {
            w.record(t(i as u64), PageId(p));
        }
        assert_eq!(w.footprint_pages(), 3);
        assert_eq!(w.touches(), 5);
        assert!((w.reuse_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn window_expires_old_references() {
        let mut w = WorkingSetTracker::new(SimDuration::from_millis(10));
        w.record(t(0), PageId(1));
        w.record(t(5), PageId(2));
        assert_eq!(w.working_set_size(), 2);
        w.record(t(20), PageId(3));
        // Pages 1 and 2 are older than now − 10 ms.
        assert_eq!(w.working_set_size(), 1);
        assert_eq!(w.footprint_pages(), 3);
    }

    #[test]
    fn repeated_page_survives_partial_expiry() {
        let mut w = WorkingSetTracker::new(SimDuration::from_millis(10));
        w.record(t(0), PageId(7));
        w.record(t(8), PageId(7));
        w.record(t(15), PageId(8));
        // The t=0 touch of page 7 expired but the t=8 touch is in-window.
        assert_eq!(w.working_set_size(), 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_reversal() {
        let mut w = WorkingSetTracker::new(SimDuration::from_secs(1));
        w.record(t(10), PageId(0));
        w.record(t(5), PageId(1));
    }

    #[test]
    fn empty_tracker_reports_zeroes() {
        let w = WorkingSetTracker::new(SimDuration::from_secs(1));
        assert_eq!(w.working_set_size(), 0);
        assert_eq!(w.footprint_pages(), 0);
        assert_eq!(w.reuse_fraction(), 0.0);
    }
}
