//! Page-granular addressing.
//!
//! AMPoM's entire analysis operates on page numbers: the lookback window
//! stores "addresses of recently-accessed memory pages", strides are
//! distances between page numbers, and prefetch pivots are `page + 1`.
//! [`PageId`] is that page number — a `u64` newtype with the successor /
//! distance arithmetic the algorithm needs spelled out safely.

use std::fmt;
use std::ops::Range;

/// Size of one page in bytes (x86 Linux 2.4: 4 KB).
pub const PAGE_SIZE: u64 = 4096;

/// A virtual page number within one process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// The page containing byte offset `addr`.
    pub const fn containing(addr: u64) -> PageId {
        PageId(addr / PAGE_SIZE)
    }

    /// The raw page number.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// First byte offset of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 * PAGE_SIZE
    }

    /// The next page (`r + 1` in the paper's pivot rule).
    pub const fn succ(self) -> PageId {
        PageId(self.0 + 1)
    }

    /// The page `n` after this one.
    pub const fn offset(self, n: u64) -> PageId {
        PageId(self.0 + n)
    }

    /// `true` if `other` is exactly this page's successor — the condition
    /// `r_{p+d} = r_p + 1` that closes a stride-d reference stream.
    pub const fn is_succ_of(self, other: PageId) -> bool {
        self.0 == other.0 + 1
    }

    /// Absolute distance in pages between two addresses.
    pub const fn distance(self, other: PageId) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

/// A half-open range of pages `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page in the range.
    pub start: PageId,
    /// One past the last page.
    pub end: PageId,
}

impl PageRange {
    /// Builds a range; `start` must not exceed `end`.
    pub fn new(start: PageId, end: PageId) -> Self {
        assert!(start <= end, "inverted page range {start}..{end}");
        PageRange { start, end }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True if the range covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if `page` lies inside the range.
    pub fn contains(&self, page: PageId) -> bool {
        self.start <= page && page < self.end
    }

    /// Iterator over every page in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageId> {
        (self.start.0..self.end.0).map(PageId)
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len() * PAGE_SIZE
    }

    /// The underlying index range.
    pub fn as_indices(&self) -> Range<u64> {
        self.start.0..self.end.0
    }
}

/// Number of whole pages needed to hold `bytes` (rounds up).
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_and_base() {
        assert_eq!(PageId::containing(0), PageId(0));
        assert_eq!(PageId::containing(4095), PageId(0));
        assert_eq!(PageId::containing(4096), PageId(1));
        assert_eq!(PageId(3).base_addr(), 12288);
    }

    #[test]
    fn successor_arithmetic() {
        let p = PageId(10);
        assert_eq!(p.succ(), PageId(11));
        assert!(PageId(11).is_succ_of(p));
        assert!(!PageId(12).is_succ_of(p));
        assert_eq!(p.offset(5), PageId(15));
        assert_eq!(p.distance(PageId(3)), 7);
        assert_eq!(PageId(3).distance(p), 7);
    }

    #[test]
    fn range_membership_and_len() {
        let r = PageRange::new(PageId(2), PageId(6));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(PageId(2)));
        assert!(r.contains(PageId(5)));
        assert!(!r.contains(PageId(6)));
        assert_eq!(r.bytes(), 4 * PAGE_SIZE);
        let pages: Vec<_> = r.iter().collect();
        assert_eq!(pages, vec![PageId(2), PageId(3), PageId(4), PageId(5)]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = PageRange::new(PageId(5), PageId(2));
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for_bytes(575 * 1024 * 1024), 147_200);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(PageId(42).to_string(), "p42");
    }
}
