//! The writeback half of the page lifecycle: dirty-page tracking promoted
//! to a **write-set** with delta batching, and the deputy-side sink that
//! applies batches with exactly-once accounting.
//!
//! Forward migration moves clean copies toward the migrant; nothing ever
//! flowed back. The [`WriteSet`] closes the loop on the migrant side: every
//! dirtying store bumps a per-page **version counter**, dirty pages collect
//! into delta batches (at most `max_pages` per flush so a background flush
//! never monopolises the reply link), and each batch carries a sequence
//! number so the deputy's [`WritebackSink`] can deduplicate retransmits.
//!
//! Exactly-once under the PR 2 fault model rests on two layers:
//!
//! 1. **Batch dedup** — a retransmitted sequence number the sink has seen
//!    is re-acked without reapplying anything.
//! 2. **Version compare** — after a sink restart (deputy outage) the
//!    seen-sequence set is gone, but the per-page high-water versions
//!    survive in the applied store, so a replayed batch's stale entries
//!    are recognised and skipped page by page.
//!
//! Either layer alone suffices on a lossy-but-up link; together they keep
//! the conservation property (*every dirtied page applied exactly once per
//! version*) through arbitrary loss/restart interleavings.

use std::collections::{BTreeMap, BTreeSet};

use crate::page::PageId;

/// Plain counters a [`WriteSet`] accumulates; copied into the run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteSetCounters {
    /// Dirtying stores noted (first-dirty and redirty alike).
    pub writes_noted: u64,
    /// Pages redirtied while a flush of their previous version was in
    /// flight (these force a second writeback of the same page).
    pub redirties: u64,
    /// Delta batches built.
    pub batches_built: u64,
    /// Page entries across all built batches (retransmits included).
    pub pages_flushed: u64,
    /// Batches handed back by [`WriteSet::take_for_retry`].
    pub retransmits: u64,
    /// Batches acknowledged.
    pub acks: u64,
}

/// The migrant-side write-set: dirty pages awaiting writeback, per-page
/// version counters, and the in-flight batches not yet acknowledged.
#[derive(Debug, Clone, Default)]
pub struct WriteSet {
    /// Highest version ever assigned per page (monotone, never reset).
    versions: BTreeMap<PageId, u64>,
    /// Dirty pages whose latest version is not yet in any batch.
    dirty: BTreeSet<PageId>,
    /// Sent-but-unacked batches by sequence number.
    pending: BTreeMap<u64, Vec<(PageId, u64)>>,
    next_seq: u64,
    /// Accumulated counters.
    pub counters: WriteSetCounters,
}

impl WriteSet {
    /// An empty write-set.
    pub fn new() -> Self {
        WriteSet::default()
    }

    /// Notes one dirtying store to `page`. The first store since the last
    /// flush bumps the page's version; a store while that version is
    /// already batched (in flight) bumps again — the page must travel
    /// twice, once per version.
    pub fn note_write(&mut self, page: PageId) {
        self.counters.writes_noted += 1;
        if self.dirty.contains(&page) {
            // Latest version not yet batched; nothing new to flush.
            return;
        }
        let prior = self.versions.get(&page).copied().unwrap_or(0);
        if prior > 0 && self.in_flight(page) {
            self.counters.redirties += 1;
        }
        self.versions.insert(page, prior + 1);
        self.dirty.insert(page);
    }

    fn in_flight(&self, page: PageId) -> bool {
        self.pending
            .values()
            .any(|entries| entries.iter().any(|&(p, _)| p == page))
    }

    /// Builds the next delta batch of at most `max_pages` dirty pages
    /// (lowest page ids first, deterministic). Returns `None` when nothing
    /// is dirty; otherwise the batch is recorded as pending under the
    /// returned sequence number until [`WriteSet::on_ack`].
    pub fn build_batch(&mut self, max_pages: usize) -> Option<(u64, Vec<(PageId, u64)>)> {
        if self.dirty.is_empty() || max_pages == 0 {
            return None;
        }
        let take: Vec<PageId> = self.dirty.iter().take(max_pages).copied().collect();
        let entries: Vec<(PageId, u64)> = take
            .iter()
            .map(|&p| {
                self.dirty.remove(&p);
                (p, self.versions[&p])
            })
            .collect();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.batches_built += 1;
        self.counters.pages_flushed += entries.len() as u64;
        self.pending.insert(seq, entries.clone());
        Some((seq, entries))
    }

    /// Acknowledges batch `seq`; unknown sequence numbers (a duplicate
    /// ack) are ignored.
    pub fn on_ack(&mut self, seq: u64) {
        if self.pending.remove(&seq).is_some() {
            self.counters.acks += 1;
        }
    }

    /// Hands back the pending batch `seq` for retransmission (a lost
    /// batch or a lost ack — the sink dedups either way).
    pub fn take_for_retry(&mut self, seq: u64) -> Option<Vec<(PageId, u64)>> {
        let entries = self.pending.get(&seq).cloned();
        if entries.is_some() {
            self.counters.retransmits += 1;
            self.counters.pages_flushed += entries.as_ref().map_or(0, Vec::len) as u64;
        }
        entries
    }

    /// Sequence numbers of every sent-but-unacked batch, ascending.
    pub fn pending_seqs(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// True when every dirtied page has been batched *and* acknowledged.
    pub fn is_drained(&self) -> bool {
        self.dirty.is_empty() && self.pending.is_empty()
    }

    /// Pages currently dirty and not yet batched.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The version high-water mark per page (pages never dirtied absent).
    pub fn versions(&self) -> &BTreeMap<PageId, u64> {
        &self.versions
    }
}

/// Plain counters a [`WritebackSink`] accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkCounters {
    /// Batches applied (at least one fresh page).
    pub batches_applied: u64,
    /// Whole batches recognised as retransmits by sequence number.
    pub duplicate_batches: u64,
    /// Page entries skipped by the version compare.
    pub duplicate_pages: u64,
    /// Page entries actually applied.
    pub pages_applied: u64,
    /// Sink restarts survived (seen-sequence state lost).
    pub restarts: u64,
}

/// What [`WritebackSink::apply_batch`] did with one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Entries newly applied.
    pub applied: u32,
    /// Entries skipped as duplicates (batch- or version-level).
    pub duplicates: u32,
}

/// The deputy-side sink: applies writeback batches idempotently.
#[derive(Debug, Clone, Default)]
pub struct WritebackSink {
    /// Highest version applied per page — the durable store; survives
    /// restarts exactly like the home node's page frames do.
    applied: BTreeMap<PageId, u64>,
    /// Sequence numbers already applied — volatile; a restart clears it.
    seen_seqs: BTreeSet<u64>,
    /// Accumulated counters.
    pub counters: SinkCounters,
}

impl WritebackSink {
    /// An empty sink.
    pub fn new() -> Self {
        WritebackSink::default()
    }

    /// Applies one batch. Duplicate sequence numbers re-ack without
    /// reapplying; within a fresh batch, entries whose version the store
    /// already holds are skipped (the post-restart replay path).
    pub fn apply_batch(&mut self, seq: u64, entries: &[(PageId, u64)]) -> ApplyOutcome {
        if !self.seen_seqs.insert(seq) {
            self.counters.duplicate_batches += 1;
            return ApplyOutcome {
                applied: 0,
                duplicates: entries.len() as u32,
            };
        }
        let mut out = ApplyOutcome {
            applied: 0,
            duplicates: 0,
        };
        for &(page, version) in entries {
            let have = self.applied.get(&page).copied().unwrap_or(0);
            if have >= version {
                self.counters.duplicate_pages += 1;
                out.duplicates += 1;
            } else {
                self.applied.insert(page, version);
                self.counters.pages_applied += 1;
                out.applied += 1;
            }
        }
        if out.applied > 0 {
            self.counters.batches_applied += 1;
        }
        out
    }

    /// A deputy restart: the volatile seen-sequence set is lost, the
    /// applied store (real page frames) survives.
    pub fn restart(&mut self) {
        self.seen_seqs.clear();
        self.counters.restarts += 1;
    }

    /// Highest version applied for `page`, or 0 if never written back.
    pub fn applied_version(&self, page: PageId) -> u64 {
        self.applied.get(&page).copied().unwrap_or(0)
    }

    /// Number of distinct pages ever written back.
    pub fn pages_written_back(&self) -> u64 {
        self.applied.len() as u64
    }

    /// The applied store: page → highest version.
    pub fn applied(&self) -> &BTreeMap<PageId, u64> {
        &self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_and_redirty_forces_a_second_flush() {
        let mut ws = WriteSet::new();
        ws.note_write(PageId(3));
        ws.note_write(PageId(3)); // still dirty, same version
        let (seq, entries) = ws.build_batch(8).expect("dirty page batches");
        assert_eq!(entries, vec![(PageId(3), 1)]);
        // Redirty while version 1 is in flight.
        ws.note_write(PageId(3));
        assert_eq!(ws.counters.redirties, 1);
        ws.on_ack(seq);
        let (_, entries) = ws.build_batch(8).expect("redirty batches again");
        assert_eq!(entries, vec![(PageId(3), 2)]);
        assert!(!ws.is_drained(), "second batch unacked");
    }

    #[test]
    fn batches_respect_the_page_cap_and_drain_in_order() {
        let mut ws = WriteSet::new();
        for p in 0..10 {
            ws.note_write(PageId(p));
        }
        let (s0, b0) = ws.build_batch(4).unwrap();
        let (s1, b1) = ws.build_batch(4).unwrap();
        let (s2, b2) = ws.build_batch(4).unwrap();
        assert_eq!((b0.len(), b1.len(), b2.len()), (4, 4, 2));
        assert!(ws.build_batch(4).is_none(), "nothing left to batch");
        assert_eq!(b0[0].0, PageId(0), "lowest pages first");
        for s in [s0, s1, s2] {
            ws.on_ack(s);
        }
        assert!(ws.is_drained());
        assert_eq!(ws.counters.pages_flushed, 10);
    }

    #[test]
    fn sink_dedups_by_sequence_and_by_version() {
        let mut sink = WritebackSink::new();
        let batch = [(PageId(1), 1), (PageId(2), 1)];
        let first = sink.apply_batch(7, &batch);
        assert_eq!((first.applied, first.duplicates), (2, 0));
        // Retransmit of the same seq: batch-level dedup.
        let again = sink.apply_batch(7, &batch);
        assert_eq!((again.applied, again.duplicates), (0, 2));
        assert_eq!(sink.counters.duplicate_batches, 1);
        // Restart loses the seen set; the version compare still refuses.
        sink.restart();
        let replay = sink.apply_batch(7, &batch);
        assert_eq!((replay.applied, replay.duplicates), (0, 2));
        assert_eq!(sink.counters.duplicate_pages, 2);
        // A genuinely newer version still lands after all that.
        let newer = sink.apply_batch(8, &[(PageId(1), 2)]);
        assert_eq!((newer.applied, newer.duplicates), (1, 0));
        assert_eq!(sink.applied_version(PageId(1)), 2);
        assert_eq!(sink.pages_written_back(), 2);
    }

    #[test]
    fn retry_rebuilds_the_pending_batch_verbatim() {
        let mut ws = WriteSet::new();
        ws.note_write(PageId(5));
        let (seq, entries) = ws.build_batch(8).unwrap();
        let retry = ws.take_for_retry(seq).expect("pending batch");
        assert_eq!(retry, entries);
        assert_eq!(ws.counters.retransmits, 1);
        assert_eq!(ws.pending_seqs(), vec![seq]);
        ws.on_ack(seq);
        assert!(ws.take_for_retry(seq).is_none(), "acked batch is gone");
        assert!(ws.is_drained());
    }
}
