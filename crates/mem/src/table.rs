//! The master / home page-table pair.
//!
//! Paper §2.2: "When a process is migrated, its page table in the Linux
//! kernel will be transferred to the destination node, which will become
//! the MPT of the migrant. At the same time, the original page table will
//! become the HPT… When a page is transferred to the migrant … its copy in
//! the original node will be deleted and the HPT will be updated
//! accordingly. When a page is created by a migrant, only the MPT needs to
//! be updated. When a page is unmapped … if the page is stored in the
//! original node, both the MPT and the HPT will be updated, otherwise only
//! the MPT will be updated."
//!
//! [`PageTablePair`] implements exactly those transitions and exposes the
//! invariant the design rests on: **every mapped page's contents are stored
//! in exactly one place**, and the HPT is precisely the set of mapped pages
//! stored at the origin (plus, for FFA, the file server's stock).

use std::collections::BTreeMap;

use crate::page::PageId;

/// Where a mapped page's contents are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLocation {
    /// On the process's home (original) node, served by the deputy.
    Origin,
    /// On the node executing the migrant.
    Destination,
    /// On the Freeze-Free-Algorithm file server (FFA only).
    FileServer,
}

/// Which tables an operation had to update — the paper calls this out
/// because HPT updates are remote bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableUpdate {
    /// Only the destination-side master table changed.
    MptOnly,
    /// Both the master and the home table changed.
    Both,
}

/// The MPT/HPT pair tracking one migrated process's pages.
#[derive(Debug, Clone, Default)]
pub struct PageTablePair {
    /// The master page table: every mapped page and where it is stored.
    /// BTreeMap keeps iteration deterministic for tests and traces.
    mpt: BTreeMap<PageId, PageLocation>,
    /// Count of MPT updates performed (bookkeeping-cost accounting).
    mpt_updates: u64,
    /// Count of HPT updates performed.
    hpt_updates: u64,
}

impl PageTablePair {
    /// MPT entry size on the wire: "the size of an MPT is 6 bytes per page"
    /// (paper §5.2).
    pub const MPT_ENTRY_BYTES: u64 = 6;

    /// Builds the pair at migration time: every currently-mapped page
    /// starts stored at the origin. (The migration mechanism then moves the
    /// freeze-time pages to the destination.)
    pub fn at_migration(mapped: impl IntoIterator<Item = PageId>) -> Self {
        let mpt: BTreeMap<_, _> = mapped
            .into_iter()
            .map(|p| (p, PageLocation::Origin))
            .collect();
        PageTablePair {
            mpt,
            mpt_updates: 0,
            hpt_updates: 0,
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mpt.len() as u64
    }

    /// Bytes the MPT occupies when shipped at freeze time.
    pub fn mpt_bytes(&self) -> u64 {
        self.mapped_pages() * Self::MPT_ENTRY_BYTES
    }

    /// Where `page` is stored, or `None` if unmapped.
    pub fn lookup(&self, page: PageId) -> Option<PageLocation> {
        self.mpt.get(&page).copied()
    }

    /// The home page table: mapped pages whose contents the origin still
    /// stores.
    pub fn hpt_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.mpt
            .iter()
            .filter(|&(_, &loc)| loc == PageLocation::Origin)
            .map(|(&p, _)| p)
    }

    /// Number of pages still stored at the origin.
    pub fn pages_at_origin(&self) -> u64 {
        self.mpt
            .values()
            .filter(|&&l| l == PageLocation::Origin)
            .count() as u64
    }

    /// Number of pages stored at the destination.
    pub fn pages_at_destination(&self) -> u64 {
        self.mpt
            .values()
            .filter(|&&l| l == PageLocation::Destination)
            .count() as u64
    }

    /// A page's contents were transferred to the migrant (at freeze time or
    /// by a later fault/prefetch): origin copy deleted, HPT updated.
    ///
    /// # Panics
    /// Panics if the page is unmapped or already at the destination —
    /// transferring a page twice means the protocol fetched a page it
    /// already had.
    pub fn transfer_to_destination(&mut self, page: PageId) -> TableUpdate {
        let loc = self
            .mpt
            .get_mut(&page)
            .unwrap_or_else(|| panic!("transfer of unmapped page {page}"));
        assert_ne!(
            *loc,
            PageLocation::Destination,
            "page {page} transferred twice"
        );
        let from_origin = *loc == PageLocation::Origin;
        *loc = PageLocation::Destination;
        self.mpt_updates += 1;
        if from_origin {
            self.hpt_updates += 1;
            TableUpdate::Both
        } else {
            TableUpdate::MptOnly
        }
    }

    /// A page evicted from the destination is pushed back to the origin
    /// (its only other potential holder — §2.2 deleted the origin copy
    /// when the page moved, so an evicted page must travel, dirty or not).
    ///
    /// # Panics
    /// Panics unless the page is currently stored at the destination.
    pub fn return_to_origin(&mut self, page: PageId) -> TableUpdate {
        let loc = self
            .mpt
            .get_mut(&page)
            .unwrap_or_else(|| panic!("return of unmapped page {page}"));
        assert_eq!(
            *loc,
            PageLocation::Destination,
            "page {page} returned while not at the destination"
        );
        *loc = PageLocation::Origin;
        self.mpt_updates += 1;
        self.hpt_updates += 1;
        TableUpdate::Both
    }

    /// FFA only: the origin flushed a page's contents to the file server.
    /// The origin stops storing the page, so both tables change — the same
    /// `Both` every sibling origin-departure transition reports.
    ///
    /// # Panics
    /// Panics unless the page is currently stored at the origin.
    pub fn flush_to_file_server(&mut self, page: PageId) -> TableUpdate {
        let loc = self
            .mpt
            .get_mut(&page)
            .unwrap_or_else(|| panic!("flush of unmapped page {page}"));
        assert_eq!(
            *loc,
            PageLocation::Origin,
            "file-server flush of page {page} not stored at origin"
        );
        *loc = PageLocation::FileServer;
        self.mpt_updates += 1;
        self.hpt_updates += 1;
        TableUpdate::Both
    }

    /// "When a page is created by a migrant, only the MPT needs to be
    /// updated."
    ///
    /// # Panics
    /// Panics if the page is already mapped.
    pub fn create_at_destination(&mut self, page: PageId) -> TableUpdate {
        let prev = self.mpt.insert(page, PageLocation::Destination);
        assert!(prev.is_none(), "create of already-mapped page {page}");
        self.mpt_updates += 1;
        TableUpdate::MptOnly
    }

    /// Unmaps a page. "If the page is stored in the original node, both the
    /// MPT and the HPT will be updated, otherwise only the MPT."
    ///
    /// # Panics
    /// Panics if the page is not mapped.
    pub fn unmap(&mut self, page: PageId) -> TableUpdate {
        let loc = self
            .mpt
            .remove(&page)
            .unwrap_or_else(|| panic!("unmap of unmapped page {page}"));
        self.mpt_updates += 1;
        if loc == PageLocation::Origin {
            self.hpt_updates += 1;
            TableUpdate::Both
        } else {
            TableUpdate::MptOnly
        }
    }

    /// Total MPT update operations performed.
    pub fn mpt_update_count(&self) -> u64 {
        self.mpt_updates
    }

    /// Total HPT update operations performed.
    pub fn hpt_update_count(&self) -> u64 {
        self.hpt_updates
    }

    /// Checks the single-storage invariant: the per-location counts
    /// partition the mapped set. (Trivially true by construction, asserted
    /// for belt-and-braces in property tests.)
    pub fn check_invariants(&self) {
        let origin = self.pages_at_origin();
        let dest = self.pages_at_destination();
        let fs = self
            .mpt
            .values()
            .filter(|&&l| l == PageLocation::FileServer)
            .count() as u64;
        assert_eq!(origin + dest + fs, self.mapped_pages());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_with(pages: u64) -> PageTablePair {
        PageTablePair::at_migration((0..pages).map(PageId))
    }

    #[test]
    fn migration_starts_everything_at_origin() {
        let p = pair_with(10);
        assert_eq!(p.mapped_pages(), 10);
        assert_eq!(p.pages_at_origin(), 10);
        assert_eq!(p.pages_at_destination(), 0);
        assert_eq!(p.mpt_bytes(), 60);
        assert_eq!(p.hpt_pages().count(), 10);
    }

    #[test]
    fn transfer_moves_storage_and_updates_both_tables() {
        let mut p = pair_with(4);
        let upd = p.transfer_to_destination(PageId(2));
        assert_eq!(upd, TableUpdate::Both);
        assert_eq!(p.lookup(PageId(2)), Some(PageLocation::Destination));
        assert_eq!(p.pages_at_origin(), 3);
        assert!(p.hpt_pages().all(|pg| pg != PageId(2)));
        p.check_invariants();
    }

    #[test]
    fn create_updates_mpt_only() {
        let mut p = pair_with(2);
        let upd = p.create_at_destination(PageId(50));
        assert_eq!(upd, TableUpdate::MptOnly);
        assert_eq!(p.lookup(PageId(50)), Some(PageLocation::Destination));
        assert_eq!(p.hpt_update_count(), 0);
        assert_eq!(p.mpt_update_count(), 1);
    }

    #[test]
    fn unmap_origin_page_touches_both_tables() {
        let mut p = pair_with(3);
        assert_eq!(p.unmap(PageId(1)), TableUpdate::Both);
        assert_eq!(p.lookup(PageId(1)), None);
        assert_eq!(p.hpt_update_count(), 1);
    }

    #[test]
    fn unmap_destination_page_touches_mpt_only() {
        let mut p = pair_with(3);
        p.transfer_to_destination(PageId(1));
        let hpt_before = p.hpt_update_count();
        assert_eq!(p.unmap(PageId(1)), TableUpdate::MptOnly);
        assert_eq!(p.hpt_update_count(), hpt_before);
    }

    #[test]
    fn eviction_returns_page_to_origin() {
        let mut p = pair_with(3);
        p.transfer_to_destination(PageId(1));
        assert_eq!(p.return_to_origin(PageId(1)), TableUpdate::Both);
        assert_eq!(p.lookup(PageId(1)), Some(PageLocation::Origin));
        // It can be fetched again later.
        p.transfer_to_destination(PageId(1));
        assert_eq!(p.lookup(PageId(1)), Some(PageLocation::Destination));
        p.check_invariants();
    }

    #[test]
    #[should_panic(expected = "not at the destination")]
    fn returning_an_origin_page_panics() {
        let mut p = pair_with(1);
        p.return_to_origin(PageId(0));
    }

    #[test]
    fn ffa_flush_moves_page_to_file_server() {
        let mut p = pair_with(2);
        let mpt_before = p.mpt_update_count();
        let hpt_before = p.hpt_update_count();
        assert_eq!(p.flush_to_file_server(PageId(0)), TableUpdate::Both);
        assert_eq!(p.mpt_update_count(), mpt_before + 1);
        assert_eq!(p.hpt_update_count(), hpt_before + 1);
        assert_eq!(p.lookup(PageId(0)), Some(PageLocation::FileServer));
        // Fetch from the file server updates MPT only (not stored at origin).
        assert_eq!(p.transfer_to_destination(PageId(0)), TableUpdate::MptOnly);
        p.check_invariants();
    }

    #[test]
    #[should_panic(expected = "transferred twice")]
    fn double_transfer_panics() {
        let mut p = pair_with(2);
        p.transfer_to_destination(PageId(0));
        p.transfer_to_destination(PageId(0));
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn transfer_of_unmapped_panics() {
        let mut p = pair_with(1);
        p.transfer_to_destination(PageId(9));
    }

    #[test]
    #[should_panic(expected = "already-mapped")]
    fn double_create_panics() {
        let mut p = pair_with(1);
        p.create_at_destination(PageId(0));
    }

    #[test]
    #[should_panic(expected = "not stored at origin")]
    fn flush_of_destination_page_panics() {
        let mut p = pair_with(1);
        p.transfer_to_destination(PageId(0));
        p.flush_to_file_server(PageId(0));
    }
}
