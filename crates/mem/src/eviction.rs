//! Page replacement under memory pressure.
//!
//! The paper's testbed ran 575 MB processes on 512 MB nodes — the
//! destination cannot hold every page, so the kernel must evict. Because
//! §2.2 *deletes* the origin's copy when a page transfers, an evicted page
//! (dirty or clean) has no other home and must be pushed back to the
//! origin node, where the deputy re-adopts it into the HPT.
//!
//! [`ClockEvictor`] is the classic second-chance (CLOCK) approximation of
//! LRU that 2.4-era Linux used: resident pages sit on a ring with a
//! reference bit; the hand sweeps, clearing bits, and evicts the first
//! page found with its bit already clear.

use crate::page::PageId;

/// Sentinel for "not on the ring".
///
/// `usize`, not `u32`: ring positions index `ring`, whose length is only
/// bounded by the resident limit. A `u32` position both truncates on rings
/// past 2^32 entries and collides real position `u32::MAX` with the
/// sentinel; `usize` makes the sentinel unreachable (a `Vec` cannot hold
/// `usize::MAX` elements).
const NOT_RESIDENT: usize = usize::MAX;

/// A CLOCK (second-chance) eviction policy over a bounded resident set.
#[derive(Debug)]
pub struct ClockEvictor {
    /// Maximum pages allowed resident.
    limit: u64,
    /// Resident pages in ring order.
    ring: Vec<PageId>,
    /// Ring position of each page (dense, indexed by page number).
    pos: Vec<usize>,
    /// Reference bit per page (dense).
    referenced: Vec<bool>,
    /// The clock hand.
    hand: usize,
}

impl ClockEvictor {
    /// Creates an evictor for an address space of `total_pages`, allowing
    /// at most `limit` resident pages.
    ///
    /// # Panics
    /// Panics if `limit` is zero.
    pub fn new(total_pages: u64, limit: u64) -> Self {
        assert!(limit > 0, "resident limit must be positive");
        ClockEvictor {
            limit,
            ring: Vec::with_capacity(limit as usize),
            pos: vec![NOT_RESIDENT; total_pages as usize],
            referenced: vec![false; total_pages as usize],
            hand: 0,
        }
    }

    /// The resident-set limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Number of pages currently tracked as resident.
    pub fn resident(&self) -> u64 {
        self.ring.len() as u64
    }

    /// True if installing one more page would exceed the limit.
    pub fn at_capacity(&self) -> bool {
        self.ring.len() as u64 >= self.limit
    }

    /// Registers a page that just became resident, with its reference bit
    /// set (it is being touched right now).
    ///
    /// # Panics
    /// Panics if the page is already tracked.
    pub fn on_install(&mut self, page: PageId) {
        let i = page.index() as usize;
        assert_eq!(self.pos[i], NOT_RESIDENT, "double install of {page}");
        self.pos[i] = self.ring.len();
        self.ring.push(page);
        self.referenced[i] = true;
    }

    /// Marks a touch (sets the reference bit). O(1); safe to call on every
    /// memory reference.
    #[inline]
    pub fn on_touch(&mut self, page: PageId) {
        self.referenced[page.index() as usize] = true;
    }

    /// Chooses and removes a victim by the CLOCK sweep, never choosing
    /// `protect` (the page being faulted in). Returns the victim.
    ///
    /// # Panics
    /// Panics if the ring is empty or holds only the protected page.
    pub fn evict(&mut self, protect: PageId) -> PageId {
        assert!(
            !self.ring.is_empty() && (self.ring.len() > 1 || self.ring[0] != protect),
            "nothing evictable"
        );
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let candidate = self.ring[self.hand];
            let ci = candidate.index() as usize;
            if candidate == protect {
                self.hand += 1;
                continue;
            }
            if self.referenced[ci] {
                // Second chance.
                self.referenced[ci] = false;
                self.hand += 1;
                continue;
            }
            // Evict: swap-remove keeps the ring dense.
            let last = *self.ring.last().expect("non-empty");
            self.ring.swap_remove(self.hand);
            self.pos[ci] = NOT_RESIDENT;
            if last != candidate {
                self.pos[last.index() as usize] = self.hand;
            }
            return candidate;
        }
    }

    /// Removes a page that left residency by other means (e.g. unmap).
    /// No-op if the page is not tracked.
    pub fn remove(&mut self, page: PageId) {
        let i = page.index() as usize;
        let p = self.pos[i];
        if p == NOT_RESIDENT {
            return;
        }
        let last = *self
            .ring
            .last()
            .expect("tracked page implies non-empty ring");
        self.ring.swap_remove(p);
        self.pos[i] = NOT_RESIDENT;
        if last != page {
            self.pos[last.index() as usize] = p;
        }
    }

    /// True if the page is currently tracked as resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.pos[page.index() as usize] != NOT_RESIDENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_and_tracks_residency() {
        let mut e = ClockEvictor::new(16, 4);
        e.on_install(PageId(1));
        e.on_install(PageId(2));
        assert_eq!(e.resident(), 2);
        assert!(e.contains(PageId(1)));
        assert!(!e.contains(PageId(3)));
        assert!(!e.at_capacity());
        e.on_install(PageId(3));
        e.on_install(PageId(4));
        assert!(e.at_capacity());
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut e = ClockEvictor::new(16, 3);
        for p in [1u64, 2, 3] {
            e.on_install(PageId(p));
        }
        // All bits set at install; the first sweep clears 1, 2, 3 and the
        // second sweep evicts page 1 (first with a clear bit).
        let victim = e.evict(PageId(99));
        assert_eq!(victim, PageId(1));
        assert!(!e.contains(PageId(1)));
        assert_eq!(e.resident(), 2);
    }

    #[test]
    fn touched_pages_survive_longer() {
        let mut e = ClockEvictor::new(16, 3);
        for p in [1u64, 2, 3] {
            e.on_install(PageId(p));
        }
        let first = e.evict(PageId(99)); // clears all bits, evicts 1
        assert_eq!(first, PageId(1));
        // Re-touch page 2; page 3's bit stays clear.
        e.on_touch(PageId(2));
        let second = e.evict(PageId(99));
        assert_eq!(second, PageId(3), "recently touched page 2 survives");
    }

    #[test]
    fn protected_page_is_never_chosen() {
        let mut e = ClockEvictor::new(16, 2);
        e.on_install(PageId(5));
        e.on_install(PageId(6));
        for _ in 0..4 {
            let v = e.evict(PageId(5));
            assert_ne!(v, PageId(5));
            e.on_install(v); // put it back for the next round
        }
    }

    #[test]
    fn remove_is_idempotent_and_unlinks() {
        let mut e = ClockEvictor::new(16, 4);
        e.on_install(PageId(7));
        e.on_install(PageId(8));
        e.remove(PageId(7));
        assert!(!e.contains(PageId(7)));
        e.remove(PageId(7));
        assert_eq!(e.resident(), 1);
        // The survivor is still evictable.
        assert_eq!(e.evict(PageId(99)), PageId(8));
    }

    #[test]
    fn eviction_cycles_through_everything() {
        let mut e = ClockEvictor::new(64, 8);
        for p in 0..8u64 {
            e.on_install(PageId(p));
        }
        let mut victims = std::collections::HashSet::new();
        for _ in 0..8 {
            victims.insert(e.evict(PageId(999)));
        }
        assert_eq!(victims.len(), 8, "all pages eventually evicted");
        assert_eq!(e.resident(), 0);
    }

    #[test]
    fn ring_positions_are_not_truncated_to_u32() {
        // Regression: positions were stored as `u32`, so a ring position at
        // or past `u32::MAX` would truncate (and position `u32::MAX` itself
        // collided with the not-resident sentinel, making a resident page
        // invisible to `contains`/`remove`). Widened to `usize`, the
        // sentinel is unreachable: no `Vec` can hold `usize::MAX` entries.
        #[cfg(target_pointer_width = "64")]
        {
            assert!(
                NOT_RESIDENT > u32::MAX as usize,
                "sentinel must lie beyond any value the old u32 field could hold"
            );
        }
        // The boundary itself (a 4 Gi-entry ring) is unallocatable in a
        // test, so pin the invariant structurally: every tracked position
        // round-trips exactly through install/evict/remove churn.
        let mut e = ClockEvictor::new(512, 64);
        for p in 0..64u64 {
            e.on_install(PageId(p));
        }
        // Churn the ring so swap_remove rewrites positions many times.
        for round in 0..6u64 {
            for _ in 0..32 {
                let v = e.evict(PageId(10_000));
                assert!(!e.contains(v));
                e.on_install(v);
            }
            for p in (round * 7) % 64..(round * 7) % 64 + 5 {
                e.on_touch(PageId(p));
            }
        }
        // Position consistency: pos[ring[k]] == k for every slot, and every
        // page not on the ring reports the sentinel.
        for (k, page) in e.ring.iter().enumerate() {
            assert_eq!(e.pos[page.index() as usize], k, "stale position for {page}");
        }
        for p in 0..512u64 {
            let on_ring = e.ring.contains(&PageId(p));
            assert_eq!(e.contains(PageId(p)), on_ring);
            if !on_ring {
                assert_eq!(e.pos[p as usize], NOT_RESIDENT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "double install")]
    fn double_install_panics() {
        let mut e = ClockEvictor::new(8, 2);
        e.on_install(PageId(1));
        e.on_install(PageId(1));
    }

    #[test]
    #[should_panic(expected = "nothing evictable")]
    fn empty_ring_panics() {
        let mut e = ClockEvictor::new(8, 2);
        let _ = e.evict(PageId(0));
    }
}
