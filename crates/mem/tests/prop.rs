//! Property tests for the virtual-memory substrate.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_mem::space::{AddressSpace, PageState, TouchOutcome};
use ampom_mem::table::{PageLocation, PageTablePair};
use proptest::prelude::*;

/// A random operation against an address space.
#[derive(Debug, Clone, Copy)]
enum SpaceOp {
    Touch { page: u64, write: bool },
    MarkRemote { page: u64 },
    Install { page: u64 },
    Clean { page: u64 },
}

fn space_ops(pages: u64) -> impl Strategy<Value = Vec<SpaceOp>> {
    let op = (0u64..pages, 0u8..4, any::<bool>()).prop_map(|(page, kind, write)| match kind {
        0 => SpaceOp::Touch { page, write },
        1 => SpaceOp::MarkRemote { page },
        2 => SpaceOp::Install { page },
        _ => SpaceOp::Clean { page },
    });
    prop::collection::vec(op, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn address_space_counters_never_drift(ops in space_ops(32)) {
        let layout = MemoryLayout::new(4096, 30 * 4096, 4096);
        let mut space = AddressSpace::new(layout);
        for op in ops {
            match op {
                SpaceOp::Touch { page, write } => {
                    let _ = space.touch(PageId(page), write);
                }
                SpaceOp::MarkRemote { page } => space.mark_remote(PageId(page)),
                SpaceOp::Install { page } => {
                    if space.state(PageId(page)) == PageState::Remote {
                        space.install(PageId(page));
                    }
                }
                SpaceOp::Clean { page } => space.clean(PageId(page)),
            }
            space.check_counters();
            prop_assert!(space.resident_pages() + space.remote_pages() <= space.total_pages());
            prop_assert!(space.dirty_pages() <= space.resident_pages());
        }
    }

    #[test]
    fn touch_semantics_are_exact(ops in space_ops(32)) {
        let layout = MemoryLayout::new(4096, 30 * 4096, 4096);
        let mut space = AddressSpace::new(layout);
        for op in ops {
            if let SpaceOp::Touch { page, write } = op {
                let before = space.state(PageId(page));
                let outcome = space.touch(PageId(page), write);
                match before {
                    PageState::Untouched => {
                        prop_assert_eq!(outcome, TouchOutcome::LocalAllocate);
                        prop_assert_eq!(space.state(PageId(page)), PageState::Resident { dirty: true });
                    }
                    PageState::Resident { dirty } => {
                        prop_assert_eq!(outcome, TouchOutcome::Hit);
                        prop_assert_eq!(
                            space.state(PageId(page)),
                            PageState::Resident { dirty: dirty || write }
                        );
                    }
                    PageState::Remote => {
                        prop_assert_eq!(outcome, TouchOutcome::RemoteFault);
                        prop_assert_eq!(space.state(PageId(page)), PageState::Remote);
                    }
                }
            } else if let SpaceOp::MarkRemote { page } = op {
                space.mark_remote(PageId(page));
            }
        }
    }

    #[test]
    fn page_table_partition_invariant(
        mapped in 1u64..64,
        transfers in prop::collection::vec(0u64..64, 0..100),
        flushes in prop::collection::vec(0u64..64, 0..50),
    ) {
        let mut table = PageTablePair::at_migration((0..mapped).map(PageId));
        for &p in &flushes {
            if table.lookup(PageId(p)) == Some(PageLocation::Origin) {
                table.flush_to_file_server(PageId(p));
            }
        }
        for &p in &transfers {
            match table.lookup(PageId(p)) {
                Some(PageLocation::Origin) | Some(PageLocation::FileServer) => {
                    table.transfer_to_destination(PageId(p));
                }
                _ => {}
            }
        }
        table.check_invariants();
        // HPT is exactly the origin-stored subset.
        let hpt: Vec<PageId> = table.hpt_pages().collect();
        prop_assert_eq!(hpt.len() as u64, table.pages_at_origin());
        for p in hpt {
            prop_assert_eq!(table.lookup(p), Some(PageLocation::Origin));
        }
        // MPT byte size tracks the mapped count exactly.
        prop_assert_eq!(table.mpt_bytes(), table.mapped_pages() * 6);
    }

    #[test]
    fn unmap_rule_matches_storage_location(mapped in 1u64..32, moves in prop::collection::vec(0u64..32, 0..32)) {
        use ampom_mem::table::TableUpdate;
        let mut table = PageTablePair::at_migration((0..mapped).map(PageId));
        for &p in &moves {
            if table.lookup(PageId(p)) == Some(PageLocation::Origin) {
                table.transfer_to_destination(PageId(p));
            }
        }
        for p in 0..mapped {
            let loc = table.lookup(PageId(p)).unwrap();
            let upd = table.unmap(PageId(p));
            // §2.2: both tables iff the page was stored at the origin.
            prop_assert_eq!(upd == TableUpdate::Both, loc == PageLocation::Origin);
        }
        prop_assert_eq!(table.mapped_pages(), 0);
    }

    #[test]
    fn layout_regions_partition_the_space(code in 1u64..20, data in 1u64..500, stack in 1u64..20) {
        let layout = MemoryLayout::new(code * 4096, data * 4096, stack * 4096);
        let all: Vec<PageId> = layout.all_pages().collect();
        prop_assert_eq!(all.len() as u64, layout.total_pages());
        // Every page belongs to exactly one region, contiguously.
        for (i, p) in all.iter().enumerate() {
            prop_assert_eq!(p.index(), i as u64);
            prop_assert!(layout.region_of(*p).is_some());
        }
        prop_assert!(layout.region_of(PageId(layout.total_pages())).is_none());
    }

    #[test]
    fn freeze_pages_always_valid(code in 1u64..8, data in 1u64..100, stack in 1u64..8, cur in 0u64..200) {
        let layout = MemoryLayout::new(code * 4096, data * 4096, stack * 4096);
        let [c, d, s] = layout.freeze_pages(PageId(cur));
        use ampom_mem::region::RegionKind;
        prop_assert_eq!(layout.region_of(c), Some(RegionKind::Code));
        prop_assert_eq!(layout.region_of(d), Some(RegionKind::Data));
        prop_assert_eq!(layout.region_of(s), Some(RegionKind::Stack));
    }
}
