//! Property tests for the virtual-memory substrate.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_mem::space::{AddressSpace, PageState, TouchOutcome};
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_sim::propcheck::{forall, Gen};

/// A random operation against an address space.
#[derive(Debug, Clone, Copy)]
enum SpaceOp {
    Touch { page: u64, write: bool },
    MarkRemote { page: u64 },
    Install { page: u64 },
    Clean { page: u64 },
}

fn space_ops(g: &mut Gen, pages: u64) -> Vec<SpaceOp> {
    g.vec(0..300, |g| {
        let page = g.u64(0..pages);
        match g.u64(0..4) {
            0 => SpaceOp::Touch {
                page,
                write: g.bool(0.5),
            },
            1 => SpaceOp::MarkRemote { page },
            2 => SpaceOp::Install { page },
            _ => SpaceOp::Clean { page },
        }
    })
}

#[test]
fn address_space_counters_never_drift() {
    forall("space-counters", 256, |g| {
        let ops = space_ops(g, 32);
        let layout = MemoryLayout::new(4096, 30 * 4096, 4096);
        let mut space = AddressSpace::new(layout);
        for op in ops {
            match op {
                SpaceOp::Touch { page, write } => {
                    let _ = space.touch(PageId(page), write);
                }
                SpaceOp::MarkRemote { page } => space.mark_remote(PageId(page)),
                SpaceOp::Install { page } => {
                    if space.state(PageId(page)) == PageState::Remote {
                        space.install(PageId(page));
                    }
                }
                SpaceOp::Clean { page } => space.clean(PageId(page)),
            }
            space.check_counters();
            assert!(space.resident_pages() + space.remote_pages() <= space.total_pages());
            assert!(space.dirty_pages() <= space.resident_pages());
        }
    });
}

#[test]
fn touch_semantics_are_exact() {
    forall("touch-semantics", 256, |g| {
        let ops = space_ops(g, 32);
        let layout = MemoryLayout::new(4096, 30 * 4096, 4096);
        let mut space = AddressSpace::new(layout);
        for op in ops {
            if let SpaceOp::Touch { page, write } = op {
                let before = space.state(PageId(page));
                let outcome = space.touch(PageId(page), write);
                match before {
                    PageState::Untouched => {
                        assert_eq!(outcome, TouchOutcome::LocalAllocate);
                        assert_eq!(
                            space.state(PageId(page)),
                            PageState::Resident { dirty: true }
                        );
                    }
                    PageState::Resident { dirty } => {
                        assert_eq!(outcome, TouchOutcome::Hit);
                        assert_eq!(
                            space.state(PageId(page)),
                            PageState::Resident {
                                dirty: dirty || write
                            }
                        );
                    }
                    PageState::Remote => {
                        assert_eq!(outcome, TouchOutcome::RemoteFault);
                        assert_eq!(space.state(PageId(page)), PageState::Remote);
                    }
                }
            } else if let SpaceOp::MarkRemote { page } = op {
                space.mark_remote(PageId(page));
            }
        }
    });
}

#[test]
fn page_table_partition_invariant() {
    forall("table-partition", 256, |g| {
        let mapped = g.u64(1..64);
        let transfers = g.vec_u64(0..100, 0..64);
        let flushes = g.vec_u64(0..50, 0..64);
        let mut table = PageTablePair::at_migration((0..mapped).map(PageId));
        for &p in &flushes {
            if table.lookup(PageId(p)) == Some(PageLocation::Origin) {
                // A flush leaves the origin, so both tables update — the
                // same contract as every sibling origin-departure.
                use ampom_mem::table::TableUpdate;
                let hpt_before = table.hpt_update_count();
                assert_eq!(table.flush_to_file_server(PageId(p)), TableUpdate::Both);
                assert_eq!(table.hpt_update_count(), hpt_before + 1);
            }
        }
        for &p in &transfers {
            match table.lookup(PageId(p)) {
                Some(PageLocation::Origin) | Some(PageLocation::FileServer) => {
                    table.transfer_to_destination(PageId(p));
                }
                _ => {}
            }
        }
        table.check_invariants();
        // HPT is exactly the origin-stored subset.
        let hpt: Vec<PageId> = table.hpt_pages().collect();
        assert_eq!(hpt.len() as u64, table.pages_at_origin());
        for p in hpt {
            assert_eq!(table.lookup(p), Some(PageLocation::Origin));
        }
        // MPT byte size tracks the mapped count exactly.
        assert_eq!(table.mpt_bytes(), table.mapped_pages() * 6);
    });
}

#[test]
fn unmap_rule_matches_storage_location() {
    forall("unmap-rule", 256, |g| {
        use ampom_mem::table::TableUpdate;
        let mapped = g.u64(1..32);
        let moves = g.vec_u64(0..32, 0..32);
        let mut table = PageTablePair::at_migration((0..mapped).map(PageId));
        for &p in &moves {
            if table.lookup(PageId(p)) == Some(PageLocation::Origin) {
                table.transfer_to_destination(PageId(p));
            }
        }
        for p in 0..mapped {
            let loc = table.lookup(PageId(p)).unwrap();
            let upd = table.unmap(PageId(p));
            // §2.2: both tables iff the page was stored at the origin.
            assert_eq!(upd == TableUpdate::Both, loc == PageLocation::Origin);
        }
        assert_eq!(table.mapped_pages(), 0);
    });
}

#[test]
fn layout_regions_partition_the_space() {
    forall("layout-partition", 256, |g| {
        let code = g.u64(1..20);
        let data = g.u64(1..500);
        let stack = g.u64(1..20);
        let layout = MemoryLayout::new(code * 4096, data * 4096, stack * 4096);
        let all: Vec<PageId> = layout.all_pages().collect();
        assert_eq!(all.len() as u64, layout.total_pages());
        // Every page belongs to exactly one region, contiguously.
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.index(), i as u64);
            assert!(layout.region_of(*p).is_some());
        }
        assert!(layout.region_of(PageId(layout.total_pages())).is_none());
    });
}

#[test]
fn freeze_pages_always_valid() {
    forall("freeze-pages", 256, |g| {
        let code = g.u64(1..8);
        let data = g.u64(1..100);
        let stack = g.u64(1..8);
        let cur = g.u64(0..200);
        let layout = MemoryLayout::new(code * 4096, data * 4096, stack * 4096);
        let [c, d, s] = layout.freeze_pages(PageId(cur));
        use ampom_mem::region::RegionKind;
        assert_eq!(layout.region_of(c), Some(RegionKind::Code));
        assert_eq!(layout.region_of(d), Some(RegionKind::Data));
        assert_eq!(layout.region_of(s), Some(RegionKind::Stack));
    });
}
