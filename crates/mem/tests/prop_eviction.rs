//! Model-based property tests for the CLOCK evictor and the radix table.

use ampom_mem::eviction::ClockEvictor;
use ampom_mem::page::PageId;
use ampom_mem::radix::RadixPageTable;
use ampom_sim::propcheck::forall;
use std::collections::HashSet;

#[test]
fn evictor_never_exceeds_its_limit() {
    forall("evictor-limit", 128, |g| {
        let limit = g.u64(1..16);
        // Random evictor workload: a sequence of installs/touches with
        // forced evictions whenever capacity is hit.
        let script = g.vec(1..400, |g| (g.u64(0..3), g.u64(0..64)));
        let mut ev = ClockEvictor::new(64, limit);
        let mut resident: HashSet<u64> = HashSet::new();
        for (op, page) in script {
            match op {
                0 => {
                    // Install (evicting first if needed), unless present.
                    if !ev.contains(PageId(page)) {
                        while ev.at_capacity() {
                            let v = ev.evict(PageId(page));
                            assert!(resident.remove(&v.index()));
                        }
                        ev.on_install(PageId(page));
                        resident.insert(page);
                    }
                }
                1 => ev.on_touch(PageId(page)),
                _ => {
                    ev.remove(PageId(page));
                    resident.remove(&page);
                }
            }
            assert!(ev.resident() <= limit);
            assert_eq!(ev.resident(), resident.len() as u64);
            // Membership agrees with the model.
            for p in 0..64u64 {
                assert_eq!(ev.contains(PageId(p)), resident.contains(&p));
            }
        }
    });
}

#[test]
fn evictor_victims_are_always_resident() {
    forall("evictor-victims", 128, |g| {
        let limit = g.u64(2..8);
        let pages = g.vec_u64(2..100, 0..32);
        let mut ev = ClockEvictor::new(32, limit);
        let mut resident: HashSet<u64> = HashSet::new();
        for page in pages {
            if resident.contains(&page) {
                ev.on_touch(PageId(page));
                continue;
            }
            while ev.at_capacity() {
                let v = ev.evict(PageId(page));
                assert!(resident.remove(&v.index()), "victim {v} was not resident");
                assert_ne!(v, PageId(page));
            }
            ev.on_install(PageId(page));
            resident.insert(page);
        }
    });
}

#[test]
fn radix_matches_a_set_model() {
    forall("radix-set-model", 128, |g| {
        let script = g.vec(0..300, |g| (g.bool(0.5), g.u64(0..100_000)));
        let mut table = RadixPageTable::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (map, page) in script {
            if map {
                let newly = table.map(PageId(page));
                assert_eq!(newly, model.insert(page));
            } else {
                let was = table.unmap(PageId(page));
                assert_eq!(was, model.remove(&page));
            }
            assert_eq!(table.mapped_pages(), model.len() as u64);
        }
        // Full iteration agrees with the model, sorted.
        let got: Vec<u64> = table.mapped().map(|p| p.index()).collect();
        let mut want: Vec<u64> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // And the packed MPT size is 6 bytes per mapped page.
        let (bytes, _) = table.pack_mpt();
        assert_eq!(bytes, table.mapped_pages() * 6);
    });
}
