//! Model-based property tests for the CLOCK evictor and the radix table.

use ampom_mem::eviction::ClockEvictor;
use ampom_mem::page::PageId;
use ampom_mem::radix::RadixPageTable;
use proptest::prelude::*;
use std::collections::HashSet;

/// Random evictor workload: a sequence of installs/touches with forced
/// evictions whenever capacity is hit.
fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..3, 0u64..64), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evictor_never_exceeds_its_limit(limit in 1u64..16, script in ops()) {
        let mut ev = ClockEvictor::new(64, limit);
        let mut resident: HashSet<u64> = HashSet::new();
        for (op, page) in script {
            match op {
                0 => {
                    // Install (evicting first if needed), unless present.
                    if !ev.contains(PageId(page)) {
                        while ev.at_capacity() {
                            let v = ev.evict(PageId(page));
                            prop_assert!(resident.remove(&v.index()));
                        }
                        ev.on_install(PageId(page));
                        resident.insert(page);
                    }
                }
                1 => ev.on_touch(PageId(page)),
                _ => {
                    ev.remove(PageId(page));
                    resident.remove(&page);
                }
            }
            prop_assert!(ev.resident() <= limit);
            prop_assert_eq!(ev.resident(), resident.len() as u64);
            // Membership agrees with the model.
            for p in 0..64u64 {
                prop_assert_eq!(ev.contains(PageId(p)), resident.contains(&p));
            }
        }
    }

    #[test]
    fn evictor_victims_are_always_resident(limit in 2u64..8, pages in prop::collection::vec(0u64..32, 2..100)) {
        let mut ev = ClockEvictor::new(32, limit);
        let mut resident: HashSet<u64> = HashSet::new();
        for page in pages {
            if resident.contains(&page) {
                ev.on_touch(PageId(page));
                continue;
            }
            while ev.at_capacity() {
                let v = ev.evict(PageId(page));
                prop_assert!(resident.remove(&v.index()), "victim {v} was not resident");
                prop_assert_ne!(v, PageId(page));
            }
            ev.on_install(PageId(page));
            resident.insert(page);
        }
    }

    #[test]
    fn radix_matches_a_set_model(script in prop::collection::vec((any::<bool>(), 0u64..100_000), 0..300)) {
        let mut table = RadixPageTable::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (map, page) in script {
            if map {
                let newly = table.map(PageId(page));
                prop_assert_eq!(newly, model.insert(page));
            } else {
                let was = table.unmap(PageId(page));
                prop_assert_eq!(was, model.remove(&page));
            }
            prop_assert_eq!(table.mapped_pages(), model.len() as u64);
        }
        // Full iteration agrees with the model, sorted.
        let got: Vec<u64> = table.mapped().map(|p| p.index()).collect();
        let mut want: Vec<u64> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // And the packed MPT size is 6 bytes per mapped page.
        let (bytes, _) = table.pack_mpt();
        prop_assert_eq!(bytes, table.mapped_pages() * 6);
    }
}
