//! The spatial locality score `S` (paper Eq. 1).
//!
//! "The spatial locality score S of a process is defined as the summation
//! of the fraction of stride_d references in W:
//!
//! ```text
//!     S = Σ_{d=1}^{dmax}  stride_d / (l × d)
//! ```
//!
//! Since S is a normalized score in the range of [0, 1], it can be used to
//! describe how much a process exhibits spatial locality."
//!
//! With pathological windows containing repeated (non-consecutive) pages, a
//! position can participate in links of several distances, which can push
//! the raw sum marginally above 1; we clamp, preserving the paper's stated
//! range.

use crate::census::Census;

/// The outcome of one Eq. 1 evaluation, preserving the raw sum so
/// pathological windows are observable instead of silently normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreDetail {
    /// The unclamped Σ stride_d / (l·d) sum.
    pub raw: f64,
    /// The score after clamping to [0, 1].
    pub score: f64,
    /// True when the clamp actually fired (raw sum above 1).
    pub clamped: bool,
}

/// Computes `S` from a completed census, reporting whether the clamp to
/// the paper's stated [0, 1] range fired.
///
/// Returns a zero score for an empty window.
pub fn spatial_score_detail(census: &Census) -> ScoreDetail {
    if census.l == 0 {
        return ScoreDetail {
            raw: 0.0,
            score: 0.0,
            clamped: false,
        };
    }
    let l = census.l as f64;
    let raw: f64 = census
        .stride_counts
        .iter()
        .enumerate()
        .map(|(i, &count)| count as f64 / (l * (i + 1) as f64))
        .sum();
    let score = raw.clamp(0.0, 1.0);
    ScoreDetail {
        raw,
        score,
        clamped: raw > 1.0,
    }
}

/// Computes `S` from a completed census.
///
/// Returns 0 for an empty window.
pub fn spatial_score(census: &Census) -> f64 {
    spatial_score_detail(census).score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census;

    #[test]
    fn paper_worked_example_scores_quarter() {
        // §3.2: "{10,99,11,34,12,85} … S = stride_2/(6 × 2) = 0.25."
        let c = census(&[10, 99, 11, 34, 12, 85], 4);
        assert!((spatial_score(&c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pure_sequential_scores_one() {
        // §3.2: "a process only does sequential access to consecutive pages
        // (e.g. {1,2,3,4...}) has S = 1."
        let pages: Vec<u64> = (1..=20).collect();
        let c = census(&pages, 4);
        assert!((spatial_score(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_zero() {
        let c = census(&[77, 3001, 12, 950, 444, 18, 7002], 4);
        assert_eq!(spatial_score(&c), 0.0);
    }

    #[test]
    fn first_paper_example_score() {
        // {1,99,2,45,3,78,4}: stride_2 = 4, l = 7 → S = 4/14.
        let c = census(&[1, 99, 2, 45, 3, 78, 4], 4);
        assert!((spatial_score(&c) - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn three_lane_interleave_scores_one_third() {
        // STREAM-like: three interleaved sequential streams → every
        // position participates in a stride-3 link (interior ones), so
        // stride_3 ≈ l and S ≈ l/(l·3) = 1/3.
        let mut pages = Vec::new();
        for i in 0..7u64 {
            pages.push(100 + i);
            pages.push(500 + i);
            pages.push(900 + i);
        }
        let c = census(&pages[..20], 4);
        let s = spatial_score(&c);
        assert!((0.28..=0.34).contains(&s), "S = {s}");
    }

    #[test]
    fn score_is_clamped_to_unit_interval() {
        // Duplicates create multi-distance participation; the clamp keeps
        // S ≤ 1 regardless.
        let c = census(&[5, 7, 5, 7, 5, 6], 4);
        let s = spatial_score(&c);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn empty_window_scores_zero() {
        let c = census(&[], 4);
        assert_eq!(spatial_score(&c), 0.0);
        assert!(!spatial_score_detail(&c).clamped);
    }

    #[test]
    fn clamp_path_reports_raw_sum_and_flag() {
        // A census whose stride counts alone force the raw sum above 1:
        // with l = 4, six stride-1 links give raw = 6/4 = 1.5. Such counts
        // arise from repeated-page windows where one position participates
        // in links of several distances.
        let c = Census {
            stride_counts: vec![6, 0, 0, 0],
            links: Vec::new(),
            outstanding: Vec::new(),
            l: 4,
        };
        let d = spatial_score_detail(&c);
        assert!(d.clamped, "raw sum {} must trip the clamp", d.raw);
        assert!((d.raw - 1.5).abs() < 1e-12);
        assert_eq!(d.score, 1.0);
        assert_eq!(spatial_score(&c), 1.0);
    }

    #[test]
    fn unclamped_windows_report_clamped_false() {
        let c = census(&[10, 99, 11, 34, 12, 85], 4);
        let d = spatial_score_detail(&c);
        assert!(!d.clamped);
        assert_eq!(d.raw, d.score);
    }
}
