//! The spatial locality score `S` (paper Eq. 1).
//!
//! "The spatial locality score S of a process is defined as the summation
//! of the fraction of stride_d references in W:
//!
//! ```text
//!     S = Σ_{d=1}^{dmax}  stride_d / (l × d)
//! ```
//!
//! Since S is a normalized score in the range of [0, 1], it can be used to
//! describe how much a process exhibits spatial locality."
//!
//! With pathological windows containing repeated (non-consecutive) pages, a
//! position can participate in links of several distances, which can push
//! the raw sum marginally above 1; we clamp, preserving the paper's stated
//! range.

use crate::census::Census;

/// Computes `S` from a completed census.
///
/// Returns 0 for an empty window.
pub fn spatial_score(census: &Census) -> f64 {
    if census.l == 0 {
        return 0.0;
    }
    let l = census.l as f64;
    let s: f64 = census
        .stride_counts
        .iter()
        .enumerate()
        .map(|(i, &count)| count as f64 / (l * (i + 1) as f64))
        .sum();
    s.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census;

    #[test]
    fn paper_worked_example_scores_quarter() {
        // §3.2: "{10,99,11,34,12,85} … S = stride_2/(6 × 2) = 0.25."
        let c = census(&[10, 99, 11, 34, 12, 85], 4);
        assert!((spatial_score(&c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pure_sequential_scores_one() {
        // §3.2: "a process only does sequential access to consecutive pages
        // (e.g. {1,2,3,4...}) has S = 1."
        let pages: Vec<u64> = (1..=20).collect();
        let c = census(&pages, 4);
        assert!((spatial_score(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_zero() {
        let c = census(&[77, 3001, 12, 950, 444, 18, 7002], 4);
        assert_eq!(spatial_score(&c), 0.0);
    }

    #[test]
    fn first_paper_example_score() {
        // {1,99,2,45,3,78,4}: stride_2 = 4, l = 7 → S = 4/14.
        let c = census(&[1, 99, 2, 45, 3, 78, 4], 4);
        assert!((spatial_score(&c) - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn three_lane_interleave_scores_one_third() {
        // STREAM-like: three interleaved sequential streams → every
        // position participates in a stride-3 link (interior ones), so
        // stride_3 ≈ l and S ≈ l/(l·3) = 1/3.
        let mut pages = Vec::new();
        for i in 0..7u64 {
            pages.push(100 + i);
            pages.push(500 + i);
            pages.push(900 + i);
        }
        let c = census(&pages[..20], 4);
        let s = spatial_score(&c);
        assert!((0.28..=0.34).contains(&s), "S = {s}");
    }

    #[test]
    fn score_is_clamped_to_unit_interval() {
        // Duplicates create multi-distance participation; the clamp keeps
        // S ≤ 1 regardless.
        let c = census(&[5, 7, 5, 7, 5, 6], 4);
        let s = spatial_score(&c);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn empty_window_scores_zero() {
        let c = census(&[], 4);
        assert_eq!(spatial_score(&c), 0.0);
    }
}
