//! # ampom-core — lightweight process migration and adaptive memory
//! prefetching
//!
//! The primary contribution of Ho, Wang & Lau, *"Lightweight Process
//! Migration and Memory Prefetching in openMosix"* (IPDPS 2008),
//! reimplemented as a library over the simulated substrates in
//! `ampom-sim` / `ampom-net` / `ampom-mem` / `ampom-workloads`.
//!
//! ## The algorithm (paper §3)
//!
//! After a lightweight migration moves only three pages (plus the master
//! page table), the migrant demand-pages from its home node. AMPoM hides
//! those round trips by prefetching the migrant's **dependent zone**:
//!
//! 1. every page fault is recorded in a [`window::LookbackWindow`] of
//!    length 20 together with its time and the CPU utilisation,
//! 2. a [`census`] finds stride-1…4 reference streams in the window and
//!    the *outstanding* (still live) streams with their pivots,
//! 3. the [`score`] module computes the spatial locality score
//!    `S = Σ stride_d/(l·d)` (Eq. 1),
//! 4. the [`zone`] module sizes the dependent zone
//!    `N = (c'/c)·S·r·(2t0 + td + 1/r)` (Eq. 3) and splits it across the
//!    pivots,
//! 5. the [`prefetcher::AmpomPrefetcher`] batches the missing zone pages
//!    into the remote paging request sent at the fault.
//!
//! ## The system (paper §2)
//!
//! * [`migration`] — the freeze-time mechanisms of openMosix, NoPrefetch,
//!   AMPoM and the original FFA (Figure 2),
//! * [`deputy`] — the home-node deputy serving remote paging and forwarded
//!   system calls,
//! * [`monitor`] — the modified oM_infoD measuring RTT and available
//!   bandwidth,
//! * [`cluster`] — the two-node network path with NIC counters and
//!   optional cross traffic,
//! * [`runner`] — the discrete-event experiment runner producing
//!   [`metrics::RunReport`]s,
//! * [`scheduler`] — the §7 future-work sketch: load-balancing policies
//!   that exploit cheap migrations.
//!
//! ## Quick start
//!
//! ```
//! use ampom_core::migration::Scheme;
//! use ampom_core::runner::{run_workload, RunConfig};
//! use ampom_sim::time::SimDuration;
//! use ampom_workloads::synthetic::Sequential;
//!
//! let mut workload = Sequential::new(512, SimDuration::from_micros(10));
//! let report = run_workload(&mut workload, &RunConfig::new(Scheme::Ampom));
//! assert!(report.pages_prefetched > 0);
//! assert!(report.freeze_time < SimDuration::from_millis(200));
//! ```

pub mod census;
pub mod cluster;
pub mod deputy;
pub mod metrics;
pub mod migration;
pub mod monitor;
pub mod prefetcher;
pub mod remigration;
pub mod runner;
pub mod scheduler;
pub mod validate;
pub mod score;
pub mod vm;
pub mod window;
pub mod zone;

pub use metrics::RunReport;
pub use migration::Scheme;
pub use prefetcher::{AmpomConfig, AmpomPrefetcher};
pub use runner::{run_workload, RunConfig};
