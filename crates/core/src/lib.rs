//! # ampom-core — lightweight process migration and adaptive memory
//! prefetching
//!
//! The primary contribution of Ho, Wang & Lau, *"Lightweight Process
//! Migration and Memory Prefetching in openMosix"* (IPDPS 2008),
//! reimplemented as a library over the simulated substrates in
//! `ampom-sim` / `ampom-net` / `ampom-mem` / `ampom-workloads`.
//!
//! ## The algorithm (paper §3)
//!
//! After a lightweight migration moves only three pages (plus the master
//! page table), the migrant demand-pages from its home node. AMPoM hides
//! those round trips by prefetching the migrant's **dependent zone**:
//!
//! 1. every page fault is recorded in a [`window::LookbackWindow`] of
//!    length 20 together with its time and the CPU utilisation,
//! 2. a [`census`] finds stride-1…4 reference streams in the window and
//!    the *outstanding* (still live) streams with their pivots,
//! 3. the [`score`] module computes the spatial locality score
//!    `S = Σ stride_d/(l·d)` (Eq. 1),
//! 4. the [`zone`] module sizes the dependent zone
//!    `N = (c'/c)·S·r·(2t0 + td + 1/r)` (Eq. 3) and splits it across the
//!    pivots,
//! 5. the [`prefetcher::AmpomPrefetcher`] batches the missing zone pages
//!    into the remote paging request sent at the fault.
//!
//! ## The system (paper §2)
//!
//! * [`migration`] — the freeze-time mechanisms of openMosix, NoPrefetch,
//!   AMPoM and the original FFA (Figure 2),
//! * [`deputy`] — the home-node deputy serving remote paging and forwarded
//!   system calls,
//! * [`monitor`] — the modified oM_infoD measuring RTT and available
//!   bandwidth,
//! * [`cluster`] — the two-node network path with NIC counters and
//!   optional cross traffic,
//! * [`reliability`] — the failure model: lossy links, deputy outages,
//!   and the migrant's retry/timeout/fallback recovery protocol,
//! * [`runner`] — the discrete-event experiment runner producing
//!   [`metrics::RunReport`]s,
//! * [`scheduler`] — the §7 future-work sketch: load-balancing policies
//!   that exploit cheap migrations.
//!
//! ## Quick start
//!
//! [`experiment::Experiment`] is the single entry point: describe the
//! run declaratively, `build()` validates it into a typed
//! [`error::AmpomError`] instead of panicking, `run()` yields a
//! [`metrics::RunReport`].
//!
//! ```
//! use ampom_core::{Experiment, Scheme};
//! use ampom_sim::time::SimDuration;
//!
//! let report = Experiment::new(Scheme::Ampom)
//!     .sequential(512, SimDuration::from_micros(10))
//!     .seed(7)
//!     .build()
//!     .expect("valid experiment")
//!     .run()
//!     .expect("run succeeds");
//! assert!(report.pages_prefetched > 0);
//! assert!(report.freeze_time < SimDuration::from_millis(200));
//! ```
//!
//! To reproduce a whole figure-grid in one call, describe it as a
//! [`sweep::SweepSpec`] — the sweep engine shards the cartesian product
//! of schemes × workloads × links across a thread pool with per-cell
//! deterministic seeds, so the parallel result is bit-identical to a
//! serial run:
//!
//! ```
//! use ampom_core::sweep::SweepSpec;
//! use ampom_core::WorkloadSpec;
//! use ampom_sim::time::SimDuration;
//!
//! let report = SweepSpec::new()
//!     .workload(WorkloadSpec::Sequential {
//!         pages: 256,
//!         cpu: SimDuration::from_micros(10),
//!     })
//!     .repeats(2)
//!     .run()
//!     .expect("valid sweep");
//! assert_eq!(report.cells.len(), 3); // openMosix, NoPrefetch, AMPoM
//! ```

pub mod census;
pub mod chaos;
pub mod cluster;
pub mod deputy;
pub mod error;
pub mod experiment;
pub mod lifecycle;
pub mod metrics;
pub mod migration;
pub mod monitor;
pub mod multirun;
pub mod policy;
pub mod prefetcher;
pub mod reliability;
pub mod remigration;
pub mod runner;
pub mod scheduler;
pub mod score;
pub mod slo;
pub mod sweep;
pub mod transport;
pub mod validate;
pub mod vm;
pub mod window;
pub mod zone;

pub use chaos::{scenario, scenarios, ChaosScenario, ScenarioOutcome};
pub use error::AmpomError;
pub use experiment::{Experiment, WorkloadSpec};
pub use lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport, WritebackSpec};
pub use metrics::RunReport;
pub use migration::Scheme;
pub use multirun::{run_multi, MigrantSpec, MultiRunReport, MultiRunSpec};
pub use policy::{
    IndigoConfig, IndigoPrefetcher, LeapConfig, LeapPrefetcher, PolicySpec, PrefetchFeedback,
    PrefetchObservation, Prefetcher,
};
pub use prefetcher::{AmpomConfig, AmpomPrefetcher};
pub use reliability::{FailurePolicy, FaultProfile, RetryPolicy, RetrySchedule, RetryStep};
pub use runner::{run_workload, try_run_workload, RunConfig};
pub use slo::{QuantileSketch, SloOutcome, SloReport, SloSpec, SloVerdict};
pub use sweep::{SweepReport, SweepSpec};
pub use transport::{run_with_transport, SimulatedTransport, Transport};
