//! The parallel experiment sweep engine.
//!
//! The paper's evaluation (§5) is a grid — schemes × kernels × sizes ×
//! network conditions — and every figure projects columns out of it.
//! [`SweepSpec`] describes such a grid declaratively; [`SweepSpec::run`]
//! shards the cartesian product across a self-scheduling thread pool
//! (plain `std::thread` + channels, no external dependencies) and folds
//! the per-run [`RunReport`]s into a [`SweepReport`] with per-cell
//! percentiles and confidence intervals over repeats.
//!
//! ## Determinism
//!
//! Every run's seed is derived *from its grid coordinate*, not from
//! scheduling order: workload index and repeat index feed
//! [`ampom_sim::rng::SimRng::fork`] chains. Two consequences:
//!
//! * a parallel sweep is bit-identical to [`SweepSpec::run_serial`] on
//!   the same spec — the determinism tests compare
//!   [`RunReport::fingerprint`]s across thread counts;
//! * the seed deliberately ignores scheme and link, so every scheme sees
//!   the same reference stream in a cell row (the paper's comparisons
//!   require it — same reason `hpcc`'s matrix pins one seed per kernel).
//!
//! [`SeedMode::Fixed`] pins one seed for the whole grid instead, which is
//! what the historical `hpcc` matrix (seed 42) uses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use ampom_net::link::LinkConfig;
use ampom_sim::rng::SimRng;

use crate::error::AmpomError;
use crate::experiment::{Experiment, WorkloadSpec};
use crate::metrics::RunReport;
use crate::migration::Scheme;
use crate::multirun::MultiRunReport;
use crate::policy::PolicySpec;
use crate::prefetcher::AmpomConfig;
use crate::reliability::FaultProfile;
use crate::runner::CrossTrafficSpec;

/// Worker threads to use when the caller does not pin a count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a work list, one worker per
/// available core. See [`par_map_with`].
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(None, items, f)
}

/// Order-preserving parallel map with an explicit worker count.
///
/// Work is self-scheduling: each worker claims the next unclaimed index
/// with an atomic counter, so an expensive item never stalls the queue
/// behind it (the work-stealing effect without per-worker deques —
/// there is one shared queue and idle workers drain it). Results are
/// returned in input order regardless of completion order. Falls back to
/// a plain sequential map when one worker (or one item) makes spawning
/// pointless.
pub fn par_map_with<T, R, F>(threads: Option<usize>, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.unwrap_or_else(default_threads).clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let f = &f;
            let slots = &slots;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot claimed once");
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    })
}

/// How per-cell seeds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Derive a seed per (workload, repeat) coordinate from a base seed.
    /// Schemes and links in the same row share the reference stream.
    Grid {
        /// The root of the derivation chain.
        base_seed: u64,
    },
    /// One seed for every cell (the historical `hpcc` matrix behaviour).
    Fixed(u64),
}

/// A labelled link axis entry.
pub type LinkAxis = (String, LinkConfig);

/// A labelled cross-traffic axis entry (`None` = quiet network).
pub type CrossAxis = (String, Option<CrossTrafficSpec>);

/// A labelled fault-profile axis entry (`None` = reliable network and
/// deputy, the historical behaviour).
pub type FaultAxis = (String, Option<FaultProfile>);

/// Declarative description of an experiment grid.
///
/// ```
/// use ampom_core::sweep::SweepSpec;
/// use ampom_core::experiment::WorkloadSpec;
/// use ampom_sim::time::SimDuration;
///
/// let report = SweepSpec::new()
///     .workload(WorkloadSpec::Sequential {
///         pages: 256,
///         cpu: SimDuration::from_micros(10),
///     })
///     .repeats(2)
///     .run()
///     .unwrap();
/// assert_eq!(report.cells.len(), 3); // the three evaluated schemes
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    schemes: Vec<Scheme>,
    workloads: Vec<WorkloadSpec>,
    links: Vec<LinkAxis>,
    cross: Vec<CrossAxis>,
    faults: Vec<FaultAxis>,
    migrants: Vec<u32>,
    policies: Vec<PolicySpec>,
    repeats: u32,
    threads: Option<usize>,
    seed_mode: SeedMode,
    ampom: AmpomConfig,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty grid over the paper's three evaluated schemes, the
    /// standard cluster LAN, and a quiet network. Add workloads before
    /// running.
    pub fn new() -> Self {
        SweepSpec {
            schemes: Scheme::EVALUATED.to_vec(),
            workloads: Vec::new(),
            links: vec![(
                "fast-ethernet".into(),
                ampom_net::calibration::fast_ethernet(),
            )],
            cross: vec![("quiet".into(), None)],
            faults: vec![("no-faults".into(), None)],
            migrants: vec![1],
            policies: vec![PolicySpec::Ampom],
            repeats: 1,
            threads: None,
            seed_mode: SeedMode::Grid { base_seed: 0x5EED },
            ampom: AmpomConfig::default(),
        }
    }

    /// Replaces the scheme axis.
    pub fn schemes(mut self, schemes: impl Into<Vec<Scheme>>) -> Self {
        self.schemes = schemes.into();
        self
    }

    /// Appends one workload to the workload axis.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Replaces the workload axis.
    pub fn workloads(mut self, specs: impl Into<Vec<WorkloadSpec>>) -> Self {
        self.workloads = specs.into();
        self
    }

    /// Replaces the link axis (first call with a real axis should clear
    /// the default by passing the full set).
    pub fn links(mut self, links: impl Into<Vec<LinkAxis>>) -> Self {
        self.links = links.into();
        self
    }

    /// Appends one labelled link to the link axis.
    pub fn link(mut self, label: impl Into<String>, link: LinkConfig) -> Self {
        self.links.push((label.into(), link));
        self
    }

    /// Replaces the cross-traffic axis.
    pub fn cross_traffic(mut self, cross: impl Into<Vec<CrossAxis>>) -> Self {
        self.cross = cross.into();
        self
    }

    /// Replaces the fault axis (each entry is a labelled failure model;
    /// `None` keeps the reliable default).
    pub fn fault_axis(mut self, faults: impl Into<Vec<FaultAxis>>) -> Self {
        self.faults = faults.into();
        self
    }

    /// Appends one labelled fault profile to the fault axis.
    pub fn fault(mut self, label: impl Into<String>, profile: FaultProfile) -> Self {
        self.faults.push((label.into(), Some(profile)));
        self
    }

    /// Replaces the concurrent-migrant axis (default `[1]`, the classic
    /// single-migrant grid). An entry `n > 1` runs its cells as
    /// n-migrant multi-runs over one shared, sharded deputy
    /// ([`crate::multirun::run_multi`]), reporting per-migrant results
    /// plus fairness and saturation metrics.
    pub fn migrants(mut self, counts: impl Into<Vec<u32>>) -> Self {
        self.migrants = counts.into();
        self
    }

    /// Replaces the prefetch-policy axis (default `[PolicySpec::Ampom]`,
    /// the historical single-policy grid — cell counts and seeds are
    /// unchanged until a second policy is added). Policies only shape
    /// AMPoM-scheme cells; openMosix and NoPrefetch cells ignore the axis
    /// value but are still enumerated per entry, so a bake-off grid stays
    /// rectangular.
    pub fn policies(mut self, policies: impl Into<Vec<PolicySpec>>) -> Self {
        self.policies = policies.into();
        self
    }

    /// Appends one prefetch policy to the policy axis.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policies.push(policy);
        self
    }

    /// Repeats per cell (confidence intervals need ≥ 2).
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }

    /// Pins the worker-thread count (default: one per core).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Grid-derived seeding from `base_seed` (the default mode).
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.seed_mode = SeedMode::Grid { base_seed };
        self
    }

    /// One fixed seed for every cell.
    pub fn fixed_seed(mut self, seed: u64) -> Self {
        self.seed_mode = SeedMode::Fixed(seed);
        self
    }

    /// AMPoM tunables applied to every AMPoM cell.
    pub fn ampom(mut self, ampom: AmpomConfig) -> Self {
        self.ampom = ampom;
        self
    }

    /// Checks every axis and knob; called by the run entry points.
    pub fn validate(&self) -> Result<(), AmpomError> {
        for (axis, empty) in [
            ("schemes", self.schemes.is_empty()),
            ("workloads", self.workloads.is_empty()),
            ("links", self.links.is_empty()),
            ("cross_traffic", self.cross.is_empty()),
            ("faults", self.faults.is_empty()),
            ("migrants", self.migrants.is_empty()),
            ("policies", self.policies.is_empty()),
        ] {
            if empty {
                return Err(AmpomError::EmptySweep(axis.into()));
            }
        }
        if self.migrants.contains(&0) {
            return Err(AmpomError::InvalidConfig(
                "migrants axis entries must be at least 1".into(),
            ));
        }
        if self.migrants.iter().any(|&m| m > 1) && self.faults.iter().any(|(_, p)| p.is_some()) {
            return Err(AmpomError::InvalidConfig(
                "multi-migrant cells do not support fault injection".into(),
            ));
        }
        if self.repeats == 0 {
            return Err(AmpomError::InvalidConfig(
                "repeats must be at least 1".into(),
            ));
        }
        if self.threads == Some(0) {
            return Err(AmpomError::InvalidConfig(
                "threads must be at least 1 (or unset for auto)".into(),
            ));
        }
        self.ampom.validate()?;
        for policy in &self.policies {
            policy.validate()?;
        }
        for spec in &self.workloads {
            spec.validate()?;
        }
        for (label, link) in &self.links {
            if link.capacity_bytes_per_sec == 0 {
                return Err(AmpomError::LinkDown(format!(
                    "link axis entry '{label}' has 0 capacity"
                )));
            }
        }
        for (label, profile) in &self.faults {
            if let Some(p) = profile {
                p.validate().map_err(|e| {
                    AmpomError::InvalidConfig(format!("fault axis entry '{label}': {e}"))
                })?;
            }
        }
        Ok(())
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.links.len()
            * self.cross.len()
            * self.faults.len()
            * self.migrants.len()
            * self.schemes.len()
            * self.policies.len()
    }

    /// Number of individual runs (cells × repeats).
    pub fn run_count(&self) -> usize {
        self.cell_count() * self.repeats as usize
    }

    /// The seed for a given (workload index, repeat) coordinate.
    pub fn seed_for(&self, workload_idx: usize, repeat: u32) -> u64 {
        match self.seed_mode {
            SeedMode::Fixed(s) => s,
            SeedMode::Grid { base_seed } => SimRng::seed_from_u64(base_seed)
                .fork(workload_idx as u64)
                .fork(u64::from(repeat))
                .base_seed(),
        }
    }

    /// Enumerates the grid in deterministic (workload, link, cross,
    /// faults, migrants, scheme) order as ready-to-run experiments, one
    /// per cell.
    fn cells(&self) -> Vec<CellCoord> {
        let mut out = Vec::with_capacity(self.cell_count());
        for (w_idx, spec) in self.workloads.iter().enumerate() {
            for (link_label, link) in &self.links {
                for (cross_label, cross) in &self.cross {
                    for (fault_label, faults) in &self.faults {
                        for &migrants in &self.migrants {
                            for &scheme in &self.schemes {
                                for policy in &self.policies {
                                    let mut exp = Experiment::new(scheme)
                                        .workload(spec.clone())
                                        .link(*link)
                                        .ampom(self.ampom.clone())
                                        .prefetch_policy(policy.clone())
                                        .repeats(self.repeats);
                                    if let Some(ct) = cross {
                                        exp = exp.cross_traffic(*ct);
                                    }
                                    if let Some(profile) = faults {
                                        exp = exp.faults(profile.clone());
                                    }
                                    out.push(CellCoord {
                                        scheme,
                                        workload: spec.label(),
                                        workload_idx: w_idx,
                                        link: link_label.clone(),
                                        cross: cross_label.clone(),
                                        faults: fault_label.clone(),
                                        migrants,
                                        policy: policy.label().to_string(),
                                        exp,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs the grid on the default thread count with no progress hook.
    pub fn run(&self) -> Result<SweepReport, AmpomError> {
        self.run_with_progress(|_| {})
    }

    /// Runs the grid strictly serially on the calling thread — the
    /// reference for the determinism guarantee.
    pub fn run_serial(&self) -> Result<SweepReport, AmpomError> {
        self.validate()?;
        let cells = self.cells();
        let jobs = self.jobs(&cells);
        let results: Vec<Result<JobOutcome, AmpomError>> = jobs
            .into_iter()
            .map(|job| self.execute(&cells, job))
            .collect();
        self.assemble(cells, results, 1)
    }

    /// Runs the grid in parallel, invoking `progress` after every
    /// completed run (from worker threads; the hook must be `Sync`).
    pub fn run_with_progress(
        &self,
        progress: impl Fn(Progress) + Sync,
    ) -> Result<SweepReport, AmpomError> {
        self.validate()?;
        let cells = self.cells();
        let jobs = self.jobs(&cells);
        let total = jobs.len();
        let threads = self
            .threads
            .unwrap_or_else(default_threads)
            .clamp(1, total.max(1));
        let completed = AtomicUsize::new(0);
        let results = par_map_with(Some(threads), jobs, |job| {
            let report = self.execute(&cells, job);
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            let cell = &cells[job.cell_idx];
            progress(Progress {
                completed: done,
                total,
                scheme: cell.scheme,
                workload: &cell.workload,
                link: &cell.link,
                repeat: job.repeat,
            });
            report
        });
        self.assemble(cells, results, threads)
    }

    fn jobs(&self, cells: &[CellCoord]) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(cells.len() * self.repeats as usize);
        for (cell_idx, _) in cells.iter().enumerate() {
            for repeat in 0..self.repeats {
                jobs.push(Job { cell_idx, repeat });
            }
        }
        jobs
    }

    fn execute(&self, cells: &[CellCoord], job: Job) -> Result<JobOutcome, AmpomError> {
        let cell = &cells[job.cell_idx];
        let seed = self.seed_for(cell.workload_idx, job.repeat);
        // The coordinate seed covers both the workload build and the
        // run's stochastic elements; `run_repeat` would re-derive from
        // the repeat index, so pin the final seed directly. The seed
        // deliberately ignores the migrants axis: an N-migrant cell's
        // migrant 0 replays the N=1 cell's exact stream, which is what
        // per-migrant slowdown comparisons need.
        let exp = cell.exp.clone().seed(seed);
        if cell.migrants <= 1 {
            return Ok(JobOutcome {
                reports: vec![exp.run()?],
                multi: None,
            });
        }
        let multi = exp.run_multi(cell.migrants)?;
        Ok(JobOutcome {
            multi: Some(MultiRunMetrics::from_report(&multi)),
            reports: multi.reports,
        })
    }

    fn assemble(
        &self,
        cells: Vec<CellCoord>,
        results: Vec<Result<JobOutcome, AmpomError>>,
        threads_used: usize,
    ) -> Result<SweepReport, AmpomError> {
        let repeats = self.repeats as usize;
        let mut iter = results.into_iter();
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            let mut reports = Vec::with_capacity(repeats);
            let mut multi = Vec::new();
            for _ in 0..repeats {
                let outcome = iter.next().expect("one result per job")?;
                reports.extend(outcome.reports);
                multi.extend(outcome.multi);
            }
            let summary = CellSummary::from_reports(&reports);
            out.push(SweepCell {
                scheme: cell.scheme,
                workload: cell.workload,
                link: cell.link,
                cross: cell.cross,
                faults: cell.faults,
                migrants: cell.migrants,
                policy: cell.policy,
                reports,
                multi,
                summary,
            });
        }
        Ok(SweepReport {
            cells: out,
            threads_used,
            repeats: self.repeats,
        })
    }
}

/// What one job produced: a single report for classic cells, the
/// per-migrant reports plus run-level metrics for multi-migrant cells.
struct JobOutcome {
    reports: Vec<RunReport>,
    multi: Option<MultiRunMetrics>,
}

/// Run-level metrics of one multi-migrant run (one per repeat).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRunMetrics {
    /// Max/min per-migrant service share (1.0 = perfectly fair).
    pub fairness_ratio: f64,
    /// Fraction of the makespan the shared deputy spent busy.
    pub saturation: f64,
    /// Slowest migrant's total time, seconds.
    pub makespan_s: f64,
    /// Demand/prefetch requests absorbed by coalescing, all migrants.
    pub pages_coalesced: u64,
}

impl MultiRunMetrics {
    fn from_report(report: &MultiRunReport) -> Self {
        MultiRunMetrics {
            fairness_ratio: report.fairness_ratio(),
            saturation: report.saturation(),
            makespan_s: report.makespan.as_secs_f64(),
            pages_coalesced: report.pages_coalesced.iter().sum(),
        }
    }
}

/// One enumerated grid cell (pre-seeding).
#[derive(Debug, Clone)]
struct CellCoord {
    scheme: Scheme,
    workload: String,
    workload_idx: usize,
    link: String,
    cross: String,
    faults: String,
    migrants: u32,
    policy: String,
    exp: Experiment,
}

/// One unit of work: a cell coordinate plus a repeat index.
#[derive(Debug, Clone, Copy)]
struct Job {
    cell_idx: usize,
    repeat: u32,
}

/// Progress callback payload: one completed run out of the grid total.
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Runs completed so far (including this one).
    pub completed: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// Scheme of the completed run.
    pub scheme: Scheme,
    /// Workload label of the completed run.
    pub workload: &'a str,
    /// Link label of the completed run.
    pub link: &'a str,
    /// Repeat index of the completed run.
    pub repeat: u32,
}

/// Aggregate statistics over one cell's repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Number of repeats aggregated.
    pub runs: usize,
    /// Mean total execution time, seconds.
    pub mean_total_s: f64,
    /// Median (p50) total time, seconds.
    pub p50_total_s: f64,
    /// 90th-percentile total time, seconds.
    pub p90_total_s: f64,
    /// 99th-percentile total time, seconds.
    pub p99_total_s: f64,
    /// Half-width of the 95% confidence interval on the mean total time
    /// (normal approximation); 0 with fewer than two repeats.
    pub ci95_total_s: f64,
    /// Mean page-fault requests (the Figure 7 metric).
    pub mean_fault_requests: f64,
    /// Mean pages prefetched.
    pub mean_pages_prefetched: f64,
    /// Mean freeze time, seconds (the Figure 5 metric).
    pub mean_freeze_s: f64,
}

impl CellSummary {
    fn from_reports(reports: &[RunReport]) -> Self {
        let n = reports.len().max(1) as f64;
        let totals: Vec<f64> = reports.iter().map(|r| r.total_time.as_secs_f64()).collect();
        let mean = totals.iter().sum::<f64>() / n;
        let var = if totals.len() > 1 {
            totals.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let ci95 = if totals.len() > 1 {
            1.96 * (var / n).sqrt()
        } else {
            0.0
        };
        CellSummary {
            runs: reports.len(),
            mean_total_s: mean,
            p50_total_s: percentile(&totals, 0.50),
            p90_total_s: percentile(&totals, 0.90),
            p99_total_s: percentile(&totals, 0.99),
            ci95_total_s: ci95,
            mean_fault_requests: reports.iter().map(|r| r.fault_requests as f64).sum::<f64>() / n,
            mean_pages_prefetched: reports
                .iter()
                .map(|r| r.pages_prefetched as f64)
                .sum::<f64>()
                / n,
            mean_freeze_s: reports
                .iter()
                .map(|r| r.freeze_time.as_secs_f64())
                .sum::<f64>()
                / n,
        }
    }
}

/// Nearest-rank percentile of a sample (q in [0, 1]); 0 for an empty
/// sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One aggregated cell of a completed sweep.
#[derive(Debug)]
pub struct SweepCell {
    /// Scheme of this cell.
    pub scheme: Scheme,
    /// Workload label.
    pub workload: String,
    /// Link label.
    pub link: String,
    /// Cross-traffic label.
    pub cross: String,
    /// Fault-axis label (`"no-faults"` on the default axis).
    pub faults: String,
    /// Concurrent migrants in this cell (1 = classic single run).
    pub migrants: u32,
    /// Prefetch-policy label (`"ampom"` on the default axis; meaningful
    /// only for AMPoM-scheme cells).
    pub policy: String,
    /// Every run's full report: repeat-major, then migrant shard order
    /// within a repeat (`repeats × migrants` entries).
    pub reports: Vec<RunReport>,
    /// Run-level multi-migrant metrics, one per repeat; empty for
    /// single-migrant cells.
    pub multi: Vec<MultiRunMetrics>,
    /// Aggregates over every run in the cell.
    pub summary: CellSummary,
}

impl SweepCell {
    /// Display label: the workload label, suffixed `xN` for
    /// multi-migrant cells.
    pub fn label(&self) -> String {
        if self.migrants > 1 {
            format!("{} x{}", self.workload, self.migrants)
        } else {
            self.workload.clone()
        }
    }
}

/// The result of a completed sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Cells in deterministic (workload, link, cross, faults, scheme)
    /// order.
    pub cells: Vec<SweepCell>,
    /// Worker threads the sweep ran on (1 for [`SweepSpec::run_serial`]).
    pub threads_used: usize,
    /// Repeats per cell.
    pub repeats: u32,
}

impl SweepReport {
    /// Digest over every run's [`RunReport::fingerprint`] in grid order.
    /// Equal fingerprints ⇔ bit-identical sweep results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x5EED_u64;
        for cell in &self.cells {
            for report in &cell.reports {
                let mut z = h ^ report.fingerprint().wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h = z ^ (z >> 31);
            }
        }
        h
    }

    /// Finds a cell by scheme and workload label (first match across
    /// links/cross axes).
    pub fn find(&self, scheme: Scheme, workload: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.workload == workload)
    }

    /// Total runs executed.
    pub fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.reports.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;

    const CPU: SimDuration = SimDuration::from_micros(10);

    fn small_spec() -> SweepSpec {
        SweepSpec::new()
            .workload(WorkloadSpec::Sequential {
                pages: 128,
                cpu: CPU,
            })
            .workload(WorkloadSpec::UniformRandom {
                pages: 128,
                touches: 512,
                cpu: CPU,
            })
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100u64).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_with_forced_threads_matches_serial() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map_with(Some(1), items.clone(), |x| x * x);
        let parallel = par_map_with(Some(4), items, |x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let report = small_spec().run().unwrap();
        // 2 workloads × 1 link × 1 cross × 3 schemes.
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.total_runs(), 6);
        assert!(report.find(Scheme::Ampom, "Sequential(128)").is_some());
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let spec = small_spec().repeats(2).threads(4);
        let parallel = spec.run().unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
        assert_eq!(serial.threads_used, 1);
    }

    #[test]
    fn schemes_share_the_reference_stream() {
        // Grid seeding keys on (workload, repeat) only, so the stochastic
        // workload must present the same stream to every scheme: the
        // fault counts of NoPrefetch and AMPoM are comparable.
        let report = small_spec().run().unwrap();
        let nopf = report
            .find(Scheme::NoPrefetch, "UniformRandom(128,512)")
            .unwrap();
        let ampom = report
            .find(Scheme::Ampom, "UniformRandom(128,512)")
            .unwrap();
        assert_eq!(
            nopf.reports[0].compute_time, ampom.reports[0].compute_time,
            "same stream → same compute time"
        );
    }

    #[test]
    fn repeats_feed_percentiles_and_ci() {
        let report = small_spec().repeats(3).run().unwrap();
        let cell = report
            .find(Scheme::Ampom, "UniformRandom(128,512)")
            .unwrap();
        assert_eq!(cell.summary.runs, 3);
        assert!(cell.summary.p50_total_s > 0.0);
        assert!(cell.summary.p99_total_s >= cell.summary.p50_total_s);
        // Distinct repeat seeds → some spread → a non-zero interval.
        assert!(cell.summary.ci95_total_s > 0.0);
    }

    #[test]
    fn fixed_seed_repeats_are_identical() {
        let report = small_spec().fixed_seed(42).repeats(2).run().unwrap();
        let cell = report
            .find(Scheme::Ampom, "UniformRandom(128,512)")
            .unwrap();
        assert_eq!(cell.reports[0].fingerprint(), cell.reports[1].fingerprint());
        assert_eq!(cell.summary.ci95_total_s, 0.0);
    }

    #[test]
    fn progress_hook_sees_every_run() {
        let spec = small_spec().repeats(2).threads(3);
        let seen = AtomicUsize::new(0);
        let report = spec
            .run_with_progress(|p| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(p.completed <= p.total);
                assert_eq!(p.total, 12);
            })
            .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), report.total_runs());
    }

    #[test]
    fn fault_axis_multiplies_the_grid_and_stays_deterministic() {
        let spec = SweepSpec::new()
            .workload(WorkloadSpec::Sequential {
                pages: 128,
                cpu: CPU,
            })
            .fault_axis(vec![
                ("no-faults".to_string(), None),
                (
                    "loss-5pct".to_string(),
                    Some(crate::reliability::FaultProfile::lossy(0.05)),
                ),
            ])
            .threads(4)
            .repeats(2);
        let parallel = spec.run().unwrap();
        // 1 workload × 1 link × 1 cross × 2 faults × 3 schemes.
        assert_eq!(parallel.cells.len(), 6);
        let serial = spec.run_serial().unwrap();
        assert_eq!(
            parallel.fingerprint(),
            serial.fingerprint(),
            "fault injection must not break sweep determinism"
        );
        let faulty = parallel
            .cells
            .iter()
            .find(|c| c.faults == "loss-5pct" && c.scheme == Scheme::Ampom)
            .unwrap();
        let stats = faulty.reports[0].faults;
        assert!(
            stats.messages_dropped > 0,
            "5% loss over a 128-page sweep should drop something"
        );
        let clean = parallel
            .cells
            .iter()
            .find(|c| c.faults == "no-faults" && c.scheme == Scheme::Ampom)
            .unwrap();
        assert_eq!(clean.reports[0].faults, Default::default());
    }

    #[test]
    fn invalid_fault_axis_entry_is_a_typed_error() {
        let err = small_spec()
            .fault_axis(vec![(
                "bad".to_string(),
                Some(crate::reliability::FaultProfile::lossy(1.5)),
            )])
            .run()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
        let err = small_spec().fault_axis(Vec::new()).run().unwrap_err();
        assert_eq!(err, AmpomError::EmptySweep("faults".into()));
    }

    #[test]
    fn empty_axes_are_typed_errors() {
        let err = SweepSpec::new().run().unwrap_err();
        assert_eq!(err, AmpomError::EmptySweep("workloads".into()));
        let err = small_spec().schemes(Vec::new()).run().unwrap_err();
        assert_eq!(err, AmpomError::EmptySweep("schemes".into()));
        let err = small_spec().repeats(0).run().unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn default_migrants_axis_changes_nothing() {
        let base = small_spec().fixed_seed(7);
        let explicit = base.clone().migrants([1]);
        assert_eq!(base.cell_count(), explicit.cell_count());
        assert_eq!(
            base.run().unwrap().fingerprint(),
            explicit.run().unwrap().fingerprint(),
            "an explicit [1] migrants axis must be byte-identical to the default"
        );
    }

    #[test]
    fn migrants_axis_multiplies_the_grid_with_fair_multi_cells() {
        let report = SweepSpec::new()
            .workload(WorkloadSpec::Sequential {
                pages: 128,
                cpu: CPU,
            })
            .migrants([1, 2])
            .threads(2)
            .run()
            .unwrap();
        // 1 workload × 1 link × 1 cross × 1 fault × 2 migrants × 3 schemes.
        assert_eq!(report.cells.len(), 6);
        let single = report.find(Scheme::Ampom, "Sequential(128)").unwrap();
        assert_eq!(single.migrants, 1);
        assert_eq!(single.reports.len(), 1);
        assert!(single.multi.is_empty());
        assert_eq!(single.label(), "Sequential(128)");
        let multi = report
            .cells
            .iter()
            .find(|c| c.scheme == Scheme::Ampom && c.migrants == 2)
            .unwrap();
        assert_eq!(multi.reports.len(), 2, "one report per migrant");
        assert_eq!(multi.label(), "Sequential(128) x2");
        let m = multi.multi[0];
        assert!(m.fairness_ratio >= 1.0);
        assert!((0.0..=1.0).contains(&m.saturation));
        assert!(m.makespan_s > 0.0);
        // Migrant 0 of the multi cell replays the N=1 cell's stream, so
        // it slows down (or ties) but never speeds up under contention.
        assert!(multi.reports[0].total_time >= single.reports[0].total_time);
    }

    #[test]
    fn multi_migrant_sweeps_are_deterministic_across_threads() {
        let spec = SweepSpec::new()
            .workload(WorkloadSpec::Sequential {
                pages: 96,
                cpu: CPU,
            })
            .schemes([Scheme::NoPrefetch, Scheme::Ampom])
            .migrants([1, 3])
            .repeats(2)
            .threads(4);
        let parallel = spec.run().unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
    }

    #[test]
    fn invalid_migrants_axes_are_typed_errors() {
        let err = small_spec().migrants(Vec::new()).run().unwrap_err();
        assert_eq!(err, AmpomError::EmptySweep("migrants".into()));
        let err = small_spec().migrants([0]).run().unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
        let err = small_spec()
            .migrants([2])
            .fault_axis(vec![(
                "loss".to_string(),
                Some(crate::reliability::FaultProfile::lossy(0.05)),
            )])
            .run()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn default_policy_axis_changes_nothing() {
        let base = small_spec().fixed_seed(7);
        let explicit = base.clone().policies([PolicySpec::Ampom]);
        assert_eq!(base.cell_count(), explicit.cell_count());
        assert_eq!(
            base.run().unwrap().fingerprint(),
            explicit.run().unwrap().fingerprint(),
            "an explicit [Ampom] policy axis must be byte-identical to the default"
        );
    }

    #[test]
    fn policy_axis_multiplies_the_grid_and_stays_deterministic() {
        let spec = SweepSpec::new()
            .workload(WorkloadSpec::Sequential {
                pages: 128,
                cpu: CPU,
            })
            .schemes([Scheme::Ampom])
            .policies(PolicySpec::all())
            .threads(4)
            .repeats(2);
        let parallel = spec.run().unwrap();
        // 1 workload × 1 link × 1 cross × 1 fault × 1 migrant × 1 scheme
        // × 3 policies.
        assert_eq!(parallel.cells.len(), 3);
        let labels: Vec<&str> = parallel.cells.iter().map(|c| c.policy.as_str()).collect();
        assert_eq!(labels, ["ampom", "leap", "indigo"]);
        // Every policy sees the same reference stream in a row.
        assert_eq!(
            parallel.cells[0].reports[0].compute_time,
            parallel.cells[1].reports[0].compute_time
        );
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
    }

    #[test]
    fn invalid_policy_axis_entries_are_typed_errors() {
        let err = small_spec().policies(Vec::new()).run().unwrap_err();
        assert_eq!(err, AmpomError::EmptySweep("policies".into()));
        let err = small_spec()
            .policies([PolicySpec::Leap(crate::policy::LeapConfig {
                init_window: 0,
                ..Default::default()
            })])
            .run()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidPolicy(_)));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
