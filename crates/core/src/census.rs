//! Stride census over the lookback window (paper §3.1–§3.2, §3.4).
//!
//! Definitions implemented here, verbatim from the paper:
//!
//! * "a **stride** of a page reference r_p is defined as the minimum
//!   absolute distance d in W between the references to r_p and r_p+1" —
//!   for each window position `p`, we find the *nearest* later position
//!   holding the page value `r_p + 1`; that distance is the link's `d`.
//! * "**stride_d** is defined as the total number of page references in W
//!   which exhibit stride-d references" — we count the distinct window
//!   positions participating (as either endpoint) in minimal-distance-`d`
//!   links. The paper's example `{1,99,2,45,3,78,4}` gives `stride_2 = 4`
//!   (pages 1, 2, 3, 4), which this implementation reproduces exactly.
//! * "an **outstanding** stride-d stream is a reference stream
//!   S_d = r_p … r_{p+d} … where (p + d) > l − d" — the stream's closing
//!   reference lies within the last `d` slots of the window, so the
//!   pattern is still live. "In such an outstanding stream, the prefetch
//!   pivot is r_{p+d} + 1."
//!
//! Only strides `1 ≤ d ≤ dmax` are analysed ("AMPoM analyzes only up to
//! stride-dmax references in W"; the implementation uses `dmax = 4`).

/// One minimal-distance stride link `r_p → r_{p+d} = r_p + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideLink {
    /// Window position of `r_p` (0-based).
    pub start: usize,
    /// Window position of `r_{p+d}` (0-based).
    pub end: usize,
    /// The stride distance `d = end − start`.
    pub d: usize,
}

/// An outstanding stride stream and its prefetch pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingStream {
    /// The closing page `r_{p+d}` of the stream.
    pub end_page: u64,
    /// The stream's stride distance.
    pub d: usize,
    /// The prefetch pivot `r_{p+d} + 1`.
    pub pivot: u64,
}

/// The full result of one window analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Census {
    /// `stride_d` for `d = 1..=dmax` (index 0 holds `stride_1`).
    pub stride_counts: Vec<u64>,
    /// Every minimal-distance link with `d ≤ dmax`.
    pub links: Vec<StrideLink>,
    /// Outstanding streams, in window order of their closing reference.
    pub outstanding: Vec<OutstandingStream>,
    /// Window length `l` the census was computed over.
    pub l: usize,
}

/// Runs the stride census over the window contents (`pages[0]` is `r_1`,
/// the oldest reference).
pub fn census(pages: &[u64], dmax: usize) -> Census {
    assert!(dmax >= 1, "dmax must be at least 1");
    let l = pages.len();
    let mut links = Vec::new();
    // For each position p, the minimal d with pages[p + d] == pages[p] + 1.
    // The "minimum absolute distance" makes intervening occurrences
    // impossible by construction (we take the first hit).
    for p in 0..l {
        let target = pages[p] + 1;
        for d in 1..=dmax.min(l.saturating_sub(p + 1)) {
            if pages[p + d] == target {
                links.push(StrideLink {
                    start: p,
                    end: p + d,
                    d,
                });
                break;
            }
        }
    }

    // stride_d: distinct positions participating in minimal-d links.
    let mut stride_counts = vec![0u64; dmax];
    for d in 1..=dmax {
        let mut seen = vec![false; l];
        for link in links.iter().filter(|k| k.d == d) {
            seen[link.start] = true;
            seen[link.end] = true;
        }
        stride_counts[d - 1] = seen.iter().filter(|&&s| s).count() as u64;
    }

    // Outstanding: (p + d) > l − d with 1-based positions; in 0-based
    // terms, end > l − d − 1, i.e. end ≥ l − d.
    let outstanding = links
        .iter()
        .filter(|k| k.end + k.d >= l)
        .map(|k| OutstandingStream {
            end_page: pages[k.end],
            d: k.d,
            pivot: pages[k.end] + 1,
        })
        .collect();

    Census {
        stride_counts,
        links,
        outstanding,
        l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_stride2_equals_4() {
        // §3.1: "{1,99,2,45,3,78,4} contains three stride-2 references …
        // stride_2 = 4 because there are four pages (1,2,3,4) accessed in a
        // stride-2 pattern."
        let c = census(&[1, 99, 2, 45, 3, 78, 4], 4);
        assert_eq!(c.stride_counts[1], 4);
        assert_eq!(c.stride_counts[0], 0);
        assert_eq!(c.stride_counts[2], 0);
        assert_eq!(c.stride_counts[3], 0);
    }

    #[test]
    fn paper_example_interleaved_stride2_equals_3() {
        // §3.2: "{10,99,11,34,12,85} only has one stride-2 reference stream
        // {10,11,12} (3 pages), therefore stride_2 = 3".
        let c = census(&[10, 99, 11, 34, 12, 85], 4);
        assert_eq!(c.stride_counts[1], 3);
        assert_eq!(c.stride_counts[0], 0);
    }

    #[test]
    fn paper_example_outstanding_streams_and_pivots() {
        // §3.4: l = 10, W = {13,27,7,8,14,8,3,15,4,5}: outstanding streams
        // {14,15} (stride-3), {3,4} (stride-2), {4,5} (stride-1); pivots
        // 16, 5, 6. {7,8} is not outstanding.
        let c = census(&[13, 27, 7, 8, 14, 8, 3, 15, 4, 5], 4);
        let mut pivots: Vec<(u64, usize)> = c.outstanding.iter().map(|o| (o.pivot, o.d)).collect();
        pivots.sort();
        assert_eq!(pivots, vec![(5, 2), (6, 1), (16, 3)]);
        // The {7,8} stride-1 link exists but is not outstanding.
        assert!(c
            .links
            .iter()
            .any(|k| k.d == 1 && k.start == 2 && k.end == 3));
        assert!(!c.outstanding.iter().any(|o| o.pivot == 9));
    }

    #[test]
    fn sequential_window_is_all_stride1() {
        let pages: Vec<u64> = (100..120).collect();
        let c = census(&pages, 4);
        assert_eq!(c.stride_counts[0], 20);
        // Exactly one outstanding stream: the live sequential run.
        assert_eq!(c.outstanding.len(), 1);
        assert_eq!(c.outstanding[0].pivot, 120);
        assert_eq!(c.outstanding[0].d, 1);
    }

    #[test]
    fn minimal_distance_wins() {
        // Page 5 at positions 0 and 2; page 6 at position 3. The position-2
        // occurrence links at d=1; position-0 links at d=3 (both minimal
        // for their starting position).
        let c = census(&[5, 7, 5, 6], 4);
        let ds: Vec<usize> = c.links.iter().map(|k| k.d).collect();
        assert!(ds.contains(&1));
        assert!(ds.contains(&3));
        assert_eq!(c.stride_counts[0], 2); // positions 2 and 3
        assert_eq!(c.stride_counts[2], 2); // positions 0 and 3
    }

    #[test]
    fn dmax_truncates_long_strides() {
        // 1 → 2 at distance 5 is invisible with dmax = 4.
        let c = census(&[1, 50, 60, 70, 80, 2], 4);
        assert!(c.links.is_empty());
        assert!(c.outstanding.is_empty());
    }

    #[test]
    fn random_window_has_no_links() {
        let c = census(&[900, 14, 371, 6002, 77, 2345], 4);
        assert!(c.links.is_empty());
        assert_eq!(c.stride_counts, vec![0, 0, 0, 0]);
    }

    #[test]
    fn empty_and_single_windows() {
        assert!(census(&[], 4).links.is_empty());
        assert!(census(&[5], 4).links.is_empty());
    }

    #[test]
    fn interleaved_two_streams_have_two_outstanding_pivots() {
        // Two interleaved sequential streams, both live at the tail.
        let c = census(&[100, 200, 101, 201, 102, 202], 4);
        let mut pivots: Vec<u64> = c.outstanding.iter().map(|o| o.pivot).collect();
        pivots.sort();
        assert_eq!(pivots, vec![103, 203]);
    }

    #[test]
    #[should_panic(expected = "dmax")]
    fn zero_dmax_rejected() {
        let _ = census(&[1, 2], 0);
    }
}
