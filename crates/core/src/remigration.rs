//! Round-trip migration: migrate out, then come back.
//!
//! Paper §1: "it is also not cost-worthy to migrate the entire process if
//! we are not sure how long computing resources will be available at the
//! destination node; a wrong or suboptimal migration decision would
//! require the process being migrated again, inducing even longer 'freeze
//! time'." And §5.4: AMPoM's restraint keeps "a migrant … lightweight when
//! it has to migrate to another node."
//!
//! This module quantifies the canonical case: a process is pushed to a
//! remote node under load, executes there for a while, and is then called
//! *back home* (the destination node was reclaimed). The MPT/HPT design
//! makes the return asymmetric and interesting:
//!
//! * pages the migrant **never fetched** still live on the home node (the
//!   origin's copy is deleted only when a page is transferred, §2.2) — on
//!   return they are local again for free;
//! * pages the migrant **did fetch** (and any it dirtied) live on the
//!   remote node — eager openMosix must ship them all back during the
//!   return freeze, while AMPoM ships three pages + MPT and demand-pages
//!   from the remote node (which keeps a deputy stub) with prefetching.
//!
//! The sooner the process comes back (the more "suboptimal" the original
//! decision), the smaller its remote footprint and the bigger AMPoM's win.
//!
//! The engine behind these numbers is [`crate::lifecycle::run_lifecycle`]
//! with background writeback disabled — the analytic model where nothing
//! flows home until the return. [`run_round_trip`] is the thin wrapper
//! preserving the report shape the extension experiments
//! (`ext_roundtrip.csv`) regenerate from.

use ampom_sim::time::SimDuration;
use ampom_workloads::memref::Workload;

use crate::lifecycle::{run_lifecycle, LifecycleConfig};
use crate::migration::Scheme;
use crate::runner::RunConfig;

/// Measurements of a round-trip run.
#[derive(Debug)]
pub struct RoundTripReport {
    /// Scheme used for both hops.
    pub scheme: Scheme,
    /// Freeze time of the outbound migration.
    pub outbound_freeze: SimDuration,
    /// Freeze time of the return migration.
    pub return_freeze: SimDuration,
    /// Wall time of the whole run (outbound freeze → workload complete).
    pub total_time: SimDuration,
    /// Pages that had to travel back during/after the return.
    pub pages_returned: u64,
    /// Remote fault requests over both phases.
    pub fault_requests: u64,
    /// Pages moved out to the remote node in phase one.
    pub pages_fetched_remotely: u64,
}

/// Runs `workload` with an outbound migration at t=0 and a forced return
/// home after `away_fraction` of the reference stream (0 < fraction < 1).
///
/// Both hops use `scheme`. The network between home and the remote node is
/// `cfg.link` in both directions. Writeback stays off — this is the
/// analytic round-trip model; use [`run_lifecycle`] directly for the full
/// out → dirty → writeback → return lifecycle.
pub fn run_round_trip<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
    away_fraction: f64,
) -> RoundTripReport {
    let lr = run_lifecycle(
        workload,
        cfg,
        &LifecycleConfig::new(away_fraction).without_writeback(),
    );
    RoundTripReport {
        scheme: lr.scheme,
        outbound_freeze: lr.outbound_freeze,
        return_freeze: lr.return_freeze,
        total_time: lr.total_time,
        pages_returned: lr.pages_returned,
        fault_requests: lr.fault_requests,
        pages_fetched_remotely: lr.pages_fetched_remotely,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_workloads::synthetic::Sequential;

    const CPU: SimDuration = SimDuration::from_micros(15);

    fn round_trip(scheme: Scheme, frac: f64) -> RoundTripReport {
        let mut w = Sequential::new(2048, CPU);
        run_round_trip(&mut w, &RunConfig::new(scheme), frac)
    }

    #[test]
    fn early_return_moves_few_pages_under_ampom() {
        let r = round_trip(Scheme::Ampom, 0.2);
        // ~20% of the sweep was fetched remotely; only that much can come
        // back.
        assert!(
            r.pages_fetched_remotely < 1000,
            "{}",
            r.pages_fetched_remotely
        );
        assert!(r.return_freeze < SimDuration::from_millis(200));
    }

    #[test]
    fn eager_always_hauls_the_full_footprint_back() {
        // openMosix moved everything out at the first freeze, so the
        // return moves everything back — regardless of how briefly the
        // process stayed away.
        let early = round_trip(Scheme::OpenMosix, 0.2);
        let late = round_trip(Scheme::OpenMosix, 0.8);
        assert_eq!(early.pages_returned, late.pages_returned);
        assert!(early.pages_returned > 2000);
        assert!(early.return_freeze > SimDuration::from_millis(500));
    }

    #[test]
    fn ampom_remote_footprint_scales_with_time_away() {
        let early = round_trip(Scheme::Ampom, 0.2);
        let late = round_trip(Scheme::Ampom, 0.8);
        assert!(
            late.pages_fetched_remotely > early.pages_fetched_remotely,
            "late {} vs early {}",
            late.pages_fetched_remotely,
            early.pages_fetched_remotely
        );
    }

    #[test]
    fn ampom_round_trip_beats_eager_round_trip() {
        for frac in [0.2, 0.5, 0.8] {
            let ampom = round_trip(Scheme::Ampom, frac);
            let eager = round_trip(Scheme::OpenMosix, frac);
            assert!(
                ampom.total_time < eager.total_time,
                "frac {frac}: AMPoM {} vs eager {}",
                ampom.total_time,
                eager.total_time
            );
            // Both freezes stay tiny under AMPoM.
            assert!(ampom.outbound_freeze < SimDuration::from_millis(200));
            assert!(ampom.return_freeze < SimDuration::from_millis(200));
        }
    }

    #[test]
    fn never_fetched_pages_are_free_on_return() {
        // With a tiny away fraction, the untouched tail of the sweep stays
        // at the origin the whole time; after the return the workload
        // faults only on pages the remote node held.
        let r = round_trip(Scheme::Ampom, 0.1);
        // Fault requests in phase 2 relate to the ~10% remote footprint,
        // not the remaining 90% of the sweep.
        assert!(
            r.fault_requests < 400,
            "requests {} should not re-fetch home pages",
            r.fault_requests
        );
    }

    #[test]
    fn workload_completes_exactly_once() {
        let mut w = Sequential::new(512, CPU);
        let report = run_round_trip(&mut w, &RunConfig::new(Scheme::Ampom), 0.5);
        assert!(w.next().is_none(), "stream fully consumed");
        assert!(report.total_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "away_fraction")]
    fn fraction_must_be_in_unit_interval() {
        let mut w = Sequential::new(64, CPU);
        let _ = run_round_trip(&mut w, &RunConfig::new(Scheme::Ampom), 1.5);
    }
}
