//! Round-trip migration: migrate out, then come back.
//!
//! Paper §1: "it is also not cost-worthy to migrate the entire process if
//! we are not sure how long computing resources will be available at the
//! destination node; a wrong or suboptimal migration decision would
//! require the process being migrated again, inducing even longer 'freeze
//! time'." And §5.4: AMPoM's restraint keeps "a migrant … lightweight when
//! it has to migrate to another node."
//!
//! This module quantifies the canonical case: a process is pushed to a
//! remote node under load, executes there for a while, and is then called
//! *back home* (the destination node was reclaimed). The MPT/HPT design
//! makes the return asymmetric and interesting:
//!
//! * pages the migrant **never fetched** still live on the home node (the
//!   origin's copy is deleted only when a page is transferred, §2.2) — on
//!   return they are local again for free;
//! * pages the migrant **did fetch** (and any it dirtied) live on the
//!   remote node — eager openMosix must ship them all back during the
//!   return freeze, while AMPoM ships three pages + MPT and demand-pages
//!   from the remote node (which keeps a deputy stub) with prefetching.
//!
//! The sooner the process comes back (the more "suboptimal" the original
//! decision), the smaller its remote footprint and the bigger AMPoM's win.

use ampom_mem::page::PAGE_SIZE;
use ampom_mem::space::{PageState, TouchOutcome};
use ampom_net::calibration::{MIGRATION_BASE_COST, MPT_ENTRY_COST};
use ampom_sim::time::{SimDuration, SimTime};
use ampom_workloads::memref::Workload;

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::migration::{perform_freeze, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::policy::Prefetcher;
use crate::runner::{RunConfig, MINOR_FAULT_COST, PAGE_INSTALL_COST};
use ampom_net::calibration::AMPOM_ANALYSIS_COST;

/// Measurements of a round-trip run.
#[derive(Debug)]
pub struct RoundTripReport {
    /// Scheme used for both hops.
    pub scheme: Scheme,
    /// Freeze time of the outbound migration.
    pub outbound_freeze: SimDuration,
    /// Freeze time of the return migration.
    pub return_freeze: SimDuration,
    /// Wall time of the whole run (outbound freeze → workload complete).
    pub total_time: SimDuration,
    /// Pages that had to travel back during/after the return.
    pub pages_returned: u64,
    /// Remote fault requests over both phases.
    pub fault_requests: u64,
    /// Pages moved out to the remote node in phase one.
    pub pages_fetched_remotely: u64,
}

/// Runs `workload` with an outbound migration at t=0 and a forced return
/// home after `away_fraction` of the reference stream (0 < fraction < 1).
///
/// Both hops use `scheme`. The network between home and the remote node is
/// `cfg.link` in both directions.
pub fn run_round_trip<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
    away_fraction: f64,
) -> RoundTripReport {
    assert!(
        (0.0..1.0).contains(&away_fraction) && away_fraction > 0.0,
        "away_fraction must be in (0, 1)"
    );
    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let total_refs = workload.total_refs_hint();
    let switch_at = ((total_refs as f64 * away_fraction) as u64).max(1);

    let mut path = NetPath::new(cfg.link);
    let mut trace = ampom_sim::trace::Trace::disabled();
    let freeze = perform_freeze(cfg.scheme, &pre, &mut path, &mut trace);
    let outbound_freeze = freeze.freeze_time;
    let mut space = freeze.space;
    let mut table = freeze.table;
    let mut now = SimTime::ZERO + outbound_freeze;

    let mut deputy = Deputy::new();
    let mut monitor = MonitorDaemon::new(&path);
    let mut prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));
    let mut in_flight: std::collections::HashMap<_, SimTime> = std::collections::HashMap::new();
    let mut staged: std::collections::VecDeque<(SimTime, ampom_mem::page::PageId)> =
        std::collections::VecDeque::new();
    let page_limit = ampom_mem::page::PageId(layout.total_pages());

    let mut fault_requests = 0u64;
    let mut refs_done = 0u64;

    // ---- Phase 1: executing on the remote node. ----
    while refs_done < switch_at {
        let Some(r) = workload.next() else { break };
        refs_done += 1;
        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => now += r.cpu,
            TouchOutcome::LocalAllocate => {
                if table.lookup(r.page).is_none() {
                    table.create_at_destination(r.page);
                }
                now += MINOR_FAULT_COST + r.cpu;
            }
            TouchOutcome::RemoteFault => {
                install(&mut staged, &mut in_flight, &mut space, &mut now);
                let prefetch = match prefetcher.as_mut() {
                    Some(pf) => {
                        monitor.advance(now, &mut path);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, now, 1.0, est, page_limit, &mut |p| {
                            space.state(p) == PageState::Remote && !in_flight.contains_key(&p)
                        });
                        now += AMPOM_ANALYSIS_COST;
                        monitor.on_window_wrap(now, pf.observe().window_wraps, &path);
                        d.prefetch
                    }
                    None => Vec::new(),
                };
                if space.is_resident(r.page) {
                    // Resolved by the install above.
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    now = now.max(arrival);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                } else {
                    fault_requests += 1;
                    let mut pages = vec![r.page];
                    pages.extend_from_slice(&prefetch);
                    let at_home = path.send_request(now, pages.len());
                    for s in deputy.serve_request(at_home, &pages, &mut table, &mut path) {
                        in_flight.insert(s.page, s.arrives);
                        staged.push_back((s.arrives, s.page));
                    }
                    now = now.max(in_flight[&r.page]);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                }
                let hit = space.touch(r.page, r.write);
                debug_assert_eq!(hit, TouchOutcome::Hit);
                now += r.cpu;
            }
        }
    }

    // Drain the pipeline: anything in flight lands at the remote node
    // before the return migration (the kernel completes outstanding I/O
    // before freezing).
    while let Some(&(arrival, _)) = staged.front() {
        now = now.max(arrival);
        install(&mut staged, &mut in_flight, &mut space, &mut now);
    }

    // ---- Return migration. ----
    // Pages resident at the remote node must come home; pages still at
    // the origin are already home.
    let remote_resident: Vec<_> = space
        .pages_where(|s| matches!(s, PageState::Resident { .. }))
        .collect();
    let pages_returned = remote_resident.len() as u64;
    let pages_fetched_remotely = table.pages_at_destination();

    let return_freeze = match cfg.scheme {
        Scheme::OpenMosix => {
            // Eager: ship every remote-resident page back at once.
            let bytes = pages_returned * PAGE_SIZE;
            let done = path.bulk_transfer(now + MIGRATION_BASE_COST, bytes);
            done.since(now)
        }
        Scheme::Ampom => {
            // Three pages + MPT, as always.
            let mpt = table.mpt_bytes();
            let start =
                now + MIGRATION_BASE_COST + MPT_ENTRY_COST.saturating_mul(table.mapped_pages());
            let done = path.bulk_transfer(start, 3 * PAGE_SIZE + mpt);
            done.since(now)
        }
        Scheme::NoPrefetch | Scheme::Ffa => {
            let done = path.bulk_transfer(now + MIGRATION_BASE_COST, 3 * PAGE_SIZE);
            done.since(now)
        }
    };
    now += return_freeze;

    // ---- Phase 2: executing back home. ----
    // Role swap: remote-resident pages become remote (stored on the node
    // we just left, which keeps a deputy stub); origin-stored pages are
    // local. Under eager openMosix everything returned during the freeze,
    // so nothing is remote.
    if cfg.scheme != Scheme::OpenMosix {
        for &p in &remote_resident {
            space.mark_remote(p);
        }
        // Pages still at the origin are local at home now.
        let at_origin: Vec<_> = space
            .pages_where(|s| s == PageState::Remote)
            .filter(|p| table.lookup(*p) == Some(ampom_mem::table::PageLocation::Origin))
            .collect();
        for p in at_origin {
            space.install(p);
        }
    }
    // Fresh transfer bookkeeping for the second hop: the remote node's
    // stub serves what it holds.
    let mut return_table = ampom_mem::table::PageTablePair::at_migration(
        space.pages_where(|s| s == PageState::Remote),
    );
    let mut return_deputy = Deputy::new();
    let mut return_prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));
    in_flight.clear();
    staged.clear();

    for r in &mut *workload {
        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => now += r.cpu,
            TouchOutcome::LocalAllocate => now += MINOR_FAULT_COST + r.cpu,
            TouchOutcome::RemoteFault => {
                install(&mut staged, &mut in_flight, &mut space, &mut now);
                let prefetch = match return_prefetcher.as_mut() {
                    Some(pf) => {
                        monitor.advance(now, &mut path);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, now, 1.0, est, page_limit, &mut |p| {
                            space.state(p) == PageState::Remote
                                && !in_flight.contains_key(&p)
                                && return_table.lookup(p).is_some()
                        });
                        now += AMPOM_ANALYSIS_COST;
                        d.prefetch
                    }
                    None => Vec::new(),
                };
                if space.is_resident(r.page) {
                    // Arrived with the last batch.
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    now = now.max(arrival);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                } else {
                    fault_requests += 1;
                    let mut pages = vec![r.page];
                    pages.extend_from_slice(&prefetch);
                    let at_remote = path.send_request(now, pages.len());
                    for s in
                        return_deputy.serve_request(at_remote, &pages, &mut return_table, &mut path)
                    {
                        in_flight.insert(s.page, s.arrives);
                        staged.push_back((s.arrives, s.page));
                    }
                    now = now.max(in_flight[&r.page]);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                }
                let hit = space.touch(r.page, r.write);
                debug_assert_eq!(hit, TouchOutcome::Hit);
                now += r.cpu;
            }
        }
    }

    RoundTripReport {
        scheme: cfg.scheme,
        outbound_freeze,
        return_freeze,
        total_time: now.since(SimTime::ZERO),
        pages_returned,
        fault_requests,
        pages_fetched_remotely,
    }
}

fn install(
    staged: &mut std::collections::VecDeque<(SimTime, ampom_mem::page::PageId)>,
    in_flight: &mut std::collections::HashMap<ampom_mem::page::PageId, SimTime>,
    space: &mut ampom_mem::space::AddressSpace,
    now: &mut SimTime,
) {
    let mut n = 0u64;
    while let Some(&(arrival, page)) = staged.front() {
        if arrival > *now {
            break;
        }
        staged.pop_front();
        in_flight.remove(&page);
        if space.state(page) == PageState::Remote {
            space.install(page);
        }
        n += 1;
    }
    if n > 0 {
        *now += PAGE_INSTALL_COST.saturating_mul(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_workloads::synthetic::Sequential;

    const CPU: SimDuration = SimDuration::from_micros(15);

    fn round_trip(scheme: Scheme, frac: f64) -> RoundTripReport {
        let mut w = Sequential::new(2048, CPU);
        run_round_trip(&mut w, &RunConfig::new(scheme), frac)
    }

    #[test]
    fn early_return_moves_few_pages_under_ampom() {
        let r = round_trip(Scheme::Ampom, 0.2);
        // ~20% of the sweep was fetched remotely; only that much can come
        // back.
        assert!(
            r.pages_fetched_remotely < 1000,
            "{}",
            r.pages_fetched_remotely
        );
        assert!(r.return_freeze < SimDuration::from_millis(200));
    }

    #[test]
    fn eager_always_hauls_the_full_footprint_back() {
        // openMosix moved everything out at the first freeze, so the
        // return moves everything back — regardless of how briefly the
        // process stayed away.
        let early = round_trip(Scheme::OpenMosix, 0.2);
        let late = round_trip(Scheme::OpenMosix, 0.8);
        assert_eq!(early.pages_returned, late.pages_returned);
        assert!(early.pages_returned > 2000);
        assert!(early.return_freeze > SimDuration::from_millis(500));
    }

    #[test]
    fn ampom_remote_footprint_scales_with_time_away() {
        let early = round_trip(Scheme::Ampom, 0.2);
        let late = round_trip(Scheme::Ampom, 0.8);
        assert!(
            late.pages_fetched_remotely > early.pages_fetched_remotely,
            "late {} vs early {}",
            late.pages_fetched_remotely,
            early.pages_fetched_remotely
        );
    }

    #[test]
    fn ampom_round_trip_beats_eager_round_trip() {
        for frac in [0.2, 0.5, 0.8] {
            let ampom = round_trip(Scheme::Ampom, frac);
            let eager = round_trip(Scheme::OpenMosix, frac);
            assert!(
                ampom.total_time < eager.total_time,
                "frac {frac}: AMPoM {} vs eager {}",
                ampom.total_time,
                eager.total_time
            );
            // Both freezes stay tiny under AMPoM.
            assert!(ampom.outbound_freeze < SimDuration::from_millis(200));
            assert!(ampom.return_freeze < SimDuration::from_millis(200));
        }
    }

    #[test]
    fn never_fetched_pages_are_free_on_return() {
        // With a tiny away fraction, the untouched tail of the sweep stays
        // at the origin the whole time; after the return the workload
        // faults only on pages the remote node held.
        let r = round_trip(Scheme::Ampom, 0.1);
        // Fault requests in phase 2 relate to the ~10% remote footprint,
        // not the remaining 90% of the sweep.
        assert!(
            r.fault_requests < 400,
            "requests {} should not re-fetch home pages",
            r.fault_requests
        );
    }

    #[test]
    fn workload_completes_exactly_once() {
        let mut w = Sequential::new(512, CPU);
        let report = run_round_trip(&mut w, &RunConfig::new(Scheme::Ampom), 0.5);
        assert!(w.next().is_none(), "stream fully consumed");
        assert!(report.total_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "away_fraction")]
    fn fraction_must_be_in_unit_interval() {
        let mut w = Sequential::new(64, CPU);
        let _ = run_round_trip(&mut w, &RunConfig::new(Scheme::Ampom), 1.5);
    }
}
