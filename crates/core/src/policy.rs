//! Prefetch-policy abstraction: the [`Prefetcher`] trait and the
//! competitor policies the bake-off measures AMPoM against.
//!
//! The paper's Eq.1/Eq.3 engine ([`AmpomPrefetcher`]) was historically
//! hard-coded into every run loop. This module extracts the contract a
//! run loop actually needs — one analysis per fault, an optional
//! hit/waste feedback channel, and a uniform observation snapshot — and
//! implements two policies from the related work behind it:
//!
//! * [`LeapPrefetcher`] — "Effectively Prefetching Remote Memory with
//!   Leap" (Al Maruf & Chowdhury): majority-vote trend detection over a
//!   fault-history window with exponential ramp-up/ramp-down of the
//!   prefetch window.
//! * [`IndigoPrefetcher`] — "INDIGO: Page Migration for Hardware Memory
//!   Disaggregation Across a Network" (Patke et al.): an adaptive
//!   prefetch-window-and-rate controller driven by the observed
//!   prefetch hit/waste ratio.
//!
//! [`PolicySpec`] is the validated, serializable description a
//! [`RunConfig`](crate::runner::RunConfig) carries; its default
//! (`PolicySpec::Ampom`) builds the paper's engine and is pinned
//! bit-identical to the pre-trait code path by the golden fingerprint
//! tests.

use ampom_mem::page::PageId;
use ampom_sim::time::SimTime;

use crate::error::AmpomError;
use crate::prefetcher::{AmpomConfig, AmpomPrefetcher, NetEstimates, PrefetchStats, ZoneDecision};
use crate::window::LookbackWindow;

/// Cumulative prefetch-outcome counters a run loop feeds back into a
/// policy before each analysis. Both counters are **pages** (not
/// batches) and monotone over the run; a policy diffs successive
/// snapshots to observe the recent hit/waste ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchFeedback {
    /// Pages queued for prefetch so far (cumulative).
    pub pages_prefetched: u64,
    /// Prefetched pages the migrant has actually touched so far
    /// (cumulative).
    pub prefetched_used: u64,
}

/// A uniform, policy-independent snapshot of a prefetcher's state —
/// the single reporting surface that replaced the concrete
/// `stats()`/`window()`/`last_census()` getters.
#[derive(Debug, Clone, Default)]
pub struct PrefetchObservation {
    /// Policy label (`"ampom"`, `"leap"`, `"indigo"`).
    pub policy: &'static str,
    /// Accumulated per-analysis statistics.
    pub stats: PrefetchStats,
    /// Completed turns of the fault-history window — the monitor
    /// daemon's bandwidth re-estimation clock.
    pub window_wraps: u64,
    /// True once the fault-history window holds a full complement of
    /// records.
    pub window_full: bool,
    /// Live pattern streams the last analysis identified (outstanding
    /// strides for AMPoM, 0 or 1 trend for Leap/INDIGO).
    pub outstanding_streams: usize,
}

/// One prefetch policy driving the run loops' per-fault analysis.
///
/// Implementations must be conservative: every page in the returned
/// [`ZoneDecision::prefetch`] list must satisfy the `fetchable`
/// predicate and differ from the faulted page (property-tested for all
/// in-tree policies).
pub trait Prefetcher {
    /// Runs one fault analysis; see
    /// [`AmpomPrefetcher::on_fault`] for the argument contract.
    fn on_fault(
        &mut self,
        page: PageId,
        now: SimTime,
        cpu_util: f64,
        net: NetEstimates,
        page_limit: PageId,
        fetchable: &mut dyn FnMut(PageId) -> bool,
    ) -> ZoneDecision;

    /// Feeds the loop's cumulative hit/waste counters back into the
    /// policy (called once per fault, before [`Self::on_fault`]).
    /// Feedback-blind policies ignore it.
    fn note_outcome(&mut self, _feedback: PrefetchFeedback) {}

    /// A uniform snapshot of the policy's current state.
    fn observe(&self) -> PrefetchObservation;
}

impl Prefetcher for AmpomPrefetcher {
    fn on_fault(
        &mut self,
        page: PageId,
        now: SimTime,
        cpu_util: f64,
        net: NetEstimates,
        page_limit: PageId,
        fetchable: &mut dyn FnMut(PageId) -> bool,
    ) -> ZoneDecision {
        AmpomPrefetcher::on_fault(self, page, now, cpu_util, net, page_limit, fetchable)
    }

    fn observe(&self) -> PrefetchObservation {
        self.observation()
    }
}

// ---------------------------------------------------------------------------
// PolicySpec
// ---------------------------------------------------------------------------

/// The validated description of a prefetch policy, carried by
/// [`RunConfig`](crate::runner::RunConfig) and gridded over by the
/// sweep engine's `policy` axis.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub enum PolicySpec {
    /// The paper's Eq.1/Eq.3 dependent-zone engine (the default).
    #[default]
    Ampom,
    /// Leap-style majority-vote trend detection.
    Leap(LeapConfig),
    /// INDIGO-style adaptive window/rate control.
    Indigo(IndigoConfig),
}

impl PolicySpec {
    /// Every in-tree policy at its default tuning, in bake-off order.
    pub fn all() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Ampom,
            PolicySpec::Leap(LeapConfig::default()),
            PolicySpec::Indigo(IndigoConfig::default()),
        ]
    }

    /// Short lowercase label used in tables, CSV and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            PolicySpec::Ampom => "ampom",
            PolicySpec::Leap(_) => "leap",
            PolicySpec::Indigo(_) => "indigo",
        }
    }

    /// Parses a bake-off label into the policy at its default tuning.
    pub fn parse(s: &str) -> Option<PolicySpec> {
        match s {
            "ampom" => Some(PolicySpec::Ampom),
            "leap" => Some(PolicySpec::Leap(LeapConfig::default())),
            "indigo" => Some(PolicySpec::Indigo(IndigoConfig::default())),
            _ => None,
        }
    }

    /// Checks the policy's tunables against their documented domains.
    pub fn validate(&self) -> Result<(), AmpomError> {
        match self {
            PolicySpec::Ampom => Ok(()),
            PolicySpec::Leap(cfg) => cfg.validate(),
            PolicySpec::Indigo(cfg) => cfg.validate(),
        }
    }

    /// Builds the policy's engine. `ampom` supplies the Eq.1/Eq.3
    /// tunables when the policy is [`PolicySpec::Ampom`]; the
    /// competitors carry their own configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; run through
    /// [`Self::validate`] (the `RunConfig`/`Experiment` validators do)
    /// for a typed error instead.
    pub fn build(&self, ampom: &AmpomConfig) -> Box<dyn Prefetcher> {
        match self {
            PolicySpec::Ampom => Box::new(AmpomPrefetcher::new(ampom.clone())),
            PolicySpec::Leap(cfg) => Box::new(LeapPrefetcher::new(cfg.clone())),
            PolicySpec::Indigo(cfg) => Box::new(IndigoPrefetcher::new(cfg.clone())),
        }
    }
}

// ---------------------------------------------------------------------------
// Leap
// ---------------------------------------------------------------------------

/// Tunables of the Leap-style trend prefetcher.
#[derive(Debug, Clone, PartialEq)]
pub struct LeapConfig {
    /// Fault-history window length the majority vote runs over.
    pub history_len: usize,
    /// Prefetch-window size right after a trend is (re)acquired.
    pub init_window: u64,
    /// Exponential ramp-up ceiling on the prefetch window.
    pub max_window: u64,
}

impl Default for LeapConfig {
    fn default() -> Self {
        LeapConfig {
            history_len: LookbackWindow::PAPER_LENGTH,
            init_window: 4,
            max_window: 256,
        }
    }
}

impl LeapConfig {
    /// Checks the tunables against their documented domains.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if self.history_len < 2 {
            return Err(AmpomError::InvalidPolicy(format!(
                "leap: history_len must be at least 2, got {}",
                self.history_len
            )));
        }
        if self.init_window == 0 {
            return Err(AmpomError::InvalidPolicy(
                "leap: init_window must be positive".into(),
            ));
        }
        if self.max_window < self.init_window {
            return Err(AmpomError::InvalidPolicy(format!(
                "leap: max_window ({}) below init_window ({})",
                self.max_window, self.init_window
            )));
        }
        Ok(())
    }
}

/// Majority-vote trend prefetching (Leap).
///
/// On every fault the detector runs a Boyer–Moore majority vote over
/// the deltas of the recent fault history — first over the most recent
/// half of the window, then over the whole window — and accepts a
/// stride only when its vote share exceeds one half. With a trend in
/// hand it prefetches `window` pages along the stride and doubles the
/// window (up to `max_window`); without one it halves the window back
/// toward `init_window` and prefetches nothing.
#[derive(Debug)]
pub struct LeapPrefetcher {
    config: LeapConfig,
    window: LookbackWindow,
    cur_window: u64,
    stats: PrefetchStats,
    trend: Option<i64>,
}

impl LeapPrefetcher {
    /// Creates a Leap prefetcher.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`LeapConfig::validate`]).
    pub fn new(config: LeapConfig) -> Self {
        config.validate().expect("invalid LeapConfig");
        LeapPrefetcher {
            window: LookbackWindow::new(config.history_len),
            cur_window: config.init_window,
            config,
            stats: PrefetchStats::default(),
            trend: None,
        }
    }

    /// Majority-vote stride over the last `take` deltas of `pages`,
    /// accepted only with a strict-majority vote share. Returns the
    /// stride and its vote share.
    fn majority_trend(deltas: &[i64], take: usize) -> Option<(i64, f64)> {
        let slice = &deltas[deltas.len().saturating_sub(take)..];
        if slice.is_empty() {
            return None;
        }
        // Boyer–Moore candidate pass.
        let mut candidate = 0i64;
        let mut count = 0usize;
        for &d in slice {
            if count == 0 {
                candidate = d;
                count = 1;
            } else if d == candidate {
                count += 1;
            } else {
                count -= 1;
            }
        }
        // Verification pass.
        let votes = slice.iter().filter(|&&d| d == candidate).count();
        if candidate != 0 && 2 * votes > slice.len() {
            Some((candidate, votes as f64 / slice.len() as f64))
        } else {
            None
        }
    }
}

impl Prefetcher for LeapPrefetcher {
    fn on_fault(
        &mut self,
        page: PageId,
        now: SimTime,
        cpu_util: f64,
        _net: NetEstimates,
        page_limit: PageId,
        fetchable: &mut dyn FnMut(PageId) -> bool,
    ) -> ZoneDecision {
        self.window.record(page, now, cpu_util);
        self.stats.analyses += 1;

        let pages = self.window.page_indices();
        let deltas: Vec<i64> = pages
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        // Leap tries the most recent sub-window first, then widens.
        let half = (deltas.len() / 2).max(2);
        let found = Self::majority_trend(&deltas, half)
            .or_else(|| Self::majority_trend(&deltas, deltas.len()));

        let (budget, score) = match found {
            Some((stride, share)) => {
                self.trend = Some(stride);
                let b = self.cur_window;
                self.cur_window = (self.cur_window.saturating_mul(2)).min(self.config.max_window);
                (b, share)
            }
            None => {
                self.trend = None;
                self.stats.fallbacks += 1;
                self.cur_window = (self.cur_window / 2).max(self.config.init_window);
                (0, 0.0)
            }
        };

        self.stats.scores.record(score);
        self.stats.n_values.record(budget as f64);
        self.stats.budgets.record(budget as f64);

        let mut prefetch = Vec::new();
        if let Some(stride) = self.trend {
            let base = page.index() as i64;
            for k in 1..=budget as i64 {
                let idx = base + stride * k;
                if idx < 0 || idx as u64 >= page_limit.index() {
                    break;
                }
                let p = PageId(idx as u64);
                if p != page && fetchable(p) {
                    prefetch.push(p);
                }
            }
        }
        self.stats.pages_selected += prefetch.len() as u64;

        ZoneDecision {
            prefetch,
            n_raw: budget as f64,
            budget,
            score,
            raw_score: score,
            score_clamped: false,
            rate: self.window.paging_rate().unwrap_or(0.0),
        }
    }

    fn observe(&self) -> PrefetchObservation {
        PrefetchObservation {
            policy: "leap",
            stats: self.stats.clone(),
            window_wraps: self.window.wraps(),
            window_full: self.window.is_full(),
            outstanding_streams: usize::from(self.trend.is_some()),
        }
    }
}

// ---------------------------------------------------------------------------
// INDIGO
// ---------------------------------------------------------------------------

/// Tunables of the INDIGO-style adaptive window/rate controller.
#[derive(Debug, Clone, PartialEq)]
pub struct IndigoConfig {
    /// Fault-history window length (observability clock parity with the
    /// other policies).
    pub history_len: usize,
    /// Prefetch window at start-up and after a full collapse.
    pub init_window: u64,
    /// Lower bound the multiplicative decrease stops at.
    pub min_window: u64,
    /// Upper bound the additive increase stops at.
    pub max_window: u64,
    /// Hit ratio at or above which the window grows.
    pub grow_threshold: f64,
    /// Hit ratio at or below which the window shrinks and the issue
    /// rate halves.
    pub shrink_threshold: f64,
}

impl Default for IndigoConfig {
    fn default() -> Self {
        IndigoConfig {
            history_len: LookbackWindow::PAPER_LENGTH,
            init_window: 8,
            min_window: 1,
            max_window: 256,
            grow_threshold: 0.6,
            shrink_threshold: 0.25,
        }
    }
}

impl IndigoConfig {
    /// Checks the tunables against their documented domains.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if self.history_len < 2 {
            return Err(AmpomError::InvalidPolicy(format!(
                "indigo: history_len must be at least 2, got {}",
                self.history_len
            )));
        }
        if self.min_window == 0 || self.min_window > self.init_window {
            return Err(AmpomError::InvalidPolicy(format!(
                "indigo: need 0 < min_window ({}) <= init_window ({})",
                self.min_window, self.init_window
            )));
        }
        if self.max_window < self.init_window {
            return Err(AmpomError::InvalidPolicy(format!(
                "indigo: max_window ({}) below init_window ({})",
                self.max_window, self.init_window
            )));
        }
        if !(0.0 < self.shrink_threshold
            && self.shrink_threshold < self.grow_threshold
            && self.grow_threshold <= 1.0)
        {
            return Err(AmpomError::InvalidPolicy(format!(
                "indigo: need 0 < shrink_threshold ({}) < grow_threshold ({}) <= 1",
                self.shrink_threshold, self.grow_threshold
            )));
        }
        Ok(())
    }
}

/// Adaptive window/rate prefetching (INDIGO).
///
/// The controller never inspects the access pattern beyond the
/// direction of the last two faults; instead it closes the loop on the
/// *outcome* the run reports through [`Prefetcher::note_outcome`]: the
/// fraction of recently prefetched pages the migrant actually touched.
/// A high hit ratio doubles the prefetch window (up to `max_window`); a
/// low one halves it (down to `min_window`) **and** halves the issue
/// rate — the policy then analyses every fault but only issues a batch
/// on every second one, modelling INDIGO's network-aware rate control.
#[derive(Debug)]
pub struct IndigoPrefetcher {
    config: IndigoConfig,
    window: LookbackWindow,
    cur_window: u64,
    /// Issue a batch every `issue_every` faults (1 = every fault).
    issue_every: u64,
    faults_since_issue: u64,
    last_feedback: PrefetchFeedback,
    last_ratio: Option<f64>,
    last_page: Option<u64>,
    direction: i64,
    stats: PrefetchStats,
}

impl IndigoPrefetcher {
    /// Minimum prefetched-page delta before a hit ratio is trusted.
    const MIN_SAMPLE: u64 = 4;

    /// Creates an INDIGO prefetcher.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see
    /// [`IndigoConfig::validate`]).
    pub fn new(config: IndigoConfig) -> Self {
        config.validate().expect("invalid IndigoConfig");
        IndigoPrefetcher {
            window: LookbackWindow::new(config.history_len),
            cur_window: config.init_window,
            config,
            issue_every: 1,
            faults_since_issue: 0,
            last_feedback: PrefetchFeedback::default(),
            last_ratio: None,
            last_page: None,
            direction: 1,
            stats: PrefetchStats::default(),
        }
    }
}

impl Prefetcher for IndigoPrefetcher {
    fn on_fault(
        &mut self,
        page: PageId,
        now: SimTime,
        cpu_util: f64,
        _net: NetEstimates,
        page_limit: PageId,
        fetchable: &mut dyn FnMut(PageId) -> bool,
    ) -> ZoneDecision {
        self.window.record(page, now, cpu_util);
        self.stats.analyses += 1;

        // Direction from the last two faults (ascending by default).
        if let Some(prev) = self.last_page {
            let cur = page.index();
            if cur != prev {
                self.direction = if cur > prev { 1 } else { -1 };
            }
        }
        self.last_page = Some(page.index());

        self.faults_since_issue += 1;
        let issue = self.faults_since_issue >= self.issue_every;
        let budget = if issue {
            self.faults_since_issue = 0;
            self.cur_window
        } else {
            0
        };
        if budget == 0 {
            self.stats.fallbacks += 1;
        }

        let score = self.last_ratio.unwrap_or(0.0);
        self.stats.scores.record(score);
        self.stats.n_values.record(budget as f64);
        self.stats.budgets.record(budget as f64);

        let mut prefetch = Vec::new();
        let base = page.index() as i64;
        for k in 1..=budget as i64 {
            let idx = base + self.direction * k;
            if idx < 0 || idx as u64 >= page_limit.index() {
                break;
            }
            let p = PageId(idx as u64);
            if p != page && fetchable(p) {
                prefetch.push(p);
            }
        }
        self.stats.pages_selected += prefetch.len() as u64;

        ZoneDecision {
            prefetch,
            n_raw: budget as f64,
            budget,
            score,
            raw_score: score,
            score_clamped: false,
            rate: self.window.paging_rate().unwrap_or(0.0),
        }
    }

    fn note_outcome(&mut self, feedback: PrefetchFeedback) {
        let issued = feedback
            .pages_prefetched
            .saturating_sub(self.last_feedback.pages_prefetched);
        if issued < Self::MIN_SAMPLE {
            return; // not enough evidence to adapt on
        }
        let used = feedback
            .prefetched_used
            .saturating_sub(self.last_feedback.prefetched_used);
        self.last_feedback = feedback;
        let ratio = (used as f64 / issued as f64).clamp(0.0, 1.0);
        self.last_ratio = Some(ratio);
        if ratio >= self.config.grow_threshold {
            self.cur_window = self
                .cur_window
                .saturating_mul(2)
                .min(self.config.max_window);
            self.issue_every = 1;
        } else if ratio <= self.config.shrink_threshold {
            self.cur_window = (self.cur_window / 2).max(self.config.min_window);
            self.issue_every = 2;
        }
    }

    fn observe(&self) -> PrefetchObservation {
        PrefetchObservation {
            policy: "indigo",
            stats: self.stats.clone(),
            window_wraps: self.window.wraps(),
            window_full: self.window.is_full(),
            outstanding_streams: usize::from(self.last_ratio.unwrap_or(0.0) > 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;

    fn net() -> NetEstimates {
        NetEstimates {
            t0: SimDuration::from_micros(150),
            td: SimDuration::from_micros(366),
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn policy_labels_and_parse_round_trip() {
        for p in PolicySpec::all() {
            assert_eq!(PolicySpec::parse(p.label()), Some(p.clone()));
            assert!(p.validate().is_ok());
        }
        assert_eq!(PolicySpec::parse("bogus"), None);
        assert_eq!(PolicySpec::default(), PolicySpec::Ampom);
    }

    #[test]
    fn invalid_policies_are_typed_errors() {
        let bad = PolicySpec::Leap(LeapConfig {
            history_len: 1,
            ..LeapConfig::default()
        });
        assert!(matches!(bad.validate(), Err(AmpomError::InvalidPolicy(_))));
        let bad = PolicySpec::Leap(LeapConfig {
            init_window: 0,
            ..LeapConfig::default()
        });
        assert!(matches!(bad.validate(), Err(AmpomError::InvalidPolicy(_))));
        let bad = PolicySpec::Indigo(IndigoConfig {
            grow_threshold: 0.2,
            shrink_threshold: 0.4,
            ..IndigoConfig::default()
        });
        assert!(matches!(bad.validate(), Err(AmpomError::InvalidPolicy(_))));
        let bad = PolicySpec::Indigo(IndigoConfig {
            min_window: 0,
            ..IndigoConfig::default()
        });
        assert!(matches!(bad.validate(), Err(AmpomError::InvalidPolicy(_))));
    }

    #[test]
    fn leap_locks_onto_a_sequential_trend_and_ramps_up() {
        let mut p = LeapPrefetcher::new(LeapConfig::default());
        let limit = PageId(1_000_000);
        let mut last = None;
        for i in 0..40u64 {
            last = Some(Prefetcher::on_fault(
                &mut p,
                PageId(100 + i),
                t(i * 100),
                1.0,
                net(),
                limit,
                &mut |_| true,
            ));
        }
        let d = last.unwrap();
        assert!(d.score > 0.9, "vote share = {}", d.score);
        assert!(d.budget > LeapConfig::default().init_window);
        assert_eq!(d.prefetch.first(), Some(&PageId(140)));
        let obs = p.observe();
        assert_eq!(obs.policy, "leap");
        assert_eq!(obs.outstanding_streams, 1);
        assert!(obs.window_full);
    }

    #[test]
    fn leap_detects_a_backward_trend() {
        let mut p = LeapPrefetcher::new(LeapConfig::default());
        let limit = PageId(10_000);
        let mut last = None;
        for i in 0..30u64 {
            last = Some(Prefetcher::on_fault(
                &mut p,
                PageId(5_000 - i * 2),
                t(i * 100),
                1.0,
                net(),
                limit,
                &mut |_| true,
            ));
        }
        let d = last.unwrap();
        assert!(!d.prefetch.is_empty());
        // Stride −2: the zone descends below the faulted page.
        assert!(d.prefetch.iter().all(|pg| pg.index() < 5_000 - 58));
    }

    #[test]
    fn leap_backs_off_on_random_faults() {
        let mut p = LeapPrefetcher::new(LeapConfig::default());
        let limit = PageId(10_000_000);
        let mut rng = ampom_sim::rng::SimRng::seed_from_u64(0xBADC0FFE);
        let mut last = None;
        for i in 0..30u64 {
            last = Some(Prefetcher::on_fault(
                &mut p,
                PageId(rng.below(9_000_000)),
                t(i * 400),
                1.0,
                net(),
                limit,
                &mut |_| true,
            ));
        }
        let d = last.unwrap();
        assert!(d.prefetch.is_empty(), "no trend, no prefetch");
        assert_eq!(d.budget, 0);
        assert!(p.observe().stats.fallbacks > 0);
    }

    #[test]
    fn indigo_shrinks_window_and_rate_on_waste() {
        let mut p = IndigoPrefetcher::new(IndigoConfig::default());
        let limit = PageId(10_000_000);
        let mut issued = 0u64;
        let mut budgets = Vec::new();
        for i in 0..20u64 {
            // All prefetches wasted: `used` never advances.
            p.note_outcome(PrefetchFeedback {
                pages_prefetched: issued,
                prefetched_used: 0,
            });
            let d = Prefetcher::on_fault(
                &mut p,
                PageId((i * 104_729 + 7) % 9_000_000),
                t(i * 400),
                1.0,
                net(),
                limit,
                &mut |_| true,
            );
            issued += d.prefetch.len() as u64;
            budgets.push(d.budget);
        }
        // The window collapsed to the floor and the issue rate halved.
        assert_eq!(*budgets.last().unwrap(), 0, "rate-limited fault skipped");
        assert!(budgets.iter().filter(|&&b| b == 0).count() >= 5);
        let floor_batches = budgets
            .iter()
            .filter(|&&b| b > 0)
            .filter(|&&b| b <= IndigoConfig::default().min_window)
            .count();
        assert!(floor_batches > 0, "window must reach min_window");
    }

    #[test]
    fn indigo_grows_window_on_hits() {
        let mut p = IndigoPrefetcher::new(IndigoConfig::default());
        let limit = PageId(1_000_000);
        let mut issued = 0u64;
        let mut max_budget = 0;
        for i in 0..20u64 {
            // Every prefetched page gets used.
            p.note_outcome(PrefetchFeedback {
                pages_prefetched: issued,
                prefetched_used: issued,
            });
            let d = Prefetcher::on_fault(
                &mut p,
                PageId(100 + i * 3),
                t(i * 100),
                1.0,
                net(),
                limit,
                &mut |_| true,
            );
            issued += d.prefetch.len() as u64;
            max_budget = max_budget.max(d.budget);
        }
        assert!(
            max_budget > IndigoConfig::default().init_window,
            "window must ramp up, max = {max_budget}"
        );
    }

    #[test]
    fn all_policies_respect_the_fetchable_filter() {
        for spec in PolicySpec::all() {
            let mut p = spec.build(&AmpomConfig::default());
            let limit = PageId(100_000);
            for i in 0..40u64 {
                let d = p.on_fault(PageId(i * 2), t(i * 100), 1.0, net(), limit, &mut |pg| {
                    pg.index() % 4 == 0
                });
                assert!(
                    d.prefetch.iter().all(|pg| pg.index() % 4 == 0),
                    "{}: unfetchable page selected",
                    spec.label()
                );
                assert!(!d.prefetch.contains(&PageId(i * 2)));
            }
        }
    }

    #[test]
    fn observation_carries_stats_for_every_policy() {
        for spec in PolicySpec::all() {
            let mut p = spec.build(&AmpomConfig::default());
            for i in 0..30u64 {
                p.on_fault(
                    PageId(i),
                    t(i * 100),
                    1.0,
                    net(),
                    PageId(1_000),
                    &mut |_| true,
                );
            }
            let obs = p.observe();
            assert_eq!(obs.policy, spec.label());
            assert_eq!(obs.stats.analyses, 30);
            assert_eq!(obs.stats.budgets.count(), 30);
            assert!(
                obs.window_full,
                "{}: 30 faults fill a 20-window",
                obs.policy
            );
            assert!(obs.window_wraps >= 1);
        }
    }
}
