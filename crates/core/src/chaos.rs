//! Composable chaos scenarios over multi-migrant runs.
//!
//! A [`ChaosScenario`] names a reproducible failure shape — a
//! [`FaultProfile`] (message loss, jitter, deputy downtime) layered with
//! a deputy [`AdmissionConfig`] — and knows how to execute it: run the
//! standard chaos workload chaos-free for per-migrant baselines, re-run
//! it under the profile, and grade the outcome against the link-derived
//! [`SloSpec`]. Scenarios are pure data over the deterministic fault
//! plans of [`run_multi`], so a `(scenario, migrants, seed)` triple
//! reproduces bit-identically.
//!
//! The scenario grammar is deliberately small:
//!
//! * `null` — the control: no chaos, unbounded admission. Every SLO
//!   must come back [`SloVerdict::Met`]; CI pins this.
//! * `flaky-link-storm` — bursty message loss plus jitter on every
//!   migrant's path; no downtime.
//! * `deputy-restart-midstorm` — moderate loss while the deputy
//!   crash/restarts twice mid-run, with bounded per-shard admission so
//!   prefetch load is shed while demand is not.
//! * `partition-heal` — one long outage (a network partition) that
//!   heals; light background loss.
//! * `slow-link-degrade` — no loss at all, heavy jitter: the link decays
//!   without ever failing, isolating the latency (not loss) SLO path.
//!
//! [`ChaosScenario::with_loss`] rescales a scenario's loss rate in
//! place, which is how the monotone-degradation property builds its
//! severity ladder.

use ampom_net::fault::FaultSpec;
use ampom_net::link::LinkConfig;
use ampom_obs::{MetricSource, MetricsRegistry};
use ampom_sim::event::{DowntimeSchedule, Outage};
use ampom_sim::time::{SimDuration, SimTime};

use crate::deputy::AdmissionConfig;
use crate::error::AmpomError;
use crate::experiment::WorkloadSpec;
use crate::migration::Scheme;
use crate::multirun::{run_multi, MultiRunReport, MultiRunSpec};
use crate::reliability::FaultProfile;
use crate::runner::RunConfig;
use crate::slo::{SloReport, SloSpec, SloVerdict};

/// The workload every scenario runs: small enough for tier-1 CI, large
/// enough that outage windows land mid-run. Scenario downtime schedules
/// are tuned against this workload's timeline.
pub fn standard_workload() -> WorkloadSpec {
    WorkloadSpec::Sequential {
        pages: 192,
        cpu: SimDuration::from_micros(10),
    }
}

/// One named, reproducible failure shape.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Stable scenario name (the CLI and JSONL facts key on it).
    pub name: &'static str,
    /// One-line human description.
    pub summary: &'static str,
    profile: Option<FaultProfile>,
    admission: AdmissionConfig,
}

impl ChaosScenario {
    /// The fault profile this scenario layers over the run, if any.
    pub fn profile(&self) -> Option<&FaultProfile> {
        self.profile.as_ref()
    }

    /// The deputy admission configuration this scenario runs under.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// The scenario's message loss rate (0 for the null scenario).
    pub fn loss_rate(&self) -> f64 {
        self.profile.as_ref().map_or(0.0, |p| p.faults.loss_rate)
    }

    /// Rescales the loss rate, keeping every other knob — the severity
    /// ladder of the monotone-degradation property. A loss of 0 on a
    /// profile with no jitter or downtime degenerates to the null
    /// scenario's behaviour (the profile turns null and draws no fates).
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        let mut profile = self.profile.unwrap_or_default();
        profile.faults.loss_rate = loss_rate;
        self.profile = Some(profile);
        self
    }

    /// Executes the scenario: a chaos-free baseline run for per-migrant
    /// slowdown baselines, then the chaos run, then SLO grading against
    /// the link-derived spec.
    pub fn run(&self, migrants: u32, seed: u64) -> Result<ScenarioOutcome, AmpomError> {
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.seed = seed;
        let link = cfg.link;
        let workload = standard_workload();

        let baseline = run_multi(&MultiRunSpec::homogeneous(
            cfg.clone(),
            workload.clone(),
            seed,
            migrants,
        ))?;
        let baseline_totals: Vec<SimDuration> =
            baseline.reports.iter().map(|r| r.total_time).collect();

        let report = match &self.profile {
            None if self.admission.is_unbounded() => baseline,
            maybe_profile => {
                let mut spec = MultiRunSpec::homogeneous(cfg, workload, seed, migrants)
                    .with_admission(self.admission);
                if let Some(profile) = maybe_profile {
                    spec = spec.with_chaos(profile.clone());
                }
                run_multi(&spec)?
            }
        };

        let slo =
            SloSpec::for_link(&link, migrants).evaluate_multi(&report, Some(&baseline_totals));
        Ok(ScenarioOutcome {
            name: self.name,
            migrants,
            seed,
            link,
            baseline_totals,
            report,
            slo,
        })
    }
}

/// Every named scenario, `null` first — the canonical ordering the CLI,
/// CI smoke and EXPERIMENTS tables all use.
pub fn scenarios() -> Vec<ChaosScenario> {
    let at = |m: u64| SimTime::ZERO + SimDuration::from_millis(m);
    vec![
        ChaosScenario {
            name: "null",
            summary: "control: no chaos, unbounded admission",
            profile: None,
            admission: AdmissionConfig::default(),
        },
        ChaosScenario {
            name: "flaky-link-storm",
            summary: "bursty 15% message loss with jitter on every path",
            profile: Some(FaultProfile::default().with_faults(FaultSpec {
                loss_rate: 0.15,
                burst_len: 3,
                jitter: SimDuration::from_micros(150),
            })),
            admission: AdmissionConfig::default(),
        },
        ChaosScenario {
            name: "deputy-restart-midstorm",
            summary: "8% loss while the deputy restarts twice under bounded admission",
            profile: Some({
                let mut p = FaultProfile::default().with_faults(FaultSpec {
                    loss_rate: 0.08,
                    burst_len: 2,
                    jitter: SimDuration::ZERO,
                });
                // The standard workload freezes until ~70ms and pages
                // until ~146ms: both restarts land inside the paging
                // phase.
                p.downtime = DowntimeSchedule::new(vec![
                    Outage {
                        down_at: at(80),
                        up_at: at(90),
                    },
                    Outage {
                        down_at: at(110),
                        up_at: at(120),
                    },
                ])
                .expect("well-formed outage timetable");
                p
            }),
            admission: AdmissionConfig::bounded(12),
        },
        ChaosScenario {
            name: "partition-heal",
            summary: "one long partition that heals, light background loss",
            profile: Some(
                FaultProfile::lossy(0.02).with_downtime(DowntimeSchedule::single(at(85), at(125))),
            ),
            admission: AdmissionConfig::default(),
        },
        ChaosScenario {
            name: "slow-link-degrade",
            summary: "zero loss, heavy jitter: latency decay without failure",
            profile: Some(FaultProfile::default().with_faults(FaultSpec {
                loss_rate: 0.0,
                burst_len: 1,
                jitter: SimDuration::from_micros(400),
            })),
            admission: AdmissionConfig::default(),
        },
    ]
}

/// Looks a scenario up by name.
pub fn scenario(name: &str) -> Option<ChaosScenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// What one scenario execution produced: the graded chaos run plus the
/// chaos-free baselines it was graded against.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Concurrent migrants in the run.
    pub migrants: u32,
    /// Base seed (workload, cross-traffic and fault plans all derive
    /// from it).
    pub seed: u64,
    /// Link the SLO budgets were derived from.
    pub link: LinkConfig,
    /// Chaos-free per-migrant total times (the slowdown baselines).
    pub baseline_totals: Vec<SimDuration>,
    /// The chaos run itself.
    pub report: MultiRunReport,
    /// Per-migrant SLO grades, in shard order.
    pub slo: Vec<SloReport>,
}

impl ScenarioOutcome {
    /// The worst per-migrant verdict — the scenario's headline grade.
    pub fn worst_verdict(&self) -> SloVerdict {
        self.slo
            .iter()
            .map(SloReport::overall)
            .max()
            .unwrap_or(SloVerdict::Met)
    }

    /// Prefetch pages shed by admission control across all shards.
    pub fn prefetch_pages_shed(&self) -> u64 {
        self.report.deputy.prefetch_pages_shed
    }

    /// Demand pages shed (structurally zero in the simulated deputy).
    pub fn demand_pages_shed(&self) -> u64 {
        self.report.deputy.demand_pages_shed
    }

    /// Total fault-recovery retries across migrants.
    pub fn total_retries(&self) -> u64 {
        self.report.reports.iter().map(|r| r.faults.retries).sum()
    }
}

impl MetricSource for ScenarioOutcome {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.report.export_metrics(reg);
        self.report.deputy.export_metrics(reg);
        for (i, slo) in self.slo.iter().enumerate() {
            slo.export(reg, &format!("migrant_{i}"));
        }
        reg.export_gauge(
            "ampom_chaos_worst_verdict",
            "Worst per-migrant SLO verdict of the scenario (0 met, 1 at-risk, 2 breached)",
            self.worst_verdict().rank() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_resolvable() {
        let all = scenarios();
        for s in &all {
            assert_eq!(scenario(s.name).expect("resolvable").name, s.name);
        }
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
    }

    #[test]
    fn every_profile_validates_and_null_is_truly_null() {
        for s in scenarios() {
            if let Some(p) = s.profile() {
                p.validate().expect("scenario profile validates");
                assert!(!p.is_null(), "{} carries a null profile", s.name);
            }
            s.admission
                .validate()
                .expect("scenario admission validates");
        }
        let null = scenario("null").expect("null exists");
        assert!(null.profile().is_none());
        assert!(null.admission().is_unbounded());
    }

    #[test]
    fn null_scenario_meets_every_slo() {
        let outcome = scenario("null")
            .expect("null exists")
            .run(2, 42)
            .expect("null scenario runs");
        assert_eq!(outcome.worst_verdict(), SloVerdict::Met);
        assert_eq!(outcome.prefetch_pages_shed(), 0);
        assert_eq!(outcome.total_retries(), 0);
    }

    #[test]
    fn storm_degrades_the_null_grade() {
        let null = scenario("null").expect("exists").run(2, 42).expect("runs");
        let storm = scenario("flaky-link-storm")
            .expect("exists")
            .run(2, 42)
            .expect("runs");
        assert!(
            storm.worst_verdict() >= null.worst_verdict(),
            "storm verdict {:?} better than null {:?}",
            storm.worst_verdict(),
            null.worst_verdict()
        );
        assert!(
            storm.total_retries() > 0,
            "a 15% loss storm retried nothing"
        );
    }

    #[test]
    fn with_loss_rescales_only_the_loss_rate() {
        let base = scenario("flaky-link-storm").expect("exists");
        let hot = base.clone().with_loss(0.3);
        assert_eq!(hot.loss_rate(), 0.3);
        assert_eq!(
            hot.profile().expect("profile").faults.jitter,
            base.profile().expect("profile").faults.jitter
        );
    }
}
