//! The bidirectional page lifecycle: writeback, MPT replication, and the
//! home-return migration path.
//!
//! Forward migration (the rest of this crate) only ever moves pages
//! *toward* the migrant. This module closes the loop:
//!
//! * a **writeback engine** promotes the dirty bit to a versioned
//!   write-set ([`ampom_mem::writeback`]); dirty pages flow home in delta
//!   batches budgeted against the reply link, with exactly-once
//!   accounting that survives the PR 2 fault model (message loss, jitter,
//!   deputy outages — see [`crate::reliability`]);
//! * a **Mitosis-style MPT replica** ([`ampom_mem::replica`]) keeps hot
//!   page-table lookups node-local, invalidated by transfer and writeback
//!   events and refreshed lazily;
//! * a **home-return path** runs the 3-page + MPT freeze in reverse:
//!   pages the migrant never fetched are free at home (§2.2 — the origin
//!   only deletes a page when it is transferred), pages whose contents
//!   were written back are flipped home ([`PageTablePair::return_to_origin`])
//!   during the drain, and the remote node keeps a deputy stub for the
//!   pages it still exclusively holds.
//!
//! [`run_lifecycle`] is the engine; [`crate::remigration::run_round_trip`]
//! is now a thin wrapper over it with writeback disabled, preserving the
//! analytic round-trip report the extension experiments consume. The
//! forward run loops reuse [`ForwardWriteback`], the reliable in-run
//! variant of the same write-set/sink pair, gated behind
//! [`crate::runner::RunConfig::writeback`] so default runs stay
//! bit-identical to the golden fingerprints.

use std::collections::{BTreeMap, HashMap, VecDeque};

use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::replica::MptReplica;
use ampom_mem::space::{AddressSpace, PageState, TouchOutcome};
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_mem::writeback::{WriteSet, WritebackSink};
use ampom_net::calibration::{AMPOM_ANALYSIS_COST, MIGRATION_BASE_COST, MPT_ENTRY_COST};
use ampom_net::fault::{Fate, FaultPlan};
use ampom_obs::{MetricSource, MetricsRegistry};
use ampom_sim::event::DowntimeSchedule;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceKind};
use ampom_workloads::memref::Workload;

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::error::AmpomError;
use crate::metrics::WritebackStats;
use crate::migration::{perform_freeze, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::policy::Prefetcher;
use crate::reliability::{RetryPolicy, RetrySchedule};
use crate::runner::{RunConfig, MINOR_FAULT_COST, PAGE_INSTALL_COST};

/// Seed salt separating the writeback channel's fate streams from the
/// forward path's fault injector.
const WRITEBACK_CHAOS_SALT: u64 = 0x7762_5eed; // "wb" seed

/// Wire overhead of one writeback batch: length, type, sequence number
/// and entry count (mirrors the v4 `WritebackBatch` frame header).
pub const WRITEBACK_HEADER_BYTES: u64 = 17;

/// Per-entry overhead on top of the page contents: page id + version.
pub const WRITEBACK_ENTRY_OVERHEAD: u64 = 16;

/// Bytes one writeback batch of `pages` entries occupies on the wire.
pub fn writeback_batch_bytes(pages: usize) -> u64 {
    WRITEBACK_HEADER_BYTES + pages as u64 * (WRITEBACK_ENTRY_OVERHEAD + PAGE_SIZE)
}

/// Background-writeback tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackSpec {
    /// Flush cadence: build and send delta batches every this many remote
    /// faults (the fault handler is the natural background hook — the
    /// migrant is stalled anyway).
    pub flush_every_faults: u64,
    /// Cap on pages per delta batch, so a flush never monopolises the
    /// link (matches the v4 wire cap).
    pub max_batch_pages: usize,
}

impl Default for WritebackSpec {
    fn default() -> Self {
        WritebackSpec {
            flush_every_faults: 8,
            max_batch_pages: 64,
        }
    }
}

impl WritebackSpec {
    /// Checks every knob against its documented domain.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if self.flush_every_faults == 0 {
            return Err(AmpomError::InvalidConfig(
                "writeback.flush_every_faults must be positive".into(),
            ));
        }
        if self.max_batch_pages == 0 {
            return Err(AmpomError::InvalidConfig(
                "writeback.max_batch_pages must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Closed-form per-migration costs for cluster-scale composition.
///
/// [`run_lifecycle`] simulates one migrant's out → dirty → writeback →
/// return chain page by page. A 1000-node cluster-life engine cannot
/// afford that per job, so it charges this analytic model built from the
/// *same* constants: outbound freezes from
/// [`crate::scheduler::freeze_time`], return traffic from the dirty
/// footprint via [`writeback_batch_bytes`] (the home-return merge only
/// ships pages the away phase dirtied — clean pages are free at home,
/// §2.2), and the return freeze as the scheme's freeze over that dirty
/// footprint. The two layers therefore stay calibrated against each
/// other by construction, which `cost_model_tracks_lifecycle_constants`
/// pins.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleCostModel {
    /// The migration mechanism.
    pub scheme: Scheme,
    /// Writeback batching knobs (set the return wire overhead).
    pub writeback: WritebackSpec,
}

impl LifecycleCostModel {
    /// A model for `scheme` with default writeback batching.
    pub fn new(scheme: Scheme) -> Self {
        LifecycleCostModel {
            scheme,
            writeback: WritebackSpec::default(),
        }
    }

    /// Freeze paid when the job leaves home (or remigrates): the Figure 5
    /// calibration for the scheme.
    pub fn outbound_freeze(&self, memory_mb: u64) -> SimDuration {
        crate::scheduler::freeze_time(self.scheme, memory_mb)
    }

    /// Pages the away phase dirtied and the return must reconcile.
    pub fn dirty_pages(&self, memory_mb: u64, dirty_fraction: f64) -> u64 {
        let pages = memory_mb * 1024 * 1024 / PAGE_SIZE;
        (pages as f64 * dirty_fraction.clamp(0.0, 1.0)).ceil() as u64
    }

    /// Bytes the home-return ships: the dirty pages in writeback batches
    /// of at most `max_batch_pages`, each paying the batch header and
    /// per-entry overhead. Eager openMosix has no writeback channel — its
    /// return re-ships the whole footprint, exactly like the outbound
    /// copy.
    pub fn return_bytes(&self, memory_mb: u64, dirty_fraction: f64) -> u64 {
        match self.scheme {
            Scheme::OpenMosix => memory_mb * 1024 * 1024,
            Scheme::Ampom | Scheme::NoPrefetch | Scheme::Ffa => {
                let dirty = self.dirty_pages(memory_mb, dirty_fraction);
                let cap = self.writeback.max_batch_pages as u64;
                let batches = dirty.div_ceil(cap.max(1));
                dirty * (PAGE_SIZE + WRITEBACK_ENTRY_OVERHEAD) + batches * WRITEBACK_HEADER_BYTES
            }
        }
    }

    /// Software freeze paid at return: the scheme's freeze over the dirty
    /// footprint only (pages never touched away are free at home).
    pub fn return_freeze(&self, memory_mb: u64, dirty_fraction: f64) -> SimDuration {
        let dirty_mb =
            (self.dirty_pages(memory_mb, dirty_fraction) * PAGE_SIZE).div_ceil(1024 * 1024);
        crate::scheduler::freeze_time(self.scheme, dirty_mb.max(1))
    }
}

/// Configuration of one lifecycle run (out → dirty → writeback → return).
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Fraction of the reference stream executed away before the forced
    /// return home; must lie in (0, 1).
    pub away_fraction: f64,
    /// Background writeback while away; `None` reproduces the analytic
    /// round-trip model exactly (nothing flows home until the return).
    pub writeback: Option<WritebackSpec>,
}

impl LifecycleConfig {
    /// A lifecycle run returning after `away_fraction` of the stream,
    /// with default background writeback.
    pub fn new(away_fraction: f64) -> Self {
        LifecycleConfig {
            away_fraction,
            writeback: Some(WritebackSpec::default()),
        }
    }

    /// Disables background writeback (the analytic round-trip model).
    pub fn without_writeback(mut self) -> Self {
        self.writeback = None;
        self
    }
}

/// Measurements of one lifecycle run.
#[derive(Debug)]
pub struct LifecycleReport {
    /// Scheme used for both hops.
    pub scheme: Scheme,
    /// Freeze time of the outbound migration.
    pub outbound_freeze: SimDuration,
    /// Freeze time of the return migration.
    pub return_freeze: SimDuration,
    /// Wall time of the whole run.
    pub total_time: SimDuration,
    /// Time executing on the remote node (incl. the writeback drain).
    pub away_time: SimDuration,
    /// Time executing back home after the return freeze.
    pub home_time: SimDuration,
    /// Pages moved out to the remote node in the away phase.
    pub pages_fetched_remotely: u64,
    /// Remote-resident pages the return had to account for.
    pub pages_returned: u64,
    /// Pages resident for free after the return (never fetched, or their
    /// contents were written back before the freeze).
    pub pages_freed_at_home: u64,
    /// Pages the remote node's deputy stub still exclusively holds.
    pub stub_pages: u64,
    /// Remote fault requests over both phases.
    pub fault_requests: u64,
    /// Remote fault requests in the away phase alone.
    pub away_fault_requests: u64,
    /// Distinct pages dirtied while away.
    pub pages_dirtied: u64,
    /// Distinct pages the home sink holds after the drain.
    pub sink_pages: u64,
    /// Deputy-sink restarts survived by the writeback protocol.
    pub sink_restarts: u64,
    /// True iff every dirtied page's final version was applied at the
    /// sink exactly once and nothing is left in flight.
    pub conservation_ok: bool,
    /// Writeback and replica counters.
    pub writeback: WritebackStats,
    /// Event trace (enabled by `cfg.trace`).
    pub trace: Trace,
}

impl LifecycleReport {
    /// Panics unless the dirty-page conservation property held: the
    /// write-set drained and the sink holds exactly the final version of
    /// every dirtied page.
    pub fn check_conservation(&self) {
        assert!(
            self.conservation_ok,
            "dirty-page conservation violated: {} dirtied, {} at sink, \
             {} restarts survived",
            self.pages_dirtied, self.sink_pages, self.sink_restarts
        );
    }
}

impl MetricSource for LifecycleReport {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.writeback.export_metrics(reg);
        reg.export_gauge(
            "ampom_lifecycle_outbound_freeze_seconds",
            "freeze time of the outbound migration",
            self.outbound_freeze.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_lifecycle_return_freeze_seconds",
            "freeze time of the home-return migration",
            self.return_freeze.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_lifecycle_pages_freed_at_home",
            "pages resident for free after the return",
            self.pages_freed_at_home as f64,
        );
        reg.export_gauge(
            "ampom_lifecycle_stub_pages",
            "pages the remote deputy stub still holds",
            self.stub_pages as f64,
        );
        reg.export_counter(
            "ampom_lifecycle_sink_restarts_total",
            "deputy-sink restarts survived by the writeback protocol",
            self.sink_restarts,
        );
        reg.export_counter(
            "ampom_lifecycle_pages_dirtied_total",
            "distinct pages dirtied while away",
            self.pages_dirtied,
        );
    }
}

// ---------------------------------------------------------------------
// The migrant→deputy writeback channel under the PR 2 fault model.
// ---------------------------------------------------------------------

/// One sent-but-unsettled batch.
#[derive(Debug, Clone, Copy)]
struct InFlightBatch {
    /// When the ack lands (None: batch or ack was lost).
    ack_at: Option<SimTime>,
    /// When the sender presumes loss and retransmits.
    resend_at: SimTime,
    /// Retransmission attempts so far (drives the backoff).
    attempt: u32,
}

/// Fault-model state for the channel (absent on a reliable link).
#[derive(Debug)]
struct ChannelChaos {
    batch_plan: FaultPlan,
    ack_plan: FaultPlan,
    downtime: DowntimeSchedule,
    /// A deputy outage was observed; the sink restarts (losing its
    /// volatile seen-sequence set) when sim time passes this instant.
    pending_restart: Option<SimTime>,
    retry: RetryPolicy,
    base_timeout: SimDuration,
}

/// The away-phase writeback channel: write-set, sink, and the in-flight
/// batch ledger, with loss/jitter/outage drawn from the run's profile.
#[derive(Debug)]
struct WritebackChannel {
    spec: WritebackSpec,
    wset: WriteSet,
    sink: WritebackSink,
    chaos: Option<ChannelChaos>,
    sent: BTreeMap<u64, InFlightBatch>,
    faults_since_flush: u64,
    bytes: u64,
    flush_time: SimDuration,
    sink_restarts: u64,
}

impl WritebackChannel {
    fn new(spec: WritebackSpec, cfg: &RunConfig) -> Self {
        let chaos = cfg.faults.as_ref().filter(|p| !p.is_null()).map(|p| {
            let rng = SimRng::seed_from_u64(cfg.seed ^ WRITEBACK_CHAOS_SALT);
            ChannelChaos {
                batch_plan: FaultPlan::new(p.faults, rng.fork(0x7762_6174)),
                ack_plan: FaultPlan::new(p.faults, rng.fork(0x7761_636b)),
                downtime: p.downtime.clone(),
                pending_restart: None,
                retry: p.retry,
                base_timeout: RetrySchedule::for_link(p.retry, p.policy, cfg.link).base_timeout(),
            }
        });
        WritebackChannel {
            spec,
            wset: WriteSet::new(),
            sink: WritebackSink::new(),
            chaos,
            sent: BTreeMap::new(),
            faults_since_flush: 0,
            bytes: 0,
            flush_time: SimDuration::ZERO,
            sink_restarts: 0,
        }
    }

    fn note_write(&mut self, page: PageId) {
        self.wset.note_write(page);
    }

    /// The fault-handler hook: every `flush_every_faults` remote faults,
    /// settle acks, retransmit the overdue and flush fresh batches.
    fn on_remote_fault(&mut self, now: SimTime, path: &mut NetPath, trace: &mut Trace) {
        self.faults_since_flush += 1;
        if self.faults_since_flush >= self.spec.flush_every_faults {
            self.faults_since_flush = 0;
            self.pump(now, path, trace);
        }
    }

    /// Settles acks due by `now`, retransmits overdue batches and sends
    /// every batch the dirty set can fill. Never advances `now`: the
    /// flush is background traffic, charged to the link but not to the
    /// migrant's clock.
    fn pump(&mut self, now: SimTime, path: &mut NetPath, trace: &mut Trace) {
        self.settle(now);
        let overdue: Vec<u64> = self
            .sent
            .iter()
            .filter(|(_, b)| b.ack_at.is_none() && b.resend_at <= now)
            .map(|(&s, _)| s)
            .collect();
        for seq in overdue {
            let entries = self
                .wset
                .take_for_retry(seq)
                .expect("overdue batch is pending");
            let attempt = self.sent[&seq].attempt + 1;
            trace.record_with(now, TraceKind::WritebackRetransmit, || TraceData {
                pages: Some(entries.len() as u64),
                retry: Some(attempt as u64),
                ..TraceData::default()
            });
            self.transmit(seq, &entries, attempt, now, path);
        }
        while let Some((seq, entries)) = self.wset.build_batch(self.spec.max_batch_pages) {
            trace.record_with(now, TraceKind::WritebackFlush, || TraceData {
                pages: Some(entries.len() as u64),
                bytes: Some(writeback_batch_bytes(entries.len())),
                ..TraceData::default()
            });
            self.transmit(seq, &entries, 0, now, path);
        }
    }

    fn settle(&mut self, now: SimTime) {
        let acked: Vec<u64> = self
            .sent
            .iter()
            .filter(|(_, b)| matches!(b.ack_at, Some(t) if t <= now))
            .map(|(&s, _)| s)
            .collect();
        for seq in acked {
            self.sent.remove(&seq);
            self.wset.on_ack(seq);
        }
    }

    /// Clocks one batch out on the dest→home direction and resolves its
    /// fate (the simulator knows it immediately): applied + acked,
    /// batch lost, ack lost, or deputy down.
    fn transmit(
        &mut self,
        seq: u64,
        entries: &[(PageId, u64)],
        attempt: u32,
        now: SimTime,
        path: &mut NetPath,
    ) {
        let bytes = writeback_batch_bytes(entries.len());
        let arrival = path.send_control_to_home(now, bytes);
        self.bytes += bytes;
        self.flush_time += arrival.since(now);
        let latency = path.latency();
        let (ack_at, resend_at) = match self.chaos.as_mut() {
            None => {
                let _ = self.sink.apply_batch(seq, entries);
                (Some(arrival), arrival)
            }
            Some(c) => {
                if let Some(up) = c.pending_restart {
                    if up <= arrival {
                        self.sink.restart();
                        self.sink_restarts += 1;
                        c.pending_restart = None;
                    }
                }
                let timeout = c.retry.timeout(c.base_timeout, attempt);
                match c.batch_plan.fate() {
                    Fate::Dropped => (None, now + timeout),
                    Fate::Delivered { extra_delay } => {
                        let at = arrival + extra_delay;
                        if c.downtime.is_down(at) {
                            // The deputy is down: the batch is lost and
                            // the sink will come back with its volatile
                            // state gone.
                            let up = c.downtime.next_up(at);
                            c.pending_restart = Some(up);
                            (None, (now + timeout).max(up))
                        } else {
                            let _ = self.sink.apply_batch(seq, entries);
                            match c.ack_plan.fate() {
                                Fate::Dropped => (None, now + timeout),
                                Fate::Delivered { extra_delay: d } => {
                                    (Some(at + latency + d), now + timeout)
                                }
                            }
                        }
                    }
                }
            }
        };
        self.sent.insert(
            seq,
            InFlightBatch {
                ack_at,
                resend_at,
                attempt,
            },
        );
    }

    /// Drives the channel until every dirtied page is flushed *and*
    /// acknowledged, advancing time across retransmission rounds. The
    /// kernel completes outstanding writeback before freezing for the
    /// return, exactly like outstanding page I/O.
    fn drain(&mut self, mut now: SimTime, path: &mut NetPath, trace: &mut Trace) -> SimTime {
        let mut guard = 0u32;
        loop {
            self.pump(now, path, trace);
            if self.wset.is_drained() && self.sent.is_empty() {
                return now;
            }
            guard += 1;
            assert!(guard < 1_000_000, "writeback drain failed to converge");
            let next = self
                .sent
                .values()
                .map(|b| b.ack_at.unwrap_or(b.resend_at))
                .min()
                .expect("undrained channel has batches in flight");
            now = now.max(next);
        }
    }

    fn stats(&self) -> WritebackStats {
        WritebackStats {
            writes_noted: self.wset.counters.writes_noted,
            redirties: self.wset.counters.redirties,
            batches_sent: self.wset.counters.batches_built,
            pages_written_back: self.sink.counters.pages_applied,
            retransmits: self.wset.counters.retransmits,
            duplicate_batches: self.sink.counters.duplicate_batches,
            duplicate_pages: self.sink.counters.duplicate_pages,
            writeback_bytes: self.bytes,
            flush_time: self.flush_time,
            ..WritebackStats::default()
        }
    }

    /// Conservation: drained, and the sink holds exactly the final
    /// version of every page ever dirtied.
    fn conservation_ok(&self) -> bool {
        self.wset.is_drained()
            && self.sink.pages_written_back() == self.wset.versions().len() as u64
            && self
                .wset
                .versions()
                .iter()
                .all(|(&p, &v)| self.sink.applied_version(p) == v)
    }
}

// ---------------------------------------------------------------------
// The reliable in-run engine the forward loops share.
// ---------------------------------------------------------------------

/// Write-set + sink for the forward run loops, where the in-run paging
/// protocol is reliable (the reliability layer wraps the *request* path;
/// writeback rides the same recovered stream). Each loop supplies its own
/// carrier — [`NetPath::send_control_to_home`] or
/// [`crate::transport::Transport::writeback_batch`] — and completes
/// batches through [`ForwardWriteback::complete`].
#[derive(Debug)]
pub struct ForwardWriteback {
    spec: WritebackSpec,
    wset: WriteSet,
    sink: WritebackSink,
    faults_since_flush: u64,
    bytes: u64,
    flush_time: SimDuration,
}

impl ForwardWriteback {
    /// A fresh engine under `spec`.
    pub fn new(spec: WritebackSpec) -> Self {
        ForwardWriteback {
            spec,
            wset: WriteSet::new(),
            sink: WritebackSink::new(),
            faults_since_flush: 0,
            bytes: 0,
            flush_time: SimDuration::ZERO,
        }
    }

    /// Notes a dirtying touch (no-op when `write` is false).
    pub fn note_touch(&mut self, page: PageId, write: bool) {
        if write {
            self.wset.note_write(page);
        }
    }

    /// The fault-cadence hook; true when a flush is due.
    pub fn on_fault(&mut self) -> bool {
        self.faults_since_flush += 1;
        if self.faults_since_flush >= self.spec.flush_every_faults {
            self.faults_since_flush = 0;
            true
        } else {
            false
        }
    }

    /// Builds the next delta batch, if anything is dirty.
    pub fn take_batch(&mut self) -> Option<(u64, Vec<(PageId, u64)>)> {
        self.wset.build_batch(self.spec.max_batch_pages)
    }

    /// Completes a batch the carrier delivered: applies it to the sink,
    /// acknowledges the write-set and accounts the wire cost.
    pub fn complete(
        &mut self,
        seq: u64,
        entries: &[(PageId, u64)],
        bytes: u64,
        sent_at: SimTime,
        acked_at: SimTime,
    ) {
        self.bytes += bytes;
        self.flush_time += acked_at.since(sent_at);
        let _ = self.sink.apply_batch(seq, entries);
        self.wset.on_ack(seq);
    }

    /// True while dirty pages await a final drain.
    pub fn has_dirty(&self) -> bool {
        self.wset.dirty_len() > 0
    }

    /// The run-report counters (replica fields are the caller's).
    pub fn stats(&self) -> WritebackStats {
        WritebackStats {
            writes_noted: self.wset.counters.writes_noted,
            redirties: self.wset.counters.redirties,
            batches_sent: self.wset.counters.batches_built,
            pages_written_back: self.sink.counters.pages_applied,
            retransmits: self.wset.counters.retransmits,
            duplicate_batches: self.sink.counters.duplicate_batches,
            duplicate_pages: self.sink.counters.duplicate_pages,
            writeback_bytes: self.bytes,
            flush_time: self.flush_time,
            ..WritebackStats::default()
        }
    }
}

// ---------------------------------------------------------------------
// The lifecycle engine.
// ---------------------------------------------------------------------

/// Runs `workload` through the full lifecycle: outbound migration at t=0,
/// execution away (with background writeback when configured), a forced
/// home-return after `lc.away_fraction` of the reference stream, and
/// execution back home to completion.
///
/// Both hops use `cfg.scheme`; the network is `cfg.link` in both
/// directions. When `cfg.faults` carries a non-null profile, the
/// writeback channel draws message fates and deputy outages from it (the
/// demand-paging path stays exact — the profile's recovery machinery for
/// that path lives in the forward runner).
///
/// # Panics
/// Panics unless `lc.away_fraction` lies in (0, 1).
pub fn run_lifecycle<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
    lc: &LifecycleConfig,
) -> LifecycleReport {
    assert!(
        (0.0..1.0).contains(&lc.away_fraction) && lc.away_fraction > 0.0,
        "away_fraction must be in (0, 1)"
    );
    if let Some(spec) = &lc.writeback {
        spec.validate().expect("invalid writeback spec");
    }
    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let total_refs = workload.total_refs_hint();
    let switch_at = ((total_refs as f64 * lc.away_fraction) as u64).max(1);

    let mut path = NetPath::new(cfg.link);
    let mut trace = if cfg.trace {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    let freeze = perform_freeze(cfg.scheme, &pre, &mut path, &mut trace);
    let outbound_freeze = freeze.freeze_time;
    let mut space = freeze.space;
    let mut table = freeze.table;
    let mut now = SimTime::ZERO + outbound_freeze;
    let away_start = now;

    let mut deputy = Deputy::new();
    let mut monitor = MonitorDaemon::new(&path);
    let mut prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));
    let mut in_flight: HashMap<PageId, SimTime> = HashMap::new();
    let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
    let page_limit = PageId(layout.total_pages());

    let mut channel = lc.writeback.map(|spec| WritebackChannel::new(spec, cfg));
    let mut replica = MptReplica::from_table(&table);

    let mut fault_requests = 0u64;
    let mut away_fault_requests = 0u64;
    let mut refs_done = 0u64;

    // ---- Away phase: executing on the remote node. ----
    while refs_done < switch_at {
        let Some(r) = workload.next() else { break };
        refs_done += 1;
        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => {
                if r.write {
                    if let Some(c) = channel.as_mut() {
                        c.note_write(r.page);
                    }
                }
                now += r.cpu;
            }
            TouchOutcome::LocalAllocate => {
                // First touches allocate dirty (anonymous zero-fill), so
                // the page joins the write-set regardless of `r.write`.
                if let Some(c) = channel.as_mut() {
                    c.note_write(r.page);
                }
                if replica.lookup(r.page, &table).is_none() {
                    table.create_at_destination(r.page);
                    replica.invalidate(r.page);
                }
                now += MINOR_FAULT_COST + r.cpu;
            }
            TouchOutcome::RemoteFault => {
                if let Some(c) = channel.as_mut() {
                    c.on_remote_fault(now, &mut path, &mut trace);
                }
                install(&mut staged, &mut in_flight, &mut space, &mut now);
                let prefetch = match prefetcher.as_mut() {
                    Some(pf) => {
                        monitor.advance(now, &mut path);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, now, 1.0, est, page_limit, &mut |p| {
                            space.state(p) == PageState::Remote && !in_flight.contains_key(&p)
                        });
                        now += AMPOM_ANALYSIS_COST;
                        monitor.on_window_wrap(now, pf.observe().window_wraps, &path);
                        d.prefetch
                    }
                    None => Vec::new(),
                };
                if space.is_resident(r.page) {
                    // Resolved by the install above.
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    now = now.max(arrival);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                } else {
                    fault_requests += 1;
                    away_fault_requests += 1;
                    let mut pages = vec![r.page];
                    pages.extend_from_slice(&prefetch);
                    let at_home = path.send_request(now, pages.len());
                    for s in deputy.serve_request(at_home, &pages, &mut table, &mut path) {
                        replica.invalidate(s.page);
                        in_flight.insert(s.page, s.arrives);
                        staged.push_back((s.arrives, s.page));
                    }
                    now = now.max(in_flight[&r.page]);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                }
                let hit = space.touch(r.page, r.write);
                debug_assert_eq!(hit, TouchOutcome::Hit);
                if r.write {
                    if let Some(c) = channel.as_mut() {
                        c.note_write(r.page);
                    }
                }
                now += r.cpu;
            }
        }
    }

    // Drain the paging pipeline: anything in flight lands at the remote
    // node before the return (the kernel completes outstanding I/O before
    // freezing).
    while let Some(&(arrival, _)) = staged.front() {
        now = now.max(arrival);
        install(&mut staged, &mut in_flight, &mut space, &mut now);
    }

    // ---- Writeback drain + table flips. ----
    // Every dirtied page must reach the home sink before the return
    // freeze; the drain rides out loss, jitter and deputy outages. Pages
    // whose contents came home flip back to origin storage — the same
    // `Both` transition any origin-departure reports, run in reverse.
    let remote_resident: Vec<PageId> = space
        .pages_where(|s| matches!(s, PageState::Resident { .. }))
        .collect();
    let pages_returned = remote_resident.len() as u64;
    let pages_fetched_remotely = table.pages_at_destination();
    let mut sink_restarts = 0u64;
    let mut pages_dirtied = 0u64;
    let mut sink_pages = 0u64;
    let mut conservation_ok = true;
    if let Some(c) = channel.as_mut() {
        now = c.drain(now, &mut path, &mut trace);
        sink_restarts = c.sink_restarts;
        pages_dirtied = c.wset.versions().len() as u64;
        sink_pages = c.sink.pages_written_back();
        conservation_ok = c.conservation_ok();
        for &page in c.sink.applied().keys() {
            if table.lookup(page) == Some(PageLocation::Destination) {
                table.return_to_origin(page);
                replica.invalidate(page);
            }
        }
        table.check_invariants();
    }
    let away_time = now.since(away_start);

    // ---- Return freeze. ----
    let return_freeze = match cfg.scheme {
        Scheme::OpenMosix => {
            // Eager: ship every remote-resident page back at once.
            let bytes = pages_returned * PAGE_SIZE;
            let done = path.bulk_transfer(now + MIGRATION_BASE_COST, bytes);
            done.since(now)
        }
        Scheme::Ampom => {
            // Three pages + MPT, as always.
            let mpt = table.mpt_bytes();
            let start =
                now + MIGRATION_BASE_COST + MPT_ENTRY_COST.saturating_mul(table.mapped_pages());
            let done = path.bulk_transfer(start, 3 * PAGE_SIZE + mpt);
            done.since(now)
        }
        Scheme::NoPrefetch | Scheme::Ffa => {
            let done = path.bulk_transfer(now + MIGRATION_BASE_COST, 3 * PAGE_SIZE);
            done.since(now)
        }
    };
    trace.record_with(now, TraceKind::ReturnFreeze, || TraceData {
        pages: Some(pages_returned),
        ..TraceData::default()
    });
    now += return_freeze;
    let home_start = now;

    // ---- Home phase: executing back home. ----
    // Role swap: remote-resident pages become remote (stored on the node
    // we just left, which keeps a deputy stub); origin-stored pages — the
    // never-fetched and the written-back — are local for free. Under
    // eager openMosix everything returned during the freeze.
    let mut pages_freed_at_home = 0u64;
    if cfg.scheme != Scheme::OpenMosix {
        for &p in &remote_resident {
            space.mark_remote(p);
        }
        let free_at_home: Vec<PageId> = space
            .pages_where(|s| s == PageState::Remote)
            .filter(|p| replica.lookup(*p, &table) == Some(PageLocation::Origin))
            .collect();
        pages_freed_at_home = free_at_home.len() as u64;
        for p in free_at_home {
            space.install(p);
        }
    }
    trace.record_with(now, TraceKind::PagesFreedAtHome, || TraceData {
        pages: Some(pages_freed_at_home),
        ..TraceData::default()
    });

    // Fresh transfer bookkeeping for the second hop: the remote node's
    // stub serves what it still exclusively holds.
    let mut return_table =
        PageTablePair::at_migration(space.pages_where(|s| s == PageState::Remote));
    let stub_pages = return_table.mapped_pages();
    let mut return_replica = MptReplica::from_table(&return_table);
    let mut return_deputy = Deputy::new();
    let mut return_prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));
    in_flight.clear();
    staged.clear();

    for r in &mut *workload {
        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => now += r.cpu,
            TouchOutcome::LocalAllocate => now += MINOR_FAULT_COST + r.cpu,
            TouchOutcome::RemoteFault => {
                install(&mut staged, &mut in_flight, &mut space, &mut now);
                let prefetch = match return_prefetcher.as_mut() {
                    Some(pf) => {
                        monitor.advance(now, &mut path);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, now, 1.0, est, page_limit, &mut |p| {
                            space.state(p) == PageState::Remote
                                && !in_flight.contains_key(&p)
                                && return_replica.lookup(p, &return_table).is_some()
                        });
                        now += AMPOM_ANALYSIS_COST;
                        d.prefetch
                    }
                    None => Vec::new(),
                };
                if space.is_resident(r.page) {
                    // Arrived with the last batch.
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    now = now.max(arrival);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                } else {
                    fault_requests += 1;
                    let mut pages = vec![r.page];
                    pages.extend_from_slice(&prefetch);
                    let at_remote = path.send_request(now, pages.len());
                    for s in
                        return_deputy.serve_request(at_remote, &pages, &mut return_table, &mut path)
                    {
                        return_replica.invalidate(s.page);
                        in_flight.insert(s.page, s.arrives);
                        staged.push_back((s.arrives, s.page));
                    }
                    now = now.max(in_flight[&r.page]);
                    install(&mut staged, &mut in_flight, &mut space, &mut now);
                }
                let hit = space.touch(r.page, r.write);
                debug_assert_eq!(hit, TouchOutcome::Hit);
                now += r.cpu;
            }
        }
    }

    replica.check_equivalence(&table);
    return_replica.check_equivalence(&return_table);

    let mut writeback = channel.as_ref().map(|c| c.stats()).unwrap_or_default();
    writeback.replica_hits = replica.counters.local_hits + return_replica.counters.local_hits;
    writeback.replica_refreshes = replica.counters.stale_refreshes
        + return_replica.counters.stale_refreshes
        + replica.counters.cold_misses
        + return_replica.counters.cold_misses;
    writeback.replica_invalidations =
        replica.counters.invalidations + return_replica.counters.invalidations;

    LifecycleReport {
        scheme: cfg.scheme,
        outbound_freeze,
        return_freeze,
        total_time: now.since(SimTime::ZERO),
        away_time,
        home_time: now.since(home_start),
        pages_fetched_remotely,
        pages_returned,
        pages_freed_at_home,
        stub_pages,
        fault_requests,
        away_fault_requests,
        pages_dirtied,
        sink_pages,
        sink_restarts,
        conservation_ok,
        writeback,
        trace,
    }
}

/// Installs every staged page whose arrival is due, charging
/// [`PAGE_INSTALL_COST`] per page.
pub(crate) fn install(
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut HashMap<PageId, SimTime>,
    space: &mut AddressSpace,
    now: &mut SimTime,
) {
    let mut n = 0u64;
    while let Some(&(arrival, page)) = staged.front() {
        if arrival > *now {
            break;
        }
        staged.pop_front();
        in_flight.remove(&page);
        if space.state(page) == PageState::Remote {
            space.install(page);
        }
        n += 1;
    }
    if n > 0 {
        *now += PAGE_INSTALL_COST.saturating_mul(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::FaultProfile;
    use ampom_net::fault::FaultSpec;
    use ampom_workloads::synthetic::{Sequential, SequentialWrite};

    const CPU: SimDuration = SimDuration::from_micros(15);

    #[test]
    fn cost_model_tracks_lifecycle_constants() {
        let m = LifecycleCostModel::new(Scheme::Ampom);
        // Outbound freeze is exactly the Figure 5 calibration.
        assert_eq!(
            m.outbound_freeze(230),
            crate::scheduler::freeze_time(Scheme::Ampom, 230)
        );
        // Return bytes are the dirty pages in capped writeback batches
        // with the v4 frame overheads — the same constants the simulated
        // writeback engine charges per flush.
        let dirty = m.dirty_pages(230, 0.25);
        let batches = dirty.div_ceil(m.writeback.max_batch_pages as u64);
        assert_eq!(
            m.return_bytes(230, 0.25),
            dirty * (PAGE_SIZE + WRITEBACK_ENTRY_OVERHEAD) + batches * WRITEBACK_HEADER_BYTES
        );
        // A fully clean away phase returns almost for free; eager
        // openMosix re-ships the footprint regardless.
        assert!(m.return_bytes(230, 0.0) == 0);
        let eager = LifecycleCostModel::new(Scheme::OpenMosix);
        assert_eq!(eager.return_bytes(230, 0.0), 230 * 1024 * 1024);
        assert_eq!(eager.return_bytes(230, 1.0), 230 * 1024 * 1024);
    }

    #[test]
    fn cost_model_return_freeze_scales_with_dirty_footprint() {
        let m = LifecycleCostModel::new(Scheme::Ampom);
        let clean = m.return_freeze(460, 0.01);
        let dirty = m.return_freeze(460, 1.0);
        assert!(clean < dirty, "{clean:?} vs {dirty:?}");
        // The dirtiest return costs exactly the freeze of the full
        // footprint.
        assert_eq!(dirty, crate::scheduler::freeze_time(Scheme::Ampom, 460));
        // Degenerate dirty fractions clamp instead of exploding.
        assert_eq!(m.dirty_pages(230, -1.0), 0);
        assert_eq!(m.dirty_pages(230, 2.0), m.dirty_pages(230, 1.0));
    }

    // Stores-only sweeps: every touched page is dirtied, so the writeback
    // engine has real work to conserve (Sequential is read-only).
    fn lifecycle(scheme: Scheme, frac: f64) -> LifecycleReport {
        let mut w = SequentialWrite::new(1024, CPU);
        run_lifecycle(&mut w, &RunConfig::new(scheme), &LifecycleConfig::new(frac))
    }

    #[test]
    fn writeback_moves_every_dirtied_page_home() {
        let r = lifecycle(Scheme::Ampom, 0.5);
        assert!(r.pages_dirtied > 0, "a sequential sweep dirties pages");
        r.check_conservation();
        assert_eq!(r.sink_pages, r.pages_dirtied);
        assert!(r.writeback.batches_sent > 0);
        assert!(r.writeback.writeback_bytes > 0);
    }

    #[test]
    fn written_back_pages_are_free_at_home() {
        let with = lifecycle(Scheme::Ampom, 0.5);
        let mut w = SequentialWrite::new(1024, CPU);
        let without = run_lifecycle(
            &mut w,
            &RunConfig::new(Scheme::Ampom),
            &LifecycleConfig::new(0.5).without_writeback(),
        );
        assert!(
            with.pages_freed_at_home > without.pages_freed_at_home,
            "writeback should free pages at home: {} vs {}",
            with.pages_freed_at_home,
            without.pages_freed_at_home
        );
        assert!(
            with.stub_pages < without.stub_pages,
            "the remote stub should shrink: {} vs {}",
            with.stub_pages,
            without.stub_pages
        );
    }

    #[test]
    fn replica_serves_hot_lookups_locally() {
        let r = lifecycle(Scheme::Ampom, 0.5);
        assert!(
            r.writeback.replica_hits > 0,
            "hot lookups must hit the replica"
        );
        assert!(r.writeback.replica_invalidations > 0);
    }

    #[test]
    fn conservation_survives_a_lossy_link() {
        let mut w = SequentialWrite::new(512, CPU);
        let cfg = RunConfig::new(Scheme::Ampom).with_faults(FaultProfile {
            faults: FaultSpec {
                loss_rate: 0.25,
                burst_len: 2,
                jitter: SimDuration::from_micros(100),
            },
            ..FaultProfile::default()
        });
        let r = run_lifecycle(&mut w, &cfg, &LifecycleConfig::new(0.6));
        r.check_conservation();
        assert!(
            r.writeback.retransmits > 0,
            "a 25% lossy link must force retransmits"
        );
        assert!(r.writeback.duplicate_batches + r.writeback.duplicate_pages > 0);
    }

    #[test]
    fn conservation_survives_deputy_restarts() {
        use ampom_sim::event::DowntimeSchedule;
        let mut w = SequentialWrite::new(512, CPU);
        let cfg = RunConfig::new(Scheme::Ampom).with_faults(FaultProfile {
            faults: FaultSpec {
                loss_rate: 0.10,
                burst_len: 2,
                jitter: SimDuration::ZERO,
            },
            downtime: DowntimeSchedule::single(
                SimTime::ZERO + SimDuration::from_millis(5),
                SimTime::ZERO + SimDuration::from_millis(9),
            ),
            ..FaultProfile::default()
        });
        let r = run_lifecycle(&mut w, &cfg, &LifecycleConfig::new(0.6));
        r.check_conservation();
    }

    #[test]
    fn workload_completes_exactly_once() {
        let mut w = Sequential::new(256, CPU);
        let r = run_lifecycle(
            &mut w,
            &RunConfig::new(Scheme::Ampom),
            &LifecycleConfig::new(0.5),
        );
        assert!(w.next().is_none(), "stream fully consumed");
        assert!(r.total_time > SimDuration::ZERO);
        assert_eq!(
            r.total_time,
            r.outbound_freeze + r.away_time + r.return_freeze + r.home_time,
            "phases partition the run"
        );
    }

    #[test]
    #[should_panic(expected = "away_fraction")]
    fn fraction_must_be_in_unit_interval() {
        let mut w = Sequential::new(64, CPU);
        let _ = run_lifecycle(
            &mut w,
            &RunConfig::new(Scheme::Ampom),
            &LifecycleConfig::new(1.5),
        );
    }
}
