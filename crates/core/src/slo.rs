//! Per-migrant service-level objectives over paging behaviour.
//!
//! PR 2 made the protocol *survive* faults; this module makes it *meet
//! promises* under them. A [`SloSpec`] budgets the three symptoms a
//! migrated process actually feels when its home node degrades:
//!
//! * **p99 fault stall** — the tail of the per-fault stall distribution,
//!   tracked online by a deterministic [`QuantileSketch`] fed at the
//!   runner's two stall sites,
//! * **slowdown** — total execution time relative to a baseline run of
//!   the same migrant (the chaos suite uses the null-scenario run),
//! * **timeout rate** — demand-fetch timeouts per fault request, the
//!   recovery protocol's own distress signal.
//!
//! Evaluation produces typed [`SloVerdict`]s (`Met`/`AtRisk`/`Breached`)
//! per dimension plus an overall worst-of verdict, rendered into
//! `ampom_slo_*` metrics. Verdicts are total-ordered so the chaos
//! scenarios can assert *monotone degradation*: more loss may never turn
//! a `Breached` verdict back into `Met`.

use std::fmt;

use ampom_net::calibration::page_transfer_time;
use ampom_net::link::LinkConfig;
use ampom_obs::MetricsRegistry;
use ampom_sim::time::SimDuration;

use crate::error::AmpomError;
use crate::metrics::RunReport;
use crate::multirun::MultiRunReport;

/// Number of logarithmic buckets in a [`QuantileSketch`]: bucket 0 holds
/// exact zeros, bucket `k` holds nanosecond values in `[2^(k-1), 2^k)`.
const SKETCH_BUCKETS: usize = 65;

/// A verdict crosses from `Met` to `AtRisk` when the measurement exceeds
/// this fraction of its budget.
pub const AT_RISK_FRACTION: f64 = 0.8;

/// A deterministic, mergeable streaming quantile sketch over durations.
///
/// Values are histogrammed into power-of-two nanosecond buckets (no RNG,
/// no samples retained), so two runs that record the same stalls produce
/// byte-identical sketches and per-migrant sketches merge exactly into a
/// fleet sketch. Quantile estimates are conservative: the upper edge of
/// the covering bucket, clamped to the observed maximum (relative error
/// bounded by the 2x bucket width, which the well-separated SLO budgets
/// absorb).
#[derive(Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: [u64; SKETCH_BUCKETS],
    n: u64,
    max_ns: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            counts: [0; SKETCH_BUCKETS],
            n: 0,
            max_ns: 0,
        }
    }
}

impl fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("n", &self.n)
            .field("max_ns", &self.max_ns)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[Self::bucket(ns)] += 1;
        self.n += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another sketch into this one (exact: histograms add).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.n += other.n;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest recorded duration (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Conservative estimate of the `q`-quantile (`q` clamped to
    /// `[0, 1]`); [`SimDuration::ZERO`] for an empty sketch.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.n == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = if k == 0 {
                    0
                } else if k >= 64 {
                    u64::MAX
                } else {
                    (1u64 << k) - 1
                };
                return SimDuration::from_nanos(upper.min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }
}

/// The three-valued SLO verdict, total-ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloVerdict {
    /// Comfortably within budget.
    Met,
    /// Past [`AT_RISK_FRACTION`] of the budget but not over it.
    AtRisk,
    /// Over budget.
    Breached,
}

impl SloVerdict {
    /// Severity rank: 0 = `Met`, 1 = `AtRisk`, 2 = `Breached`.
    pub fn rank(self) -> u8 {
        match self {
            SloVerdict::Met => 0,
            SloVerdict::AtRisk => 1,
            SloVerdict::Breached => 2,
        }
    }

    /// Lowercase name, stable for JSONL facts.
    pub fn name(self) -> &'static str {
        match self {
            SloVerdict::Met => "met",
            SloVerdict::AtRisk => "at-risk",
            SloVerdict::Breached => "breached",
        }
    }
}

impl fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Compares a measurement against its budget.
fn verdict_of(measured: f64, budget: f64) -> SloVerdict {
    if measured > budget {
        SloVerdict::Breached
    } else if measured > budget * AT_RISK_FRACTION {
        SloVerdict::AtRisk
    } else {
        SloVerdict::Met
    }
}

/// Per-migrant SLO budgets. Every dimension is optional; an omitted
/// dimension is simply not evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloSpec {
    /// Budget on the 99th percentile of per-fault stall time.
    pub p99_fault_stall: Option<SimDuration>,
    /// Budget on `total_time / baseline_total` (baseline supplied at
    /// evaluation time; the chaos suite uses the null-scenario run).
    pub slowdown_budget: Option<f64>,
    /// Budget on `faults.timeouts / fault_requests`.
    pub max_timeout_rate: Option<f64>,
}

impl SloSpec {
    /// Budgets only the stall tail.
    pub fn with_p99_fault_stall(mut self, budget: SimDuration) -> Self {
        self.p99_fault_stall = Some(budget);
        self
    }

    /// Budgets the slowdown vs a baseline run.
    pub fn with_slowdown_budget(mut self, budget: f64) -> Self {
        self.slowdown_budget = Some(budget);
        self
    }

    /// Budgets the demand-fetch timeout rate.
    pub fn with_max_timeout_rate(mut self, budget: f64) -> Self {
        self.max_timeout_rate = Some(budget);
        self
    }

    /// The chaos suite's calibrated default for `migrants` concurrent
    /// migrants sharing one deputy over `link`.
    ///
    /// The stall budget scales with the clean round trip
    /// (`rtt + page_transfer_time`): a clean demand fetch costs about one
    /// such round trip plus its share of deputy queueing (which grows
    /// with the migrant count), while one recovery-protocol timeout adds
    /// at least four round trips ([`crate::reliability::RetryPolicy`]'s
    /// default first deadline). Budgeting `3 + 2·migrants` round trips
    /// therefore admits clean contention and convicts retry storms. The
    /// slowdown budget (2x) and timeout-rate budget (2%) are flat.
    pub fn for_link(link: &LinkConfig, migrants: u32) -> Self {
        let round = link.rtt() + page_transfer_time(link);
        SloSpec {
            p99_fault_stall: Some(round.saturating_mul(3 + 2 * u64::from(migrants))),
            slowdown_budget: Some(2.0),
            max_timeout_rate: Some(0.02),
        }
    }

    /// Checks budgets are in-domain.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if let Some(b) = self.slowdown_budget {
            if !b.is_finite() || b < 1.0 {
                return Err(AmpomError::InvalidConfig(format!(
                    "slowdown budget must be a finite value >= 1.0, got {b}"
                )));
            }
        }
        if let Some(r) = self.max_timeout_rate {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(AmpomError::InvalidConfig(format!(
                    "timeout-rate budget must be in [0, 1], got {r}"
                )));
            }
        }
        Ok(())
    }

    /// Evaluates one run against the budgets. `baseline_total` feeds the
    /// slowdown dimension; without it (or without a slowdown budget) that
    /// dimension is skipped.
    pub fn evaluate(&self, report: &RunReport, baseline_total: Option<SimDuration>) -> SloReport {
        let p99_stall = self.p99_fault_stall.map(|budget| {
            let measured = report.stall_sketch.quantile(0.99);
            SloOutcome {
                measured: measured.as_secs_f64(),
                budget: budget.as_secs_f64(),
                verdict: verdict_of(measured.as_secs_f64(), budget.as_secs_f64()),
            }
        });
        let slowdown = match (self.slowdown_budget, baseline_total) {
            (Some(budget), Some(base)) if base > SimDuration::ZERO => {
                let measured = report.total_time.as_secs_f64() / base.as_secs_f64();
                Some(SloOutcome {
                    measured,
                    budget,
                    verdict: verdict_of(measured, budget),
                })
            }
            _ => None,
        };
        let timeout_rate = self.max_timeout_rate.map(|budget| {
            let measured = report.faults.timeouts as f64 / report.fault_requests.max(1) as f64;
            SloOutcome {
                measured,
                budget,
                verdict: verdict_of(measured, budget),
            }
        });
        SloReport {
            p99_stall,
            slowdown,
            timeout_rate,
        }
    }

    /// Evaluates every migrant of a multi-run. `baselines` (same index
    /// order, typically the null-scenario totals) feeds the slowdown
    /// dimension.
    pub fn evaluate_multi(
        &self,
        multi: &MultiRunReport,
        baselines: Option<&[SimDuration]>,
    ) -> Vec<SloReport> {
        multi
            .reports
            .iter()
            .enumerate()
            .map(|(i, r)| self.evaluate(r, baselines.and_then(|b| b.get(i).copied())))
            .collect()
    }
}

/// One evaluated dimension: what was measured, what was budgeted, and
/// the verdict. Times are in seconds; ratios are dimensionless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloOutcome {
    /// The measurement.
    pub measured: f64,
    /// The budget it was held against.
    pub budget: f64,
    /// The comparison outcome.
    pub verdict: SloVerdict,
}

/// The evaluated SLO record of one migrant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloReport {
    /// p99 fault-stall dimension (seconds), if budgeted.
    pub p99_stall: Option<SloOutcome>,
    /// Slowdown-vs-baseline dimension, if budgeted and a baseline was
    /// supplied.
    pub slowdown: Option<SloOutcome>,
    /// Timeout-rate dimension, if budgeted.
    pub timeout_rate: Option<SloOutcome>,
}

impl SloReport {
    /// Worst verdict across evaluated dimensions; `Met` when nothing was
    /// evaluated (an unbudgeted run cannot breach).
    pub fn overall(&self) -> SloVerdict {
        [self.p99_stall, self.slowdown, self.timeout_rate]
            .into_iter()
            .flatten()
            .map(|o| o.verdict)
            .max()
            .unwrap_or(SloVerdict::Met)
    }

    /// Exports `ampom_slo_<label>_*` gauges (label e.g. `m0`): the three
    /// measurements plus numeric verdict ranks (0 = met, 1 = at-risk,
    /// 2 = breached).
    pub fn export(&self, reg: &mut MetricsRegistry, label: &str) {
        if let Some(o) = self.p99_stall {
            reg.export_gauge(
                &format!("ampom_slo_{label}_p99_stall_seconds"),
                "99th percentile of per-fault stall time",
                o.measured,
            );
        }
        if let Some(o) = self.slowdown {
            reg.export_gauge(
                &format!("ampom_slo_{label}_slowdown"),
                "total time relative to the baseline run",
                o.measured,
            );
        }
        if let Some(o) = self.timeout_rate {
            reg.export_gauge(
                &format!("ampom_slo_{label}_timeout_rate"),
                "demand-fetch timeouts per fault request",
                o.measured,
            );
        }
        reg.export_gauge(
            &format!("ampom_slo_{label}_verdict"),
            "overall SLO verdict rank: 0 met, 1 at-risk, 2 breached",
            f64::from(self.overall().rank()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn sketch_quantiles_are_conservative_and_bounded_by_max() {
        let mut s = QuantileSketch::new();
        for i in 1..=100u64 {
            s.record(us(i));
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), us(100));
        let p99 = s.quantile(0.99);
        // Conservative: at least the true p99, at most the bucket above.
        assert!(p99 >= us(99), "p99 {p99:?} below the true value");
        assert!(p99 <= us(100), "p99 {p99:?} exceeds the observed max");
        // The median lands within its covering power-of-two bucket:
        // 50µs = 50 000ns lives in [2^15, 2^16), whose upper edge is
        // 65 535ns.
        let p50 = s.quantile(0.5);
        assert!(
            p50 >= us(50) && p50 <= SimDuration::from_nanos((1 << 16) - 1),
            "p50 {p50:?}"
        );
    }

    #[test]
    fn empty_and_zero_sketches_are_degenerate_but_defined() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), SimDuration::ZERO);
        let mut z = QuantileSketch::new();
        z.record(SimDuration::ZERO);
        assert_eq!(z.quantile(1.0), SimDuration::ZERO);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn merge_is_exact_histogram_addition() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 1..=50u64 {
            a.record(us(i));
            whole.record(us(i));
        }
        for i in 51..=100u64 {
            b.record(us(i));
            whole.record(us(i));
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn verdict_thresholds_and_ordering() {
        assert_eq!(verdict_of(0.5, 1.0), SloVerdict::Met);
        assert_eq!(verdict_of(0.85, 1.0), SloVerdict::AtRisk);
        assert_eq!(verdict_of(1.01, 1.0), SloVerdict::Breached);
        assert!(SloVerdict::Met < SloVerdict::AtRisk);
        assert!(SloVerdict::AtRisk < SloVerdict::Breached);
        assert_eq!(SloVerdict::Breached.name(), "breached");
    }

    #[test]
    fn overall_is_worst_of_and_met_when_unbudgeted() {
        let mut r = SloReport::default();
        assert_eq!(r.overall(), SloVerdict::Met);
        r.p99_stall = Some(SloOutcome {
            measured: 0.1,
            budget: 1.0,
            verdict: SloVerdict::Met,
        });
        r.timeout_rate = Some(SloOutcome {
            measured: 0.5,
            budget: 0.02,
            verdict: SloVerdict::Breached,
        });
        assert_eq!(r.overall(), SloVerdict::Breached);
    }

    #[test]
    fn spec_validation_rejects_bad_budgets() {
        assert!(SloSpec::default()
            .with_slowdown_budget(0.5)
            .validate()
            .is_err());
        assert!(SloSpec::default()
            .with_max_timeout_rate(1.5)
            .validate()
            .is_err());
        assert!(
            SloSpec::for_link(&ampom_net::calibration::fast_ethernet(), 4)
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn export_obeys_the_metric_naming_convention() {
        let r = SloReport {
            p99_stall: Some(SloOutcome {
                measured: 0.001,
                budget: 0.002,
                verdict: SloVerdict::Met,
            }),
            slowdown: None,
            timeout_rate: Some(SloOutcome {
                measured: 0.0,
                budget: 0.02,
                verdict: SloVerdict::Met,
            }),
        };
        let mut reg = MetricsRegistry::new();
        r.export(&mut reg, "m0");
        assert_eq!(reg.gauge_value("ampom_slo_m0_verdict"), Some(0.0));
        assert!(reg.gauge_value("ampom_slo_m0_p99_stall_seconds").is_some());
        for line in reg.render_prometheus().lines() {
            if !line.starts_with('#') && !line.is_empty() {
                assert!(line.starts_with("ampom_"), "bad metric line: {line}");
            }
        }
    }
}
