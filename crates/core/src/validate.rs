//! Cross-validation: an independent, event-driven re-implementation of
//! the NoPrefetch scheme.
//!
//! The main [`crate::runner`] is process-centric: it advances the
//! migrant's clock directly and exploits the FIFO link's closed-form
//! arrival times. That is fast, but its correctness rests on the claim
//! that the closed form equals what a classic event-driven simulation
//! would compute. This module *checks that claim*: it implements the
//! NoPrefetch migrant as explicit events on an [`ampom_sim::EventQueue`]
//! — request departure, request arrival, deputy service completion, reply
//! arrival, compute completion — with no shared code on the timing path,
//! and the test suite asserts both simulators produce identical fault
//! counts and identical total times on a range of workloads.
//!
//! Two schemes are cross-checked:
//!
//! * [`run_noprefetch_event_driven`] — the demand-paging path with no
//!   shared timing code at all;
//! * [`run_ampom_event_driven`] — the full prefetching protocol. The
//!   *analysis* (window/census/zone) is the shared
//!   [`crate::prefetcher::AmpomPrefetcher`] —
//!   the claim under test is the timing engine, not the arithmetic — but
//!   every link occupancy, deputy queue, staging decision and stall is
//!   recomputed from explicit events.

use std::collections::VecDeque;

use ampom_mem::page::PageId;
use ampom_mem::space::TouchOutcome;
use ampom_net::calibration::{PER_MESSAGE_OVERHEAD, REPLY_HEADER_BYTES};
use ampom_net::link::LinkConfig;
use ampom_sim::event::EventQueue;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_workloads::memref::Workload;

use crate::cluster::NetPath;
use crate::deputy::{PAGE_SERVICE_COST, REQUEST_PARSE_COST};
use crate::migration::{perform_freeze, PreMigrationState, Scheme};
use crate::runner::MINOR_FAULT_COST;
use crate::runner::PAGE_INSTALL_COST;

/// Result of an event-driven NoPrefetch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total wall time from migration start to completion.
    pub total_time: SimDuration,
    /// Demand fault requests sent.
    pub fault_requests: u64,
}

/// Events of the NoPrefetch protocol.
#[derive(Debug)]
enum Ev {
    /// The migrant finishes computing the current reference and consumes
    /// the next one.
    Advance,
    /// The demand request reaches the home node.
    RequestAtHome { page: PageId },
    /// The deputy finished serving; the reply begins serialising.
    DeputyDone { page: PageId },
    /// The page lands at the destination; the migrant resumes.
    ReplyArrived { page: PageId },
}

/// Checks a link is usable for cross-validation; mirrors
/// [`crate::runner::RunConfig::validate`]'s link rule.
fn validate_link(link: &LinkConfig) -> Result<(), crate::error::AmpomError> {
    if link.capacity_bytes_per_sec == 0 {
        return Err(crate::error::AmpomError::LinkDown(
            "link capacity is 0 bytes/s; no page could ever be served".into(),
        ));
    }
    Ok(())
}

/// Runs `workload` under NoPrefetch with a from-scratch event-driven
/// engine. Uses the same freeze mechanism (the freeze is closed-form in
/// both implementations) but an independent execution phase. Returns
/// [`crate::error::AmpomError::LinkDown`] for a zero-capacity link
/// instead of dividing by zero inside the serialization arithmetic.
pub fn run_noprefetch_event_driven<W: Workload + ?Sized>(
    workload: &mut W,
    link: LinkConfig,
) -> Result<ValidationReport, crate::error::AmpomError> {
    validate_link(&link)?;
    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let mut path = NetPath::new(link);
    let mut trace = ampom_sim::trace::Trace::disabled();
    let freeze = perform_freeze(Scheme::NoPrefetch, &pre, &mut path, &mut trace);
    let mut space = freeze.space;
    let mut table = freeze.table;

    // Independent link state: explicit next-free times instead of
    // `NetPath`'s transmit bookkeeping.
    let mut req_link_free = SimTime::ZERO;
    let mut reply_link_free = SimTime::ZERO;
    let mut deputy_free = SimTime::ZERO;
    let req_bytes = NetPath::request_bytes(1);
    let reply_bytes = 4096 + REPLY_HEADER_BYTES;

    let mut q: EventQueue<Ev> = EventQueue::new();
    q.schedule(SimTime::ZERO + freeze.freeze_time, Ev::Advance);

    let mut fault_requests = 0u64;
    let mut pending: VecDeque<ampom_workloads::memref::MemRef> = VecDeque::new();
    let mut done_at = SimTime::ZERO + freeze.freeze_time;

    // Pull references lazily; `pending` holds the one reference being
    // retried after its page arrives.
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Advance => {
                let r = match pending.pop_front() {
                    Some(r) => r,
                    None => match workload.next() {
                        Some(r) => r,
                        None => {
                            done_at = now;
                            continue;
                        }
                    },
                };
                match space.touch(r.page, r.write) {
                    TouchOutcome::Hit => {
                        q.schedule(now + r.cpu, Ev::Advance);
                    }
                    TouchOutcome::LocalAllocate => {
                        if table.lookup(r.page).is_none() {
                            table.create_at_destination(r.page);
                        }
                        q.schedule(now + MINOR_FAULT_COST + r.cpu, Ev::Advance);
                    }
                    TouchOutcome::RemoteFault => {
                        fault_requests += 1;
                        pending.push_front(r);
                        // Request: per-message overhead, then the request
                        // link, then propagation.
                        let start = (now + PER_MESSAGE_OVERHEAD).max(req_link_free);
                        let departs = start + link.serialization_time(req_bytes);
                        req_link_free = departs;
                        q.schedule(departs + link.latency, Ev::RequestAtHome { page: r.page });
                    }
                }
            }
            Ev::RequestAtHome { page } => {
                let start = now.max(deputy_free) + REQUEST_PARSE_COST + PAGE_SERVICE_COST;
                deputy_free = start;
                q.schedule(start, Ev::DeputyDone { page });
            }
            Ev::DeputyDone { page } => {
                let start = now.max(reply_link_free);
                let departs = start + link.serialization_time(reply_bytes);
                reply_link_free = departs;
                q.schedule(departs + link.latency, Ev::ReplyArrived { page });
            }
            Ev::ReplyArrived { page } => {
                table.transfer_to_destination(page);
                space.install(page);
                // Install cost, then retry the faulted reference.
                q.schedule(now + crate::runner::PAGE_INSTALL_COST, Ev::Advance);
            }
        }
    }

    Ok(ValidationReport {
        total_time: done_at.since(SimTime::ZERO),
        fault_requests,
    })
}

/// Events of the AMPoM protocol.
#[derive(Debug)]
enum AmpomEv {
    /// The migrant finishes its current compute and takes the next
    /// reference.
    Advance,
    /// A paging request (demand page first, if any) reaches the home node.
    RequestAtHome { pages: Vec<PageId> },
    /// One page's reply lands at the destination (goes to staging).
    ReplyArrived { page: PageId },
}

/// Independent network state mirroring `NetPath`'s accounting with
/// explicit free-time variables and byte counters — no shared timing code.
struct IndepNet {
    link: LinkConfig,
    req_free: SimTime,
    reply_free: SimTime,
    dest_rx: u64,
    dest_tx: u64,
}

impl IndepNet {
    /// Destination → home, with the per-message software overhead
    /// (requests, probes). Returns the arrival time at the home node.
    fn send_to_home(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = (now + PER_MESSAGE_OVERHEAD).max(self.req_free);
        let departs = start + self.link.serialization_time(bytes);
        self.req_free = departs;
        self.dest_tx += bytes;
        departs + self.link.latency
    }

    /// Home → destination (replies, probe acks). Returns the arrival.
    fn send_to_dest(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.reply_free);
        let departs = start + self.link.serialization_time(bytes);
        self.reply_free = departs;
        self.dest_rx += bytes;
        departs + self.link.latency
    }

    fn snapshot(&self) -> ampom_net::nic::NicSnapshot {
        ampom_net::nic::NicSnapshot {
            rx_bytes: self.dest_rx,
            tx_bytes: self.dest_tx,
        }
    }
}

/// Independent re-implementation of the oM_infoD schedule over
/// [`IndepNet`]. The estimation arithmetic (`RttProber`,
/// `BandwidthEstimator`) is shared — the claim under test is the timing.
struct IndepMonitor {
    rtt: ampom_net::probe::RttProber,
    bw: ampom_net::probe::BandwidthEstimator,
    next_probe_at: SimTime,
    last_wrap: u64,
    fallback_t0: SimDuration,
}

impl IndepMonitor {
    fn new(link: LinkConfig) -> Self {
        IndepMonitor {
            rtt: ampom_net::probe::RttProber::new(),
            bw: ampom_net::probe::BandwidthEstimator::new(link.capacity_bytes_per_sec),
            next_probe_at: SimTime::ZERO,
            last_wrap: 0,
            fallback_t0: link.latency,
        }
    }

    fn advance(&mut self, now: SimTime, net: &mut IndepNet) {
        while self.next_probe_at <= now {
            let sent_at = self.next_probe_at;
            let id = self.rtt.probe_sent(sent_at);
            let at_home = net.send_to_home(sent_at, crate::monitor::PROBE_BYTES);
            // The ack direction has no software-overhead stage (mirrors
            // NetPath::send_control_to_dest).
            let ack_at = net.send_to_dest(at_home, crate::monitor::PROBE_BYTES);
            self.rtt.ack_received(id, ack_at);
            self.next_probe_at = sent_at + crate::monitor::PROBE_PERIOD;
        }
    }

    fn on_window_wrap(&mut self, now: SimTime, wraps: u64, net: &IndepNet) {
        if wraps > self.last_wrap {
            self.last_wrap = wraps;
            self.bw.sample(now, net.snapshot(), 0);
        }
    }

    fn estimates(&self) -> crate::prefetcher::NetEstimates {
        crate::prefetcher::NetEstimates {
            t0: self.rtt.t0().unwrap_or(self.fallback_t0),
            td: self.bw.transfer_time(4096 + REPLY_HEADER_BYTES),
        }
    }
}

/// Runs `workload` under AMPoM with an independent event-driven engine.
/// Returns `(total_time, fault_requests, pages_prefetched)` for
/// comparison with the main runner's report. The analysis arithmetic
/// (prefetcher, RTT/bandwidth estimators) is shared; every link
/// occupancy, deputy queue, probe, staging decision and stall is
/// recomputed from explicit events.
pub fn run_ampom_event_driven<W: Workload + ?Sized>(
    workload: &mut W,
    link: LinkConfig,
    ampom: crate::prefetcher::AmpomConfig,
) -> Result<(SimDuration, u64, u64), crate::error::AmpomError> {
    use crate::prefetcher::AmpomPrefetcher;
    use ampom_net::calibration::AMPOM_ANALYSIS_COST;
    use std::collections::HashMap;

    validate_link(&link)?;
    let mut pf = AmpomPrefetcher::try_new(ampom)?;
    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let mut path = NetPath::new(link);
    let mut trace = ampom_sim::trace::Trace::disabled();
    let freeze = perform_freeze(Scheme::Ampom, &pre, &mut path, &mut trace);
    let mut space = freeze.space;
    let mut table = freeze.table;
    let page_limit = PageId(layout.total_pages());

    // Mirror the post-freeze link state: the freeze's bulk transfer left
    // the reply link busy until (freeze_end − latency) and delivered its
    // bytes to the destination NIC.
    let mut net = IndepNet {
        link,
        req_free: SimTime::ZERO,
        reply_free: (SimTime::ZERO + freeze.freeze_time) - link.latency,
        dest_rx: freeze.bytes_at_freeze,
        dest_tx: 0,
    };
    let mut monitor = IndepMonitor::new(link);
    let mut deputy_free = SimTime::ZERO;

    let mut q: EventQueue<AmpomEv> = EventQueue::new();
    q.schedule(SimTime::ZERO + freeze.freeze_time, AmpomEv::Advance);

    // `in_flight` spans request-send to install: `None` = requested but
    // not yet arrived, `Some(t)` = arrived (staged) at `t`. The main
    // runner's precomputed-arrival map collapses both states; the event
    // engine has to distinguish them.
    let mut in_flight: HashMap<PageId, Option<SimTime>> = HashMap::new();
    let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
    let mut fault_requests = 0u64;
    let mut pages_prefetched = 0u64;
    let mut pending: VecDeque<ampom_workloads::memref::MemRef> = VecDeque::new();
    let mut cpu_since_fault = SimDuration::ZERO;
    let mut last_fault_at = SimTime::ZERO + freeze.freeze_time;
    let mut done_at = SimTime::ZERO + freeze.freeze_time;
    // A fault re-entered while its page is in flight must not re-run the
    // analysis (the main runner analyses once per fault *entry* and then
    // blocks; the event engine re-enters Advance instead of blocking).
    let mut wait_until: Option<(PageId, SimTime)> = None;

    while let Some((now, ev)) = q.pop() {
        match ev {
            AmpomEv::Advance => {
                let r = match pending.pop_front() {
                    Some(r) => r,
                    None => match workload.next() {
                        Some(r) => r,
                        None => {
                            done_at = done_at.max(now);
                            continue;
                        }
                    },
                };
                if let Some((page, until)) = wait_until {
                    // Resuming from an in-flight wait: install and retry.
                    debug_assert_eq!(page, r.page);
                    debug_assert!(now >= until);
                    wait_until = None;
                    let installed = install_staged(&mut staged, &mut in_flight, &mut space, now);
                    let t = now + PAGE_INSTALL_COST.saturating_mul(installed);
                    let hit = space.touch(r.page, r.write);
                    debug_assert_eq!(hit, TouchOutcome::Hit);
                    cpu_since_fault += r.cpu;
                    q.schedule(t + r.cpu, AmpomEv::Advance);
                    continue;
                }
                match space.touch(r.page, r.write) {
                    TouchOutcome::Hit => {
                        cpu_since_fault += r.cpu;
                        q.schedule(now + r.cpu, AmpomEv::Advance);
                    }
                    TouchOutcome::LocalAllocate => {
                        if table.lookup(r.page).is_none() {
                            table.create_at_destination(r.page);
                        }
                        let t0 = now + MINOR_FAULT_COST;
                        let util = utilization(cpu_since_fault, t0, last_fault_at);
                        last_fault_at = t0;
                        cpu_since_fault = SimDuration::ZERO;
                        monitor.advance(t0, &mut net);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, t0, util, est, page_limit, |p| {
                            space.state(p) == ampom_mem::space::PageState::Remote
                                && !in_flight.contains_key(&p)
                        });
                        let t1 = t0 + AMPOM_ANALYSIS_COST;
                        monitor.on_window_wrap(t1, pf.observation().window_wraps, &net);
                        if !d.prefetch.is_empty() {
                            for p in &d.prefetch {
                                in_flight.insert(*p, None);
                            }
                            let arrive =
                                net.send_to_home(t1, NetPath::request_bytes(d.prefetch.len()));
                            q.schedule(
                                arrive,
                                AmpomEv::RequestAtHome {
                                    pages: d.prefetch.clone(),
                                },
                            );
                            pages_prefetched += d.prefetch.len() as u64;
                        }
                        cpu_since_fault += r.cpu;
                        q.schedule(t1 + r.cpu, AmpomEv::Advance);
                    }
                    TouchOutcome::RemoteFault => {
                        // The main runner computes the C_i utilisation at
                        // the *fault entry* instant (before install costs)
                        // but records the window time after them; mirror
                        // both exactly.
                        let fault_entry = now;
                        let installed =
                            install_staged(&mut staged, &mut in_flight, &mut space, now);
                        let t0 = now + PAGE_INSTALL_COST.saturating_mul(installed);
                        let util = utilization(cpu_since_fault, fault_entry, last_fault_at);
                        last_fault_at = fault_entry;
                        cpu_since_fault = SimDuration::ZERO;
                        monitor.advance(t0, &mut net);
                        let est = monitor.estimates();
                        let d = pf.on_fault(r.page, t0, util, est, page_limit, |p| {
                            space.state(p) == ampom_mem::space::PageState::Remote
                                && !in_flight.contains_key(&p)
                        });
                        let t1 = t0 + AMPOM_ANALYSIS_COST;
                        monitor.on_window_wrap(t1, pf.observation().window_wraps, &net);

                        if space.is_resident(r.page) {
                            if !d.prefetch.is_empty() {
                                for p in &d.prefetch {
                                    in_flight.insert(*p, None);
                                }
                                let arrive =
                                    net.send_to_home(t1, NetPath::request_bytes(d.prefetch.len()));
                                q.schedule(
                                    arrive,
                                    AmpomEv::RequestAtHome {
                                        pages: d.prefetch.clone(),
                                    },
                                );
                                pages_prefetched += d.prefetch.len() as u64;
                            }
                            pending.push_front(r);
                            q.schedule(t1, AmpomEv::Advance);
                        } else if in_flight.contains_key(&r.page) {
                            if !d.prefetch.is_empty() {
                                for p in &d.prefetch {
                                    in_flight.insert(*p, None);
                                }
                                let arrive =
                                    net.send_to_home(t1, NetPath::request_bytes(d.prefetch.len()));
                                q.schedule(
                                    arrive,
                                    AmpomEv::RequestAtHome {
                                        pages: d.prefetch.clone(),
                                    },
                                );
                                pages_prefetched += d.prefetch.len() as u64;
                            }
                            pending.push_front(r);
                            match in_flight[&r.page] {
                                // Already arrived (staged): install at t1.
                                Some(_) => {
                                    wait_until = Some((r.page, t1));
                                    q.schedule(t1, AmpomEv::Advance);
                                }
                                // Still on the wire: the ReplyArrived
                                // handler wakes us.
                                None => {
                                    wait_until = Some((r.page, t1));
                                }
                            }
                        } else {
                            fault_requests += 1;
                            let mut pages: Vec<PageId> = Vec::with_capacity(d.prefetch.len() + 1);
                            pages.push(r.page);
                            pages.extend_from_slice(&d.prefetch);
                            for p in &pages {
                                in_flight.insert(*p, None);
                            }
                            pages_prefetched += d.prefetch.len() as u64;
                            let arrive = net.send_to_home(t1, NetPath::request_bytes(pages.len()));
                            q.schedule(arrive, AmpomEv::RequestAtHome { pages });
                            // Park until the demand page's reply lands;
                            // the ReplyArrived handler wakes us.
                            pending.push_front(r);
                            wait_until = Some((r.page, t1));
                        }
                    }
                }
            }
            AmpomEv::RequestAtHome { pages } => {
                let mut start = now.max(deputy_free) + REQUEST_PARSE_COST;
                for page in pages {
                    if table.lookup(page) != Some(ampom_mem::table::PageLocation::Origin) {
                        continue;
                    }
                    start += PAGE_SERVICE_COST;
                    table.transfer_to_destination(page);
                    let arrive = net.send_to_dest(start, 4096 + REPLY_HEADER_BYTES);
                    q.schedule(arrive, AmpomEv::ReplyArrived { page });
                }
                deputy_free = start;
            }
            AmpomEv::ReplyArrived { page } => {
                staged.push_back((now, page));
                in_flight.insert(page, Some(now));
                // If the migrant is parked waiting for exactly this page,
                // wake it now.
                if let Some((waiting, _)) = wait_until {
                    if waiting == page {
                        wait_until = Some((waiting, now));
                        q.schedule(now, AmpomEv::Advance);
                    }
                }
            }
        }
    }

    Ok((
        done_at.since(SimTime::ZERO),
        fault_requests,
        pages_prefetched,
    ))
}

fn utilization(cpu: SimDuration, now: SimTime, last_fault: SimTime) -> f64 {
    let wall = now.saturating_since(last_fault).as_secs_f64();
    if wall <= 0.0 {
        1.0
    } else {
        (cpu.as_secs_f64() / wall).clamp(0.0, 1.0)
    }
}

/// Installs staged arrivals at a fault entry; returns how many.
fn install_staged(
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut std::collections::HashMap<PageId, Option<SimTime>>,
    space: &mut ampom_mem::space::AddressSpace,
    now: SimTime,
) -> u64 {
    let mut n = 0;
    while let Some(&(arrival, page)) = staged.front() {
        if arrival > now {
            break;
        }
        staged.pop_front();
        in_flight.remove(&page);
        if space.state(page) == ampom_mem::space::PageState::Remote {
            space.install(page);
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::AmpomConfig;
    use crate::runner::{run_workload, RunConfig};
    use ampom_net::calibration::{broadband, fast_ethernet};
    use ampom_sim::rng::SimRng;
    use ampom_workloads::synthetic::{Scripted, Sequential, UniformRandom};

    const CPU: SimDuration = SimDuration::from_micros(25);

    fn cross_check(build: impl Fn() -> Box<dyn Workload>, link: LinkConfig) {
        let mut a = build();
        let event_driven = run_noprefetch_event_driven(a.as_mut(), link).expect("valid link");
        let mut b = build();
        let cfg = RunConfig::new(Scheme::NoPrefetch).with_link(link);
        let process_centric = run_workload(b.as_mut(), &cfg);
        assert_eq!(
            event_driven.fault_requests, process_centric.fault_requests,
            "fault counts diverge"
        );
        assert_eq!(
            event_driven.total_time, process_centric.total_time,
            "simulated clocks diverge"
        );
    }

    #[test]
    fn agrees_on_sequential_sweep() {
        cross_check(|| Box::new(Sequential::new(512, CPU)), fast_ethernet());
    }

    #[test]
    fn agrees_on_random_touches() {
        cross_check(
            || Box::new(UniformRandom::new(128, 700, CPU, SimRng::seed_from_u64(3))),
            fast_ethernet(),
        );
    }

    #[test]
    fn agrees_on_revisit_heavy_script() {
        let script: Vec<u64> = (0..64).chain(0..64).chain((0..64).rev()).collect();
        cross_check(
            move || Box::new(Scripted::new(64, &script, CPU)),
            fast_ethernet(),
        );
    }

    #[test]
    fn agrees_on_broadband() {
        cross_check(|| Box::new(Sequential::new(128, CPU)), broadband());
    }

    #[test]
    fn agrees_on_zero_compute_edge() {
        cross_check(
            || Box::new(Sequential::new(64, SimDuration::from_nanos(1))),
            fast_ethernet(),
        );
    }

    fn cross_check_ampom(build: impl Fn() -> Box<dyn Workload>, link: LinkConfig) {
        use crate::prefetcher::AmpomConfig;
        let mut a = build();
        let (ed_total, ed_requests, ed_prefetched) =
            super::run_ampom_event_driven(a.as_mut(), link, AmpomConfig::default())
                .expect("valid link and config");
        let mut b = build();
        let cfg = RunConfig::new(Scheme::Ampom).with_link(link);
        let pc = run_workload(b.as_mut(), &cfg);
        assert_eq!(ed_requests, pc.fault_requests, "fault requests diverge");
        assert_eq!(
            ed_prefetched, pc.pages_prefetched,
            "prefetch counts diverge"
        );
        assert_eq!(ed_total, pc.total_time, "simulated clocks diverge");
    }

    #[test]
    fn ampom_agrees_on_sequential_sweep() {
        cross_check_ampom(|| Box::new(Sequential::new(512, CPU)), fast_ethernet());
    }

    #[test]
    fn ampom_agrees_on_random_touches() {
        cross_check_ampom(
            || Box::new(UniformRandom::new(128, 700, CPU, SimRng::seed_from_u64(3))),
            fast_ethernet(),
        );
    }

    #[test]
    fn ampom_agrees_on_revisit_heavy_script() {
        let script: Vec<u64> = (0..64).chain(0..64).chain((0..64).rev()).collect();
        cross_check_ampom(
            move || Box::new(Scripted::new(64, &script, CPU)),
            fast_ethernet(),
        );
    }

    #[test]
    fn ampom_agrees_on_broadband() {
        cross_check_ampom(|| Box::new(Sequential::new(128, CPU)), broadband());
    }

    #[test]
    fn dead_link_and_bad_config_return_errors() {
        use crate::error::AmpomError;
        let mut dead = fast_ethernet();
        dead.capacity_bytes_per_sec = 0;
        let mut w = Sequential::new(16, CPU);
        assert!(matches!(
            run_noprefetch_event_driven(&mut w, dead),
            Err(AmpomError::LinkDown(_))
        ));
        let bad = AmpomConfig {
            dmax: 0,
            ..AmpomConfig::default()
        };
        let mut w2 = Sequential::new(16, CPU);
        assert!(matches!(
            run_ampom_event_driven(&mut w2, fast_ethernet(), bad),
            Err(AmpomError::InvalidConfig(_))
        ));
    }
}
