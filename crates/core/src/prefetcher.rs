//! The AMPoM prefetcher — Algorithm 1 of the paper.
//!
//! ```text
//! foreach page fault i do
//!     if pages prefetched last time have arrived then
//!         copy these pages to the migrant's address space;
//!     record i in the lookback window;
//!     calculate the current spatial locality score;
//!     calculate the number of pages in the dependent zone;
//!     identify which pages are in the dependent zone;
//!     foreach page j in the dependent zone do
//!         if j is not stored locally then record j in the remote paging request;
//!     send out the recorded paging request to the original node;
//!     wait for i to arrive if it is not available locally;
//! ```
//!
//! The copy/wait steps are the runner's job (they need the clock and the
//! network); this module owns the *analysis*: window bookkeeping, census,
//! score, zone sizing and page selection, plus the paper's baseline
//! read-ahead behaviour (§5.3: even when no pattern is developed, AMPoM
//! "resembles the characteristics of a fixed-size read-ahead policy …
//! which serves as a 'baseline' of prefetching aggressiveness").

use ampom_mem::page::PageId;
use ampom_sim::stats::OnlineStats;
use ampom_sim::time::{SimDuration, SimTime};

use crate::census::{census, Census};
use crate::score::spatial_score_detail;
use crate::window::LookbackWindow;
use crate::zone::{dependent_zone_size, select_zone, ZoneSizeInputs};

/// Tunables of the AMPoM algorithm. Defaults are the paper's
/// implementation values (§4) plus the documented engineering floors.
#[derive(Debug, Clone)]
pub struct AmpomConfig {
    /// Lookback window length `l` ("we maintain a lookback window of
    /// length 20").
    pub window_len: usize,
    /// Maximum stride analysed ("we limit to search for stride-1 to
    /// stride-4 … i.e., dmax = 4").
    pub dmax: usize,
    /// Baseline read-ahead: minimum zone budget applied at every fault,
    /// mirroring the fixed-size read-ahead of the Linux buffer cache the
    /// paper compares against (§5.3). Set to 0 to disable (ablation).
    pub baseline_readahead: u64,
    /// Hard cap on the zone budget, bounding a single request's size when
    /// the bandwidth estimator reports a starved network.
    pub max_zone: u64,
}

impl Default for AmpomConfig {
    fn default() -> Self {
        AmpomConfig {
            window_len: LookbackWindow::PAPER_LENGTH,
            dmax: 4,
            baseline_readahead: 16,
            max_zone: 512,
        }
    }
}

impl AmpomConfig {
    /// Checks the tunables against their documented domains.
    pub fn validate(&self) -> Result<(), crate::error::AmpomError> {
        use crate::error::AmpomError;
        if self.window_len < 2 {
            return Err(AmpomError::InvalidConfig(format!(
                "window_len must be at least 2, got {}",
                self.window_len
            )));
        }
        if self.dmax < 1 || self.dmax >= self.window_len {
            return Err(AmpomError::InvalidConfig(format!(
                "dmax must satisfy 1 <= dmax < window_len ({}), got {}",
                self.window_len, self.dmax
            )));
        }
        if self.max_zone == 0 {
            return Err(AmpomError::InvalidConfig(
                "max_zone must be positive (it caps every request)".into(),
            ));
        }
        if self.baseline_readahead > self.max_zone {
            return Err(AmpomError::InvalidConfig(format!(
                "baseline_readahead ({}) exceeds max_zone ({})",
                self.baseline_readahead, self.max_zone
            )));
        }
        Ok(())
    }
}

/// Network estimates the monitor daemon feeds into Eq. 3.
#[derive(Debug, Clone, Copy)]
pub struct NetEstimates {
    /// One-way latency estimate `t0`.
    pub t0: SimDuration,
    /// Single-page transfer time `td` at the available bandwidth.
    pub td: SimDuration,
}

/// The outcome of one fault analysis.
#[derive(Debug, Clone)]
pub struct ZoneDecision {
    /// Pages to include in the remote paging request (already filtered to
    /// fetchable ones), in selection order. Does **not** include the
    /// faulted page itself; the runner prepends it when it too must be
    /// fetched.
    pub prefetch: Vec<PageId>,
    /// The computed (unrounded) `N` of Eq. 3.
    pub n_raw: f64,
    /// The applied budget after rounding, flooring and capping.
    pub budget: u64,
    /// The spatial locality score at this fault.
    pub score: f64,
    /// The unclamped Eq. 1 raw sum behind `score`.
    pub raw_score: f64,
    /// True when `score` was clamped down from a raw sum above 1
    /// (a repeated-page window).
    pub score_clamped: bool,
    /// The paging rate `r` fed into Eq. 3, in faults/second (0 while the
    /// window has not wrapped yet).
    pub rate: f64,
}

/// Running statistics of the prefetcher, reported in Figures 8 and 11.
///
/// Unit audit (the counters mix two granularities, so each records
/// which): `analyses`, `fallbacks` and `score_clamps` count analysis
/// **batches** (one per recorded fault); `pages_selected` counts
/// **pages**. The three distributions are per-batch samples. All
/// counters are `u64` — at the simulator's ~20 k faults/s a 64-bit
/// page counter is ~29 M years from wrapping, so no width concern.
#[derive(Debug, Default, Clone)]
pub struct PrefetchStats {
    /// Analyses performed, in batches (= faults recorded).
    pub analyses: u64,
    /// Total pages selected for prefetch across all requests (pages,
    /// not batches).
    pub pages_selected: u64,
    /// Distribution of the raw `N` values (one sample per batch).
    pub n_values: OnlineStats,
    /// Distribution of the applied zone budgets (Figure 8's per-fault
    /// prefetch aggressiveness; one sample per batch).
    pub budgets: OnlineStats,
    /// Distribution of the spatial score (one sample per batch).
    pub scores: OnlineStats,
    /// Analyses that fell back to read-ahead (no outstanding stream),
    /// in batches.
    pub fallbacks: u64,
    /// Analyses where the Eq. 1 clamp actually fired (raw score above
    /// 1), in batches.
    pub score_clamps: u64,
}

impl PrefetchStats {
    /// Folds another accumulator into this one (used when several
    /// prefetcher instances — e.g. the VM runner's per-process engines —
    /// report as one). Every counter participates, including
    /// `score_clamps`, which the ad-hoc merges this replaced dropped.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.analyses += other.analyses;
        self.pages_selected += other.pages_selected;
        self.n_values.merge(&other.n_values);
        self.budgets.merge(&other.budgets);
        self.scores.merge(&other.scores);
        self.fallbacks += other.fallbacks;
        self.score_clamps += other.score_clamps;
    }
}

/// The AMPoM analysis engine. One instance per migrant.
#[derive(Debug)]
pub struct AmpomPrefetcher {
    config: AmpomConfig,
    window: LookbackWindow,
    stats: PrefetchStats,
    last_census: Option<Census>,
}

impl AmpomPrefetcher {
    /// Creates a prefetcher with the given configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; prefer [`Self::try_new`] when
    /// the configuration comes from user input.
    pub fn new(config: AmpomConfig) -> Self {
        Self::try_new(config).expect("invalid AmpomConfig")
    }

    /// Fallible constructor: validates the tunables and returns
    /// [`crate::error::AmpomError::InvalidConfig`] instead of panicking.
    pub fn try_new(config: AmpomConfig) -> Result<Self, crate::error::AmpomError> {
        config.validate()?;
        Ok(AmpomPrefetcher {
            window: LookbackWindow::new(config.window_len),
            config,
            stats: PrefetchStats::default(),
            last_census: None,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &AmpomConfig {
        &self.config
    }

    /// A uniform snapshot of the prefetcher's state — the single
    /// reporting surface (replaces the former `stats()`/`window()`/
    /// `last_census()` getters, so every policy reports identically).
    pub fn observation(&self) -> crate::policy::PrefetchObservation {
        crate::policy::PrefetchObservation {
            policy: "ampom",
            stats: self.stats.clone(),
            window_wraps: self.window.wraps(),
            window_full: self.window.is_full(),
            outstanding_streams: self.last_census.as_ref().map_or(0, |c| c.outstanding.len()),
        }
    }

    /// Runs one fault analysis (the analysis lines of Algorithm 1).
    ///
    /// * `page` — the faulted page `i`,
    /// * `now` / `cpu_util` — the `T`/`C` values recorded with it,
    /// * `net` — the monitor's current `t0`/`td`,
    /// * `page_limit` — one past the last valid page,
    /// * `fetchable` — predicate: true iff the page is stored remotely and
    ///   not already in flight ("if j is not stored locally").
    pub fn on_fault(
        &mut self,
        page: PageId,
        now: SimTime,
        cpu_util: f64,
        net: NetEstimates,
        page_limit: PageId,
        mut fetchable: impl FnMut(PageId) -> bool,
    ) -> ZoneDecision {
        self.window.record(page, now, cpu_util);
        self.stats.analyses += 1;

        let pages = self.window.page_indices();
        let c = census(&pages, self.config.dmax);
        let score_detail = spatial_score_detail(&c);
        let score = score_detail.score;
        self.stats.scores.record(score);
        if score_detail.clamped {
            self.stats.score_clamps += 1;
        }

        let rate = self.window.paging_rate();
        let n_raw = match rate {
            Some(r) => dependent_zone_size(&ZoneSizeInputs {
                spatial_score: score,
                paging_rate: r,
                mean_cpu: self.window.mean_cpu_util(),
                next_cpu: self.window.latest_cpu_util(),
                t0: net.t0,
                td: net.td,
            }),
            None => 0.0,
        };
        self.stats.n_values.record(n_raw);

        let budget = (n_raw.round() as u64)
            .max(self.config.baseline_readahead)
            .min(self.config.max_zone);
        self.stats.budgets.record(budget as f64);

        if c.outstanding.is_empty() {
            self.stats.fallbacks += 1;
        }
        let zone = select_zone(&c.outstanding, budget, page, page_limit);
        let prefetch: Vec<PageId> = zone
            .into_iter()
            .filter(|&p| p != page && fetchable(p))
            .collect();
        self.stats.pages_selected += prefetch.len() as u64;
        self.last_census = Some(c);

        ZoneDecision {
            prefetch,
            n_raw,
            budget,
            score,
            raw_score: score_detail.raw,
            score_clamped: score_detail.clamped,
            rate: rate.unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetEstimates {
        NetEstimates {
            t0: SimDuration::from_micros(150),
            td: SimDuration::from_micros(366),
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn prefetcher() -> AmpomPrefetcher {
        AmpomPrefetcher::new(AmpomConfig::default())
    }

    #[test]
    fn sequential_faults_grow_an_aggressive_zone() {
        let mut p = prefetcher();
        let limit = PageId(1_000_000);
        let mut last = ZoneDecision {
            prefetch: vec![],
            n_raw: 0.0,
            budget: 0,
            score: 0.0,
            raw_score: 0.0,
            score_clamped: false,
            rate: 0.0,
        };
        for i in 0..40u64 {
            last = p.on_fault(PageId(100 + i), t(i * 100), 1.0, net(), limit, |_| true);
        }
        assert!(last.score > 0.99, "sequential S = {}", last.score);
        assert!(last.rate > 0.0, "a wrapped window must expose r");
        assert!(!last.score_clamped, "sequential access must not clamp");
        // r = 20 faults / 1.9 ms ≈ 10526/s; N = S·(r·(2t0+td)+1) ≈ 8.
        assert!(last.n_raw > 5.0, "N = {}", last.n_raw);
        assert!(!last.prefetch.is_empty());
        // Zone pages follow the live stream's pivot.
        assert_eq!(last.prefetch[0], PageId(140));
    }

    #[test]
    fn random_faults_fall_back_to_baseline_readahead() {
        let mut p = prefetcher();
        let limit = PageId(10_000_000);
        let pages = [
            90_001u64, 5, 777_003, 42_000, 1_234, 990_011, 333, 806_202, 55_555, 7, 123_456, 98,
            700_001, 3_141, 59_265, 35_897, 932_384, 626_433, 83_279, 502_884, 197_169, 399_375,
        ];
        let mut last_decision = None;
        for (i, &pg) in pages.iter().enumerate() {
            last_decision =
                Some(p.on_fault(PageId(pg), t(i as u64 * 500), 1.0, net(), limit, |_| true));
        }
        let d = last_decision.unwrap();
        assert_eq!(d.score, 0.0);
        assert_eq!(d.budget, 16, "baseline read-ahead applies");
        // Fallback zone: pages right after the last fault.
        assert_eq!(d.prefetch.first(), Some(&PageId(399_376)));
        assert_eq!(d.prefetch.len(), 16);
        assert!(p.stats.fallbacks > 0);
    }

    #[test]
    fn ablation_disabling_baseline_gives_empty_zone_for_random() {
        let cfg = AmpomConfig {
            baseline_readahead: 0,
            ..AmpomConfig::default()
        };
        let mut p = AmpomPrefetcher::new(cfg);
        let limit = PageId(10_000_000);
        let mut last = None;
        for i in 0..25u64 {
            last = Some(p.on_fault(
                PageId((i * 104_729 + 7) % 9_000_000),
                t(i * 400),
                1.0,
                net(),
                limit,
                |_| true,
            ));
        }
        assert!(last.unwrap().prefetch.is_empty());
    }

    #[test]
    fn fetchable_filter_is_respected() {
        let mut p = prefetcher();
        let limit = PageId(1_000);
        let mut d = ZoneDecision {
            prefetch: vec![],
            n_raw: 0.0,
            budget: 0,
            score: 0.0,
            raw_score: 0.0,
            score_clamped: false,
            rate: 0.0,
        };
        for i in 0..30u64 {
            d = p.on_fault(PageId(i), t(i * 100), 1.0, net(), limit, |pg| {
                pg.index() % 2 == 0
            });
        }
        assert!(d.prefetch.iter().all(|pg| pg.index() % 2 == 0));
    }

    #[test]
    fn faulted_page_never_in_prefetch_list() {
        let mut p = prefetcher();
        let limit = PageId(1_000);
        for i in 0..30u64 {
            let d = p.on_fault(PageId(i), t(i * 100), 1.0, net(), limit, |_| true);
            assert!(!d.prefetch.contains(&PageId(i)));
        }
    }

    #[test]
    fn zone_capped_at_max() {
        let cfg = AmpomConfig {
            max_zone: 16,
            ..AmpomConfig::default()
        };
        let mut p = AmpomPrefetcher::new(cfg);
        let limit = PageId(1_000_000);
        // Very slow network → huge td → N explodes; cap holds.
        let slow = NetEstimates {
            t0: SimDuration::from_millis(2),
            td: SimDuration::from_millis(50),
        };
        let mut d = None;
        for i in 0..30u64 {
            d = Some(p.on_fault(PageId(i), t(i * 50), 1.0, slow, limit, |_| true));
        }
        let d = d.unwrap();
        assert!(d.n_raw > 16.0);
        assert_eq!(d.budget, 16);
        assert!(d.prefetch.len() <= 16);
    }

    #[test]
    fn no_zone_before_window_fills_beyond_baseline() {
        let mut p = prefetcher();
        let d = p.on_fault(PageId(5), t(0), 1.0, net(), PageId(1_000), |_| true);
        // Window not full → N = 0 → budget = baseline.
        assert_eq!(d.n_raw, 0.0);
        assert_eq!(d.budget, 16);
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        let bad_dmax = AmpomConfig {
            dmax: 0,
            ..AmpomConfig::default()
        };
        assert!(AmpomPrefetcher::try_new(bad_dmax).is_err());
        let dmax_ge_window = AmpomConfig {
            dmax: 20,
            window_len: 20,
            ..AmpomConfig::default()
        };
        assert!(AmpomPrefetcher::try_new(dmax_ge_window).is_err());
        let floor_above_cap = AmpomConfig {
            baseline_readahead: 1024,
            max_zone: 512,
            ..AmpomConfig::default()
        };
        assert!(AmpomPrefetcher::try_new(floor_above_cap).is_err());
        assert!(AmpomPrefetcher::try_new(AmpomConfig::default()).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let mut p = prefetcher();
        for i in 0..10u64 {
            p.on_fault(PageId(i), t(i * 100), 0.8, net(), PageId(100), |_| true);
        }
        let s = &p.stats;
        assert_eq!(s.analyses, 10);
        assert!(s.pages_selected > 0);
        assert_eq!(s.scores.count(), 10);
    }

    #[test]
    fn repeated_page_window_reports_clamp() {
        let mut p = prefetcher();
        let limit = PageId(1_000);
        // Alternate between two adjacent pages with an occasional third:
        // duplicates give positions links at several distances, pushing
        // the raw Eq. 1 sum above 1.
        let pattern = [
            5u64, 6, 5, 6, 5, 6, 5, 7, 5, 6, 5, 6, 5, 6, 5, 7, 5, 6, 5, 6, 5, 6,
        ];
        let mut clamped_seen = false;
        for (i, &pg) in pattern.iter().enumerate() {
            let d = p.on_fault(PageId(pg), t(i as u64 * 100), 1.0, net(), limit, |_| true);
            if d.score_clamped {
                clamped_seen = true;
                assert!(d.raw_score > 1.0, "raw = {}", d.raw_score);
                assert_eq!(d.score, 1.0);
            }
        }
        assert!(clamped_seen, "repeated-page pattern must trip the clamp");
        assert!(p.stats.score_clamps > 0);
    }
}
