//! The dependent zone: how many pages (Eq. 3) and which pages (§3.4).
//!
//! **How many.** "N = (c'/c) · S · r · t  with  t = 2·t0 + td + 1/r" —
//! the zone must cover the process's page consumption for one prefetch
//! round trip plus one analysis interval, scaled by how clearly spatial
//! the access pattern is (`S`) and by the CPU share the process is about
//! to get (`c'/c`).
//!
//! **Which.** Each outstanding stride stream contributes a pivot
//! `r_{p+d} + 1`; every pivot receives `N/m` pages starting at the pivot.
//! "If a page is considered as a dependent page in multiple outstanding
//! streams, the 'saved quota' will be used to prefetch more subsequent
//! pages" — we keep extending past already-selected pages until the quota
//! of *new* pages is met. "If there is no outstanding stream found in W,
//! AMPoM would consider the N pages following the last referenced page
//! dependent, imitating the read ahead policy of the Linux virtual memory
//! manager."

use ampom_mem::page::PageId;
use ampom_sim::time::SimDuration;

use crate::census::OutstandingStream;

/// Inputs to Eq. 3.
#[derive(Debug, Clone, Copy)]
pub struct ZoneSizeInputs {
    /// Spatial locality score `S ∈ [0, 1]` (Eq. 1).
    pub spatial_score: f64,
    /// Paging rate `r = l/(T_l − T_1)`, faults per second.
    pub paging_rate: f64,
    /// Mean CPU utilisation over the window, `c`.
    pub mean_cpu: f64,
    /// Expected CPU utilisation next period, `c' = C_l`.
    pub next_cpu: f64,
    /// One-way network latency `t0`.
    pub t0: SimDuration,
    /// Single-page transfer time `td` at the currently available
    /// bandwidth.
    pub td: SimDuration,
}

/// Computes `N`, the number of dependent pages (Eq. 3). Returns a real
/// number; the prefetcher rounds and applies its floor/cap policy.
pub fn dependent_zone_size(inp: &ZoneSizeInputs) -> f64 {
    if inp.paging_rate <= 0.0 || !inp.paging_rate.is_finite() {
        return 0.0;
    }
    // c'/c: guard the degenerate all-idle window; a process that consumed
    // no CPU gets ratio 1 (no information either way).
    let cpu_ratio = if inp.mean_cpu > 1e-9 {
        inp.next_cpu / inp.mean_cpu
    } else {
        1.0
    };
    let t = 2.0 * inp.t0.as_secs_f64() + inp.td.as_secs_f64() + 1.0 / inp.paging_rate;
    (cpu_ratio * inp.spatial_score * inp.paging_rate * t).max(0.0)
}

/// Selects which pages form the dependent zone.
///
/// * `outstanding` — the live stride streams and their pivots,
/// * `budget` — total pages to select (the rounded, floored, capped `N`),
/// * `last_page` — `r_l`, used by the read-ahead fallback,
/// * `page_limit` — one past the last valid page of the address space
///   (zone pages beyond it are dropped).
///
/// Returns the selected pages in selection order, duplicate-free.
pub fn select_zone(
    outstanding: &[OutstandingStream],
    budget: u64,
    last_page: PageId,
    page_limit: PageId,
) -> Vec<PageId> {
    if budget == 0 {
        return Vec::new();
    }
    let valid = |p: u64| p < page_limit.index();
    let mut selected: Vec<PageId> = Vec::with_capacity(budget as usize);
    let mut chosen = std::collections::HashSet::new();

    if outstanding.is_empty() {
        // Read-ahead fallback: r_l + 1 … r_l + N.
        for i in 1..=budget {
            let p = last_page.index() + i;
            if valid(p) {
                selected.push(PageId(p));
            }
        }
        return selected;
    }

    let m = outstanding.len() as u64;
    let base_quota = budget / m;
    let remainder = budget % m;

    for (idx, stream) in outstanding.iter().enumerate() {
        // Earlier pivots absorb the division remainder, so the full budget
        // is always distributed.
        let mut quota = base_quota + u64::from((idx as u64) < remainder);
        let mut p = stream.pivot;
        // Extend past overlaps ("saved quota"), bounded by the address
        // space so degenerate inputs cannot loop forever.
        while quota > 0 && valid(p) {
            if chosen.insert(p) {
                selected.push(PageId(p));
                quota -= 1;
            }
            p += 1;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census;

    fn inputs(s: f64, r: f64) -> ZoneSizeInputs {
        ZoneSizeInputs {
            spatial_score: s,
            paging_rate: r,
            mean_cpu: 1.0,
            next_cpu: 1.0,
            t0: SimDuration::from_micros(150),
            td: SimDuration::from_micros(366),
        }
    }

    #[test]
    fn eq3_matches_hand_computation() {
        // N = S·r·(2t0 + td + 1/r) with c'/c = 1.
        let n = dependent_zone_size(&inputs(0.5, 10_000.0));
        let t = 2.0 * 150e-6 + 366e-6 + 1.0 / 10_000.0;
        assert!((n - 0.5 * 10_000.0 * t).abs() < 1e-9);
    }

    #[test]
    fn zone_grows_with_each_factor() {
        let base = dependent_zone_size(&inputs(0.5, 10_000.0));
        assert!(dependent_zone_size(&inputs(1.0, 10_000.0)) > base);
        assert!(dependent_zone_size(&inputs(0.5, 40_000.0)) > base);
        let slow_net = ZoneSizeInputs {
            td: SimDuration::from_millis(5),
            ..inputs(0.5, 10_000.0)
        };
        assert!(dependent_zone_size(&slow_net) > base);
        let cpu_boost = ZoneSizeInputs {
            mean_cpu: 0.5,
            next_cpu: 1.0,
            ..inputs(0.5, 10_000.0)
        };
        assert!((dependent_zone_size(&cpu_boost) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn zero_score_or_rate_gives_zero() {
        assert_eq!(dependent_zone_size(&inputs(0.0, 10_000.0)), 0.0);
        assert_eq!(dependent_zone_size(&inputs(0.5, 0.0)), 0.0);
        assert_eq!(dependent_zone_size(&inputs(0.5, f64::NAN)), 0.0);
    }

    #[test]
    fn fallback_reads_ahead_of_last_page() {
        let zone = select_zone(&[], 4, PageId(100), PageId(1_000));
        assert_eq!(
            zone,
            vec![PageId(101), PageId(102), PageId(103), PageId(104)]
        );
    }

    #[test]
    fn fallback_respects_address_space_end() {
        let zone = select_zone(&[], 10, PageId(98), PageId(100));
        assert_eq!(zone, vec![PageId(99)]);
    }

    #[test]
    fn quota_splits_across_pivots() {
        let c = census(&[100, 200, 101, 201, 102, 202], 4);
        let zone = select_zone(&c.outstanding, 6, PageId(202), PageId(10_000));
        // Two pivots (103, 203), three pages each.
        assert_eq!(zone.len(), 6);
        assert!(zone.contains(&PageId(103)));
        assert!(zone.contains(&PageId(105)));
        assert!(zone.contains(&PageId(203)));
        assert!(zone.contains(&PageId(205)));
    }

    #[test]
    fn remainder_goes_to_earlier_pivots() {
        let c = census(&[100, 200, 101, 201, 102, 202], 4);
        let zone = select_zone(&c.outstanding, 5, PageId(202), PageId(10_000));
        assert_eq!(zone.len(), 5);
        // First outstanding stream (ends earlier in the window) gets 3.
        let low: Vec<_> = zone.iter().filter(|p| p.index() < 200).collect();
        assert_eq!(low.len(), 3);
    }

    #[test]
    fn saved_quota_extends_past_overlaps() {
        // Two streams converging on the same pivot: the second stream's
        // quota is spent on pages beyond the overlap.
        use crate::census::OutstandingStream;
        let streams = [
            OutstandingStream {
                end_page: 9,
                d: 1,
                pivot: 10,
            },
            OutstandingStream {
                end_page: 9,
                d: 2,
                pivot: 10,
            },
        ];
        let zone = select_zone(&streams, 4, PageId(9), PageId(1_000));
        assert_eq!(zone, vec![PageId(10), PageId(11), PageId(12), PageId(13)]);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let c = census(&[1, 2, 3], 4);
        assert!(select_zone(&c.outstanding, 0, PageId(3), PageId(100)).is_empty());
    }

    #[test]
    fn paper_example_pivots_drive_selection() {
        // §3.4's window: pivots 16, 5, 6 — with budget 3 each pivot gets
        // one page.
        let c = census(&[13, 27, 7, 8, 14, 8, 3, 15, 4, 5], 4);
        let zone = select_zone(&c.outstanding, 3, PageId(5), PageId(1_000));
        let mut got: Vec<u64> = zone.iter().map(|p| p.index()).collect();
        got.sort();
        assert_eq!(got, vec![5, 6, 16]);
    }
}
