//! The lookback window `W` (paper §3.1).
//!
//! "The analysis is based on a stream of addresses of recently-accessed
//! memory pages recorded in a fixed-size lookback window W of length l.
//! … When a page fault occurs while the lookback window is full, the first
//! element will be discarded, all other elements will be shifted left, and
//! the address of the newly accessed page will be appended as the new r_l.
//! In addition … AMPoM maintains two other arrays, T and C. T contains the
//! access time of each page recorded in W … C_i is the current CPU
//! utilization when r_i is recorded."
//!
//! The paper's temporal-locality rule — "we consider consecutive, repeated
//! references to the same page a form of temporal locality, therefore they
//! are counted as a single page reference (r_p ≠ r_{p+1})" — is enforced
//! here: recording the same page as the newest entry again is a no-op.

use std::collections::VecDeque;

use ampom_mem::page::PageId;
use ampom_sim::time::SimTime;

/// One window entry: `(r_i, T_i, C_i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// The faulted page (`r_i`).
    pub page: PageId,
    /// When the fault occurred (`T_i`).
    pub time: SimTime,
    /// CPU utilisation of the process when the fault occurred (`C_i`),
    /// in `[0, 1]`.
    pub cpu_util: f64,
}

/// The fixed-size lookback window with its `T` and `C` side arrays.
#[derive(Debug, Clone)]
pub struct LookbackWindow {
    entries: VecDeque<FaultRecord>,
    capacity: usize,
    /// Number of times the window has completely turned over — the
    /// "looped once" clock the bandwidth estimator samples on (paper §4).
    wraps: u64,
    since_wrap: usize,
}

impl LookbackWindow {
    /// The paper's implementation value: "we maintain a lookback window of
    /// length 20" (§4).
    pub const PAPER_LENGTH: usize = 20;

    /// Creates a window of length `l`.
    ///
    /// # Panics
    /// Panics if `l < 2` — stride analysis needs at least two entries.
    pub fn new(l: usize) -> Self {
        assert!(l >= 2, "lookback window needs l >= 2");
        LookbackWindow {
            entries: VecDeque::with_capacity(l),
            capacity: l,
            wraps: 0,
            since_wrap: 0,
        }
    }

    /// The configured length `l`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of recorded references (≤ `l`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once the window holds `l` entries — Eq. 3's paging rate is
    /// meaningful only then.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Records a fault. Returns `true` if the window changed (`false` for
    /// a consecutive repeat of the newest page, per the temporal-locality
    /// rule).
    pub fn record(&mut self, page: PageId, time: SimTime, cpu_util: f64) -> bool {
        if let Some(last) = self.entries.back() {
            if last.page == page {
                return false;
            }
            debug_assert!(time >= last.time, "faults must be time-ordered");
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(FaultRecord {
            page,
            time,
            cpu_util: cpu_util.clamp(0.0, 1.0),
        });
        self.since_wrap += 1;
        if self.since_wrap >= self.capacity {
            self.since_wrap = 0;
            self.wraps += 1;
        }
        true
    }

    /// The recorded pages `r_1 … r_l`, oldest first.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.entries.iter().map(|e| e.page)
    }

    /// Raw page indices, oldest first (the census operates on these).
    pub fn page_indices(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.page.index()).collect()
    }

    /// The newest entry `r_l`, if any.
    pub fn newest(&self) -> Option<&FaultRecord> {
        self.entries.back()
    }

    /// The oldest entry `r_1`, if any.
    pub fn oldest(&self) -> Option<&FaultRecord> {
        self.entries.front()
    }

    /// The paging rate `r = l / (T_l − T_1)` in faults per second, or
    /// `None` if the window is not full or spans zero time.
    pub fn paging_rate(&self) -> Option<f64> {
        if !self.is_full() {
            return None;
        }
        let span = self.newest()?.time.since(self.oldest()?.time).as_secs_f64();
        (span > 0.0).then(|| self.capacity as f64 / span)
    }

    /// Mean CPU utilisation over the window: `c = Σ C_i / l`.
    pub fn mean_cpu_util(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.cpu_util).sum::<f64>() / self.entries.len() as f64
    }

    /// The expected CPU share for the next period: `c' = C_l`.
    pub fn latest_cpu_util(&self) -> f64 {
        self.entries.back().map_or(0.0, |e| e.cpu_util)
    }

    /// How many times the window has fully turned over.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn fills_then_slides() {
        let mut w = LookbackWindow::new(3);
        for i in 0..3 {
            assert!(w.record(PageId(i), t(i), 1.0));
        }
        assert!(w.is_full());
        assert_eq!(w.page_indices(), vec![0, 1, 2]);
        w.record(PageId(9), t(10), 1.0);
        assert_eq!(w.page_indices(), vec![1, 2, 9]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let mut w = LookbackWindow::new(5);
        assert!(w.record(PageId(7), t(0), 1.0));
        assert!(!w.record(PageId(7), t(1), 1.0));
        assert_eq!(w.len(), 1);
        // Non-consecutive repeats are kept.
        assert!(w.record(PageId(8), t(2), 1.0));
        assert!(w.record(PageId(7), t(3), 1.0));
        assert_eq!(w.page_indices(), vec![7, 8, 7]);
    }

    #[test]
    fn paging_rate_is_l_over_span() {
        let mut w = LookbackWindow::new(4);
        for i in 0..4u64 {
            w.record(PageId(i), t(i * 100), 1.0);
        }
        // l=4 over 300 µs.
        let r = w.paging_rate().unwrap();
        assert!((r - 4.0 / 300e-6).abs() < 1e-6);
    }

    #[test]
    fn paging_rate_none_until_full_or_zero_span() {
        let mut w = LookbackWindow::new(3);
        w.record(PageId(0), t(0), 1.0);
        w.record(PageId(1), t(0), 1.0);
        assert_eq!(w.paging_rate(), None); // not full
        w.record(PageId(2), t(0), 1.0);
        assert_eq!(w.paging_rate(), None); // zero span
    }

    #[test]
    fn cpu_terms() {
        let mut w = LookbackWindow::new(3);
        w.record(PageId(0), t(0), 0.2);
        w.record(PageId(1), t(1), 0.4);
        w.record(PageId(2), t(2), 0.9);
        assert!((w.mean_cpu_util() - 0.5).abs() < 1e-12);
        assert!((w.latest_cpu_util() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cpu_util_clamped() {
        let mut w = LookbackWindow::new(2);
        w.record(PageId(0), t(0), 7.0);
        assert_eq!(w.latest_cpu_util(), 1.0);
        w.record(PageId(1), t(1), -3.0);
        assert_eq!(w.latest_cpu_util(), 0.0);
    }

    #[test]
    fn wrap_counter_ticks_every_l_records() {
        let mut w = LookbackWindow::new(3);
        for i in 0..9u64 {
            w.record(PageId(i), t(i), 1.0);
        }
        assert_eq!(w.wraps(), 3);
    }

    #[test]
    #[should_panic(expected = "l >= 2")]
    fn tiny_window_rejected() {
        let _ = LookbackWindow::new(1);
    }
}
