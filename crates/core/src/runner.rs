//! The experiment runner: executes one workload under one migration
//! scheme and measures everything the paper reports.
//!
//! The runner is a process-centric discrete-event simulation. The migrant
//! is the only active computation; its clock advances through compute
//! (per-touch CPU from the workload), fault handling (analysis, paging
//! requests, stalls) and page installs. The network side is exact: the
//! reply link is a FIFO, so every page's arrival time is known the moment
//! the deputy enqueues it, and prefetched pages stream back-to-back while
//! the migrant computes — the paper's pipelining effect falls out of the
//! model rather than being assumed.
//!
//! Fault semantics follow Algorithm 1 and the Linux 2.4 reality the paper
//! built on:
//!
//! * **every** first touch of a non-resident page is a page fault
//!   (recorded in the lookback window), whether the page must be fetched,
//!   is already in flight, or has arrived and merely needs to be copied in
//!   ("if pages prefetched last time have arrived then copy these pages to
//!   the migrant's address space");
//! * only faults that must *request* the missing page count as "page fault
//!   requests" (the Figure 7 metric);
//! * the migrant stalls only for the faulted page, never for prefetches.

use std::collections::{HashMap, VecDeque};

use ampom_mem::eviction::ClockEvictor;
use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::space::TouchOutcome;
use ampom_net::calibration::{AMPOM_ANALYSIS_COST, PER_MESSAGE_OVERHEAD};
use ampom_net::cross::CrossTraffic;
use ampom_net::link::LinkConfig;
use ampom_obs::PhaseBreakdown;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceKind};
use ampom_workloads::memref::Workload;

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::error::AmpomError;
use crate::lifecycle::{writeback_batch_bytes, ForwardWriteback, WritebackSpec};
use crate::metrics::{RunReport, RunSeries};
use crate::migration::{perform_freeze, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::policy::{PolicySpec, PrefetchFeedback, Prefetcher};
use crate::prefetcher::{AmpomConfig, PrefetchStats};
use crate::reliability::{FailurePolicy, FaultInjector, FaultProfile};
use crate::slo::QuantileSketch;

/// Cost of servicing a minor fault (anonymous zero-fill) in the kernel.
pub const MINOR_FAULT_COST: SimDuration = SimDuration::from_micros(1);

/// Cost of copying one arrived page from the staging buffer into the
/// migrant's address space and fixing up its page-table entry.
pub const PAGE_INSTALL_COST: SimDuration = SimDuration::from_micros(1);

/// Models an I/O-bound phase: every `every_refs` references the process
/// issues a system call that must be forwarded to the home-node deputy
/// (openMosix's "home dependency", paper §2.2/§7).
#[derive(Debug, Clone, Copy)]
pub struct SyscallProfile {
    /// References between consecutive system calls.
    pub every_refs: u64,
    /// Work the call performs at the home node (0 for getpid-class).
    pub work: SimDuration,
}

/// Cross-traffic specification for network-load experiments.
#[derive(Debug, Clone, Copy)]
pub struct CrossTrafficSpec {
    /// Offered foreign load on the reply direction, bytes/s.
    pub bytes_per_sec: u64,
    /// Burst size of each foreign message.
    pub burst_bytes: u64,
}

/// Configuration of one run.
///
/// Construct with [`RunConfig::new`] and the `with_*` builder methods —
/// or, preferably, through the [`crate::experiment::Experiment`] builder,
/// which validates the configuration and returns
/// [`crate::error::AmpomError`] on misuse. Poking fields directly is
/// discouraged: it bypasses validation and new fields may change the
/// struct shape between releases.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Migration scheme under test.
    pub scheme: Scheme,
    /// Link configuration of the home↔destination path (use
    /// [`ampom_net::calibration::fast_ethernet`] or a shaped config).
    pub link: LinkConfig,
    /// AMPoM tunables (ignored by the other schemes).
    pub ampom: AmpomConfig,
    /// Prefetch policy driving the per-fault analysis under
    /// [`Scheme::Ampom`] (the other schemes never analyse). The default,
    /// [`PolicySpec::Ampom`], is the paper's engine and is pinned
    /// bit-identical to the pre-trait path by the golden fingerprints.
    pub policy: PolicySpec,
    /// Record a Figure 2 style timeline.
    pub trace: bool,
    /// Optional foreign traffic on the reply link.
    pub cross_traffic: Option<CrossTrafficSpec>,
    /// Optional forwarded-system-call workload (the home dependency).
    pub syscalls: Option<SyscallProfile>,
    /// Sample time series (in-flight pages, resident set, zone budgets,
    /// link utilisation) every `n` faults; `None` disables sampling.
    pub sample_series_every: Option<u64>,
    /// Destination-node RAM available to the migrant, in MB. When the
    /// resident set would exceed it, CLOCK eviction pushes victims back
    /// to the home node (swap-over-network — the testbed's 512 MB nodes
    /// could not hold a 575 MB migrant). `None` = unlimited.
    pub resident_limit_mb: Option<u64>,
    /// Seed for the cross-traffic arrival process.
    pub seed: u64,
    /// Optional failure model: message loss/jitter on both link
    /// directions, scheduled deputy outages, and the recovery protocol's
    /// knobs. `None` (or a null profile) runs the exact fault-free path.
    pub faults: Option<FaultProfile>,
    /// Optional background writeback: dirty pages flow home in delta
    /// batches on the fault cadence (see [`crate::lifecycle`]). `None`
    /// keeps forward runs bit-identical to the golden fingerprints.
    pub writeback: Option<WritebackSpec>,
}

impl RunConfig {
    /// A run of `scheme` on the standard cluster LAN.
    pub fn new(scheme: Scheme) -> Self {
        RunConfig {
            scheme,
            link: ampom_net::calibration::fast_ethernet(),
            ampom: AmpomConfig::default(),
            policy: PolicySpec::default(),
            trace: false,
            cross_traffic: None,
            syscalls: None,
            sample_series_every: None,
            resident_limit_mb: None,
            seed: 0x5EED,
            faults: None,
            writeback: None,
        }
    }

    /// Same run on a different link (e.g. the §5.5 broadband emulation).
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Enables the event trace.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Replaces the AMPoM tunables (ignored by the other schemes).
    pub fn with_ampom(mut self, ampom: AmpomConfig) -> Self {
        self.ampom = ampom;
        self
    }

    /// Selects the prefetch policy (see [`PolicySpec`]). Only
    /// meaningful under [`Scheme::Ampom`].
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Adds foreign traffic on the reply link.
    pub fn with_cross_traffic(mut self, spec: CrossTrafficSpec) -> Self {
        self.cross_traffic = Some(spec);
        self
    }

    /// Adds a forwarded-system-call workload (the home dependency).
    pub fn with_syscalls(mut self, profile: SyscallProfile) -> Self {
        self.syscalls = Some(profile);
        self
    }

    /// Samples the run's time series every `every_faults` faults.
    pub fn with_sample_series(mut self, every_faults: u64) -> Self {
        self.sample_series_every = Some(every_faults);
        self
    }

    /// Caps destination-node RAM, enabling swap-over-network eviction.
    pub fn with_resident_limit_mb(mut self, mb: u64) -> Self {
        self.resident_limit_mb = Some(mb);
        self
    }

    /// Sets the seed for the run's stochastic elements (cross traffic
    /// and fault injection).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a failure model (lossy links, deputy downtime, recovery
    /// protocol knobs).
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Enables background writeback of dirty pages toward the home node.
    pub fn with_writeback(mut self, spec: WritebackSpec) -> Self {
        self.writeback = Some(spec);
        self
    }

    /// Checks every knob against its documented domain.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if self.link.capacity_bytes_per_sec == 0 {
            return Err(AmpomError::LinkDown(
                "link capacity is 0 bytes/s; no page could ever be served".into(),
            ));
        }
        if self.scheme == Scheme::Ampom {
            self.ampom.validate()?;
            self.policy.validate()?;
        }
        if let Some(profile) = self.syscalls {
            if profile.every_refs == 0 {
                return Err(AmpomError::InvalidConfig(
                    "syscalls.every_refs must be positive".into(),
                ));
            }
        }
        if let Some(spec) = self.cross_traffic {
            if spec.bytes_per_sec > 0 && spec.burst_bytes == 0 {
                return Err(AmpomError::InvalidConfig(
                    "cross_traffic.burst_bytes must be positive when load is offered".into(),
                ));
            }
        }
        if self.sample_series_every == Some(0) {
            return Err(AmpomError::InvalidConfig(
                "sample_series_every must be positive (or None to disable)".into(),
            ));
        }
        if let Some(profile) = &self.faults {
            profile.validate()?;
            if !profile.is_null() {
                if self.scheme == Scheme::Ffa {
                    return Err(AmpomError::InvalidConfig(
                        "fault injection is not supported with the FFA scheme \
                         (faults model the deputy path, not the file server)"
                            .into(),
                    ));
                }
                if profile.policy == FailurePolicy::Remigrate && self.resident_limit_mb.is_some() {
                    return Err(AmpomError::InvalidConfig(
                        "the remigrate failure policy cannot be combined with a resident \
                         limit (the home node holds the full image; eviction bookkeeping \
                         does not survive the move)"
                            .into(),
                    ));
                }
            }
        }
        if let Some(spec) = &self.writeback {
            spec.validate()?;
            if self.scheme == Scheme::Ffa {
                return Err(AmpomError::InvalidConfig(
                    "writeback is not supported with the FFA scheme (dirty pages \
                     already flush to the file server, not the home node)"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

/// Executes `workload` under `cfg`, validating the configuration first.
///
/// This is the fallible entry point the [`crate::experiment::Experiment`]
/// builder and the [`crate::sweep`] engine call; misconfiguration comes
/// back as [`AmpomError`] instead of a panic inside the simulation.
pub fn try_run_workload<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
) -> Result<RunReport, AmpomError> {
    cfg.validate()?;
    Ok(run_workload(workload, cfg))
}

/// Executes `workload` under `cfg` and returns the full measurement
/// record.
///
/// # Panics
/// May panic on an invalid configuration (e.g. a bad [`AmpomConfig`]);
/// prefer [`try_run_workload`] or the [`crate::experiment::Experiment`]
/// builder for user-supplied configurations.
pub fn run_workload<W: Workload + ?Sized>(workload: &mut W, cfg: &RunConfig) -> RunReport {
    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let program_mb = (pre.allocated.len() as u64 * PAGE_SIZE) >> 20;

    let mut path = NetPath::new(cfg.link);
    if let Some(spec) = cfg.cross_traffic {
        path = path.with_cross_traffic(CrossTraffic::new(
            spec.bytes_per_sec,
            spec.burst_bytes,
            SimRng::seed_from_u64(cfg.seed),
        ));
    }
    let mut trace = if cfg.trace {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    let freeze = perform_freeze(cfg.scheme, &pre, &mut path, &mut trace);
    let mut space = freeze.space;
    let mut table = freeze.table;
    let mut now = SimTime::ZERO + freeze.freeze_time;

    let mut prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));
    let mut monitor = MonitorDaemon::new(&path);
    let mut deputy = Deputy::new();

    // Fault injection: only a non-null profile instantiates the
    // reliability layer. With `injector == None` every dispatch below
    // takes the historical fault-free code path, so zero-fault runs stay
    // bit-identical to the pre-fault runner.
    let mut injector = cfg
        .faults
        .as_ref()
        .filter(|p| !p.is_null())
        .map(|p| FaultInjector::new(p, cfg.link, cfg.seed));

    // FFA: the home node pushes the remaining stack pages right after the
    // freeze and flushes every dirty page to the file server in the
    // background; faults are then served by the file server. We model the
    // flush schedule analytically (the flush uses the home↔file-server
    // link, which does not contend with our path).
    let ffa = (cfg.scheme == Scheme::Ffa).then(|| FfaState::new(&pre, now, cfg.link));

    // In-flight pages and the staging buffer of arrived-but-uninstalled
    // pages. The reply link is FIFO, so arrivals are monotone and the
    // buffer stays sorted by construction.
    let mut in_flight: HashMap<PageId, SimTime> = HashMap::new();
    let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
    let total_pages = layout.total_pages();
    let mut was_prefetched = vec![false; total_pages as usize];
    let mut pages_evicted = 0u64;
    let mut series = cfg.sample_series_every.map(|_| RunSeries::default());
    let sample_every = cfg.sample_series_every.unwrap_or(u64::MAX);
    let mut faults_since_sample = 0u64;

    // Memory pressure: register whatever the freeze installed, then push
    // the overflow straight back (swap-over-network from the first
    // instant — what an eager copy into a too-small node does).
    let mut evictor = cfg.resident_limit_mb.map(|mb| {
        let limit = (mb * 1024 * 1024 / PAGE_SIZE).max(4);
        let mut ev = ClockEvictor::new(total_pages, limit);
        let resident: Vec<PageId> = space
            .pages_where(|st| matches!(st, ampom_mem::space::PageState::Resident { .. }))
            .collect();
        for p in resident {
            if ev.at_capacity() {
                pages_evicted += 1;
                path.send_control_to_home(now, NetPath::page_reply_bytes());
                table.return_to_origin(p);
                space.mark_remote(p);
            } else {
                ev.on_install(p);
            }
        }
        ev
    });

    // Measurement state.
    let mut compute_time = SimDuration::ZERO;
    let mut stall_time = SimDuration::ZERO;
    // Per-fault stall distribution for the SLO layer. Syscall-delay
    // stalls are not recorded: the sketch measures paging behaviour.
    let mut stall_sketch = QuantileSketch::new();
    let mut analysis_time = SimDuration::ZERO;
    // Phase attribution: every clock advance below is charged to exactly
    // one phase, so the disjoint phases sum to total_time to the
    // nanosecond (tested in tests/observability.rs).
    let mut install_time = SimDuration::ZERO;
    let mut prefetch_overlap = SimDuration::ZERO;
    let mut faults_total = 0u64;
    let mut fault_requests = 0u64;
    let mut prefetch_only_requests = 0u64;
    let mut pages_demand = 0u64;
    let mut pages_prefetched = 0u64;
    let mut prefetched_used = 0u64;
    let mut pages_local_alloc = 0u64;

    // CPU-utilisation tracking for the C array: share of wall time spent
    // computing since the previous fault.
    let mut cpu_since_fault = SimDuration::ZERO;
    let mut last_fault_at = now;

    // Forwarded-syscall state.
    let mut syscalls_forwarded = 0u64;
    let mut syscall_time = SimDuration::ZERO;
    let mut refs_since_syscall = 0u64;

    // Background writeback (None on the fingerprint-pinned default path).
    let mut wb = cfg.writeback.map(ForwardWriteback::new);

    let page_limit = PageId(total_pages);

    for r in &mut *workload {
        if let Some(profile) = cfg.syscalls {
            refs_since_syscall += 1;
            if refs_since_syscall >= profile.every_refs {
                refs_since_syscall = 0;
                // The home dependency is absolute: a forwarded call can
                // only execute once the deputy is back up.
                if let Some(inj) = injector.as_mut() {
                    if let Some(up) = inj.syscall_delay(now) {
                        stall_time += up.since(now);
                        now = up;
                    }
                }
                let done = deputy.forward_syscall(now, profile.work, &mut path);
                syscall_time += done.since(now);
                syscalls_forwarded += 1;
                trace.record(done, TraceKind::SyscallForwarded, TraceData::empty());
                now = done;
            }
        }

        // Prefetch-usage accounting (one cheap indexed read per touch).
        let pidx = r.page.index() as usize;
        if was_prefetched[pidx] {
            was_prefetched[pidx] = false;
            prefetched_used += 1;
        }

        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => {
                if let Some(ev) = evictor.as_mut() {
                    ev.on_touch(r.page);
                }
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if !in_flight.is_empty() {
                    prefetch_overlap += r.cpu;
                }
            }
            TouchOutcome::LocalAllocate => {
                // Anonymous first touch: minor fault, no network. Still a
                // fault for the lookback window — the kernel handler runs.
                faults_total += 1;
                pages_local_alloc += 1;
                if let Some(wb) = wb.as_mut() {
                    // First touches allocate dirty (zero-fill).
                    wb.note_touch(r.page, true);
                }
                now += MINOR_FAULT_COST;
                if table.lookup(r.page).is_none() {
                    table.create_at_destination(r.page);
                }
                if let Some(ev) = evictor.as_mut() {
                    make_room(
                        ev,
                        r.page,
                        now,
                        &mut path,
                        &mut table,
                        &mut space,
                        &mut pages_evicted,
                    );
                    ev.on_install(r.page);
                }
                let util = utilization(cpu_since_fault, now, last_fault_at);
                last_fault_at = now;
                cpu_since_fault = SimDuration::ZERO;
                if let Some(pf) = prefetcher.as_deref_mut() {
                    let prefetch = analyze(
                        pf,
                        r.page,
                        &mut now,
                        util,
                        &mut monitor,
                        &mut path,
                        page_limit,
                        &space,
                        &in_flight,
                        PrefetchFeedback {
                            pages_prefetched,
                            prefetched_used,
                        },
                        &mut analysis_time,
                        &mut trace,
                    );
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        dispatch_request(
                            &mut injector,
                            &prefetch,
                            None,
                            now,
                            &mut path,
                            &mut deputy,
                            &mut table,
                            &mut in_flight,
                            &mut staged,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if !in_flight.is_empty() {
                    prefetch_overlap += r.cpu;
                }
            }
            TouchOutcome::RemoteFault => {
                faults_total += 1;
                let fault_at = now;
                trace.record(now, TraceKind::PageFault, TraceData::page(r.page.index()));
                if let Some(wb) = wb.as_mut() {
                    if wb.on_fault() {
                        flush_writeback(wb, now, &mut path, &mut space, &mut trace);
                    }
                }
                let install_from = now;
                dispatch_install(
                    &mut injector,
                    &mut staged,
                    &mut in_flight,
                    &mut space,
                    &mut now,
                    evictor.as_mut(),
                    r.page,
                    &mut path,
                    &mut table,
                    &mut pages_evicted,
                );
                install_time += now.since(install_from);

                let util = utilization(cpu_since_fault, fault_at, last_fault_at);
                last_fault_at = fault_at;
                cpu_since_fault = SimDuration::ZERO;

                // AMPoM analysis (every fault, per Algorithm 1).
                let prefetch = match prefetcher.as_deref_mut() {
                    Some(pf) => analyze(
                        pf,
                        r.page,
                        &mut now,
                        util,
                        &mut monitor,
                        &mut path,
                        page_limit,
                        &space,
                        &in_flight,
                        PrefetchFeedback {
                            pages_prefetched,
                            prefetched_used,
                        },
                        &mut analysis_time,
                        &mut trace,
                    ),
                    None => Vec::new(),
                };

                if let Some(series) = series.as_mut() {
                    faults_since_sample += 1;
                    if faults_since_sample >= sample_every {
                        faults_since_sample = 0;
                        series.in_flight.push(now, in_flight.len() as f64);
                        series.resident.push(now, space.resident_pages() as f64);
                        if let Some(pf) = prefetcher.as_ref() {
                            series
                                .zone_budget
                                .push(now, pf.observe().stats.budgets.mean());
                        }
                        series
                            .link_utilization
                            .push(now, path.reply_utilization(now));
                    }
                }

                if space.is_resident(r.page) {
                    // Arrived with the last batch: the install above
                    // resolved it. Any new zone pages still go out.
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        dispatch_request(
                            &mut injector,
                            &prefetch,
                            None,
                            now,
                            &mut path,
                            &mut deputy,
                            &mut table,
                            &mut in_flight,
                            &mut staged,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    // Already requested: wait for the pipeline, no demand
                    // request ("wait for i to arrive").
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        dispatch_request(
                            &mut injector,
                            &prefetch,
                            None,
                            now,
                            &mut path,
                            &mut deputy,
                            &mut table,
                            &mut in_flight,
                            &mut staged,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                    if arrival > now {
                        stall_time += arrival.since(now);
                        stall_sketch.record(arrival.since(now));
                        now = arrival;
                    }
                    let install_from = now;
                    dispatch_install(
                        &mut injector,
                        &mut staged,
                        &mut in_flight,
                        &mut space,
                        &mut now,
                        evictor.as_mut(),
                        r.page,
                        &mut path,
                        &mut table,
                        &mut pages_evicted,
                    );
                    install_time += now.since(install_from);
                    trace.record_with(now, TraceKind::FaultResolved, || {
                        TraceData::page(r.page.index()).with_note("pipelined")
                    });
                } else if let Some(ffa_state) = ffa.as_ref() {
                    // FFA: demand-fetch from the file server.
                    fault_requests += 1;
                    pages_demand += 1;
                    let done = ffa_state.fetch(now, r.page, &mut trace);
                    stall_time += done.since(now);
                    stall_sketch.record(done.since(now));
                    now = done;
                    table.transfer_to_destination(r.page);
                    space.install(r.page);
                } else {
                    // Demand fetch from the deputy, zone piggy-backed.
                    fault_requests += 1;
                    pages_demand += 1;
                    trace.record(
                        now,
                        TraceKind::PagingRequest,
                        TraceData::page(r.page.index()).with_pages(prefetch.len() as u64),
                    );
                    dispatch_request(
                        &mut injector,
                        &prefetch,
                        Some(r.page),
                        now,
                        &mut path,
                        &mut deputy,
                        &mut table,
                        &mut in_flight,
                        &mut staged,
                        &mut was_prefetched,
                        &mut pages_prefetched,
                    );
                    match injector.as_mut() {
                        None => {
                            let arrival = in_flight
                                .get(&r.page)
                                .copied()
                                .expect("demand page must be served");
                            stall_time += arrival.since(now);
                            stall_sketch.record(arrival.since(now));
                            now = arrival;
                            let install_from = now;
                            install_arrived_pressured(
                                &mut staged,
                                &mut in_flight,
                                &mut space,
                                &mut now,
                                evictor.as_mut(),
                                r.page,
                                &mut path,
                                &mut table,
                                &mut pages_evicted,
                            );
                            install_time += now.since(install_from);
                        }
                        Some(inj) => {
                            // Under faults the request (or any reply) may
                            // be lost: the wait loop retries with backoff
                            // and degrades via the failure policy.
                            // Clock advances inside are either stall waits
                            // (tracked through stall_time) or page-install
                            // charges; the remainder attribution below
                            // relies on that.
                            let wait_from = now;
                            let stall_before = stall_time;
                            inj.await_demand(
                                r.page,
                                &mut now,
                                &mut stall_time,
                                &mut path,
                                &mut deputy,
                                &mut table,
                                &mut in_flight,
                                &mut staged,
                                &mut was_prefetched,
                                &mut pages_prefetched,
                                &mut space,
                                evictor.as_mut(),
                                &mut pages_evicted,
                            );
                            let stall_delta = stall_time.saturating_sub(stall_before);
                            stall_sketch.record(stall_delta);
                            install_time += now.since(wait_from).saturating_sub(stall_delta);
                        }
                    }
                    trace.record(
                        now,
                        TraceKind::FaultResolved,
                        TraceData::page(r.page.index()),
                    );
                }

                // The faulted page is resident now; apply the touch.
                debug_assert!(space.is_resident(r.page));
                let outcome = space.touch(r.page, r.write);
                debug_assert_eq!(outcome, TouchOutcome::Hit);
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if !in_flight.is_empty() {
                    prefetch_overlap += r.cpu;
                }
            }
        }
    }

    // Final writeback drain: the run ends with every dirty page home.
    if let Some(wb) = wb.as_mut() {
        flush_writeback(wb, now, &mut path, &mut space, &mut trace);
    }

    trace.record(now, TraceKind::WorkloadDone, TraceData::empty());
    let total_time = now.since(SimTime::ZERO);

    let (analysis_count, prefetch_stats) = match prefetcher {
        Some(pf) => {
            let stats = pf.observe().stats;
            (stats.analyses, stats)
        }
        None => (0, PrefetchStats::default()),
    };

    let fault_stats = injector.map(FaultInjector::into_stats).unwrap_or_default();
    let phases = PhaseBreakdown {
        freeze: freeze.freeze_time,
        compute: compute_time,
        minor_fault: MINOR_FAULT_COST.saturating_mul(pages_local_alloc),
        analysis: analysis_time,
        install: install_time,
        fault_stall: stall_time.saturating_sub(fault_stats.recovery_time),
        recovery: fault_stats.recovery_time,
        syscall: syscall_time,
        prefetch_overlap,
    };

    RunReport {
        scheme: cfg.scheme,
        workload: workload.name().to_string(),
        program_mb,
        freeze_time: freeze.freeze_time,
        total_time,
        compute_time,
        stall_time,
        stall_sketch,
        faults_total,
        fault_requests,
        prefetch_only_requests,
        pages_demand_fetched: pages_demand,
        pages_prefetched,
        prefetched_pages_used: prefetched_used,
        pages_local_alloc,
        syscalls_forwarded,
        syscall_time,
        pages_evicted,
        bytes_to_dest: path.bytes_to_dest(),
        bytes_from_dest: path.bytes_from_dest(),
        mpt_bytes: freeze.mpt_bytes,
        analysis_time,
        analysis_count,
        prefetch_stats,
        faults: fault_stats,
        deputy: deputy.stats(),
        writeback: wb.map(|w| w.stats()).unwrap_or_default(),
        trace,
        series,
        phases,
    }
}

/// Flushes every pending writeback delta batch over the dest→home
/// direction of `path` (background traffic: the link is charged, the
/// migrant's clock is not) and cleans the flushed pages.
pub(crate) fn flush_writeback(
    wb: &mut ForwardWriteback,
    now: SimTime,
    path: &mut NetPath,
    space: &mut ampom_mem::space::AddressSpace,
    trace: &mut Trace,
) {
    while let Some((seq, entries)) = wb.take_batch() {
        let bytes = writeback_batch_bytes(entries.len());
        let arrival = path.send_control_to_home(now, bytes);
        trace.record_with(now, TraceKind::WritebackFlush, || TraceData {
            pages: Some(entries.len() as u64),
            bytes: Some(bytes),
            ..TraceData::default()
        });
        for &(p, _) in &entries {
            space.clean(p);
        }
        wb.complete(seq, &entries, bytes, now, arrival);
    }
}

/// Share of wall time spent computing since the last fault, the `C_i`
/// recorded with each window entry.
fn utilization(cpu: SimDuration, now: SimTime, last_fault: SimTime) -> f64 {
    let wall = now.saturating_since(last_fault).as_secs_f64();
    if wall <= 0.0 {
        1.0
    } else {
        (cpu.as_secs_f64() / wall).clamp(0.0, 1.0)
    }
}

/// Runs the prefetch analysis for one fault: monitor upkeep, outcome
/// feedback, the policy's window/zone decision, and the analysis-time
/// charge.
#[allow(clippy::too_many_arguments)]
fn analyze(
    pf: &mut dyn Prefetcher,
    page: PageId,
    now: &mut SimTime,
    util: f64,
    monitor: &mut MonitorDaemon,
    path: &mut NetPath,
    page_limit: PageId,
    space: &ampom_mem::space::AddressSpace,
    in_flight: &HashMap<PageId, SimTime>,
    feedback: PrefetchFeedback,
    analysis_time: &mut SimDuration,
    trace: &mut Trace,
) -> Vec<PageId> {
    monitor.advance(*now, path);
    let est = monitor.estimates();
    pf.note_outcome(feedback);
    let decision = pf.on_fault(page, *now, util, est, page_limit, &mut |p| {
        space.state(p) == ampom_mem::space::PageState::Remote && !in_flight.contains_key(&p)
    });
    if decision.score_clamped {
        trace.record(
            *now,
            TraceKind::ScoreClamped,
            TraceData::page(page.index())
                .with_score(decision.score)
                .with_raw(decision.raw_score),
        );
    }
    trace.record(
        *now,
        TraceKind::ZoneAnalysis,
        TraceData::page(page.index())
            .with_zone(decision.budget)
            .with_raw(decision.n_raw)
            .with_score(decision.score)
            .with_rate(decision.rate)
            .with_rtt_ns(est.t0.saturating_mul(2).as_nanos()),
    );
    *now += AMPOM_ANALYSIS_COST;
    *analysis_time += AMPOM_ANALYSIS_COST;
    monitor.on_window_wrap(*now, pf.observe().window_wraps, path);
    decision.prefetch
}

/// Sends one paging request (demand page first if present), lets the
/// deputy serve it, and registers the replies.
#[allow(clippy::too_many_arguments)]
fn send_request(
    prefetch: &[PageId],
    demand: Option<PageId>,
    now: SimTime,
    path: &mut NetPath,
    deputy: &mut Deputy,
    table: &mut ampom_mem::table::PageTablePair,
    in_flight: &mut HashMap<PageId, SimTime>,
    staged: &mut VecDeque<(SimTime, PageId)>,
    was_prefetched: &mut [bool],
    pages_prefetched: &mut u64,
) {
    let mut pages: Vec<PageId> = Vec::with_capacity(prefetch.len() + 1);
    if let Some(d) = demand {
        pages.push(d);
    }
    pages.extend_from_slice(prefetch);
    let at_home = path.send_request(now, pages.len());
    let served = deputy.serve_request(at_home, &pages, table, path);
    for s in &served {
        in_flight.insert(s.page, s.arrives);
        staged.push_back((s.arrives, s.page));
        if demand != Some(s.page) {
            *pages_prefetched += 1;
            was_prefetched[s.page.index() as usize] = true;
        }
    }
}

/// Installs every staged page that has arrived by `now`, charging the
/// per-page install cost.
fn install_arrived(
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut HashMap<PageId, SimTime>,
    space: &mut ampom_mem::space::AddressSpace,
    now: &mut SimTime,
) {
    let mut installed = 0u64;
    while let Some(&(arrival, page)) = staged.front() {
        if arrival > *now {
            break;
        }
        staged.pop_front();
        in_flight.remove(&page);
        space.install(page);
        installed += 1;
    }
    if installed > 0 {
        *now += PAGE_INSTALL_COST.saturating_mul(installed);
    }
}

/// Dispatches a paging request through the fault injector when one is
/// active, or straight to [`send_request`] on the fault-free path.
#[allow(clippy::too_many_arguments)]
fn dispatch_request(
    injector: &mut Option<FaultInjector>,
    prefetch: &[PageId],
    demand: Option<PageId>,
    now: SimTime,
    path: &mut NetPath,
    deputy: &mut Deputy,
    table: &mut ampom_mem::table::PageTablePair,
    in_flight: &mut HashMap<PageId, SimTime>,
    staged: &mut VecDeque<(SimTime, PageId)>,
    was_prefetched: &mut [bool],
    pages_prefetched: &mut u64,
) {
    match injector.as_mut() {
        None => send_request(
            prefetch,
            demand,
            now,
            path,
            deputy,
            table,
            in_flight,
            staged,
            was_prefetched,
            pages_prefetched,
        ),
        Some(inj) => inj.send_request(
            prefetch,
            demand,
            now,
            path,
            deputy,
            table,
            in_flight,
            staged,
            was_prefetched,
            pages_prefetched,
        ),
    }
}

/// Dispatches staged-page installation through the fault injector
/// (idempotent, duplicate-suppressing) when one is active, or to
/// [`install_arrived_pressured`] on the fault-free path.
#[allow(clippy::too_many_arguments)]
fn dispatch_install(
    injector: &mut Option<FaultInjector>,
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut HashMap<PageId, SimTime>,
    space: &mut ampom_mem::space::AddressSpace,
    now: &mut SimTime,
    evictor: Option<&mut ClockEvictor>,
    protect: PageId,
    path: &mut NetPath,
    table: &mut ampom_mem::table::PageTablePair,
    pages_evicted: &mut u64,
) {
    match injector.as_mut() {
        None => install_arrived_pressured(
            staged,
            in_flight,
            space,
            now,
            evictor,
            protect,
            path,
            table,
            pages_evicted,
        ),
        Some(inj) => inj.install_arrived(
            staged,
            in_flight,
            space,
            now,
            evictor,
            protect,
            path,
            table,
            pages_evicted,
        ),
    }
}

/// Evicts until one more page fits, pushing victims back to the origin
/// (the write-back rides the request-direction link; the table re-adopts
/// the page at the origin).
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_room(
    ev: &mut ClockEvictor,
    protect: PageId,
    now: SimTime,
    path: &mut NetPath,
    table: &mut ampom_mem::table::PageTablePair,
    space: &mut ampom_mem::space::AddressSpace,
    pages_evicted: &mut u64,
) {
    while ev.at_capacity() {
        let victim = ev.evict(protect);
        *pages_evicted += 1;
        path.send_control_to_home(now, NetPath::page_reply_bytes());
        if table.lookup(victim) == Some(ampom_mem::table::PageLocation::Destination) {
            table.return_to_origin(victim);
        }
        space.mark_remote(victim);
    }
}

/// [`install_arrived`] plus memory-pressure bookkeeping: each install may
/// first have to evict a victim.
#[allow(clippy::too_many_arguments)]
fn install_arrived_pressured(
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut HashMap<PageId, SimTime>,
    space: &mut ampom_mem::space::AddressSpace,
    now: &mut SimTime,
    evictor: Option<&mut ClockEvictor>,
    protect: PageId,
    path: &mut NetPath,
    table: &mut ampom_mem::table::PageTablePair,
    pages_evicted: &mut u64,
) {
    match evictor {
        None => install_arrived(staged, in_flight, space, now),
        Some(ev) => {
            let mut installed = 0u64;
            while let Some(&(arrival, page)) = staged.front() {
                if arrival > *now {
                    break;
                }
                staged.pop_front();
                in_flight.remove(&page);
                if space.state(page) != ampom_mem::space::PageState::Remote {
                    // Evicted while in flight and re-created locally, or
                    // already handled; drop the stale copy.
                    continue;
                }
                make_room(ev, protect, *now, path, table, space, pages_evicted);
                space.install(page);
                ev.on_install(page);
                installed += 1;
            }
            if installed > 0 {
                *now += PAGE_INSTALL_COST.saturating_mul(installed);
            }
        }
    }
}

/// FFA background state: flush schedule and file-server fetch timing.
#[derive(Debug)]
struct FfaState {
    /// Completion time of each page's flush to the file server.
    flush_done: HashMap<PageId, SimTime>,
    /// File-server link (latency/capacity like the cluster LAN).
    link: LinkConfig,
}

impl FfaState {
    fn new(pre: &PreMigrationState, resume_at: SimTime, link: LinkConfig) -> Self {
        // The home node streams all dirty pages to the file server at link
        // speed, starting at resume.
        let per_page = link.serialization_time(PAGE_SIZE);
        let mut flush_done = HashMap::new();
        let mut t = resume_at;
        for p in pre.dirty_pages() {
            t += per_page;
            flush_done.insert(p, t + link.latency);
        }
        FfaState { flush_done, link }
    }

    /// When the whole flush completes.
    #[allow(dead_code)]
    fn flush_complete(&self) -> SimTime {
        self.flush_done
            .values()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Demand-fetches `page` from the file server at `now`; returns when
    /// the page is installed at the destination.
    fn fetch(&self, now: SimTime, page: PageId, trace: &mut Trace) -> SimTime {
        let request_arrives = now + PER_MESSAGE_OVERHEAD + self.link.latency;
        let available = self
            .flush_done
            .get(&page)
            .copied()
            .unwrap_or(request_arrives);
        let served = request_arrives.max(available);
        let reply = served + self.link.serialization_time(PAGE_SIZE + 32) + self.link.latency;
        trace.record_with(reply, TraceKind::FileServerFlush, || {
            TraceData::page(page.index()).with_note("via file server")
        });
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimDuration;
    use ampom_workloads::synthetic::{Scripted, Sequential, UniformRandom};

    const CPU: SimDuration = SimDuration::from_micros(10);

    fn run(scheme: Scheme, w: &mut dyn Workload) -> RunReport {
        run_workload(w, &RunConfig::new(scheme))
    }

    #[test]
    fn openmosix_run_has_no_remote_faults() {
        let mut w = Sequential::new(256, CPU);
        let r = run(Scheme::OpenMosix, &mut w);
        assert_eq!(r.fault_requests, 0);
        assert_eq!(r.pages_prefetched, 0);
        assert!(r.freeze_time > SimDuration::from_millis(68));
        assert!(r.compute_time >= CPU * 256);
    }

    #[test]
    fn noprefetch_faults_once_per_page() {
        let mut w = Sequential::new(256, CPU);
        let r = run(Scheme::NoPrefetch, &mut w);
        // 256 data pages, minus the "current data" page that shipped with
        // the freeze (the last allocated page, which the sweep touches).
        assert_eq!(r.fault_requests, 255);
        assert_eq!(r.pages_demand_fetched, 255);
        assert_eq!(r.pages_prefetched, 0);
        assert!(r.stall_time > SimDuration::ZERO);
    }

    #[test]
    fn ampom_prevents_most_fault_requests_on_sequential() {
        let mut w = Sequential::new(2048, CPU);
        let ampom = run(Scheme::Ampom, &mut w);
        let mut w2 = Sequential::new(2048, CPU);
        let nopf = run(Scheme::NoPrefetch, &mut w2);
        assert!(
            ampom.fault_requests * 4 < nopf.fault_requests,
            "AMPoM {} vs NoPrefetch {} requests",
            ampom.fault_requests,
            nopf.fault_requests
        );
        assert!(ampom.pages_prefetched > 0);
        assert!(ampom.total_time < nopf.total_time);
    }

    #[test]
    fn ampom_total_includes_tiny_freeze() {
        let mut w = Sequential::new(512, CPU);
        let r = run(Scheme::Ampom, &mut w);
        assert!(r.freeze_time < SimDuration::from_millis(200));
        assert!(r.total_time > r.freeze_time);
    }

    #[test]
    fn all_transferred_pages_are_accounted() {
        let mut w = Sequential::new(512, CPU);
        let r = run(Scheme::Ampom, &mut w);
        // Every data page the workload touched had to come from somewhere:
        // demand + prefetched + freeze pages ≥ touched pages.
        assert!(r.pages_demand_fetched + r.pages_prefetched + 3 >= 512);
        // Prefetched pages on a pure sequential sweep are nearly all used;
        // the only waste is the final read-ahead overshooting the sweep's
        // end into the (remote, mapped) stack region.
        assert!(
            r.prefetch_accuracy() > 0.9,
            "accuracy {}",
            r.prefetch_accuracy()
        );
    }

    #[test]
    fn random_workload_still_completes_under_ampom() {
        let mut w = UniformRandom::new(512, 2048, CPU, ampom_sim::rng::SimRng::seed_from_u64(7));
        let r = run(Scheme::Ampom, &mut w);
        assert!(r.faults_total > 0);
        assert!(r.fault_requests > 0);
        // Baseline read-ahead fetches something even here.
        assert!(r.pages_prefetched > 0);
    }

    #[test]
    fn ffa_serves_faults_via_file_server() {
        let mut w = Sequential::new(128, CPU);
        let r = run(Scheme::Ffa, &mut w);
        assert!(r.fault_requests > 0);
        assert!(r.freeze_time < SimDuration::from_millis(100));
    }

    #[test]
    fn analysis_overhead_is_small() {
        let mut w = Sequential::new(4096, CPU);
        let r = run(Scheme::Ampom, &mut w);
        assert!(r.analysis_count > 0);
        assert!(
            r.analysis_overhead_fraction() < 0.006,
            "overhead {}",
            r.analysis_overhead_fraction()
        );
    }

    #[test]
    fn deterministic_runs() {
        let report = |_| {
            let mut w = Sequential::new(512, CPU);
            let r = run(Scheme::Ampom, &mut w);
            (r.total_time, r.fault_requests, r.pages_prefetched)
        };
        assert_eq!(report(0), report(1));
    }

    #[test]
    fn trace_captures_migration_and_faults() {
        let mut w = Sequential::new(64, CPU);
        let cfg = RunConfig::new(Scheme::Ampom).with_trace();
        let r = run_workload(&mut w, &cfg);
        assert!(r.trace.first_of(TraceKind::FreezeEnd).is_some());
        assert!(r.trace.first_of(TraceKind::PageFault).is_some());
        assert!(r.trace.first_of(TraceKind::WorkloadDone).is_some());
    }

    #[test]
    fn scripted_revisits_fault_only_once() {
        let mut w = Scripted::new(16, &[1, 2, 3, 1, 2, 3, 1, 2, 3], CPU);
        let r = run(Scheme::NoPrefetch, &mut w);
        assert_eq!(r.fault_requests, 3, "revisits must hit locally");
    }

    #[test]
    fn forwarded_syscalls_add_home_dependency_cost() {
        let mk = || Sequential::new(512, CPU);
        let plain = run_workload(&mut mk(), &RunConfig::new(Scheme::Ampom));
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.syscalls = Some(SyscallProfile {
            every_refs: 16,
            work: SimDuration::ZERO,
        });
        let chatty = run_workload(&mut mk(), &cfg);
        assert_eq!(chatty.syscalls_forwarded, 512 / 16);
        assert!(chatty.syscall_time > SimDuration::ZERO);
        assert!(chatty.total_time > plain.total_time);
        // Each call costs at least one network round trip.
        assert!(
            chatty.syscall_time
                >= ampom_net::calibration::LAN_LATENCY * 2 * chatty.syscalls_forwarded
        );
    }

    #[test]
    fn openmosix_pays_the_same_home_dependency() {
        // The home dependency is scheme-independent: even an eagerly
        // migrated process forwards its syscalls (paper §7).
        let mk = || Sequential::new(256, CPU);
        let mut cfg = RunConfig::new(Scheme::OpenMosix);
        cfg.syscalls = Some(SyscallProfile {
            every_refs: 32,
            work: SimDuration::from_micros(100),
        });
        let r = run_workload(&mut mk(), &cfg);
        assert_eq!(r.syscalls_forwarded, 8);
        assert!(r.syscall_time > SimDuration::from_millis(2));
    }

    #[test]
    fn series_sampling_captures_run_dynamics() {
        let mut w = Sequential::new(2048, CPU);
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.sample_series_every = Some(50);
        let r = run_workload(&mut w, &cfg);
        let series = r.series.expect("sampling enabled");
        assert!(series.in_flight.len() > 5);
        assert!(series.resident.len() > 5);
        // The resident set grows monotonically on a pure sweep.
        let resident = series.resident.samples();
        assert!(resident.last().unwrap().1 >= resident.first().unwrap().1);
        // The reply link sees real utilisation during the transfer phase.
        assert!(series
            .link_utilization
            .samples()
            .iter()
            .any(|&(_, u)| u > 0.3));
    }

    #[test]
    fn series_disabled_by_default() {
        let mut w = Sequential::new(64, CPU);
        let r = run_workload(&mut w, &RunConfig::new(Scheme::Ampom));
        assert!(r.series.is_none());
    }

    #[test]
    fn memory_pressure_evicts_and_slows() {
        // 512 data pages but room for only ~128: a full sequential sweep
        // must evict most of what it fetches.
        let mk = || Sequential::new(512, CPU);
        let unlimited = run_workload(&mut mk(), &RunConfig::new(Scheme::Ampom));
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.resident_limit_mb = Some(1); // 256 pages incl. code/stack
        let pressured = run_workload(&mut mk(), &cfg);
        assert_eq!(unlimited.pages_evicted, 0);
        assert!(pressured.pages_evicted > 100, "{}", pressured.pages_evicted);
        assert!(pressured.total_time >= unlimited.total_time);
        // The sweep never revisits, so evictions cost write-backs but no
        // re-fetches; compute is unchanged.
        assert_eq!(pressured.compute_time, unlimited.compute_time);
    }

    #[test]
    fn pressure_with_reuse_causes_refetch_thrashing() {
        // Two passes over 512 pages with room for far fewer: pass two
        // re-faults pages evicted during pass one.
        let refs: Vec<u64> = (0..512u64).chain(0..512).collect();
        let mk = || Scripted::new(512, &refs, CPU);
        let unlimited = run_workload(&mut mk(), &RunConfig::new(Scheme::Ampom));
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.resident_limit_mb = Some(1);
        let pressured = run_workload(&mut mk(), &cfg);
        assert!(
            pressured.pages_demand_fetched + pressured.pages_prefetched
                > unlimited.pages_demand_fetched + unlimited.pages_prefetched,
            "pass two must re-fetch evicted pages"
        );
        assert!(pressured.total_time > unlimited.total_time);
    }

    #[test]
    fn eager_copy_into_small_node_bounces_overflow() {
        // openMosix ships all 512 pages into a node that holds ~256: the
        // overflow is pushed straight back before execution begins.
        let mut w = Sequential::new(512, CPU);
        let mut cfg = RunConfig::new(Scheme::OpenMosix);
        cfg.resident_limit_mb = Some(1);
        let r = run_workload(&mut w, &cfg);
        assert!(r.pages_evicted > 200, "{}", r.pages_evicted);
        // And the sweep then faults on the bounced pages.
        assert!(r.fault_requests > 0);
    }

    #[test]
    fn cross_traffic_slows_the_run() {
        let mk = || Sequential::new(1024, SimDuration::from_micros(2));
        let quiet = run_workload(&mut mk(), &RunConfig::new(Scheme::NoPrefetch));
        let mut cfg = RunConfig::new(Scheme::NoPrefetch);
        cfg.cross_traffic = Some(CrossTrafficSpec {
            bytes_per_sec: 8_000_000,
            burst_bytes: 64 * 1024,
        });
        let busy = run_workload(&mut mk(), &cfg);
        assert!(busy.total_time > quiet.total_time);
    }
}
