//! Typed errors for the experiment API.
//!
//! Misconfiguration used to panic deep inside the runner (`assert!` in
//! [`crate::prefetcher::AmpomPrefetcher::new`], arithmetic on a
//! zero-capacity link). The [`crate::experiment::Experiment`] and
//! [`crate::sweep`] entry points validate up front and surface these
//! variants instead, so a sweep over user-supplied grids degrades into a
//! reportable error rather than tearing down the whole harness.

use std::fmt;

/// Everything that can go wrong constructing or running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AmpomError {
    /// A tunable is out of its documented domain (bad `dmax`/window
    /// relationship, zero sampling interval, empty repeat count, ...).
    /// The payload names the offending knob and constraint.
    InvalidConfig(String),
    /// A prefetch-policy tunable is out of its documented domain (zero
    /// Leap window, inverted INDIGO watermarks, ...). The payload names
    /// the policy, knob and constraint.
    InvalidPolicy(String),
    /// A workload specification cannot produce any references (zero
    /// pages, zero touches, an empty script).
    WorkloadExhausted(String),
    /// The configured link cannot move bytes (zero capacity or goodput),
    /// so no remote page could ever be served.
    LinkDown(String),
    /// An [`crate::experiment::Experiment`] was asked to run without a
    /// workload specification (use `.workload(..)`, `.kernel(..)`, or
    /// `run_on` with a concrete workload object).
    MissingWorkload,
    /// A sweep grid has an empty axis, so the cartesian product contains
    /// no cells. The payload names the empty axis.
    EmptySweep(String),
    /// A live transport failed in a way the recovery protocol could not
    /// absorb (connection refused, handshake mismatch, a peer speaking a
    /// different frame version). Simulated transports never return this.
    Transport(String),
    /// The deputy refused work because it is saturated: a demand fetch
    /// rejected past the retry budget, or a `Hello` deferred by the
    /// admission gate for longer than the client was willing to wait.
    /// Shed *prefetch* batches never surface as this — they are
    /// recoverable and simply degrade to demand fetches.
    Overloaded(String),
}

impl fmt::Display for AmpomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmpomError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            AmpomError::InvalidPolicy(why) => write!(f, "invalid prefetch policy: {why}"),
            AmpomError::WorkloadExhausted(why) => {
                write!(f, "workload cannot produce references: {why}")
            }
            AmpomError::LinkDown(why) => write!(f, "link cannot move bytes: {why}"),
            AmpomError::MissingWorkload => {
                write!(
                    f,
                    "experiment has no workload; call .workload(..) or use run_on"
                )
            }
            AmpomError::EmptySweep(axis) => write!(f, "sweep grid axis is empty: {axis}"),
            AmpomError::Transport(why) => write!(f, "transport failure: {why}"),
            AmpomError::Overloaded(why) => write!(f, "deputy overloaded: {why}"),
        }
    }
}

impl std::error::Error for AmpomError {}

impl From<ampom_net::link::LinkError> for AmpomError {
    fn from(e: ampom_net::link::LinkError) -> Self {
        AmpomError::LinkDown(e.to_string())
    }
}

impl From<ampom_net::fault::FaultConfigError> for AmpomError {
    fn from(e: ampom_net::fault::FaultConfigError) -> Self {
        AmpomError::InvalidConfig(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = AmpomError::InvalidConfig("dmax must satisfy 1 <= dmax < window_len".into());
        assert!(e.to_string().contains("dmax"));
        assert!(AmpomError::MissingWorkload.to_string().contains("workload"));
        assert!(AmpomError::EmptySweep("schemes".into())
            .to_string()
            .contains("schemes"));
    }

    #[test]
    fn is_a_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&AmpomError::LinkDown("capacity 0".into()));
    }

    #[test]
    fn net_errors_convert_to_typed_variants() {
        let e: AmpomError = ampom_net::link::LinkError::ZeroCapacity.into();
        assert!(matches!(e, AmpomError::LinkDown(_)));
        let e: AmpomError = ampom_net::fault::FaultConfigError::ZeroBurst.into();
        assert!(matches!(e, AmpomError::InvalidConfig(_)));
    }
}
