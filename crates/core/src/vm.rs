//! Virtual-machine migration with multi-process access streams — the
//! paper's §7 future work, made concrete.
//!
//! "Possible future work includes … a tailored AMPoM for migrating virtual
//! machines whose memory references are consisted of access streams from
//! multiple processes." (§7; also §6: "AMPoM can be extended to consider
//! memory access streams from multiple processes in a virtual machine in
//! order to perform more effective prefetching.")
//!
//! A VM's guest-physical address space hosts several processes whose page
//! references interleave at the hypervisor's fault handler. A single
//! lookback window sees that interleaving as noise: with `k` busy guest
//! processes, a stride-1 pattern inside one process appears as a stride-k
//! pattern in the shared window — and beyond `dmax = 4` it becomes
//! invisible. The tailored design de-multiplexes the fault stream by guest
//! process and runs one window per process.
//!
//! This module provides:
//!
//! * [`VmWorkload`] — a guest: several `Workload`s, each mapped into its
//!   own slice of the VM's address space, interleaved by a round-robin
//!   scheduler with a configurable time slice,
//! * [`VmAnalysis`] — shared-window (naive) vs per-process-window
//!   (tailored) analysis,
//! * [`run_vm`] — the migration runner for a VM under AMPoM, reporting
//!   the same metrics as the single-process runner.
//!
//! The `hpcc-repro ext-vm` experiment and `examples/vm_migration.rs`
//! compare the two analyses.

use std::collections::{HashMap, VecDeque};

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_mem::space::TouchOutcome;
use ampom_net::calibration::AMPOM_ANALYSIS_COST;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::Trace;
use ampom_workloads::memref::{MemRef, Workload};

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::metrics::RunReport;
use crate::migration::{perform_freeze, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::policy::Prefetcher;
use crate::prefetcher::PrefetchStats;
use crate::runner::{RunConfig, PAGE_INSTALL_COST};

/// How the prefetcher treats the VM's interleaved fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmAnalysis {
    /// One lookback window over the whole VM (what an unmodified AMPoM
    /// would see at the VMM level).
    SharedWindow,
    /// One lookback window per guest process (the §7 tailored design).
    PerProcess,
    /// No prefetching — the NoPrefetch baseline at VM granularity.
    NoPrefetch,
}

impl VmAnalysis {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            VmAnalysis::SharedWindow => "shared-window",
            VmAnalysis::PerProcess => "per-process",
            VmAnalysis::NoPrefetch => "no-prefetch",
        }
    }
}

/// A guest process inside the VM.
struct GuestProc {
    workload: Box<dyn Workload>,
    /// Where this process's address space begins inside the VM's space.
    base_offset: u64,
    /// Pending slice budget (refs remaining in the current quantum).
    slice_left: u32,
    done: bool,
}

/// A virtual machine: several guest processes over one guest-physical
/// address space, scheduled round-robin.
pub struct VmWorkload {
    layout: MemoryLayout,
    procs: Vec<GuestProc>,
    slice: u32,
    current: usize,
    total_refs: u64,
    data_bytes: u64,
}

impl VmWorkload {
    /// Builds a VM hosting `workloads`, each given its own slice of the
    /// guest-physical data region, interleaved with the given quantum
    /// (references per scheduling slice).
    ///
    /// # Panics
    /// Panics if `workloads` is empty or `slice` is zero.
    pub fn new(workloads: Vec<Box<dyn Workload>>, slice: u32) -> Self {
        assert!(!workloads.is_empty(), "a VM needs at least one process");
        assert!(slice > 0, "slice must be positive");
        let total_data: u64 = workloads.iter().map(|w| w.data_bytes()).sum();
        let layout = MemoryLayout::with_data_bytes(total_data);
        let mut offset = layout.data_start().index();
        let mut procs = Vec::new();
        let mut total_refs = 0;
        for w in workloads {
            // Each guest's pages map at `offset - guest_data_start`.
            let guest_start = w.layout().data_start().index();
            total_refs += w.total_refs_hint();
            procs.push(GuestProc {
                base_offset: offset - guest_start,
                slice_left: slice,
                done: false,
                workload: w,
            });
            offset += procs
                .last()
                .unwrap()
                .workload
                .data_bytes()
                .div_ceil(ampom_mem::PAGE_SIZE);
        }
        VmWorkload {
            layout,
            procs,
            slice,
            current: 0,
            total_refs,
            data_bytes: total_data,
        }
    }

    /// Number of guest processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The VM's guest-physical layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Total references across all guests.
    pub fn total_refs_hint(&self) -> u64 {
        self.total_refs
    }

    /// Total data bytes across all guests.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Every guest page, translated to guest-physical (for the
    /// pre-migration allocation).
    pub fn allocation_pages(&self) -> Vec<PageId> {
        let mut pages = Vec::new();
        for p in &self.procs {
            for page in p.workload.allocation_pages() {
                pages.push(PageId(page.index() + p.base_offset));
            }
        }
        pages
    }

    /// The next reference and the guest process that made it.
    pub fn next_ref(&mut self) -> Option<(usize, MemRef)> {
        let n = self.procs.len();
        for _ in 0..n {
            let idx = self.current;
            let p = &mut self.procs[idx];
            if !p.done {
                if let Some(r) = p.workload.next() {
                    let translated = MemRef {
                        page: PageId(r.page.index() + p.base_offset),
                        ..r
                    };
                    p.slice_left -= 1;
                    if p.slice_left == 0 {
                        p.slice_left = self.slice;
                        self.current = (idx + 1) % n;
                    }
                    return Some((idx, translated));
                }
                p.done = true;
            }
            self.current = (idx + 1) % n;
        }
        None
    }
}

/// Outcome of one VM migration run.
#[derive(Debug)]
pub struct VmReport {
    /// The analysis mode used.
    pub analysis: VmAnalysis,
    /// Standard run metrics.
    pub report: RunReport,
    /// Mean spatial score seen by the analysis (diagnostic: the shared
    /// window's score collapses as guest count grows).
    pub mean_score: f64,
}

/// Migrates a VM under AMPoM-style lightweight migration and runs it to
/// completion with the chosen analysis mode.
pub fn run_vm(mut vm: VmWorkload, cfg: &RunConfig, analysis: VmAnalysis) -> VmReport {
    let layout = vm.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), vm.allocation_pages());
    let program_mb = (pre.allocated.len() as u64 * ampom_mem::PAGE_SIZE) >> 20;

    let mut path = NetPath::new(cfg.link);
    let mut trace = Trace::disabled();
    let freeze = perform_freeze(Scheme::Ampom, &pre, &mut path, &mut trace);
    let mut space = freeze.space;
    let mut table = freeze.table;
    let mut now = SimTime::ZERO + freeze.freeze_time;

    let mut monitor = MonitorDaemon::new(&path);
    let mut deputy = Deputy::new();

    let n_procs = vm.process_count();
    let mk = || cfg.policy.build(&cfg.ampom);
    let mut prefetchers: Vec<Box<dyn Prefetcher>> = match analysis {
        VmAnalysis::SharedWindow => vec![mk()],
        VmAnalysis::PerProcess => (0..n_procs).map(|_| mk()).collect(),
        VmAnalysis::NoPrefetch => Vec::new(),
    };

    let mut in_flight: HashMap<PageId, SimTime> = HashMap::new();
    let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
    let total_pages = layout.total_pages();
    let page_limit = PageId(total_pages);

    let mut compute_time = SimDuration::ZERO;
    let mut stall_time = SimDuration::ZERO;
    let mut stall_sketch = crate::slo::QuantileSketch::new();
    let mut analysis_time = SimDuration::ZERO;
    let mut faults_total = 0u64;
    let mut fault_requests = 0u64;
    let mut prefetch_only_requests = 0u64;
    let mut pages_demand = 0u64;
    let mut pages_prefetched = 0u64;
    let mut cpu_since_fault = SimDuration::ZERO;
    let mut last_fault_at = now;

    // Background writeback rides along even under VM workloads: every
    // guest's dirty pages share one write-set toward the home node.
    let mut wb = cfg.writeback.map(crate::lifecycle::ForwardWriteback::new);

    while let Some((proc_id, r)) = vm.next_ref() {
        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => {
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
            }
            TouchOutcome::LocalAllocate => {
                faults_total += 1;
                if table.lookup(r.page).is_none() {
                    table.create_at_destination(r.page);
                }
                if let Some(wb) = wb.as_mut() {
                    // First touches allocate dirty (zero-fill).
                    wb.note_touch(r.page, true);
                }
                now += crate::runner::MINOR_FAULT_COST + r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
            }
            TouchOutcome::RemoteFault => {
                faults_total += 1;
                let fault_at = now;
                if let Some(wb) = wb.as_mut() {
                    if wb.on_fault() {
                        crate::runner::flush_writeback(wb, now, &mut path, &mut space, &mut trace);
                    }
                }
                install_arrived(&mut staged, &mut in_flight, &mut space, &mut now);

                let wall = fault_at.saturating_since(last_fault_at).as_secs_f64();
                let util = if wall <= 0.0 {
                    1.0
                } else {
                    (cpu_since_fault.as_secs_f64() / wall).clamp(0.0, 1.0)
                };
                last_fault_at = fault_at;
                cpu_since_fault = SimDuration::ZERO;

                let prefetch: Vec<PageId> = match analysis {
                    VmAnalysis::NoPrefetch => Vec::new(),
                    _ => {
                        let idx = if analysis == VmAnalysis::PerProcess {
                            proc_id
                        } else {
                            0
                        };
                        monitor.advance(now, &mut path);
                        let est = monitor.estimates();
                        let pf = prefetchers[idx].as_mut();
                        let d = pf.on_fault(r.page, now, util, est, page_limit, &mut |p| {
                            space.state(p) == ampom_mem::space::PageState::Remote
                                && !in_flight.contains_key(&p)
                        });
                        now += AMPOM_ANALYSIS_COST;
                        analysis_time += AMPOM_ANALYSIS_COST;
                        monitor.on_window_wrap(now, pf.observe().window_wraps, &path);
                        d.prefetch
                    }
                };

                if space.is_resident(r.page) {
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        send(
                            &prefetch,
                            None,
                            now,
                            &mut path,
                            &mut deputy,
                            &mut table,
                            &mut in_flight,
                            &mut staged,
                            &mut pages_prefetched,
                        );
                    }
                } else if let Some(&arrival) = in_flight.get(&r.page) {
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        send(
                            &prefetch,
                            None,
                            now,
                            &mut path,
                            &mut deputy,
                            &mut table,
                            &mut in_flight,
                            &mut staged,
                            &mut pages_prefetched,
                        );
                    }
                    if arrival > now {
                        stall_time += arrival.since(now);
                        stall_sketch.record(arrival.since(now));
                        now = arrival;
                    }
                    install_arrived(&mut staged, &mut in_flight, &mut space, &mut now);
                } else {
                    fault_requests += 1;
                    pages_demand += 1;
                    send(
                        &prefetch,
                        Some(r.page),
                        now,
                        &mut path,
                        &mut deputy,
                        &mut table,
                        &mut in_flight,
                        &mut staged,
                        &mut pages_prefetched,
                    );
                    let arrival = in_flight[&r.page];
                    stall_time += arrival.since(now);
                    stall_sketch.record(arrival.since(now));
                    now = arrival;
                    install_arrived(&mut staged, &mut in_flight, &mut space, &mut now);
                }

                let outcome = space.touch(r.page, r.write);
                debug_assert_eq!(outcome, TouchOutcome::Hit);
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
            }
        }
    }

    // Final writeback drain: the run ends with every dirty page home.
    if let Some(wb) = wb.as_mut() {
        crate::runner::flush_writeback(wb, now, &mut path, &mut space, &mut trace);
    }

    let (analysis_count, stats, mean_score) = if prefetchers.is_empty() {
        (0, PrefetchStats::default(), 0.0)
    } else {
        let mut merged = PrefetchStats::default();
        let mut score_sum = 0.0;
        let mut score_n = 0u64;
        for pf in &prefetchers {
            let s = pf.observe().stats;
            score_sum += s.scores.mean() * s.scores.count() as f64;
            score_n += s.scores.count();
            // merge() folds every counter, including score_clamps (the
            // previous field-by-field merge silently dropped it).
            merged.merge(&s);
        }
        let mean = if score_n == 0 {
            0.0
        } else {
            score_sum / score_n as f64
        };
        (merged.analyses, merged, mean)
    };

    // Phase attribution: the VM loop's advances outside compute, stall and
    // analysis are all page-install charges, so the residual of the total is
    // attributed to `install` — keeping the phases an exact partition.
    let total_time = now.since(SimTime::ZERO);
    let accounted = freeze.freeze_time + compute_time + stall_time + analysis_time;
    let phases = ampom_obs::PhaseBreakdown {
        freeze: freeze.freeze_time,
        compute: compute_time,
        minor_fault: SimDuration::ZERO,
        analysis: analysis_time,
        install: total_time.saturating_sub(accounted),
        fault_stall: stall_time,
        recovery: SimDuration::ZERO,
        syscall: SimDuration::ZERO,
        prefetch_overlap: SimDuration::ZERO,
    };

    VmReport {
        analysis,
        mean_score,
        report: RunReport {
            scheme: Scheme::Ampom,
            workload: format!("VM[{n_procs}]"),
            program_mb,
            freeze_time: freeze.freeze_time,
            total_time,
            compute_time,
            stall_time,
            stall_sketch,
            faults_total,
            fault_requests,
            prefetch_only_requests,
            pages_demand_fetched: pages_demand,
            pages_prefetched,
            prefetched_pages_used: 0, // not tracked at VM granularity
            pages_local_alloc: 0,
            syscalls_forwarded: 0,
            syscall_time: SimDuration::ZERO,
            pages_evicted: 0,
            bytes_to_dest: path.bytes_to_dest(),
            bytes_from_dest: path.bytes_from_dest(),
            mpt_bytes: freeze.mpt_bytes,
            analysis_time,
            analysis_count,
            prefetch_stats: stats,
            faults: crate::metrics::FaultStats::default(),
            deputy: deputy.stats(),
            writeback: wb.map(|w| w.stats()).unwrap_or_default(),
            trace,
            series: None,
            phases,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn send(
    prefetch: &[PageId],
    demand: Option<PageId>,
    now: SimTime,
    path: &mut NetPath,
    deputy: &mut Deputy,
    table: &mut ampom_mem::table::PageTablePair,
    in_flight: &mut HashMap<PageId, SimTime>,
    staged: &mut VecDeque<(SimTime, PageId)>,
    pages_prefetched: &mut u64,
) {
    let mut pages: Vec<PageId> = Vec::with_capacity(prefetch.len() + 1);
    if let Some(d) = demand {
        pages.push(d);
    }
    pages.extend_from_slice(prefetch);
    let at_home = path.send_request(now, pages.len());
    for s in deputy.serve_request(at_home, &pages, table, path) {
        in_flight.insert(s.page, s.arrives);
        staged.push_back((s.arrives, s.page));
        if demand != Some(s.page) {
            *pages_prefetched += 1;
        }
    }
}

fn install_arrived(
    staged: &mut VecDeque<(SimTime, PageId)>,
    in_flight: &mut HashMap<PageId, SimTime>,
    space: &mut ampom_mem::space::AddressSpace,
    now: &mut SimTime,
) {
    let mut installed = 0u64;
    while let Some(&(arrival, page)) = staged.front() {
        if arrival > *now {
            break;
        }
        staged.pop_front();
        in_flight.remove(&page);
        space.install(page);
        installed += 1;
    }
    if installed > 0 {
        *now += PAGE_INSTALL_COST.saturating_mul(installed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_workloads::synthetic::Sequential;

    const CPU: SimDuration = SimDuration::from_micros(15);

    fn vm_of(k: usize, pages_each: u64, slice: u32) -> VmWorkload {
        let procs: Vec<Box<dyn Workload>> = (0..k)
            .map(|_| Box::new(Sequential::new(pages_each, CPU)) as Box<dyn Workload>)
            .collect();
        VmWorkload::new(procs, slice)
    }

    #[test]
    fn vm_interleaves_and_translates_addresses() {
        let mut vm = vm_of(3, 32, 1);
        assert_eq!(vm.process_count(), 3);
        let (p0, r0) = vm.next_ref().unwrap();
        let (p1, r1) = vm.next_ref().unwrap();
        let (p2, r2) = vm.next_ref().unwrap();
        assert_eq!((p0, p1, p2), (0, 1, 2));
        // Distinct address-space slices.
        assert_ne!(r0.page, r1.page);
        assert_ne!(r1.page, r2.page);
        assert!(r1.page.distance(r0.page) >= 32);
    }

    #[test]
    fn vm_slice_controls_interleaving_granularity() {
        let mut vm = vm_of(2, 16, 4);
        let owners: Vec<usize> = std::iter::from_fn(|| vm.next_ref().map(|(p, _)| p))
            .take(12)
            .collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn vm_drains_every_guest_completely() {
        let mut vm = vm_of(3, 20, 2);
        let total = vm.total_refs_hint();
        let mut n = 0;
        while vm.next_ref().is_some() {
            n += 1;
        }
        assert_eq!(n, total);
        assert_eq!(total, 60);
    }

    #[test]
    fn per_process_analysis_beats_shared_window_with_many_guests() {
        // 6 guests: stride-6 interleaving in the shared window exceeds
        // dmax=4, so the shared analysis goes blind while the per-process
        // analysis sees six clean sequential streams. The comparison uses
        // the pure Eq. 3 algorithm (baseline read-ahead disabled) — the
        // Linux-style read-ahead floor would otherwise chain fetches for
        // both modes and mask the windowing difference.
        let run = |mode| {
            let mut cfg = RunConfig::new(Scheme::Ampom);
            cfg.ampom.baseline_readahead = 0;
            run_vm(vm_of(6, 200, 1), &cfg, mode)
        };
        let shared = run(VmAnalysis::SharedWindow);
        let per_proc = run(VmAnalysis::PerProcess);
        let nopf = run(VmAnalysis::NoPrefetch);
        assert!(
            per_proc.report.fault_requests * 2 < shared.report.fault_requests,
            "per-process {} vs shared {}",
            per_proc.report.fault_requests,
            shared.report.fault_requests
        );
        assert!(per_proc.mean_score > shared.mean_score + 0.3);
        // The blind shared window degenerates to demand paging.
        assert!(shared.report.fault_requests as f64 > 0.9 * nopf.report.fault_requests as f64);
        assert!(per_proc.report.total_time < nopf.report.total_time);
    }

    #[test]
    fn shared_window_still_fine_with_few_guests() {
        // 2 guests interleave at stride 2 — within dmax, so the shared
        // window still detects the streams.
        let run = |mode| run_vm(vm_of(2, 200, 1), &RunConfig::new(Scheme::Ampom), mode);
        let shared = run(VmAnalysis::SharedWindow);
        assert!(shared.mean_score > 0.3, "score {}", shared.mean_score);
        let nopf = run(VmAnalysis::NoPrefetch);
        assert!(shared.report.fault_requests * 2 < nopf.report.fault_requests);
    }

    #[test]
    fn mixed_guests_isolate_the_random_one() {
        // One sequential guest + one random guest. Per-process windows
        // keep the sequential guest's S at 1 while scoring the random
        // guest near 0; a shared window muddles both.
        use ampom_workloads::synthetic::UniformRandom;
        let build = || {
            let procs: Vec<Box<dyn Workload>> = vec![
                Box::new(Sequential::new(400, CPU)),
                Box::new(UniformRandom::new(
                    400,
                    400,
                    CPU,
                    ampom_sim::rng::SimRng::seed_from_u64(5),
                )),
            ];
            VmWorkload::new(procs, 1)
        };
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.ampom.baseline_readahead = 0;
        let per_proc = run_vm(build(), &cfg, VmAnalysis::PerProcess);
        let nopf = run_vm(build(), &cfg, VmAnalysis::NoPrefetch);
        // The sequential guest's stream is fully prefetchable even though
        // half the fault stream is random noise: the tailored analysis
        // covers its ~400 pages and beats demand paging end to end.
        assert!(per_proc.report.pages_prefetched > 200);
        assert!(per_proc.report.fault_requests < nopf.report.fault_requests);
        assert!(per_proc.report.total_time < nopf.report.total_time);
    }

    #[test]
    fn vm_freeze_is_lightweight() {
        let r = run_vm(
            vm_of(4, 100, 2),
            &RunConfig::new(Scheme::Ampom),
            VmAnalysis::PerProcess,
        );
        assert!(r.report.freeze_time < SimDuration::from_millis(200));
        assert!(r.report.mpt_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_vm_rejected() {
        let _ = VmWorkload::new(Vec::new(), 1);
    }
}
