//! The two-node network path between a migrant and its home node.
//!
//! Every experiment in the paper involves one migrant on a destination
//! node talking to its deputy on the original (home) node over the cluster
//! network. [`NetPath`] bundles the two directed links, the per-node NICs
//! whose byte counters the monitor daemon samples, and an optional
//! cross-traffic source, and exposes the message-level operations the
//! protocol needs: paging requests, page replies, bulk (eager) transfers,
//! and the oM_infoD's load-update probes.

use ampom_net::calibration::{
    PAGE_SIZE, PER_MESSAGE_OVERHEAD, REPLY_HEADER_BYTES, REQUEST_HEADER_BYTES,
    REQUEST_PER_PAGE_BYTES,
};
use ampom_net::cross::CrossTraffic;
use ampom_net::link::{Link, LinkConfig};
use ampom_net::nic::{Nic, NicSnapshot};
use ampom_sim::time::{SimDuration, SimTime};

/// The bidirectional path between the destination node (where the migrant
/// runs) and the original node (where the deputy runs).
#[derive(Debug)]
pub struct NetPath {
    /// Original → destination: page replies, pushed pages, probe acks.
    home_to_dest: Link,
    /// Destination → original: paging requests, probes, syscalls.
    dest_to_home: Link,
    home_nic: Nic,
    dest_nic: Nic,
    cross: CrossTraffic,
    /// Cumulative bytes of the migrant's own remote-paging traffic (both
    /// directions) — what the bandwidth estimator may subtract.
    own_bytes: u64,
}

impl NetPath {
    /// Builds a path with both directions using `config` and no cross
    /// traffic.
    pub fn new(config: LinkConfig) -> Self {
        NetPath {
            home_to_dest: Link::new(config),
            dest_to_home: Link::new(config),
            home_nic: Nic::new(),
            dest_nic: Nic::new(),
            cross: CrossTraffic::silent(),
            own_bytes: 0,
        }
    }

    /// Attaches a cross-traffic source that competes with page replies on
    /// the home→destination direction.
    pub fn with_cross_traffic(mut self, cross: CrossTraffic) -> Self {
        self.cross = cross;
        self
    }

    /// The link configuration of the reply direction.
    pub fn config(&self) -> LinkConfig {
        *self.home_to_dest.config()
    }

    /// Injects any cross traffic due up to `now`. Call before transmitting.
    pub fn advance(&mut self, now: SimTime) {
        if self.cross.is_silent() {
            return;
        }
        for msg in self.cross.drain_until(now) {
            self.home_to_dest
                .transmit(msg.at.max(SimTime::ZERO), msg.bytes);
            self.home_nic.on_transmit(msg.bytes);
            self.dest_nic.on_receive(msg.bytes);
        }
    }

    /// Wire size of a paging request for `n_pages` page ids.
    pub fn request_bytes(n_pages: usize) -> u64 {
        REQUEST_HEADER_BYTES + REQUEST_PER_PAGE_BYTES * n_pages as u64
    }

    /// Wire size of one page reply.
    pub fn page_reply_bytes() -> u64 {
        REPLY_HEADER_BYTES + PAGE_SIZE
    }

    /// Sends a paging request listing `n_pages` pages at `now`; returns
    /// when it reaches the home node (including the per-message software
    /// overhead on the sending side).
    pub fn send_request(&mut self, now: SimTime, n_pages: usize) -> SimTime {
        self.advance(now);
        let bytes = Self::request_bytes(n_pages);
        let tx = self
            .dest_to_home
            .transmit(now + PER_MESSAGE_OVERHEAD, bytes);
        self.dest_nic.on_transmit(bytes);
        self.home_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// Sends one page from the home node at `from`; returns its arrival at
    /// the destination. Successive calls queue FIFO, which is the
    /// pipelining the prefetcher exploits.
    pub fn send_page(&mut self, from: SimTime) -> SimTime {
        self.advance(from);
        let bytes = Self::page_reply_bytes();
        let tx = self.home_to_dest.transmit(from, bytes);
        self.home_nic.on_transmit(bytes);
        self.dest_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// Sends a paging request that is lost in flight: the request
    /// serializes and occupies the uplink (the frame really left the NIC)
    /// but never reaches the home node.
    pub fn send_request_lost(&mut self, now: SimTime, n_pages: usize) {
        self.advance(now);
        let bytes = Self::request_bytes(n_pages);
        self.dest_to_home
            .transmit(now + PER_MESSAGE_OVERHEAD, bytes);
        self.dest_nic.on_transmit(bytes);
        self.own_bytes += bytes;
    }

    /// Sends one page reply that is lost in flight: it occupies the reply
    /// link like a delivered page (loss does not free bandwidth) but the
    /// destination never receives it.
    pub fn send_page_lost(&mut self, from: SimTime) {
        self.advance(from);
        let bytes = Self::page_reply_bytes();
        self.home_to_dest.transmit(from, bytes);
        self.home_nic.on_transmit(bytes);
        self.own_bytes += bytes;
    }

    /// Bulk transfer of `bytes` destination → home (the dirty-page
    /// writeback of a remigration); returns completion.
    pub fn bulk_transfer_to_home(&mut self, from: SimTime, bytes: u64) -> SimTime {
        self.advance(from);
        let tx = self.dest_to_home.transmit(from, bytes);
        self.dest_nic.on_transmit(bytes);
        self.home_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// Bulk transfer of `bytes` home → destination (the eager openMosix
    /// freeze copy); returns completion (arrival of the last byte).
    pub fn bulk_transfer(&mut self, from: SimTime, bytes: u64) -> SimTime {
        self.advance(from);
        let tx = self.home_to_dest.transmit(from, bytes);
        self.home_nic.on_transmit(bytes);
        self.dest_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// A small control message destination → home (syscall forwarding,
    /// load updates). Returns its arrival time.
    pub fn send_control_to_home(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.advance(now);
        let tx = self
            .dest_to_home
            .transmit(now + PER_MESSAGE_OVERHEAD, bytes);
        self.dest_nic.on_transmit(bytes);
        self.home_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// A small control message home → destination (acks, syscall results).
    pub fn send_control_to_dest(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.advance(now);
        let tx = self.home_to_dest.transmit(now, bytes);
        self.home_nic.on_transmit(bytes);
        self.dest_nic.on_receive(bytes);
        self.own_bytes += bytes;
        tx.arrives
    }

    /// The destination NIC's current counters (what the migrant-side
    /// monitor samples).
    pub fn dest_nic_snapshot(&self) -> NicSnapshot {
        self.dest_nic.snapshot()
    }

    /// Cumulative remote-paging bytes attributable to the migrant.
    pub fn own_bytes(&self) -> u64 {
        self.own_bytes
    }

    /// Total bytes the destination received (diagnostics).
    pub fn bytes_to_dest(&self) -> u64 {
        self.dest_nic.snapshot().rx_bytes
    }

    /// Total bytes the destination sent (diagnostics).
    pub fn bytes_from_dest(&self) -> u64 {
        self.dest_nic.snapshot().tx_bytes
    }

    /// When the reply link next becomes free (diagnostics/tests).
    pub fn reply_link_free_at(&self) -> SimTime {
        self.home_to_dest.free_at()
    }

    /// Busy fraction of the reply link over `[0, now]`.
    pub fn reply_utilization(&self, now: SimTime) -> f64 {
        self.home_to_dest.utilization(now)
    }

    /// One-way propagation latency of the path.
    pub fn latency(&self) -> SimDuration {
        self.home_to_dest.config().latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::fast_ethernet;
    use ampom_sim::rng::SimRng;

    fn path() -> NetPath {
        NetPath::new(fast_ethernet())
    }

    #[test]
    fn request_and_reply_round_trip_timing() {
        let mut p = path();
        let t0 = SimTime::ZERO;
        let at_home = p.send_request(t0, 1);
        assert!(at_home > t0 + p.latency());
        let back = p.send_page(at_home);
        assert!(back > at_home + p.latency());
        // Full round trip exceeds 2×latency plus serialization.
        assert!(back.since(t0) > p.latency() * 2);
    }

    #[test]
    fn pages_pipeline_on_the_reply_link() {
        let mut p = path();
        let t = SimTime::ZERO;
        let a1 = p.send_page(t);
        let a2 = p.send_page(t);
        let a3 = p.send_page(t);
        let gap21 = a2.since(a1);
        let gap32 = a3.since(a2);
        assert_eq!(gap21, gap32, "back-to-back arrivals equally spaced");
        // Spacing is exactly one serialization time — the latency is paid
        // only once for the whole pipeline.
        let ser = fast_ethernet().serialization_time(NetPath::page_reply_bytes());
        assert_eq!(gap21, ser);
        assert!(a1.since(SimTime::ZERO) < ser + p.latency() + SimDuration::from_micros(1));
    }

    #[test]
    fn nic_counters_see_both_directions() {
        let mut p = path();
        p.send_request(SimTime::ZERO, 4);
        p.send_page(SimTime::ZERO);
        let snap = p.dest_nic_snapshot();
        assert_eq!(snap.tx_bytes, NetPath::request_bytes(4));
        assert_eq!(snap.rx_bytes, NetPath::page_reply_bytes());
        assert_eq!(
            p.own_bytes(),
            NetPath::request_bytes(4) + NetPath::page_reply_bytes()
        );
    }

    #[test]
    fn cross_traffic_delays_replies_and_bumps_counters() {
        let cfg = fast_ethernet();
        let mut quiet = NetPath::new(cfg);
        let mut busy = NetPath::new(cfg).with_cross_traffic(CrossTraffic::new(
            8_000_000,
            64 * 1024,
            SimRng::seed_from_u64(3),
        ));
        let probe_at = SimTime::ZERO + SimDuration::from_millis(50);
        let a_quiet = quiet.send_page(probe_at);
        let a_busy = busy.send_page(probe_at);
        assert!(a_busy > a_quiet, "cross traffic queues ahead of the reply");
        assert!(busy.dest_nic_snapshot().rx_bytes > quiet.dest_nic_snapshot().rx_bytes);
        // Cross traffic is not "own" traffic.
        assert_eq!(busy.own_bytes(), NetPath::page_reply_bytes());
    }

    #[test]
    fn bulk_transfer_time_matches_goodput() {
        let mut p = path();
        let bytes = 115 * 1024 * 1024;
        let done = p.bulk_transfer(SimTime::ZERO, bytes);
        let expect = bytes as f64 / fast_ethernet().capacity_bytes_per_sec as f64;
        assert!((done.as_secs_f64() - expect).abs() < 0.01);
    }
}
