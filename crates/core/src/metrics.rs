//! Measurements of one experiment run — everything the paper's Figures
//! 5–11 report, collected in one place.

use ampom_obs::{MetricSource, MetricsRegistry, PhaseBreakdown};
use ampom_sim::stats::TimeSeries;
use ampom_sim::time::SimDuration;
use ampom_sim::trace::Trace;

use crate::migration::Scheme;
use crate::prefetcher::PrefetchStats;
use crate::slo::QuantileSketch;

/// Fault-injection and recovery counters of one run.
///
/// All zero for a fault-free run, so mixing them into the fingerprint
/// keeps historical fingerprints comparable.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Demand requests re-sent after a timeout.
    pub retries: u64,
    /// Timeouts that fired while waiting for a demanded page.
    pub timeouts: u64,
    /// Replies that arrived for a page already installed (suppressed).
    pub duplicate_replies: u64,
    /// Messages (requests or page replies) lost in flight.
    pub messages_dropped: u64,
    /// Requests that reached the home node while the deputy was down.
    pub deputy_unavailable: u64,
    /// Times the migrant exhausted its retry budget and invoked the
    /// failure policy.
    pub reconnects: u64,
    /// Pages installed by the eager-fallback policy.
    pub fallback_pages: u64,
    /// True if the run ended with a remigration home.
    pub remigrated: bool,
    /// Wall time spent in failure-policy recovery (waiting out deputy
    /// downtime, the fallback copy, the remigration transfer).
    pub recovery_time: SimDuration,
}

/// Writeback-engine and MPT-replica counters of one run.
///
/// All zero when the run never enabled writeback, and the fingerprint
/// mixes the struct **only when non-default**, so every historical
/// fingerprint (golden tables, sweep baselines) is untouched by the
/// field's existence.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WritebackStats {
    /// Dirtying stores the write-set observed.
    pub writes_noted: u64,
    /// Pages redirtied while a flush of their prior version was in flight.
    pub redirties: u64,
    /// Delta batches sent toward the home node.
    pub batches_sent: u64,
    /// Page entries carried by those batches (retransmits included).
    pub pages_written_back: u64,
    /// Batches retransmitted after a loss or a deputy outage.
    pub retransmits: u64,
    /// Whole batches the sink recognised as duplicates by sequence number.
    pub duplicate_batches: u64,
    /// Page entries the sink skipped by version compare.
    pub duplicate_pages: u64,
    /// Bytes of writeback traffic charged against the request link.
    pub writeback_bytes: u64,
    /// Time the migrant spent driving flushes (building and sending).
    pub flush_time: SimDuration,
    /// MPT-replica lookups served locally (no authoritative trip).
    pub replica_hits: u64,
    /// MPT-replica lookups that refreshed an invalidated or cold entry.
    pub replica_refreshes: u64,
    /// Invalidation events applied to the replica.
    pub replica_invalidations: u64,
}

/// Home-node deputy load counters: how saturated the single deputy
/// thread was (the §7 home-dependency cost, made observable).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeputyStats {
    /// Requests that arrived while the deputy was still serving earlier
    /// work (queue depth > 0 at arrival).
    pub queued_requests: u64,
    /// Largest backlog any request saw at arrival (how far `busy_until`
    /// was past the arrival instant).
    pub max_backlog: SimDuration,
    /// Total deputy CPU time across parsing, page service and syscalls.
    pub busy_time: SimDuration,
    /// Prefetch pages refused by admission control (shed before service;
    /// recoverable — a shed page degrades to a later demand fetch).
    pub prefetch_pages_shed: u64,
    /// Demand pages refused by admission control. Structurally zero in
    /// the simulated deputy (demand is always admitted); live servers
    /// count hard 503 rejections here.
    pub demand_pages_shed: u64,
    /// Requests that had at least one page shed.
    pub shed_events: u64,
    /// `Hello`s deferred by the hysteresis admission gate.
    pub hellos_deferred: u64,
}

/// The full measurement record of one (workload, scheme) run.
#[derive(Debug)]
pub struct RunReport {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Workload name (paper spelling).
    pub workload: String,
    /// Program size in MB (the figures' x axis).
    pub program_mb: u64,

    /// Migration freeze time (Figure 5).
    pub freeze_time: SimDuration,
    /// Wall time from migration start to workload completion (Figure 6's
    /// "total execution time").
    pub total_time: SimDuration,
    /// CPU time the workload actually computed.
    pub compute_time: SimDuration,
    /// Time the migrant spent stalled on remote pages.
    pub stall_time: SimDuration,
    /// Online distribution of per-fault stall times, feeding the p99
    /// SLO dimension. Excluded from the fingerprint (like `trace` and
    /// `phases`): it is a projection of the stalls already digested
    /// through `stall_time`.
    pub stall_sketch: QuantileSketch,

    /// Page faults taken on the destination (any kind).
    pub faults_total: u64,
    /// Remote paging requests that carried a demanded (faulted) page —
    /// the "number of page fault requests" of Figure 7.
    pub fault_requests: u64,
    /// Requests that carried only prefetch pages.
    pub prefetch_only_requests: u64,
    /// Pages fetched on demand (the faulted page itself).
    pub pages_demand_fetched: u64,
    /// Pages delivered by prefetching (Figure 8's numerator).
    pub pages_prefetched: u64,
    /// Prefetched pages that were installed and then actually touched.
    pub prefetched_pages_used: u64,
    /// Pages created locally by first-touch allocation.
    pub pages_local_alloc: u64,
    /// System calls forwarded to the home-node deputy.
    pub syscalls_forwarded: u64,
    /// Wall time spent blocked on forwarded system calls.
    pub syscall_time: SimDuration,
    /// Pages evicted under memory pressure (pushed back to the origin).
    pub pages_evicted: u64,

    /// Bytes received by the destination over the run (replies + bulk).
    pub bytes_to_dest: u64,
    /// Bytes sent by the destination (requests, control).
    pub bytes_from_dest: u64,
    /// MPT bytes shipped at freeze (AMPoM only).
    pub mpt_bytes: u64,

    /// Cumulative time spent in AMPoM's dependent-zone analysis
    /// (Figure 11's numerator).
    pub analysis_time: SimDuration,
    /// Number of analyses executed.
    pub analysis_count: u64,
    /// Prefetcher-internal statistics (scores, N distribution).
    pub prefetch_stats: PrefetchStats,

    /// Fault-injection and recovery counters (all zero without faults).
    pub faults: FaultStats,
    /// Deputy saturation counters.
    pub deputy: DeputyStats,
    /// Writeback-engine and MPT-replica counters (all zero for a
    /// forward-only run without writeback).
    pub writeback: WritebackStats,

    /// Optional event timeline (Figure 2).
    pub trace: Trace,
    /// Optional sampled time series (enable with
    /// `RunConfig::sample_series`).
    pub series: Option<RunSeries>,
    /// Where every nanosecond of the simulated clock went. The disjoint
    /// phases sum exactly to `total_time` for reports produced by the
    /// core run loops. Excluded from the fingerprint (like `trace` and
    /// `series`): it is a projection of the clock advances already
    /// digested through the aggregate times.
    pub phases: PhaseBreakdown,
}

/// Sampled time series over one run, for timeline plots: how the
/// in-flight pipeline, resident set and prefetch aggressiveness evolve.
#[derive(Debug, Default)]
pub struct RunSeries {
    /// Pages in flight (requested, not yet arrived).
    pub in_flight: TimeSeries,
    /// Resident pages at the destination.
    pub resident: TimeSeries,
    /// The zone budget chosen at sampled faults.
    pub zone_budget: TimeSeries,
    /// Reply-link utilisation since the start of the run.
    pub link_utilization: TimeSeries,
}

impl RunReport {
    /// A stable 64-bit digest of every exact measurement in the report
    /// (times in nanoseconds, all counters, byte totals). Two runs with
    /// identical simulated behaviour produce identical fingerprints, so
    /// parallel-vs-serial sweep determinism reduces to an integer
    /// comparison. Floating-point derived stats, the trace, and sampled
    /// series are deliberately excluded: they are projections of the
    /// fields already digested.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            // splitmix64 finalizer over the running state.
            let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = 0xA3_70_4D_u64;
        h = mix(h, self.scheme as u64);
        for b in self.workload.as_bytes() {
            h = mix(h, u64::from(*b));
        }
        for v in [
            self.program_mb,
            self.freeze_time.as_nanos(),
            self.total_time.as_nanos(),
            self.compute_time.as_nanos(),
            self.stall_time.as_nanos(),
            self.faults_total,
            self.fault_requests,
            self.prefetch_only_requests,
            self.pages_demand_fetched,
            self.pages_prefetched,
            self.prefetched_pages_used,
            self.pages_local_alloc,
            self.syscalls_forwarded,
            self.syscall_time.as_nanos(),
            self.pages_evicted,
            self.bytes_to_dest,
            self.bytes_from_dest,
            self.mpt_bytes,
            self.analysis_time.as_nanos(),
            self.analysis_count,
            self.faults.retries,
            self.faults.timeouts,
            self.faults.duplicate_replies,
            self.faults.messages_dropped,
            self.faults.deputy_unavailable,
            self.faults.reconnects,
            self.faults.fallback_pages,
            u64::from(self.faults.remigrated),
            self.faults.recovery_time.as_nanos(),
            self.deputy.queued_requests,
            self.deputy.max_backlog.as_nanos(),
            self.deputy.busy_time.as_nanos(),
        ] {
            h = mix(h, v);
        }
        // Writeback counters joined the report after the golden tables
        // were pinned; a forward-only run leaves them at default and its
        // fingerprint unchanged, while any writeback activity is digested.
        if self.writeback != WritebackStats::default() {
            let w = &self.writeback;
            for v in [
                w.writes_noted,
                w.redirties,
                w.batches_sent,
                w.pages_written_back,
                w.retransmits,
                w.duplicate_batches,
                w.duplicate_pages,
                w.writeback_bytes,
                w.flush_time.as_nanos(),
                w.replica_hits,
                w.replica_refreshes,
                w.replica_invalidations,
            ] {
                h = mix(h, v);
            }
        }
        h
    }

    /// Prefetched pages per page-fault request — the Figure 8 metric.
    pub fn prefetched_per_fault(&self) -> f64 {
        if self.fault_requests == 0 {
            0.0
        } else {
            self.pages_prefetched as f64 / self.fault_requests as f64
        }
    }

    /// Analysis overhead as a fraction of total execution time — the
    /// Figure 11 metric.
    pub fn analysis_overhead_fraction(&self) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.analysis_time.as_secs_f64() / total
        }
    }

    /// Fraction of this run's fault requests avoided relative to a
    /// baseline run (Figure 7's headline percentages: AMPoM vs NoPrefetch).
    pub fn fault_prevention_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.fault_requests == 0 {
            return 0.0;
        }
        1.0 - self.fault_requests as f64 / baseline.fault_requests as f64
    }

    /// Percentage increase of total execution time relative to a baseline
    /// run (Figure 9's y axis).
    pub fn exec_increase_vs(&self, baseline: &RunReport) -> f64 {
        let b = baseline.total_time.as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        (self.total_time.as_secs_f64() - b) / b * 100.0
    }

    /// Fraction of prefetched pages that were eventually used (prefetch
    /// accuracy; the paper argues AMPoM avoids excessive prefetching).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.pages_prefetched == 0 {
            return 1.0;
        }
        self.prefetched_pages_used as f64 / self.pages_prefetched as f64
    }

    /// Prefetch coverage: the fraction of remotely needed pages that the
    /// prefetcher delivered ahead of demand,
    /// `used / (used + demand-fetched)`. 0 when nothing was fetched
    /// remotely. The `profile` and `bakeoff` reports both use this helper
    /// rather than re-deriving the ratio.
    pub fn coverage(&self) -> f64 {
        let needed = self.prefetched_pages_used + self.pages_demand_fetched;
        if needed == 0 {
            return 0.0;
        }
        self.prefetched_pages_used as f64 / needed as f64
    }

    /// Prefetch waste: the fraction of prefetched pages never touched,
    /// `1 − accuracy`. 0 when nothing was prefetched (no waste, rather
    /// than undefined).
    pub fn waste(&self) -> f64 {
        1.0 - self.prefetch_accuracy()
    }
}

impl MetricSource for FaultStats {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.export_counter(
            "ampom_fault_retries_total",
            "demand requests re-sent after a timeout",
            self.retries,
        );
        reg.export_counter(
            "ampom_fault_timeouts_total",
            "timeouts while waiting for a demanded page",
            self.timeouts,
        );
        reg.export_counter(
            "ampom_fault_duplicate_replies_total",
            "replies suppressed because the page was already installed",
            self.duplicate_replies,
        );
        reg.export_counter(
            "ampom_fault_messages_dropped_total",
            "requests or replies lost in flight",
            self.messages_dropped,
        );
        reg.export_counter(
            "ampom_fault_deputy_unavailable_total",
            "requests that found the deputy down",
            self.deputy_unavailable,
        );
        reg.export_counter(
            "ampom_fault_reconnects_total",
            "retry budgets exhausted (failure policy invoked)",
            self.reconnects,
        );
        reg.export_counter(
            "ampom_fault_fallback_pages_total",
            "pages installed by the eager-fallback policy",
            self.fallback_pages,
        );
        reg.export_gauge(
            "ampom_fault_remigrated",
            "1 if the run ended with a remigration home",
            if self.remigrated { 1.0 } else { 0.0 },
        );
        reg.export_gauge(
            "ampom_fault_recovery_seconds",
            "time spent in failure-policy recovery",
            self.recovery_time.as_secs_f64(),
        );
    }
}

impl MetricSource for DeputyStats {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.export_counter(
            "ampom_deputy_queued_requests_total",
            "requests that arrived while the deputy was busy",
            self.queued_requests,
        );
        reg.export_gauge(
            "ampom_deputy_max_backlog_seconds",
            "largest backlog any request saw at arrival",
            self.max_backlog.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_deputy_busy_seconds",
            "deputy CPU time across parsing, page service and syscalls",
            self.busy_time.as_secs_f64(),
        );
        reg.export_counter(
            "ampom_shed_prefetch_pages_total",
            "prefetch pages refused by admission control",
            self.prefetch_pages_shed,
        );
        reg.export_counter(
            "ampom_shed_demand_pages_total",
            "demand pages refused by admission control",
            self.demand_pages_shed,
        );
        reg.export_counter(
            "ampom_shed_events_total",
            "requests with at least one page shed",
            self.shed_events,
        );
        reg.export_counter(
            "ampom_shed_hellos_deferred_total",
            "Hellos deferred by the hysteresis admission gate",
            self.hellos_deferred,
        );
    }
}

impl MetricSource for WritebackStats {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.export_counter(
            "ampom_writeback_writes_noted_total",
            "dirtying stores observed by the write-set",
            self.writes_noted,
        );
        reg.export_counter(
            "ampom_writeback_redirties_total",
            "pages redirtied while a flush of their prior version was in flight",
            self.redirties,
        );
        reg.export_counter(
            "ampom_writeback_batches_total",
            "delta batches sent toward the home node",
            self.batches_sent,
        );
        reg.export_counter(
            "ampom_writeback_pages_total",
            "page entries carried by writeback batches",
            self.pages_written_back,
        );
        reg.export_counter(
            "ampom_writeback_retransmits_total",
            "batches retransmitted after loss or outage",
            self.retransmits,
        );
        reg.export_counter(
            "ampom_writeback_duplicate_batches_total",
            "batches deduplicated by sequence number at the sink",
            self.duplicate_batches,
        );
        reg.export_counter(
            "ampom_writeback_duplicate_pages_total",
            "page entries skipped by the sink's version compare",
            self.duplicate_pages,
        );
        reg.export_counter(
            "ampom_writeback_bytes_total",
            "writeback bytes charged against the request link",
            self.writeback_bytes,
        );
        reg.export_gauge(
            "ampom_writeback_flush_seconds",
            "time spent building and sending flushes",
            self.flush_time.as_secs_f64(),
        );
        reg.export_counter(
            "ampom_mpt_replica_hits_total",
            "MPT lookups served from the node-local replica",
            self.replica_hits,
        );
        reg.export_counter(
            "ampom_mpt_replica_refreshes_total",
            "replica lookups that refreshed from the authoritative table",
            self.replica_refreshes,
        );
        reg.export_counter(
            "ampom_mpt_replica_invalidations_total",
            "invalidation events applied to the replica",
            self.replica_invalidations,
        );
    }
}

impl MetricSource for PrefetchStats {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.export_counter(
            "ampom_prefetch_analyses_total",
            "fault analyses performed",
            self.analyses,
        );
        reg.export_counter(
            "ampom_prefetch_pages_selected_total",
            "pages selected for prefetch",
            self.pages_selected,
        );
        reg.export_counter(
            "ampom_prefetch_fallbacks_total",
            "analyses that fell back to baseline read-ahead",
            self.fallbacks,
        );
        reg.export_counter(
            "ampom_prefetch_score_clamps_total",
            "analyses where the Eq. 1 clamp fired",
            self.score_clamps,
        );
        reg.export_gauge(
            "ampom_prefetch_score_mean",
            "mean spatial locality score",
            self.scores.mean(),
        );
        reg.export_gauge(
            "ampom_prefetch_zone_budget_mean",
            "mean applied zone budget",
            self.budgets.mean(),
        );
    }
}

impl MetricSource for RunReport {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.export_gauge(
            "ampom_run_total_seconds",
            "total execution time after migration",
            self.total_time.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_run_freeze_seconds",
            "migration freeze time",
            self.freeze_time.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_run_compute_seconds",
            "CPU time the workload computed",
            self.compute_time.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_run_stall_seconds",
            "time stalled on remote pages",
            self.stall_time.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_run_syscall_seconds",
            "time blocked on forwarded system calls",
            self.syscall_time.as_secs_f64(),
        );
        reg.export_gauge(
            "ampom_run_analysis_seconds",
            "time in dependent-zone analysis",
            self.analysis_time.as_secs_f64(),
        );
        reg.export_counter(
            "ampom_run_faults_total",
            "page faults taken on the destination",
            self.faults_total,
        );
        reg.export_counter(
            "ampom_run_fault_requests_total",
            "remote requests carrying a demanded page",
            self.fault_requests,
        );
        reg.export_counter(
            "ampom_run_pages_prefetched_total",
            "pages delivered by prefetching",
            self.pages_prefetched,
        );
        reg.export_counter(
            "ampom_run_prefetched_pages_used_total",
            "prefetched pages later touched",
            self.prefetched_pages_used,
        );
        reg.export_counter(
            "ampom_run_pages_demand_fetched_total",
            "pages fetched on demand",
            self.pages_demand_fetched,
        );
        reg.export_counter(
            "ampom_run_pages_evicted_total",
            "pages evicted under memory pressure",
            self.pages_evicted,
        );
        reg.export_counter(
            "ampom_run_syscalls_forwarded_total",
            "system calls forwarded to the deputy",
            self.syscalls_forwarded,
        );
        reg.export_counter(
            "ampom_run_bytes_to_dest_total",
            "bytes received by the destination",
            self.bytes_to_dest,
        );
        reg.export_counter(
            "ampom_run_bytes_from_dest_total",
            "bytes sent by the destination",
            self.bytes_from_dest,
        );
        self.phases.export_metrics(reg);
        self.prefetch_stats.export_metrics(reg);
        self.faults.export_metrics(reg);
        self.deputy.export_metrics(reg);
        self.writeback.export_metrics(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::trace::Trace;

    fn report(fault_requests: u64, total_secs: u64) -> RunReport {
        RunReport {
            scheme: Scheme::Ampom,
            workload: "TEST".into(),
            program_mb: 100,
            freeze_time: SimDuration::from_millis(70),
            total_time: SimDuration::from_secs(total_secs),
            compute_time: SimDuration::from_secs(total_secs / 2),
            stall_time: SimDuration::ZERO,
            stall_sketch: QuantileSketch::default(),
            faults_total: fault_requests * 2,
            fault_requests,
            prefetch_only_requests: 0,
            pages_demand_fetched: fault_requests,
            pages_prefetched: fault_requests * 10,
            prefetched_pages_used: fault_requests * 9,
            pages_local_alloc: 0,
            syscalls_forwarded: 0,
            syscall_time: SimDuration::ZERO,
            pages_evicted: 0,
            bytes_to_dest: 0,
            bytes_from_dest: 0,
            mpt_bytes: 0,
            analysis_time: SimDuration::from_millis(100),
            analysis_count: fault_requests * 2,
            prefetch_stats: PrefetchStats::default(),
            faults: FaultStats::default(),
            deputy: DeputyStats::default(),
            writeback: WritebackStats::default(),
            trace: Trace::disabled(),
            series: None,
            phases: PhaseBreakdown::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report(100, 50);
        assert!((r.prefetched_per_fault() - 10.0).abs() < 1e-12);
        assert!((r.analysis_overhead_fraction() - 0.1 / 50.0).abs() < 1e-12);
        assert!((r.prefetch_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn comparisons_against_baseline() {
        let ampom = report(100, 55);
        let nopf = report(1000, 50);
        assert!((ampom.fault_prevention_vs(&nopf) - 0.9).abs() < 1e-12);
        assert!((ampom.exec_increase_vs(&nopf) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = report(100, 50);
        let b = report(100, 50);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = report(100, 50);
        c.pages_prefetched += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = report(100, 50);
        d.workload = "OTHER".into();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_covers_fault_and_deputy_counters() {
        let a = report(100, 50);
        let mut b = report(100, 50);
        b.faults.retries = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = report(100, 50);
        c.faults.recovery_time = SimDuration::from_micros(1);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = report(100, 50);
        d.deputy.queued_requests = 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_default_writeback_but_digests_activity() {
        // A defaulted WritebackStats must leave the fingerprint exactly
        // where it was before the field existed (the golden tables), while
        // any writeback activity must perturb it.
        let a = report(100, 50);
        assert_eq!(a.writeback, WritebackStats::default());
        let mut b = report(100, 50);
        b.writeback.pages_written_back = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = report(100, 50);
        c.writeback.replica_hits = 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_observability_projections() {
        let a = report(100, 50);
        let mut b = report(100, 50);
        // The phase breakdown, trace and series are projections of already
        // digested quantities — they must not perturb the fingerprint.
        b.phases.compute = SimDuration::from_secs(25);
        b.phases.fault_stall = SimDuration::from_secs(25);
        b.trace = Trace::enabled();
        b.series = Some(RunSeries::default());
        // Likewise the stall sketch (a projection of stall_time) and the
        // shed counters (service that did NOT happen).
        b.stall_sketch.record(SimDuration::from_micros(500));
        b.deputy.prefetch_pages_shed = 7;
        b.deputy.shed_events = 3;
        b.deputy.hellos_deferred = 1;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn run_report_exports_metrics_under_convention() {
        let r = report(100, 50);
        let mut reg = MetricsRegistry::new();
        r.export_metrics(&mut reg);
        assert_eq!(
            reg.counter_value("ampom_run_fault_requests_total"),
            Some(100)
        );
        assert_eq!(reg.gauge_value("ampom_run_total_seconds"), Some(50.0));
        assert_eq!(reg.counter_value("ampom_fault_retries_total"), Some(0));
        assert!(reg.gauge_value("ampom_phase_freeze_seconds").is_some());
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ampom_run_faults_total counter"));
        // Every metric obeys the ampom_ prefix convention.
        for line in text.lines() {
            if !line.starts_with('#') && !line.is_empty() {
                assert!(line.starts_with("ampom_"), "bad metric line: {line}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let mut r = report(0, 0);
        r.pages_prefetched = 0;
        assert_eq!(r.prefetched_per_fault(), 0.0);
        assert_eq!(r.analysis_overhead_fraction(), 0.0);
        assert_eq!(r.prefetch_accuracy(), 1.0);
        let base = report(0, 0);
        assert_eq!(r.fault_prevention_vs(&base), 0.0);
        assert_eq!(r.exec_increase_vs(&base), 0.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.waste(), 0.0);
    }

    #[test]
    fn coverage_accuracy_and_waste_are_consistent() {
        // report(): 10 prefetched and 9 used per fault, 1 demand fetch.
        let r = report(100, 50);
        assert!((r.prefetch_accuracy() - 0.9).abs() < 1e-12);
        assert!((r.waste() - 0.1).abs() < 1e-12);
        assert!((r.coverage() - 900.0 / 1000.0).abs() < 1e-12);
    }
}
