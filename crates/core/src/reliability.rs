//! The migrant-side recovery protocol for remote paging under faults.
//!
//! The paper's Algorithm 1 assumes every paging request is answered and
//! every page arrives. This module supplies what a production deployment
//! needs when that assumption breaks:
//!
//! * **Timeouts** derived from the calibrated path: the base timeout is
//!   one request/reply round trip, `2·t0 + td` — the same quantity Eq. 3
//!   uses to size prefetch zones — scaled by a configurable factor.
//! * **Exponential backoff with a retry budget**: attempt `k` waits
//!   `factor · 2^k` round trips before re-requesting the demanded page.
//! * **Duplicate-reply suppression**: installs are idempotent, keyed by
//!   [`PageId`] — a late original reply racing a retry's resend installs
//!   once and the loser is counted, never double-installed.
//! * **Graceful degradation** on deputy failure (a scheduled
//!   crash/restart from [`DowntimeSchedule`]), selectable per run via
//!   [`FailurePolicy`]: stall until the deputy reconnects, fall back to a
//!   residual eager copy of every remaining page, or remigrate home.
//!
//! The entry point is `FaultInjector`, which the runner instantiates
//! **only** for a non-null [`FaultProfile`]; a fault-free run never
//! touches this module, so its timing is bit-identical to the historical
//! runner (the zero-fault property test pins this).

use std::collections::{HashMap, VecDeque};

use ampom_mem::eviction::ClockEvictor;
use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::space::{AddressSpace, PageState};
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_net::calibration::{page_transfer_time, MIGRATION_BASE_COST};
use ampom_net::fault::{Fate, FaultPlan, FaultSpec};
use ampom_net::link::LinkConfig;
use ampom_sim::event::DowntimeSchedule;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::error::AmpomError;
use crate::metrics::FaultStats;
use crate::runner::{make_room, PAGE_INSTALL_COST};

/// Hard cap on failure-policy invocations per run. A stall-and-reconnect
/// policy under heavy loss could in principle reconnect forever; past
/// this many cycles the protocol forces the eager fallback so every fault
/// schedule terminates with a complete address space.
const MAX_POLICY_CYCLES: u32 = 64;

/// Timeout and retry-budget knobs of the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base timeout in units of the calibrated round trip (`2·t0 + td`).
    /// The default of 4 absorbs deputy queueing and reply-link pipelining
    /// without firing spuriously on a healthy LAN.
    pub timeout_factor: u32,
    /// Re-requests before the failure policy is invoked. Backoff doubles
    /// the timeout each attempt (capped at `2^6`).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_factor: 4,
            max_retries: 6,
        }
    }
}

impl RetryPolicy {
    /// The timeout for attempt number `attempt` (0-based): exponential
    /// backoff over the base round trip.
    pub fn timeout(&self, base: SimDuration, attempt: u32) -> SimDuration {
        base.saturating_mul(u64::from(self.timeout_factor) << attempt.min(6))
    }

    /// Checks the knobs against their documented domains.
    pub fn validate(&self) -> Result<(), AmpomError> {
        if self.timeout_factor == 0 {
            return Err(AmpomError::InvalidConfig(
                "retry.timeout_factor must be at least 1".into(),
            ));
        }
        if self.max_retries == 0 {
            return Err(AmpomError::InvalidConfig(
                "retry.max_retries must be at least 1 (the protocol's termination \
                 guarantee needs retries enabled)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// What the migrant does once its retry budget for a page is exhausted
/// (the graceful-degradation arm of the protocol).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Wait out the deputy's downtime, then start a fresh retry cycle.
    #[default]
    StallReconnect,
    /// Give up on demand paging: one residual eager copy of every page
    /// still remote, then continue locally.
    EagerFallback,
    /// Migrate back home: write dirty pages back, pay the migration base
    /// cost, and finish the run co-located with the (former) deputy.
    Remigrate,
}

impl FailurePolicy {
    /// All policies, for sweeps and demos.
    pub const ALL: [FailurePolicy; 3] = [
        FailurePolicy::StallReconnect,
        FailurePolicy::EagerFallback,
        FailurePolicy::Remigrate,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            FailurePolicy::StallReconnect => "stall-reconnect",
            FailurePolicy::EagerFallback => "eager-fallback",
            FailurePolicy::Remigrate => "remigrate",
        }
    }
}

/// What the migrant should do after a demand-wait timeout fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStep {
    /// Budget remains: re-send the demanded page (the attempt counter has
    /// already advanced, so the next timeout backs off further).
    Retry,
    /// Budget exhausted: invoke the given degradation policy.
    Degrade(FailurePolicy),
}

/// The transport-agnostic core of the recovery protocol: attempt
/// counting, exponential-backoff deadlines, and the escalation to a
/// [`FailurePolicy`] once the retry budget is spent.
///
/// Both demand-wait loops — the simulated `FaultInjector` and the live
/// socket client in `ampom-rpc` — drive this one state machine, so the
/// protocol's arithmetic exists in exactly one place. The
/// `MAX_POLICY_CYCLES` termination guarantee (a pathological schedule
/// is eventually forced onto the eager fallback) lives here too and
/// therefore applies to real sockets as well.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    retry: RetryPolicy,
    policy: FailurePolicy,
    /// One demand round trip on the calibrated link: `2·t0 + td`.
    base_timeout: SimDuration,
    attempt: u32,
    policy_cycles: u32,
}

impl RetrySchedule {
    /// A schedule with an explicitly calibrated base timeout.
    pub fn new(retry: RetryPolicy, policy: FailurePolicy, base_timeout: SimDuration) -> Self {
        RetrySchedule {
            retry,
            policy,
            base_timeout,
            attempt: 0,
            policy_cycles: 0,
        }
    }

    /// A schedule whose base timeout is one request/reply round trip on
    /// `link` (`2·t0 + td`, the Eq. 3 quantity).
    pub fn for_link(retry: RetryPolicy, policy: FailurePolicy, link: LinkConfig) -> Self {
        Self::new(retry, policy, link.rtt() + page_transfer_time(&link))
    }

    /// The calibrated base timeout.
    pub fn base_timeout(&self) -> SimDuration {
        self.base_timeout
    }

    /// Starts a fresh demand wait: the attempt counter resets (each page
    /// gets the full budget) while the policy-cycle counter persists.
    pub fn begin_wait(&mut self) {
        self.attempt = 0;
    }

    /// The timeout of the current attempt (exponential backoff).
    pub fn current_timeout(&self) -> SimDuration {
        self.retry.timeout(self.base_timeout, self.attempt)
    }

    /// The deadline the current attempt's timer fires at.
    pub fn deadline_after(&self, now: SimTime) -> SimTime {
        now + self.current_timeout()
    }

    /// Advances the state machine after a timeout: retry while budget
    /// remains, otherwise degrade. Past `MAX_POLICY_CYCLES` policy
    /// invocations the eager fallback is forced so every run terminates.
    pub fn on_timeout(&mut self) -> RetryStep {
        if self.attempt < self.retry.max_retries {
            self.attempt += 1;
            RetryStep::Retry
        } else {
            self.policy_cycles += 1;
            RetryStep::Degrade(if self.policy_cycles > MAX_POLICY_CYCLES {
                FailurePolicy::EagerFallback
            } else {
                self.policy
            })
        }
    }

    /// The current (0-based) attempt number.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// How many times the failure policy has been invoked.
    pub fn policy_cycles(&self) -> u32 {
        self.policy_cycles
    }
}

/// The complete failure model of one run: message-level faults on both
/// link directions, the deputy's crash/restart timetable, and the
/// migrant's recovery knobs.
///
/// The default profile is **null** — no losses, no jitter, no downtime —
/// and a null profile leaves the runner on its exact fault-free code
/// path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultProfile {
    /// Message loss/burst/jitter knobs, applied to paging requests and
    /// page replies alike.
    pub faults: FaultSpec,
    /// Scheduled deputy outages (crash/restart events).
    pub downtime: DowntimeSchedule,
    /// Timeout and retry budget.
    pub retry: RetryPolicy,
    /// Degradation choice after the retry budget is spent.
    pub policy: FailurePolicy,
}

impl FaultProfile {
    /// A profile that drops each message independently with probability
    /// `loss_rate`, with default retry knobs and policy.
    pub fn lossy(loss_rate: f64) -> Self {
        FaultProfile {
            faults: FaultSpec::lossy(loss_rate),
            ..FaultProfile::default()
        }
    }

    /// Replaces the message-level fault knobs wholesale (loss, burst
    /// length, jitter) — the chaos scenarios compose profiles this way.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Adds a deputy downtime schedule.
    pub fn with_downtime(mut self, downtime: DowntimeSchedule) -> Self {
        self.downtime = downtime;
        self
    }

    /// Selects the failure policy.
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the retry knobs.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True if this profile can never perturb a run — the runner then
    /// skips the reliability layer entirely.
    pub fn is_null(&self) -> bool {
        self.faults.is_null() && self.downtime.is_empty()
    }

    /// Checks every knob against its documented domain.
    pub fn validate(&self) -> Result<(), AmpomError> {
        self.faults.validate()?;
        self.retry.validate()
    }
}

/// Per-run fault state: the two fate streams (one per link direction),
/// the calibrated base timeout, and the recovery counters.
///
/// Both plans fork from the run's seed, so a sweep cell's faults depend
/// only on its `(seed, message index)` — parallel sweeps stay
/// bit-identical to serial ones.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    profile: FaultProfile,
    request_plan: FaultPlan,
    reply_plan: FaultPlan,
    /// The shared retry/backoff/degradation state machine.
    schedule: RetrySchedule,
    stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(profile: &FaultProfile, link: LinkConfig, seed: u64) -> Self {
        let rng = SimRng::seed_from_u64(seed);
        FaultInjector {
            profile: profile.clone(),
            request_plan: FaultPlan::new(profile.faults, rng.fork(0x0072_6571)),
            reply_plan: FaultPlan::new(profile.faults, rng.fork(0x0072_6570)),
            schedule: RetrySchedule::for_link(profile.retry, profile.policy, link),
            stats: FaultStats::default(),
        }
    }

    /// Final counters for the run report.
    pub(crate) fn into_stats(self) -> FaultStats {
        self.stats
    }

    /// If the deputy is down at `now`, the instant it comes back up
    /// (syscall forwarding must wait for it); `None` when it is up.
    pub(crate) fn syscall_delay(&mut self, now: SimTime) -> Option<SimTime> {
        if self.profile.downtime.is_down(now) {
            let up = self.profile.downtime.next_up(now);
            self.stats.deputy_unavailable += 1;
            self.stats.recovery_time += up.since(now);
            Some(up)
        } else {
            None
        }
    }

    /// Fault-aware counterpart of the runner's `send_request`: the
    /// request may be dropped or jittered, the deputy may be down, and
    /// each page reply gets its own fate. Only *delivered* replies are
    /// registered in flight.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_request(
        &mut self,
        prefetch: &[PageId],
        demand: Option<PageId>,
        now: SimTime,
        path: &mut NetPath,
        deputy: &mut Deputy,
        table: &mut PageTablePair,
        in_flight: &mut HashMap<PageId, SimTime>,
        staged: &mut VecDeque<(SimTime, PageId)>,
        was_prefetched: &mut [bool],
        pages_prefetched: &mut u64,
    ) {
        let mut pages: Vec<PageId> = Vec::with_capacity(prefetch.len() + 1);
        if let Some(d) = demand {
            pages.push(d);
        }
        pages.extend_from_slice(prefetch);

        let at_home = match self.request_plan.fate() {
            Fate::Dropped => {
                path.send_request_lost(now, pages.len());
                self.stats.messages_dropped += 1;
                return;
            }
            Fate::Delivered { extra_delay } => path.send_request(now, pages.len()) + extra_delay,
        };
        if self.profile.downtime.is_down(at_home) {
            // The request reached a dead host; nothing answers.
            self.stats.deputy_unavailable += 1;
            return;
        }

        let reply_plan = &mut self.reply_plan;
        let dropped_before = reply_plan.dropped();
        let served =
            deputy.serve_request_faulty(at_home, &pages, table, path, || reply_plan.fate());
        let dropped_after = reply_plan.dropped();
        self.stats.messages_dropped += dropped_after - dropped_before;

        for s in &served {
            // A retry's resend can race the late original; keep the
            // earliest arrival so the migrant never waits longer than it
            // has to.
            match in_flight.get_mut(&s.page) {
                Some(existing) => *existing = (*existing).min(s.arrives),
                None => {
                    in_flight.insert(s.page, s.arrives);
                }
            }
            stage_sorted(staged, s.arrives, s.page);
            if demand != Some(s.page) {
                *pages_prefetched += 1;
                was_prefetched[s.page.index() as usize] = true;
            }
        }
    }

    /// Fault-aware arrival install: idempotent per page. Jitter can
    /// reorder arrivals and retries can deliver a page twice; a reply for
    /// a page that is already resident is suppressed and counted, never
    /// double-installed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_arrived(
        &mut self,
        staged: &mut VecDeque<(SimTime, PageId)>,
        in_flight: &mut HashMap<PageId, SimTime>,
        space: &mut AddressSpace,
        now: &mut SimTime,
        mut evictor: Option<&mut ClockEvictor>,
        protect: PageId,
        path: &mut NetPath,
        table: &mut PageTablePair,
        pages_evicted: &mut u64,
    ) {
        let mut installed = 0u64;
        while let Some(&(arrival, page)) = staged.front() {
            if arrival > *now {
                break;
            }
            staged.pop_front();
            in_flight.remove(&page);
            if space.is_resident(page) {
                self.stats.duplicate_replies += 1;
                continue;
            }
            if space.state(page) != PageState::Remote {
                // Evicted while in flight and re-created locally; drop
                // the stale copy (matches the fault-free runner).
                continue;
            }
            if let Some(ev) = evictor.as_deref_mut() {
                make_room(ev, protect, *now, path, table, space, pages_evicted);
            }
            space.install(page);
            if let Some(ev) = evictor.as_deref_mut() {
                ev.on_install(page);
            }
            installed += 1;
        }
        if installed > 0 {
            *now += PAGE_INSTALL_COST.saturating_mul(installed);
        }
    }

    /// The demand-page wait loop: stall for the faulted page with
    /// timeouts, backoff and retries, degrading via the configured
    /// [`FailurePolicy`] when the budget runs out. On return the demanded
    /// page is resident.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn await_demand(
        &mut self,
        demand: PageId,
        now: &mut SimTime,
        stall_time: &mut SimDuration,
        path: &mut NetPath,
        deputy: &mut Deputy,
        table: &mut PageTablePair,
        in_flight: &mut HashMap<PageId, SimTime>,
        staged: &mut VecDeque<(SimTime, PageId)>,
        was_prefetched: &mut [bool],
        pages_prefetched: &mut u64,
        space: &mut AddressSpace,
        mut evictor: Option<&mut ClockEvictor>,
        pages_evicted: &mut u64,
    ) {
        self.schedule.begin_wait();
        loop {
            self.install_arrived(
                staged,
                in_flight,
                space,
                now,
                evictor.as_deref_mut(),
                demand,
                path,
                table,
                pages_evicted,
            );
            if space.is_resident(demand) {
                return;
            }
            let deadline = self.schedule.deadline_after(*now);
            if let Some(&arrival) = in_flight.get(&demand) {
                if arrival <= deadline {
                    // The reply is on the wire and will beat the timer.
                    // Saturating: the per-page install charge advances the
                    // clock after the pop loop breaks, so a big arrived
                    // batch can push `now` past the next arrival — the
                    // reply is then already here and the next install pass
                    // picks it up.
                    *stall_time += arrival.saturating_since(*now);
                    *now = (*now).max(arrival);
                    continue;
                }
            }
            // Nothing (timely) in flight: the timer fires.
            *stall_time += deadline.since(*now);
            *now = deadline;
            self.stats.timeouts += 1;
            let policy = match self.schedule.on_timeout() {
                RetryStep::Retry => {
                    self.stats.retries += 1;
                    self.send_request(
                        &[],
                        Some(demand),
                        *now,
                        path,
                        deputy,
                        table,
                        in_flight,
                        staged,
                        was_prefetched,
                        pages_prefetched,
                    );
                    continue;
                }
                // Retry budget exhausted: graceful degradation (the
                // schedule already forced the eager fallback if this run
                // is past its policy-cycle cap).
                RetryStep::Degrade(policy) => policy,
            };
            self.stats.reconnects += 1;
            match policy {
                FailurePolicy::StallReconnect => {
                    // Wait out any deputy downtime; if the demand's reply
                    // is already on the wire (timeouts were just tighter
                    // than a congested reply queue), stall for it instead
                    // of re-requesting into the backlog.
                    let mut up = self.profile.downtime.next_up(*now);
                    let mut resend = true;
                    if let Some(&arrival) = in_flight.get(&demand) {
                        up = up.max(arrival);
                        resend = false;
                    }
                    let wait = up.saturating_since(*now);
                    *stall_time += wait;
                    self.stats.recovery_time += wait;
                    *now = up;
                    self.schedule.begin_wait();
                    if resend {
                        self.send_request(
                            &[],
                            Some(demand),
                            *now,
                            path,
                            deputy,
                            table,
                            in_flight,
                            staged,
                            was_prefetched,
                            pages_prefetched,
                        );
                    }
                }
                FailurePolicy::EagerFallback => {
                    self.eager_fallback(
                        now,
                        stall_time,
                        path,
                        table,
                        space,
                        evictor.as_deref_mut(),
                        in_flight,
                        staged,
                        pages_evicted,
                        demand,
                    );
                }
                FailurePolicy::Remigrate => {
                    self.remigrate(now, stall_time, path, table, space, in_flight, staged);
                }
            }
        }
    }

    /// Residual eager copy: abandon outstanding requests and ship every
    /// page still remote in one bulk transfer, as the original openMosix
    /// would have at freeze time.
    #[allow(clippy::too_many_arguments)]
    fn eager_fallback(
        &mut self,
        now: &mut SimTime,
        stall_time: &mut SimDuration,
        path: &mut NetPath,
        table: &mut PageTablePair,
        space: &mut AddressSpace,
        mut evictor: Option<&mut ClockEvictor>,
        in_flight: &mut HashMap<PageId, SimTime>,
        staged: &mut VecDeque<(SimTime, PageId)>,
        pages_evicted: &mut u64,
        protect: PageId,
    ) {
        let start = *now;
        *now = self.profile.downtime.next_up(*now);
        staged.clear();
        in_flight.clear();
        let remote: Vec<PageId> = space
            .pages_where(|st| matches!(st, PageState::Remote))
            .collect();
        for &p in &remote {
            if table.lookup(p) == Some(PageLocation::Origin) {
                table.transfer_to_destination(p);
            }
        }
        let n = remote.len() as u64;
        *now = path.bulk_transfer(*now, n * PAGE_SIZE);
        for &p in &remote {
            if let Some(ev) = evictor.as_deref_mut() {
                make_room(ev, protect, *now, path, table, space, pages_evicted);
            }
            space.install(p);
            if let Some(ev) = evictor.as_deref_mut() {
                ev.on_install(p);
            }
        }
        *now += PAGE_INSTALL_COST.saturating_mul(n);
        self.stats.fallback_pages += n;
        let spent = now.since(start);
        *stall_time += spent;
        self.stats.recovery_time += spent;
    }

    /// Migrate back home: write the dirty resident pages back, pay the
    /// migration base cost, and continue co-located with the home node —
    /// every remaining remote page becomes a local page there.
    #[allow(clippy::too_many_arguments)]
    fn remigrate(
        &mut self,
        now: &mut SimTime,
        stall_time: &mut SimDuration,
        path: &mut NetPath,
        table: &mut PageTablePair,
        space: &mut AddressSpace,
        in_flight: &mut HashMap<PageId, SimTime>,
        staged: &mut VecDeque<(SimTime, PageId)>,
    ) {
        let start = *now;
        *now = self.profile.downtime.next_up(*now);
        staged.clear();
        in_flight.clear();
        let resident: Vec<PageId> = space
            .pages_where(|st| matches!(st, PageState::Resident { .. }))
            .collect();
        let bytes = resident.len() as u64 * PAGE_SIZE;
        *now = path.bulk_transfer_to_home(*now + MIGRATION_BASE_COST, bytes);
        for &p in &resident {
            if table.lookup(p) == Some(PageLocation::Destination) {
                table.return_to_origin(p);
            }
        }
        // Execution resumes at the home node: pages that were remote are
        // local there and install at no network cost.
        let remote: Vec<PageId> = space
            .pages_where(|st| matches!(st, PageState::Remote))
            .collect();
        for &p in &remote {
            space.install(p);
        }
        self.stats.remigrated = true;
        let spent = now.since(start);
        *stall_time += spent;
        self.stats.recovery_time += spent;
    }
}

/// Inserts `(arrives, page)` keeping `staged` sorted by arrival time.
/// Jitter makes arrivals slightly out of order; scanning from the back is
/// O(displacement), which is tiny in practice.
fn stage_sorted(staged: &mut VecDeque<(SimTime, PageId)>, arrives: SimTime, page: PageId) {
    let mut idx = staged.len();
    while idx > 0 && staged[idx - 1].0 > arrives {
        idx -= 1;
    }
    staged.insert(idx, (arrives, page));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_reply_delivered_twice_counts_one_duplicate() {
        // Cross-transport identity anchor: `duplicate_replies` means "a
        // reply arrived for a page the migrant already has", counted once
        // per extra copy. The live transport's `note_reply` and bulk-fetch
        // accounting are pinned to the same meaning by the unit tests in
        // `crates/rpc/src/live.rs`; together with this test they keep the
        // counter comparable across transports.
        let link = ampom_net::calibration::fast_ethernet();
        let mut inj = FaultInjector::new(&FaultProfile::default(), link, 1);
        let layout = ampom_mem::region::MemoryLayout::with_data_bytes(8 * PAGE_SIZE);
        let mut space = AddressSpace::new(layout);
        let page = space.layout().data_start();
        space.mark_remote(page);
        let mut table = PageTablePair::at_migration([page]);
        let mut path = NetPath::new(link);
        // The original reply and a resent copy, both already arrived.
        let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
        staged.push_back((SimTime::ZERO, page));
        staged.push_back((SimTime::ZERO, page));
        let mut in_flight: HashMap<PageId, SimTime> = HashMap::new();
        in_flight.insert(page, SimTime::ZERO);
        let mut now = SimTime::ZERO + SimDuration::from_micros(1);
        let mut evicted = 0;
        inj.install_arrived(
            &mut staged,
            &mut in_flight,
            &mut space,
            &mut now,
            None,
            page,
            &mut path,
            &mut table,
            &mut evicted,
        );
        assert!(space.is_resident(page), "first copy installs the page");
        assert_eq!(
            inj.stats.duplicate_replies, 1,
            "the resent copy is suppressed and counted exactly once"
        );
        assert_eq!(evicted, 0);
    }

    #[test]
    fn retry_timeout_backs_off_exponentially() {
        let retry = RetryPolicy::default();
        let base = SimDuration::from_micros(100);
        assert_eq!(retry.timeout(base, 0), SimDuration::from_micros(400));
        assert_eq!(retry.timeout(base, 1), SimDuration::from_micros(800));
        assert_eq!(retry.timeout(base, 3), SimDuration::from_micros(3200));
        // The exponent saturates so huge attempt numbers can't overflow.
        assert_eq!(retry.timeout(base, 40), retry.timeout(base, 6));
    }

    #[test]
    fn base_timeout_matches_eq3_round_trip() {
        let link = ampom_net::calibration::fast_ethernet();
        let inj = FaultInjector::new(&FaultProfile::lossy(0.01), link, 7);
        assert_eq!(
            inj.schedule.base_timeout(),
            link.rtt() + page_transfer_time(&link)
        );
    }

    #[test]
    fn schedule_backs_off_then_degrades() {
        let retry = RetryPolicy {
            timeout_factor: 2,
            max_retries: 3,
        };
        let base = SimDuration::from_micros(100);
        let mut sched = RetrySchedule::new(retry, FailurePolicy::StallReconnect, base);
        sched.begin_wait();
        assert_eq!(sched.current_timeout(), SimDuration::from_micros(200));
        assert_eq!(sched.on_timeout(), RetryStep::Retry);
        assert_eq!(sched.current_timeout(), SimDuration::from_micros(400));
        assert_eq!(sched.on_timeout(), RetryStep::Retry);
        assert_eq!(sched.on_timeout(), RetryStep::Retry);
        // Retry budget exhausted: the configured policy fires.
        assert_eq!(
            sched.on_timeout(),
            RetryStep::Degrade(FailurePolicy::StallReconnect)
        );
        assert_eq!(sched.policy_cycles(), 1);
        // A fresh wait resets the backoff but not the cycle count.
        sched.begin_wait();
        assert_eq!(sched.attempt(), 0);
        assert_eq!(sched.current_timeout(), SimDuration::from_micros(200));
        assert_eq!(sched.policy_cycles(), 1);
    }

    #[test]
    fn schedule_forces_fallback_past_cycle_cap() {
        let retry = RetryPolicy {
            timeout_factor: 1,
            max_retries: 1,
        };
        let mut sched = RetrySchedule::new(
            retry,
            FailurePolicy::StallReconnect,
            SimDuration::from_micros(10),
        );
        for _ in 0..MAX_POLICY_CYCLES {
            sched.begin_wait();
            assert_eq!(sched.on_timeout(), RetryStep::Retry);
            assert_eq!(
                sched.on_timeout(),
                RetryStep::Degrade(FailurePolicy::StallReconnect)
            );
        }
        // Past the cap every further cycle is forced onto the eager
        // fallback so a dead deputy cannot stall a run forever.
        sched.begin_wait();
        assert_eq!(sched.on_timeout(), RetryStep::Retry);
        assert_eq!(
            sched.on_timeout(),
            RetryStep::Degrade(FailurePolicy::EagerFallback)
        );
    }

    #[test]
    fn schedule_deadline_tracks_now() {
        let sched = RetrySchedule::for_link(
            RetryPolicy::default(),
            FailurePolicy::StallReconnect,
            ampom_net::calibration::fast_ethernet(),
        );
        let now = SimTime::from_nanos(1_000_000);
        assert_eq!(sched.deadline_after(now), now + sched.current_timeout());
    }

    #[test]
    fn profile_validation_catches_bad_knobs() {
        assert!(FaultProfile::lossy(0.02).validate().is_ok());
        assert!(FaultProfile::lossy(1.5).validate().is_err());
        let p = FaultProfile::default().with_retry(RetryPolicy {
            timeout_factor: 0,
            max_retries: 3,
        });
        assert!(p.validate().is_err());
        let p = FaultProfile::default().with_retry(RetryPolicy {
            timeout_factor: 4,
            max_retries: 0,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn null_profile_detection() {
        assert!(FaultProfile::default().is_null());
        assert!(!FaultProfile::lossy(0.01).is_null());
        let with_outage = FaultProfile::default().with_downtime(DowntimeSchedule::single(
            SimTime::from_nanos(1),
            SimTime::from_nanos(2),
        ));
        assert!(!with_outage.is_null());
    }

    #[test]
    fn stage_sorted_keeps_arrival_order() {
        let mut staged: VecDeque<(SimTime, PageId)> = VecDeque::new();
        for (t, p) in [(50u64, 0u64), (10, 1), (30, 2), (30, 3), (20, 4)] {
            stage_sorted(&mut staged, SimTime::from_nanos(t), PageId(p));
        }
        let times: Vec<u64> = staged.iter().map(|&(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![10, 20, 30, 30, 50]);
        // Equal arrivals keep insertion order (FIFO tie-break).
        let pages: Vec<u64> = staged.iter().map(|&(_, p)| p.0).collect();
        assert_eq!(pages, vec![1, 4, 2, 3, 0]);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(FailurePolicy::StallReconnect.name(), "stall-reconnect");
        assert_eq!(FailurePolicy::EagerFallback.name(), "eager-fallback");
        assert_eq!(FailurePolicy::Remigrate.name(), "remigrate");
        assert_eq!(FailurePolicy::ALL.len(), 3);
    }
}
