//! The `Experiment` builder — the single entry point for running one
//! (workload, scheme) measurement.
//!
//! [`crate::runner::RunConfig`] grew organically and ended up half
//! builder, half struct-literal; every harness poked fields directly and
//! misconfiguration panicked deep inside the simulation. [`Experiment`]
//! fronts it with a coherent fluent API that validates up front and
//! returns [`AmpomError`]:
//!
//! ```
//! use ampom_core::experiment::Experiment;
//! use ampom_core::migration::Scheme;
//! use ampom_sim::time::SimDuration;
//!
//! let report = Experiment::new(Scheme::Ampom)
//!     .sequential(512, SimDuration::from_micros(10))
//!     .repeats(1)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.pages_prefetched > 0);
//! ```
//!
//! Workloads are described declaratively by [`WorkloadSpec`] so the
//! [`crate::sweep`] engine can rebuild them inside worker threads with
//! per-cell deterministic seeds. One-off workload objects that have no
//! spec (trace replays, composed phases) run through
//! [`Experiment::run_on`].

use ampom_net::link::LinkConfig;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;
use ampom_workloads::build_kernel;
use ampom_workloads::churn::BurstyChurn;
use ampom_workloads::dgemm::DgemmSmallWs;
use ampom_workloads::memref::Workload;
use ampom_workloads::pointer_chase::PointerChase;
use ampom_workloads::sizes::{Kernel, ProblemSize};
use ampom_workloads::synthetic::{Interleaved, Scripted, Sequential, Strided, UniformRandom};
use ampom_workloads::zipf::ZipfianKv;

use crate::error::AmpomError;
use crate::metrics::RunReport;
use crate::migration::Scheme;
use crate::multirun::{MultiRunReport, MultiRunSpec};
use crate::policy::PolicySpec;
use crate::prefetcher::AmpomConfig;
use crate::reliability::{FailurePolicy, FaultProfile};
use crate::runner::{try_run_workload, CrossTrafficSpec, RunConfig, SyscallProfile};

/// A declarative, cloneable workload description.
///
/// Unlike a `Box<dyn Workload>` (a stateful iterator), a spec can be
/// shipped across threads and instantiated any number of times — each
/// [`WorkloadSpec::build`] call yields a fresh stream. Stochastic
/// workloads take their randomness from the build seed, so the same
/// `(spec, seed)` pair always produces the same reference stream.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// One of the paper's four HPCC kernels at a Table 1 size.
    Kernel {
        /// Which kernel.
        kernel: Kernel,
        /// Problem/memory size.
        size: ProblemSize,
    },
    /// A pure sequential page sweep.
    Sequential {
        /// Data pages swept once.
        pages: u64,
        /// CPU time per touch.
        cpu: SimDuration,
    },
    /// Interleaved sequential streams (STREAM-like).
    Interleaved {
        /// Number of concurrent streams.
        streams: u64,
        /// Pages per stream.
        stream_pages: u64,
        /// CPU time per touch.
        cpu: SimDuration,
    },
    /// A constant-stride sweep.
    Strided {
        /// Data pages.
        pages: u64,
        /// Stride between touches.
        stride: u64,
        /// CPU time per touch.
        cpu: SimDuration,
    },
    /// Uniform random touches (GUPS-like).
    UniformRandom {
        /// Page pool size.
        pages: u64,
        /// Number of touches.
        touches: u64,
        /// CPU time per touch.
        cpu: SimDuration,
    },
    /// An explicit page-reference script.
    Scripted {
        /// Page pool size.
        pages: u64,
        /// The reference sequence.
        refs: std::sync::Arc<Vec<u64>>,
        /// CPU time per touch.
        cpu: SimDuration,
    },
    /// DGEMM with a working set smaller than its allocation (Figure 10).
    DgemmSmallWs {
        /// Total allocation in bytes.
        alloc_bytes: u64,
        /// Working-set size in bytes.
        working_bytes: u64,
    },
    /// A random-cycle pointer chase (graph traversal): locality-breaking.
    PointerChase {
        /// Heap size in bytes.
        data_bytes: u64,
        /// Pointer dereferences to walk.
        hops: u64,
    },
    /// Zipfian key-value reuse over hash-scattered pages: locality-breaking.
    ZipfianKv {
        /// Heap size in bytes.
        data_bytes: u64,
        /// Distinct single-page keys.
        keys: u64,
        /// Zipf exponent (0 = uniform; web caches fit ≈ 0.8–1.0).
        exponent: f64,
        /// Lookup operations to issue.
        ops: u64,
    },
    /// Bursty churn: a scattered hot set partially replaced every epoch.
    BurstyChurn {
        /// Heap size in bytes.
        data_bytes: u64,
        /// Bursts (epochs) of activity.
        epochs: u32,
        /// Hot-set size in pages.
        hot_pages: u64,
        /// Touches per epoch.
        touches_per_epoch: u64,
        /// Percentage of the hot set replaced after each epoch.
        churn_pct: u32,
    },
}

impl WorkloadSpec {
    /// Spec for an HPCC kernel cell.
    pub fn kernel(kernel: Kernel, size: ProblemSize) -> Self {
        WorkloadSpec::Kernel { kernel, size }
    }

    /// Short human-readable label, used by sweep reports and progress.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Kernel { kernel, size } => {
                format!("{}/{}MB", kernel.name(), size.memory_mb)
            }
            WorkloadSpec::Sequential { pages, .. } => format!("Sequential({pages})"),
            WorkloadSpec::Interleaved {
                streams,
                stream_pages,
                ..
            } => {
                format!("Interleaved({streams}x{stream_pages})")
            }
            WorkloadSpec::Strided { pages, stride, .. } => {
                format!("Strided({pages},s{stride})")
            }
            WorkloadSpec::UniformRandom { pages, touches, .. } => {
                format!("UniformRandom({pages},{touches})")
            }
            WorkloadSpec::Scripted { refs, .. } => format!("Scripted({})", refs.len()),
            WorkloadSpec::DgemmSmallWs {
                alloc_bytes,
                working_bytes,
            } => format!(
                "DgemmSmallWs({}MB,ws{}MB)",
                alloc_bytes >> 20,
                working_bytes >> 20
            ),
            WorkloadSpec::PointerChase { data_bytes, hops } => {
                format!("PointerChase({}MB,{hops})", data_bytes >> 20)
            }
            WorkloadSpec::ZipfianKv {
                data_bytes,
                keys,
                exponent,
                ops,
            } => format!(
                "ZipfianKV({}MB,k{keys},s{exponent},{ops})",
                data_bytes >> 20
            ),
            WorkloadSpec::BurstyChurn {
                data_bytes,
                epochs,
                hot_pages,
                churn_pct,
                ..
            } => format!(
                "BurstyChurn({}MB,{epochs}x{hot_pages},c{churn_pct}%)",
                data_bytes >> 20
            ),
        }
    }

    /// Checks the spec can produce at least one reference.
    pub fn validate(&self) -> Result<(), AmpomError> {
        let fail = |why: String| Err(AmpomError::WorkloadExhausted(why));
        match self {
            WorkloadSpec::Kernel { size, .. } if size.memory_mb == 0 => {
                fail("kernel memory size is 0 MB".into())
            }
            WorkloadSpec::Sequential { pages: 0, .. } => fail("sequential sweep of 0 pages".into()),
            WorkloadSpec::Interleaved {
                streams,
                stream_pages,
                ..
            } if *streams == 0 || *stream_pages == 0 => fail(format!(
                "interleave of {streams} streams x {stream_pages} pages"
            )),
            WorkloadSpec::Strided { pages, stride, .. } if *pages == 0 || *stride == 0 => fail(
                format!("strided sweep of {pages} pages with stride {stride}"),
            ),
            WorkloadSpec::UniformRandom { pages, touches, .. } if *pages == 0 || *touches == 0 => {
                fail(format!("{touches} random touches over {pages} pages"))
            }
            WorkloadSpec::Scripted { refs, .. } if refs.is_empty() => {
                fail("empty reference script".into())
            }
            WorkloadSpec::Scripted { pages, refs, .. } if refs.iter().any(|&r| r >= *pages) => {
                fail(format!(
                    "script references a page beyond its {pages}-page pool"
                ))
            }
            WorkloadSpec::DgemmSmallWs {
                alloc_bytes,
                working_bytes,
            } if *working_bytes == 0 || *working_bytes > *alloc_bytes => fail(format!(
                "DGEMM working set {working_bytes}B outside (0, alloc {alloc_bytes}B]"
            )),
            WorkloadSpec::PointerChase { data_bytes, hops }
                if *hops == 0 || *data_bytes < 2 * ampom_mem::page::PAGE_SIZE =>
            {
                fail(format!("pointer chase of {hops} hops over {data_bytes}B"))
            }
            WorkloadSpec::ZipfianKv {
                keys,
                exponent,
                ops,
                data_bytes,
            } if *keys == 0
                || *ops == 0
                || !exponent.is_finite()
                || *exponent < 0.0
                || *keys > *data_bytes / ampom_mem::page::PAGE_SIZE =>
            {
                fail(format!(
                    "{ops} Zipf(s={exponent}) ops over {keys} keys in {data_bytes}B"
                ))
            }
            WorkloadSpec::BurstyChurn {
                data_bytes,
                epochs,
                hot_pages,
                touches_per_epoch,
                churn_pct,
            } if *epochs == 0
                || *hot_pages == 0
                || *touches_per_epoch == 0
                || *churn_pct > 100
                || *hot_pages >= *data_bytes / ampom_mem::page::PAGE_SIZE =>
            {
                fail(format!(
                    "{epochs} epochs x {touches_per_epoch} touches over a \
                     {hot_pages}-page hot set ({churn_pct}% churn) in {data_bytes}B"
                ))
            }
            _ => Ok(()),
        }
    }

    /// Instantiates a fresh workload stream. Stochastic specs draw from
    /// `seed`; deterministic ones ignore it.
    pub fn build(&self, seed: u64) -> Result<Box<dyn Workload>, AmpomError> {
        self.validate()?;
        Ok(match self {
            WorkloadSpec::Kernel { kernel, size } => build_kernel(*kernel, size, seed),
            WorkloadSpec::Sequential { pages, cpu } => Box::new(Sequential::new(*pages, *cpu)),
            WorkloadSpec::Interleaved {
                streams,
                stream_pages,
                cpu,
            } => Box::new(Interleaved::new(*streams, *stream_pages, *cpu)),
            WorkloadSpec::Strided { pages, stride, cpu } => {
                Box::new(Strided::new(*pages, *stride, *cpu))
            }
            WorkloadSpec::UniformRandom {
                pages,
                touches,
                cpu,
            } => Box::new(UniformRandom::new(
                *pages,
                *touches,
                *cpu,
                SimRng::seed_from_u64(seed),
            )),
            WorkloadSpec::Scripted { pages, refs, cpu } => {
                Box::new(Scripted::new(*pages, refs, *cpu))
            }
            WorkloadSpec::DgemmSmallWs {
                alloc_bytes,
                working_bytes,
            } => Box::new(DgemmSmallWs::new(*alloc_bytes, *working_bytes)),
            WorkloadSpec::PointerChase { data_bytes, hops } => Box::new(PointerChase::new(
                *data_bytes,
                *hops,
                SimRng::seed_from_u64(seed),
            )),
            WorkloadSpec::ZipfianKv {
                data_bytes,
                keys,
                exponent,
                ops,
            } => Box::new(ZipfianKv::new(
                *data_bytes,
                *keys,
                *exponent,
                *ops,
                SimRng::seed_from_u64(seed),
            )),
            WorkloadSpec::BurstyChurn {
                data_bytes,
                epochs,
                hot_pages,
                touches_per_epoch,
                churn_pct,
            } => Box::new(BurstyChurn::new(
                *data_bytes,
                *epochs,
                *hot_pages,
                *touches_per_epoch,
                *churn_pct,
                BurstyChurn::THINK_TIME,
                SimRng::seed_from_u64(seed),
            )),
        })
    }
}

/// A fully described experiment: one migration scheme, one workload,
/// every runner knob, and a repeat count.
///
/// Setters consume and return `self` so experiments chain fluently;
/// [`Experiment::build`] validates the whole configuration and
/// [`Experiment::run`] executes it. The experiment is `Clone`, so grids
/// can be stamped out from a template.
#[derive(Debug, Clone)]
pub struct Experiment {
    cfg: RunConfig,
    workload: Option<WorkloadSpec>,
    workload_seed: Option<u64>,
    repeats: u32,
}

impl Experiment {
    /// Starts an experiment for `scheme` on the standard cluster LAN.
    pub fn new(scheme: Scheme) -> Self {
        Experiment {
            cfg: RunConfig::new(scheme),
            workload: None,
            workload_seed: None,
            repeats: 1,
        }
    }

    /// Sets the workload from a declarative spec.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Shorthand for an HPCC kernel workload.
    pub fn kernel(self, kernel: Kernel, size: ProblemSize) -> Self {
        self.workload(WorkloadSpec::kernel(kernel, size))
    }

    /// Shorthand for a sequential sweep workload.
    pub fn sequential(self, pages: u64, cpu: SimDuration) -> Self {
        self.workload(WorkloadSpec::Sequential { pages, cpu })
    }

    /// Sets the home↔destination link.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.cfg.link = link;
        self
    }

    /// Enables the Figure 2 event trace.
    pub fn trace(mut self) -> Self {
        self.cfg.trace = true;
        self
    }

    /// Replaces the AMPoM tunables.
    pub fn ampom(mut self, ampom: AmpomConfig) -> Self {
        self.cfg.ampom = ampom;
        self
    }

    /// Selects the prefetch policy driving the dependent-zone decision
    /// (AMPoM, Leap, or INDIGO). The default, [`PolicySpec::Ampom`], is
    /// bit-identical to the historical path — golden fingerprints pin it.
    /// Policy tunables are validated by [`Experiment::build`] into
    /// [`AmpomError::InvalidPolicy`].
    pub fn prefetch_policy(mut self, policy: PolicySpec) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Adds foreign traffic on the reply link.
    pub fn cross_traffic(mut self, spec: CrossTrafficSpec) -> Self {
        self.cfg.cross_traffic = Some(spec);
        self
    }

    /// Adds a forwarded-system-call profile (the home dependency).
    pub fn syscalls(mut self, profile: SyscallProfile) -> Self {
        self.cfg.syscalls = Some(profile);
        self
    }

    /// Samples the run's time series every `every_faults` faults.
    pub fn sample_series(mut self, every_faults: u64) -> Self {
        self.cfg.sample_series_every = Some(every_faults);
        self
    }

    /// Caps destination-node RAM in MB (swap-over-network beyond it).
    pub fn resident_limit_mb(mut self, mb: u64) -> Self {
        self.cfg.resident_limit_mb = Some(mb);
        self
    }

    /// Attaches a failure model: lossy links, deputy downtime, and the
    /// recovery protocol's retry/timeout knobs.
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.cfg.faults = Some(profile);
        self
    }

    /// Selects the graceful-degradation policy for deputy failure. If no
    /// fault profile is attached yet, starts from the (otherwise null)
    /// default profile.
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.cfg.faults = Some(
            self.cfg
                .faults
                .take()
                .unwrap_or_default()
                .with_policy(policy),
        );
        self
    }

    /// Seeds both the workload build and the run's stochastic elements.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self.workload_seed = Some(seed);
        self
    }

    /// Seeds only the workload build, leaving the cross-traffic seed at
    /// its [`RunConfig`] default. Useful when reproducing historical runs
    /// that seeded the two independently.
    pub fn workload_seed(mut self, seed: u64) -> Self {
        self.workload_seed = Some(seed);
        self
    }

    /// Number of repeats [`Experiment::run_all`] executes (confidence
    /// intervals need ≥ 2; seeds are derived per repeat).
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }

    /// Validates the whole experiment without running it.
    pub fn validate(&self) -> Result<(), AmpomError> {
        self.cfg.validate()?;
        if self.repeats == 0 {
            return Err(AmpomError::InvalidConfig(
                "repeats must be at least 1".into(),
            ));
        }
        if let Some(spec) = &self.workload {
            spec.validate()?;
        }
        Ok(())
    }

    /// Validates and returns the experiment, ready to run.
    pub fn build(self) -> Result<Self, AmpomError> {
        self.validate()?;
        Ok(self)
    }

    /// The underlying runner configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The declarative workload, if one was set.
    pub fn workload_spec(&self) -> Option<&WorkloadSpec> {
        self.workload.as_ref()
    }

    /// The configured repeat count.
    pub fn repeat_count(&self) -> u32 {
        self.repeats
    }

    /// The seed used to build the workload for repeat `r` (repeat 0 uses
    /// the base seed unchanged, so `run()` equals `run_all()[0]`).
    pub fn seed_for_repeat(&self, r: u32) -> u64 {
        let base = self.workload_seed.unwrap_or(self.cfg.seed);
        if r == 0 {
            base
        } else {
            SimRng::seed_from_u64(base).fork(u64::from(r)).base_seed()
        }
    }

    /// Runs the experiment once (repeat 0).
    pub fn run(&self) -> Result<RunReport, AmpomError> {
        self.run_repeat(0)
    }

    /// Runs every repeat, each with its derived seed.
    pub fn run_all(&self) -> Result<Vec<RunReport>, AmpomError> {
        (0..self.repeats).map(|r| self.run_repeat(r)).collect()
    }

    /// Runs one specific repeat.
    pub fn run_repeat(&self, r: u32) -> Result<RunReport, AmpomError> {
        self.validate()?;
        let spec = self.workload.as_ref().ok_or(AmpomError::MissingWorkload)?;
        let seed = self.seed_for_repeat(r);
        let mut workload = spec.build(seed)?;
        let mut cfg = self.cfg.clone();
        cfg.seed = if self.workload_seed.is_some() && self.workload_seed != Some(self.cfg.seed) {
            // Independent seeding: the cross-traffic stream keeps the
            // RunConfig seed (derived per repeat) while the workload uses
            // its own.
            derive_cfg_seed(self.cfg.seed, r)
        } else {
            seed
        };
        try_run_workload(workload.as_mut(), &cfg)
    }

    /// Runs against a caller-provided workload object (trace replays,
    /// composed phases, anything without a [`WorkloadSpec`]).
    pub fn run_on(&self, workload: &mut dyn Workload) -> Result<RunReport, AmpomError> {
        self.cfg.validate()?;
        if self.repeats == 0 {
            return Err(AmpomError::InvalidConfig(
                "repeats must be at least 1".into(),
            ));
        }
        try_run_workload(workload, &self.cfg)
    }

    /// Runs `n` concurrent copies of the workload against one shared
    /// deputy ([`crate::multirun::run_multi`]). Migrant 0 is seeded
    /// exactly like repeat 0 of the single-migrant run, so
    /// `run_multi(1)` reproduces [`Experiment::run`] bit-identically;
    /// later migrants fork their workload seed deterministically.
    pub fn run_multi(&self, n: u32) -> Result<MultiRunReport, AmpomError> {
        self.validate()?;
        let spec = self.workload.as_ref().ok_or(AmpomError::MissingWorkload)?;
        let multi =
            MultiRunSpec::homogeneous(self.cfg.clone(), spec.clone(), self.seed_for_repeat(0), n);
        crate::multirun::run_multi(&multi)
    }
}

fn derive_cfg_seed(base: u64, r: u32) -> u64 {
    if r == 0 {
        base
    } else {
        SimRng::seed_from_u64(base).fork(u64::from(r)).base_seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::broadband;

    const CPU: SimDuration = SimDuration::from_micros(10);

    #[test]
    fn builder_runs_a_sequential_ampom_experiment() {
        let report = Experiment::new(Scheme::Ampom)
            .sequential(512, CPU)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(report.pages_prefetched > 0);
        assert_eq!(report.scheme, Scheme::Ampom);
    }

    #[test]
    fn run_matches_legacy_run_workload() {
        let via_builder = Experiment::new(Scheme::NoPrefetch)
            .sequential(256, CPU)
            .run()
            .unwrap();
        let mut w = Sequential::new(256, CPU);
        let legacy = crate::runner::run_workload(&mut w, &RunConfig::new(Scheme::NoPrefetch));
        assert_eq!(via_builder.fingerprint(), legacy.fingerprint());
    }

    #[test]
    fn missing_workload_is_a_typed_error() {
        let err = Experiment::new(Scheme::Ampom).run().unwrap_err();
        assert_eq!(err, AmpomError::MissingWorkload);
    }

    #[test]
    fn invalid_ampom_config_is_reported_not_panicked() {
        let err = Experiment::new(Scheme::Ampom)
            .sequential(64, CPU)
            .ampom(AmpomConfig {
                dmax: 0,
                ..AmpomConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn empty_workload_spec_is_rejected() {
        let err = Experiment::new(Scheme::Ampom)
            .sequential(0, CPU)
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::WorkloadExhausted(_)));
    }

    #[test]
    fn zero_repeats_is_rejected() {
        let err = Experiment::new(Scheme::Ampom)
            .sequential(64, CPU)
            .repeats(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn dead_link_is_link_down() {
        let mut link = broadband();
        link.capacity_bytes_per_sec = 0;
        let err = Experiment::new(Scheme::NoPrefetch)
            .sequential(64, CPU)
            .link(link)
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::LinkDown(_)));
    }

    #[test]
    fn repeats_use_distinct_derived_seeds() {
        let exp = Experiment::new(Scheme::Ampom)
            .workload(WorkloadSpec::UniformRandom {
                pages: 256,
                touches: 1024,
                cpu: CPU,
            })
            .seed(9)
            .repeats(3);
        let seeds: Vec<u64> = (0..3).map(|r| exp.seed_for_repeat(r)).collect();
        assert_eq!(seeds[0], 9, "repeat 0 keeps the base seed");
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        let reports = exp.run_all().unwrap();
        assert_eq!(reports.len(), 3);
        // Different update streams → different fault patterns.
        assert_ne!(reports[0].fingerprint(), reports[1].fingerprint());
    }

    #[test]
    fn run_on_accepts_custom_workloads() {
        let mut w = Scripted::new(16, &[1, 2, 3, 1, 2, 3], CPU);
        let report = Experiment::new(Scheme::NoPrefetch).run_on(&mut w).unwrap();
        assert_eq!(report.fault_requests, 3);
    }

    #[test]
    fn script_beyond_pool_is_rejected() {
        let spec = WorkloadSpec::Scripted {
            pages: 4,
            refs: std::sync::Arc::new(vec![1, 2, 9]),
            cpu: CPU,
        };
        assert!(matches!(
            spec.validate(),
            Err(AmpomError::WorkloadExhausted(_))
        ));
    }

    #[test]
    fn fault_profile_flows_through_the_builder() {
        let report = Experiment::new(Scheme::Ampom)
            .sequential(256, CPU)
            .faults(FaultProfile::lossy(0.05))
            .seed(11)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.faults.messages_dropped > 0,
            "5% loss over a 256-page sweep should drop something"
        );
        // FFA has no deputy path to inject faults into.
        let err = Experiment::new(Scheme::Ffa)
            .sequential(64, CPU)
            .faults(FaultProfile::lossy(0.05))
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn failure_policy_setter_creates_a_profile() {
        let exp = Experiment::new(Scheme::Ampom)
            .sequential(64, CPU)
            .failure_policy(crate::reliability::FailurePolicy::Remigrate);
        assert_eq!(
            exp.config().faults.as_ref().unwrap().policy,
            crate::reliability::FailurePolicy::Remigrate
        );
        // Policy alone leaves the profile null: the run stays fault-free.
        assert!(exp.config().faults.as_ref().unwrap().is_null());
    }

    #[test]
    fn prefetch_policy_flows_through_the_builder() {
        let exp = Experiment::new(Scheme::Ampom)
            .sequential(128, CPU)
            .prefetch_policy(PolicySpec::Leap(crate::policy::LeapConfig::default()))
            .build()
            .unwrap();
        assert_eq!(exp.config().policy.label(), "leap");
        let report = exp.run().unwrap();
        assert!(report.pages_prefetched > 0, "leap prefetches a sweep");
    }

    #[test]
    fn invalid_policy_is_a_typed_error() {
        let err = Experiment::new(Scheme::Ampom)
            .sequential(64, CPU)
            .prefetch_policy(PolicySpec::Leap(crate::policy::LeapConfig {
                init_window: 0,
                ..crate::policy::LeapConfig::default()
            }))
            .build()
            .unwrap_err();
        assert!(matches!(err, AmpomError::InvalidPolicy(_)));
    }

    #[test]
    fn default_policy_reproduces_the_historical_fingerprint() {
        let explicit = Experiment::new(Scheme::Ampom)
            .sequential(256, CPU)
            .prefetch_policy(PolicySpec::Ampom)
            .run()
            .unwrap();
        let mut w = Sequential::new(256, CPU);
        let legacy = crate::runner::run_workload(&mut w, &RunConfig::new(Scheme::Ampom));
        assert_eq!(explicit.fingerprint(), legacy.fingerprint());
    }

    #[test]
    fn locality_breaking_specs_build_and_run() {
        let specs = [
            WorkloadSpec::PointerChase {
                data_bytes: 2 << 20,
                hops: 600,
            },
            WorkloadSpec::ZipfianKv {
                data_bytes: 2 << 20,
                keys: 128,
                exponent: 0.9,
                ops: 800,
            },
            WorkloadSpec::BurstyChurn {
                data_bytes: 2 << 20,
                epochs: 3,
                hot_pages: 32,
                touches_per_epoch: 200,
                churn_pct: 25,
            },
        ];
        for spec in specs {
            let label = spec.label();
            let report = Experiment::new(Scheme::Ampom)
                .workload(spec)
                .seed(3)
                .run()
                .unwrap();
            assert!(report.fault_requests > 0, "{label} never faulted");
        }
    }

    #[test]
    fn degenerate_locality_breaking_specs_are_rejected() {
        for spec in [
            WorkloadSpec::PointerChase {
                data_bytes: 1 << 20,
                hops: 0,
            },
            WorkloadSpec::ZipfianKv {
                data_bytes: 1 << 20,
                keys: 0,
                exponent: 1.0,
                ops: 10,
            },
            WorkloadSpec::ZipfianKv {
                data_bytes: 1 << 20,
                keys: 16,
                exponent: f64::NAN,
                ops: 10,
            },
            WorkloadSpec::BurstyChurn {
                data_bytes: 1 << 20,
                epochs: 2,
                hot_pages: 16,
                touches_per_epoch: 10,
                churn_pct: 101,
            },
        ] {
            assert!(
                matches!(spec.validate(), Err(AmpomError::WorkloadExhausted(_))),
                "{} should be rejected",
                spec.label()
            );
        }
    }

    #[test]
    fn labels_are_stable_and_descriptive() {
        let spec = WorkloadSpec::kernel(
            Kernel::Dgemm,
            ProblemSize {
                problem: 7600,
                memory_mb: 115,
            },
        );
        assert_eq!(spec.label(), "DGEMM/115MB");
        assert_eq!(
            WorkloadSpec::Sequential {
                pages: 512,
                cpu: CPU
            }
            .label(),
            "Sequential(512)"
        );
    }
}
