//! The modified oM_infoD (resource discovery and monitoring daemon).
//!
//! Paper §2.4 and §4: the daemon measures the two network quantities Eq. 3
//! needs —
//!
//! * **round-trip time**: "found by measuring how long it would take to
//!   receive an acknowledgement from a remote node after a load update is
//!   sent out from the oM_infoD" — [`MonitorDaemon::advance`] issues
//!   periodic load-update probes over the real (simulated) links, so
//!   congestion shows up in the estimate;
//! * **available bandwidth**: "determined by a comparison of the current
//!   and past values of the 'RX/TX bytes' fields outputted by the
//!   /sbin/ifconfig command. This comparison is done every time when the
//!   lookback window is 'looped' once" — [`MonitorDaemon::on_window_wrap`]
//!   diffs the destination NIC's counters.
//!
//! Like the real daemon (which reads raw ifconfig counters), the bandwidth
//! estimate does **not** separate the migrant's own paging traffic from
//! foreign traffic: when prefetch replies saturate the link, the estimator
//! reports little available bandwidth, `td` inflates, and Eq. 3 responds by
//! prefetching *more* per request — the "prefetch more aggressively when
//! the network is busy" behaviour of §1/§3.5.

use ampom_net::calibration::{PAGE_SIZE, REPLY_HEADER_BYTES};
use ampom_net::probe::{BandwidthEstimator, RttProber};
use ampom_sim::time::{SimDuration, SimTime};

use crate::cluster::NetPath;
use crate::prefetcher::NetEstimates;

/// Period between load-update probes (openMosix gossips load roughly once
/// a second).
pub const PROBE_PERIOD: SimDuration = SimDuration::from_secs(1);

/// Wire size of a load-update / ack message.
pub const PROBE_BYTES: u64 = 64;

/// The migrant-side monitoring daemon.
#[derive(Debug)]
pub struct MonitorDaemon {
    rtt: RttProber,
    bandwidth: BandwidthEstimator,
    next_probe_at: SimTime,
    last_wrap_seen: u64,
    /// Fallback one-way latency until the first probe completes.
    fallback_t0: SimDuration,
}

impl MonitorDaemon {
    /// Creates a daemon for a path; the fallback latency and capacity are
    /// taken from the link configuration (a node knows its NIC speed).
    pub fn new(path: &NetPath) -> Self {
        let cfg = path.config();
        MonitorDaemon {
            rtt: RttProber::new(),
            bandwidth: BandwidthEstimator::new(cfg.capacity_bytes_per_sec),
            next_probe_at: SimTime::ZERO,
            last_wrap_seen: 0,
            fallback_t0: cfg.latency,
        }
    }

    /// Runs any probes that are due by `now`. Probes ride the real links,
    /// so their acks reflect current queueing.
    pub fn advance(&mut self, now: SimTime, path: &mut NetPath) {
        while self.next_probe_at <= now {
            let sent_at = self.next_probe_at;
            let id = self.rtt.probe_sent(sent_at);
            let at_home = path.send_control_to_home(sent_at, PROBE_BYTES);
            let ack_at = path.send_control_to_dest(at_home, PROBE_BYTES);
            self.rtt.ack_received(id, ack_at);
            self.next_probe_at = sent_at + PROBE_PERIOD;
        }
    }

    /// Samples the bandwidth estimator if the lookback window has wrapped
    /// since the last sample (the §4 schedule). Returns `true` if a sample
    /// was taken.
    pub fn on_window_wrap(&mut self, now: SimTime, wraps: u64, path: &NetPath) -> bool {
        if wraps <= self.last_wrap_seen {
            return false;
        }
        self.last_wrap_seen = wraps;
        // Raw ifconfig semantics: total observed bytes, own traffic not
        // subtracted (own_bytes = 0 tells the estimator everything it saw
        // is "foreign").
        self.bandwidth.sample(now, path.dest_nic_snapshot(), 0);
        true
    }

    /// The current `t0`/`td` estimates for Eq. 3.
    pub fn estimates(&self) -> NetEstimates {
        let t0 = self.rtt.t0().unwrap_or(self.fallback_t0);
        let td = self.bandwidth.transfer_time(PAGE_SIZE + REPLY_HEADER_BYTES);
        NetEstimates { t0, td }
    }

    /// The available-bandwidth estimate, bytes/s.
    pub fn available_bandwidth(&self) -> u64 {
        self.bandwidth.available()
    }

    /// The smoothed RTT, if measured.
    pub fn rtt(&self) -> Option<SimDuration> {
        self.rtt.rtt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::fast_ethernet;

    #[test]
    fn estimates_start_from_link_config() {
        let path = NetPath::new(fast_ethernet());
        let m = MonitorDaemon::new(&path);
        let e = m.estimates();
        assert_eq!(e.t0, fast_ethernet().latency);
        // Full capacity → td ≈ 4128 B / 11.2 MB/s ≈ 369 µs.
        assert!(e.td > SimDuration::from_micros(300));
        assert!(e.td < SimDuration::from_micros(450));
    }

    #[test]
    fn probes_measure_rtt() {
        let mut path = NetPath::new(fast_ethernet());
        let mut m = MonitorDaemon::new(&path);
        m.advance(SimTime::ZERO, &mut path);
        let rtt = m.rtt().expect("first probe completed");
        assert!(rtt >= fast_ethernet().latency * 2);
        assert!(rtt < SimDuration::from_millis(2));
    }

    #[test]
    fn probe_schedule_is_periodic() {
        let mut path = NetPath::new(fast_ethernet());
        let mut m = MonitorDaemon::new(&path);
        let later = SimTime::ZERO + SimDuration::from_secs(5) + SimDuration::from_millis(1);
        m.advance(later, &mut path);
        // Probes at 0,1,2,3,4,5 s → 6 probes, each two control messages.
        assert_eq!(path.dest_nic_snapshot().tx_bytes, 6 * PROBE_BYTES);
    }

    #[test]
    fn saturated_link_shrinks_available_bandwidth() {
        let mut path = NetPath::new(fast_ethernet());
        let mut m = MonitorDaemon::new(&path);
        let t0 = SimTime::ZERO;
        m.on_window_wrap(t0, 1, &path); // first sample (baseline)
                                        // Saturate the reply link for one second.
        let mut at = t0;
        for _ in 0..2800 {
            at = path.send_page(at.min(t0 + SimDuration::from_secs(1)));
        }
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(m.on_window_wrap(t1, 2, &path));
        let avail = m.available_bandwidth();
        assert!(
            avail < fast_ethernet().capacity_bytes_per_sec / 2,
            "saturation must be visible: {avail}"
        );
        // td inflates correspondingly.
        let td = m.estimates().td;
        assert!(td > SimDuration::from_micros(700), "td = {td}");
    }

    #[test]
    fn wrap_clock_deduplicates_samples() {
        let path = NetPath::new(fast_ethernet());
        let mut m = MonitorDaemon::new(&path);
        assert!(m.on_window_wrap(SimTime::ZERO, 1, &path));
        assert!(!m.on_window_wrap(SimTime::ZERO, 1, &path));
        assert!(m.on_window_wrap(SimTime::ZERO, 2, &path));
    }
}
