//! Load-balancing policies over cheap migrations (paper §7).
//!
//! "New scheduling policies can make use of AMPoM on openMosix to perform
//! more aggressive migrations since the performance penalty of suboptimal
//! decisions has been dramatically decreased." This module is that
//! future-work sketch, made concrete enough to measure: a two-policy
//! load-balancer simulation in which jobs arrive on nodes and a policy
//! decides when to migrate, paying the freeze time of the chosen
//! migration mechanism.
//!
//! * [`Policy::LifetimeThreshold`] — the conservative classic (after
//!   Harchol-Balter & Downey \[10\]): migrate a job only once its age
//!   proves it long-lived, because migrations are expensive;
//! * [`Policy::Aggressive`] — migrate whenever it improves balance, which
//!   only pays off when freezes are cheap (AMPoM).
//!
//! The `examples/load_balancer.rs` binary and the ablation bench drive
//! this module.

use ampom_sim::time::SimDuration;

use crate::migration::Scheme;

/// A batch job: fixed CPU demand, placed on a node at arrival.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Remaining CPU demand.
    pub remaining: SimDuration,
    /// Memory footprint in MB (drives migration cost).
    pub memory_mb: u64,
}

/// The migration-decision policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Migrate only jobs older than the threshold.
    LifetimeThreshold(SimDuration),
    /// Migrate whenever the imbalance exceeds one job.
    Aggressive,
}

/// Result of one load-balancing simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceOutcome {
    /// Wall time until every job finished.
    pub makespan: SimDuration,
    /// Number of migrations performed.
    pub migrations: u64,
    /// Total freeze time paid.
    pub freeze_paid: SimDuration,
}

/// Freeze-time model per scheme (the Figure 5 calibration, closed-form).
pub fn freeze_time(scheme: Scheme, memory_mb: u64) -> SimDuration {
    use ampom_net::calibration::{fast_ethernet, MIGRATION_BASE_COST, MPT_ENTRY_COST};
    let bytes = memory_mb * 1024 * 1024;
    let pages = bytes / ampom_mem::PAGE_SIZE;
    match scheme {
        Scheme::OpenMosix => MIGRATION_BASE_COST + fast_ethernet().serialization_time(bytes),
        Scheme::Ampom => {
            MIGRATION_BASE_COST
                + MPT_ENTRY_COST.saturating_mul(pages)
                + fast_ethernet().serialization_time(pages * 6 + 3 * 4096)
        }
        Scheme::NoPrefetch | Scheme::Ffa => {
            MIGRATION_BASE_COST + fast_ethernet().serialization_time(3 * 4096)
        }
    }
}

/// Remote-paging tax: lazy schemes resume instantly but pay for remote
/// faults afterwards; modelled as a fractional slowdown of the remaining
/// work (calibrated from Figure 6: AMPoM ≈ 3%, NoPrefetch ≈ 35%).
pub fn post_migration_slowdown(scheme: Scheme) -> f64 {
    match scheme {
        Scheme::OpenMosix => 0.0,
        Scheme::Ampom => 0.03,
        Scheme::NoPrefetch => 0.35,
        Scheme::Ffa => 0.30,
    }
}

/// Simulates two nodes: `loaded` starts with all jobs, `idle` with none.
/// At each decision epoch (1 s) the policy may migrate one job from the
/// loaded to the idle node. Returns the makespan.
///
/// The model is deliberately coarse — it isolates the question the paper
/// poses in §7: *given cheaper freezes, does aggressive migration win?*
pub fn simulate_two_nodes(jobs: &[Job], policy: Policy, scheme: Scheme) -> BalanceOutcome {
    let epoch = SimDuration::from_secs(1);
    let mut node_a: Vec<(Job, SimDuration)> =
        jobs.iter().map(|&j| (j, SimDuration::ZERO)).collect(); // (job, age)
    let mut node_b: Vec<(Job, SimDuration)> = Vec::new();
    let mut elapsed = SimDuration::ZERO;
    let mut migrations = 0u64;
    let mut freeze_paid = SimDuration::ZERO;

    // Guard: bound the loop far beyond any sane makespan.
    for _ in 0..1_000_000 {
        if node_a.is_empty() && node_b.is_empty() {
            break;
        }
        // Migration decision at epoch start.
        if node_a.len() > node_b.len() + 1 {
            let candidate = node_a
                .iter()
                .enumerate()
                .filter(|(_, (_, age))| match policy {
                    Policy::LifetimeThreshold(t) => *age >= t,
                    Policy::Aggressive => true,
                })
                .max_by_key(|(_, (j, _))| j.remaining)
                .map(|(i, _)| i);
            if let Some(i) = candidate {
                let (mut job, age) = node_a.remove(i);
                let f = freeze_time(scheme, job.memory_mb);
                freeze_paid += f;
                migrations += 1;
                // The freeze suspends the job; the slowdown taxes the rest.
                let slow = post_migration_slowdown(scheme);
                job.remaining =
                    SimDuration::from_secs_f64(job.remaining.as_secs_f64() * (1.0 + slow)) + f;
                node_b.push((job, age));
            }
        }
        // Processor-share one epoch on each node.
        for node in [&mut node_a, &mut node_b] {
            if node.is_empty() {
                continue;
            }
            let share = epoch / node.len() as u64;
            for (job, age) in node.iter_mut() {
                let used = share.min(job.remaining);
                job.remaining -= used;
                *age += epoch;
            }
            node.retain(|(job, _)| !job.remaining.is_zero());
        }
        elapsed += epoch;
    }

    BalanceOutcome {
        makespan: elapsed,
        migrations,
        freeze_paid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize, secs: u64, mb: u64) -> Vec<Job> {
        (0..n)
            .map(|_| Job {
                remaining: SimDuration::from_secs(secs),
                memory_mb: mb,
            })
            .collect()
    }

    #[test]
    fn freeze_model_matches_calibration() {
        let eager = freeze_time(Scheme::OpenMosix, 575);
        let ampom = freeze_time(Scheme::Ampom, 575);
        let nopf = freeze_time(Scheme::NoPrefetch, 575);
        assert!((50.0..60.0).contains(&eager.as_secs_f64()));
        assert!((0.4..0.9).contains(&ampom.as_secs_f64()));
        assert!(nopf < SimDuration::from_millis(100));
    }

    #[test]
    fn balancing_beats_no_balancing() {
        let out = simulate_two_nodes(&jobs(8, 60, 100), Policy::Aggressive, Scheme::Ampom);
        // Perfect split of 8×60 s across two nodes is 240 s; one node alone
        // needs 480 s.
        assert!(out.migrations >= 3);
        assert!(out.makespan < SimDuration::from_secs(400));
    }

    #[test]
    fn aggressive_with_ampom_beats_aggressive_with_eager_on_large_jobs() {
        let big = jobs(6, 120, 575);
        let ampom = simulate_two_nodes(&big, Policy::Aggressive, Scheme::Ampom);
        let eager = simulate_two_nodes(&big, Policy::Aggressive, Scheme::OpenMosix);
        assert!(
            ampom.makespan <= eager.makespan,
            "cheap freezes enable aggressive balancing: {:?} vs {:?}",
            ampom.makespan,
            eager.makespan
        );
        assert!(ampom.freeze_paid < eager.freeze_paid);
    }

    #[test]
    fn threshold_policy_migrates_less() {
        let js = jobs(8, 60, 230);
        let aggressive = simulate_two_nodes(&js, Policy::Aggressive, Scheme::Ampom);
        let cautious = simulate_two_nodes(
            &js,
            Policy::LifetimeThreshold(SimDuration::from_secs(30)),
            Scheme::Ampom,
        );
        assert!(cautious.migrations <= aggressive.migrations);
    }

    #[test]
    fn empty_job_list_finishes_immediately() {
        let out = simulate_two_nodes(&[], Policy::Aggressive, Scheme::Ampom);
        assert_eq!(out.makespan, SimDuration::ZERO);
        assert_eq!(out.migrations, 0);
    }
}
