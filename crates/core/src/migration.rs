//! The migration mechanisms (paper §2.1, Figure 2).
//!
//! Three schemes are compared throughout the paper's evaluation plus the
//! original Freeze Free Algorithm shown in its Figure 2:
//!
//! * [`Scheme::OpenMosix`] — eager: "all dirty pages in the address space
//!   are transferred to the destination node during migration";
//! * [`Scheme::NoPrefetch`] — the paper's FFA variant: "the same three
//!   pages (code, stack, and data) would still be transferred during
//!   migration, but all missing pages would be fetched (without prefetch)
//!   from the original node rather than from the file server";
//! * [`Scheme::Ampom`] — three pages **plus the master page table**:
//!   "we migrate the same three pages and the master page table (MPT)
//!   during migration, while keeping all remaining pages in the original
//!   node";
//! * [`Scheme::Ffa`] — Roush & Campbell's original: three pages at freeze,
//!   then the home node pushes the remaining stack pages and flushes all
//!   dirty pages to a file server, which serves subsequent faults.

use std::fmt;

use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::region::{MemoryLayout, RegionKind};
use ampom_mem::space::AddressSpace;
use ampom_mem::table::PageTablePair;
use ampom_net::calibration::{EAGER_PAGE_COST, MIGRATION_BASE_COST, MPT_ENTRY_COST};
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceKind};

use crate::cluster::NetPath;

/// The migration scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unmodified openMosix: eager full dirty-page copy.
    OpenMosix,
    /// Three pages at freeze; pure demand paging afterwards.
    NoPrefetch,
    /// Three pages + MPT at freeze; demand paging with adaptive
    /// prefetching (the paper's contribution).
    Ampom,
    /// Original Freeze Free Algorithm with a file server.
    Ffa,
}

impl Scheme {
    /// The three schemes of the paper's main evaluation.
    pub const EVALUATED: [Scheme; 3] = [Scheme::Ampom, Scheme::OpenMosix, Scheme::NoPrefetch];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::OpenMosix => "openMosix",
            Scheme::NoPrefetch => "NoPrefetch",
            Scheme::Ampom => "AMPoM",
            Scheme::Ffa => "FFA",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the freeze phase produced.
#[derive(Debug)]
pub struct FreezeOutcome {
    /// Freeze time: suspension of execution until resume on the
    /// destination (the Figure 5 metric).
    pub freeze_time: SimDuration,
    /// Bytes moved during the freeze.
    pub bytes_at_freeze: u64,
    /// MPT bytes shipped (AMPoM only; 0 otherwise).
    pub mpt_bytes: u64,
    /// The migrant's address-space view on the destination at resume.
    pub space: AddressSpace,
    /// The MPT/HPT pair at resume.
    pub table: PageTablePair,
    /// The three freeze pages (code, data, stack).
    pub freeze_pages: [PageId; 3],
}

/// The pre-migration state on the home node: which pages the process has
/// mapped and dirtied before the migration is initiated.
#[derive(Debug, Clone)]
pub struct PreMigrationState {
    /// The address-space layout.
    pub layout: MemoryLayout,
    /// Data pages the allocation phase dirtied.
    pub allocated: Vec<PageId>,
    /// The "currently accessed" data page at freeze time.
    pub current_data: PageId,
}

impl PreMigrationState {
    /// Builds the state for a workload that allocated the given data pages
    /// (§5.1: migration is initiated right after allocation completes).
    pub fn new(layout: MemoryLayout, allocated: Vec<PageId>) -> Self {
        let current_data = allocated
            .last()
            .copied()
            .unwrap_or_else(|| layout.data_start());
        PreMigrationState {
            layout,
            allocated,
            current_data,
        }
    }

    /// Every mapped page: allocated data + code + stack.
    pub fn mapped_pages(&self) -> Vec<PageId> {
        let mut pages = self.allocated.clone();
        pages.extend(self.layout.region(RegionKind::Code).pages.iter());
        pages.extend(self.layout.region(RegionKind::Stack).pages.iter());
        pages.sort();
        pages.dedup();
        pages
    }

    /// Dirty pages at freeze time: allocated data + stack (text is clean).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut pages = self.allocated.clone();
        pages.extend(self.layout.region(RegionKind::Stack).pages.iter());
        pages.sort();
        pages.dedup();
        pages
    }
}

/// Executes the freeze phase of `scheme` starting at `SimTime::ZERO`,
/// moving data over `path` and recording the timeline in `trace`.
pub fn perform_freeze(
    scheme: Scheme,
    pre: &PreMigrationState,
    path: &mut NetPath,
    trace: &mut Trace,
) -> FreezeOutcome {
    let t0 = SimTime::ZERO;
    trace.record_with(t0, TraceKind::FreezeBegin, || {
        TraceData::note(format!("scheme={scheme}"))
    });

    let mapped = pre.mapped_pages();
    let dirty = pre.dirty_pages();
    let mut table = PageTablePair::at_migration(mapped.iter().copied());
    let mut space = AddressSpace::new(pre.layout.clone());
    for &p in &mapped {
        space.mark_remote(p);
    }
    let freeze_pages = pre.layout.freeze_pages(pre.current_data);

    let (resume_at, bytes, mpt_bytes) = match scheme {
        Scheme::OpenMosix => {
            // Eager: capture state, walk and copy every dirty page, bulk
            // transfer, rebuild on the destination.
            let bytes = dirty.len() as u64 * PAGE_SIZE;
            let kernel_cost = EAGER_PAGE_COST.saturating_mul(dirty.len() as u64);
            let start = t0 + MIGRATION_BASE_COST + kernel_cost;
            let done = path.bulk_transfer(start, bytes);
            trace.record_with(done, TraceKind::PagesArrived, || {
                TraceData::pages(dirty.len() as u64)
                    .with_bytes(bytes)
                    .with_note("eager dirty pages")
            });
            for &p in &dirty {
                table.transfer_to_destination(p);
                space.install(p);
                // The page arrives with its (dirty) home contents; the
                // dest copy is the only copy, so it stays logically dirty.
                space.touch(p, true);
            }
            (done, bytes, 0)
        }
        Scheme::NoPrefetch | Scheme::Ffa => {
            let bytes = 3 * PAGE_SIZE;
            let start = t0 + MIGRATION_BASE_COST;
            let done = path.bulk_transfer(start, bytes);
            trace.record_with(done, TraceKind::PagesArrived, || {
                TraceData::pages(3)
                    .with_bytes(bytes)
                    .with_note("freeze pages")
            });
            (done, bytes, 0)
        }
        Scheme::Ampom => {
            let mpt = table.mpt_bytes();
            let bytes = 3 * PAGE_SIZE + mpt;
            let kernel_cost = MPT_ENTRY_COST.saturating_mul(table.mapped_pages());
            let start = t0 + MIGRATION_BASE_COST + kernel_cost;
            let done = path.bulk_transfer(start, bytes);
            trace.record_with(done, TraceKind::PagesArrived, || {
                TraceData::pages(3)
                    .with_bytes(bytes)
                    .with_note(format!("freeze pages + {mpt} B MPT"))
            });
            (done, bytes, mpt)
        }
    };

    if scheme != Scheme::OpenMosix {
        for &p in &freeze_pages {
            // Stack/code freeze pages may be clean (unmapped in dirty set)
            // but they are mapped; ship them.
            if !space.is_resident(p) {
                table.transfer_to_destination(p);
                space.install(p);
            }
        }
    }

    let freeze_time = resume_at.since(t0);
    trace.record_with(resume_at, TraceKind::FreezeEnd, || {
        TraceData::note(format!("freeze={freeze_time}"))
    });

    FreezeOutcome {
        freeze_time,
        bytes_at_freeze: bytes,
        mpt_bytes,
        space,
        table,
        freeze_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::fast_ethernet;

    fn pre(mb: u64) -> PreMigrationState {
        let layout = MemoryLayout::with_data_bytes(mb * 1024 * 1024);
        let allocated: Vec<PageId> = layout.data_pages().iter().collect();
        PreMigrationState::new(layout, allocated)
    }

    fn freeze(scheme: Scheme, mb: u64) -> FreezeOutcome {
        let mut path = NetPath::new(fast_ethernet());
        let mut trace = Trace::enabled();
        perform_freeze(scheme, &pre(mb), &mut path, &mut trace)
    }

    #[test]
    fn openmosix_freeze_matches_paper_at_575mb() {
        let out = freeze(Scheme::OpenMosix, 575);
        let s = out.freeze_time.as_secs_f64();
        assert!(
            (50.0..60.0).contains(&s),
            "eager freeze {s}s vs paper 53.9s"
        );
        // Everything dirty is now resident on the destination.
        assert_eq!(
            out.space.remote_pages(),
            out.table.mapped_pages() - out.space.resident_pages()
        );
        assert!(out.space.resident_pages() > 147_000);
    }

    #[test]
    fn ampom_freeze_matches_paper_at_575mb() {
        let out = freeze(Scheme::Ampom, 575);
        let s = out.freeze_time.as_secs_f64();
        assert!((0.4..0.9).contains(&s), "AMPoM freeze {s}s vs paper 0.6s");
        assert!(out.mpt_bytes > 800_000, "MPT ≈ 6 B × 147k pages");
        // Only the three freeze pages are resident.
        assert_eq!(out.space.resident_pages(), 3);
    }

    #[test]
    fn noprefetch_freeze_matches_paper() {
        let out = freeze(Scheme::NoPrefetch, 575);
        let s = out.freeze_time.as_secs_f64();
        assert!(
            (0.05..0.1).contains(&s),
            "NoPrefetch freeze {s}s vs paper 0.07s"
        );
        assert_eq!(out.space.resident_pages(), 3);
    }

    #[test]
    fn freeze_time_ordering_holds_at_every_size() {
        for mb in [115, 230, 345, 460, 575] {
            let eager = freeze(Scheme::OpenMosix, mb).freeze_time;
            let ampom = freeze(Scheme::Ampom, mb).freeze_time;
            let nopf = freeze(Scheme::NoPrefetch, mb).freeze_time;
            assert!(nopf < ampom, "{mb}MB: NoPrefetch < AMPoM");
            assert!(ampom < eager, "{mb}MB: AMPoM < openMosix");
            assert!(
                eager.as_nanos() > 20 * ampom.as_nanos(),
                "{mb}MB: AMPoM avoids ≥95% of freeze"
            );
        }
    }

    #[test]
    fn ampom_freeze_grows_linearly_with_size() {
        let f115 = freeze(Scheme::Ampom, 115).freeze_time.as_secs_f64();
        let f575 = freeze(Scheme::Ampom, 575).freeze_time.as_secs_f64();
        // Linear in MPT size modulo the fixed base cost.
        let ratio = (f575 - 0.068) / (f115 - 0.068);
        assert!(
            (4.0..6.0).contains(&ratio),
            "MPT-driven growth ratio {ratio}"
        );
    }

    #[test]
    fn noprefetch_freeze_is_size_independent() {
        let small = freeze(Scheme::NoPrefetch, 115).freeze_time;
        let large = freeze(Scheme::NoPrefetch, 575).freeze_time;
        assert_eq!(small, large);
    }

    #[test]
    fn lazy_schemes_leave_pages_at_origin() {
        let out = freeze(Scheme::Ampom, 115);
        assert_eq!(out.space.resident_pages(), 3);
        assert!(out.table.pages_at_origin() > 29_000);
        out.space.check_counters();
        out.table.check_invariants();
    }

    #[test]
    fn freeze_pages_cover_three_regions() {
        let out = freeze(Scheme::NoPrefetch, 115);
        let [c, d, s] = out.freeze_pages;
        for p in [c, d, s] {
            assert!(out.space.is_resident(p));
        }
        assert_ne!(c, d);
        assert_ne!(d, s);
    }

    #[test]
    fn trace_records_the_timeline() {
        let mut path = NetPath::new(fast_ethernet());
        let mut trace = Trace::enabled();
        perform_freeze(Scheme::Ampom, &pre(115), &mut path, &mut trace);
        assert!(trace.first_of(TraceKind::FreezeBegin).is_some());
        assert!(trace.first_of(TraceKind::FreezeEnd).is_some());
        let begin = trace.first_of(TraceKind::FreezeBegin).unwrap().at;
        let end = trace.first_of(TraceKind::FreezeEnd).unwrap().at;
        assert!(end > begin);
    }
}
