//! The deputy↔migrant transport abstraction.
//!
//! [`run_workload`](crate::runner::run_workload) is welded to the
//! simulated [`NetPath`]: requests, replies and the monitor daemon all go
//! through the FIFO link model directly. The paper's claims, however, are
//! about a *protocol* — demand paging with piggy-backed prefetch — and
//! that protocol should run unchanged whether the far side is a simulated
//! deputy or a real one behind a socket (`ampom-rpc`).
//!
//! [`Transport`] captures exactly the runner↔network surface: freeze,
//! paging requests, arrival waits, page installs, syscall forwarding and
//! the monitor estimates the AMPoM analysis consumes.
//! [`SimulatedTransport`] reproduces the historical fault-free runner
//! semantics bit-for-bit (guarded by the `transport_identity` fingerprint
//! tests); `ampom-rpc` provides the live implementation over TCP or Unix
//! sockets.
//!
//! [`run_with_transport`] is the generic loop. It deliberately covers the
//! *protocol* surface only — FFA (file-server paging), fault injection
//! and memory-pressure eviction stay on the legacy
//! [`run_workload`](crate::runner::run_workload) path, which remains the
//! full-featured entry point for simulation studies.

use std::collections::{HashMap, VecDeque};

use ampom_mem::page::{PageId, PAGE_SIZE};
use ampom_mem::space::{AddressSpace, PageState, TouchOutcome};
use ampom_mem::table::PageTablePair;
use ampom_net::calibration::AMPOM_ANALYSIS_COST;
use ampom_net::cross::CrossTraffic;
use ampom_obs::PhaseBreakdown;
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceKind};
use ampom_workloads::memref::Workload;

use crate::cluster::NetPath;
use crate::deputy::Deputy;
use crate::error::AmpomError;
use crate::lifecycle::{writeback_batch_bytes, ForwardWriteback};
use crate::metrics::{DeputyStats, FaultStats, RunReport, RunSeries};
use crate::migration::{perform_freeze, FreezeOutcome, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::policy::{PrefetchFeedback, Prefetcher};
use crate::prefetcher::{NetEstimates, PrefetchStats};
use crate::runner::{RunConfig, MINOR_FAULT_COST, PAGE_INSTALL_COST};
use crate::slo::QuantileSketch;

/// The wire between the migrant-side runner and the home-node deputy.
///
/// Implementations own everything on the far side of the kernel's fault
/// handler: the request/reply channel, the staging buffer of arrived
/// pages, and the monitor that estimates `t0`/`td` for the prefetcher.
/// Times are [`SimTime`]: the simulated transport computes them exactly;
/// a live transport maps measured wall-clock waits onto the same axis.
pub trait Transport {
    /// Performs the freeze phase of the migration for `scheme`, shipping
    /// whatever the scheme ships eagerly, and returns the resulting
    /// address space / page tables / timing.
    fn freeze(
        &mut self,
        scheme: Scheme,
        pre: &PreMigrationState,
        trace: &mut Trace,
    ) -> Result<FreezeOutcome, AmpomError>;

    /// Sends one paging request — `demand` first if present, then the
    /// prefetch zone — and returns the *prefetch* pages actually queued
    /// (the deputy may drop duplicates; a live client may trim to its
    /// in-flight quota). The demand page is never in the returned list.
    fn request_pages(
        &mut self,
        now: SimTime,
        demand: Option<PageId>,
        prefetch: &[PageId],
        table: &mut PageTablePair,
    ) -> Result<Vec<PageId>, AmpomError>;

    /// Blocks until `page` (which must be in flight) is available and
    /// returns its arrival time. May be in the past when the page was
    /// already delivered by the pipeline; callers only advance `now`
    /// forward. The live implementation retries/degrades internally via
    /// the shared [`RetrySchedule`](crate::reliability::RetrySchedule).
    fn wait_for(&mut self, page: PageId, now: SimTime) -> Result<SimTime, AmpomError>;

    /// Installs every staged page that has arrived by `now` into `space`,
    /// charging [`PAGE_INSTALL_COST`] per page.
    fn install_arrived(&mut self, now: &mut SimTime, space: &mut AddressSpace);

    /// Whether `page` has been requested and not yet installed.
    fn is_in_flight(&self, page: PageId) -> bool;

    /// Number of requested-but-uninstalled pages.
    fn in_flight_count(&self) -> usize;

    /// Forwards a system call to the home node; returns its completion
    /// time (the home dependency, paper §2.2).
    fn forward_syscall(&mut self, now: SimTime, work: SimDuration) -> Result<SimTime, AmpomError>;

    /// Advances the monitor daemon to `now` and returns its current
    /// `t0`/`td` estimates for the prefetcher's Eq. 3 budget.
    fn estimates(&mut self, now: SimTime) -> NetEstimates;

    /// Notifies the monitor that the lookback window wrapped `wraps`
    /// times in total (bandwidth re-estimation trigger).
    fn on_window_wrap(&mut self, now: SimTime, wraps: u64);

    /// Reply-direction link utilisation over `[0, now]` (series samples).
    fn reply_utilization(&mut self, now: SimTime) -> f64;

    /// Bytes sent home→destination so far.
    fn bytes_to_dest(&self) -> u64;

    /// Bytes sent destination→home so far.
    fn bytes_from_dest(&self) -> u64;

    /// Deputy-side service statistics.
    fn deputy_stats(&self) -> DeputyStats;

    /// Recovery-protocol statistics (retries, reconnects, fallbacks).
    /// The simulated fault-free transport reports all-zero.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Carries one writeback delta batch toward the home node and returns
    /// `(bytes_on_wire, settled_at)` — the instant the batch is applied
    /// and acknowledged. The default declines (no writeback support):
    /// zero bytes, instant settle. Background semantics: callers charge
    /// the link, not the migrant's clock.
    fn writeback_batch(
        &mut self,
        now: SimTime,
        seq: u64,
        entries: &[(PageId, u64)],
    ) -> Result<(u64, SimTime), AmpomError> {
        let _ = (seq, entries);
        Ok((0, now))
    }

    /// Drains transport-internal trace events (live connects, retries,
    /// reconnects) accumulated since the last call.
    fn drain_trace(&mut self) -> Vec<(SimTime, TraceKind, TraceData)> {
        Vec::new()
    }
}

/// The in-process transport: the exact fault-free request/reply semantics
/// of the historical runner, factored behind [`Transport`].
#[derive(Debug)]
pub struct SimulatedTransport {
    path: NetPath,
    deputy: Deputy,
    monitor: MonitorDaemon,
    in_flight: HashMap<PageId, SimTime>,
    staged: VecDeque<(SimTime, PageId)>,
}

impl SimulatedTransport {
    /// Builds the transport for `cfg`'s link (with cross traffic when
    /// configured, seeded from `cfg.seed` like the legacy runner).
    pub fn new(cfg: &RunConfig) -> Self {
        let mut path = NetPath::new(cfg.link);
        if let Some(spec) = cfg.cross_traffic {
            path = path.with_cross_traffic(CrossTraffic::new(
                spec.bytes_per_sec,
                spec.burst_bytes,
                SimRng::seed_from_u64(cfg.seed),
            ));
        }
        let monitor = MonitorDaemon::new(&path);
        SimulatedTransport {
            path,
            deputy: Deputy::new(),
            monitor,
            in_flight: HashMap::new(),
            staged: VecDeque::new(),
        }
    }
}

impl Transport for SimulatedTransport {
    fn freeze(
        &mut self,
        scheme: Scheme,
        pre: &PreMigrationState,
        trace: &mut Trace,
    ) -> Result<FreezeOutcome, AmpomError> {
        Ok(perform_freeze(scheme, pre, &mut self.path, trace))
    }

    fn request_pages(
        &mut self,
        now: SimTime,
        demand: Option<PageId>,
        prefetch: &[PageId],
        table: &mut PageTablePair,
    ) -> Result<Vec<PageId>, AmpomError> {
        let mut pages: Vec<PageId> = Vec::with_capacity(prefetch.len() + 1);
        if let Some(d) = demand {
            pages.push(d);
        }
        pages.extend_from_slice(prefetch);
        let at_home = self.path.send_request(now, pages.len());
        let served = self
            .deputy
            .serve_request(at_home, &pages, table, &mut self.path);
        let mut queued = Vec::new();
        for s in &served {
            self.in_flight.insert(s.page, s.arrives);
            self.staged.push_back((s.arrives, s.page));
            if demand != Some(s.page) {
                queued.push(s.page);
            }
        }
        Ok(queued)
    }

    fn wait_for(&mut self, page: PageId, _now: SimTime) -> Result<SimTime, AmpomError> {
        self.in_flight.get(&page).copied().ok_or_else(|| {
            AmpomError::Transport(format!("page {page} awaited but never requested"))
        })
    }

    fn install_arrived(&mut self, now: &mut SimTime, space: &mut AddressSpace) {
        let mut installed = 0u64;
        while let Some(&(arrival, page)) = self.staged.front() {
            if arrival > *now {
                break;
            }
            self.staged.pop_front();
            self.in_flight.remove(&page);
            space.install(page);
            installed += 1;
        }
        if installed > 0 {
            *now += PAGE_INSTALL_COST.saturating_mul(installed);
        }
    }

    fn is_in_flight(&self, page: PageId) -> bool {
        self.in_flight.contains_key(&page)
    }

    fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    fn forward_syscall(&mut self, now: SimTime, work: SimDuration) -> Result<SimTime, AmpomError> {
        Ok(self.deputy.forward_syscall(now, work, &mut self.path))
    }

    fn estimates(&mut self, now: SimTime) -> NetEstimates {
        self.monitor.advance(now, &mut self.path);
        self.monitor.estimates()
    }

    fn on_window_wrap(&mut self, now: SimTime, wraps: u64) {
        self.monitor.on_window_wrap(now, wraps, &self.path);
    }

    fn reply_utilization(&mut self, now: SimTime) -> f64 {
        self.path.reply_utilization(now)
    }

    fn bytes_to_dest(&self) -> u64 {
        self.path.bytes_to_dest()
    }

    fn bytes_from_dest(&self) -> u64 {
        self.path.bytes_from_dest()
    }

    fn deputy_stats(&self) -> DeputyStats {
        self.deputy.stats()
    }

    fn writeback_batch(
        &mut self,
        now: SimTime,
        _seq: u64,
        entries: &[(PageId, u64)],
    ) -> Result<(u64, SimTime), AmpomError> {
        let bytes = writeback_batch_bytes(entries.len());
        let arrival = self.path.send_control_to_home(now, bytes);
        Ok((bytes, arrival))
    }
}

/// Checks `cfg` for knobs the generic transport loop does not model.
pub(crate) fn validate_for_transport(cfg: &RunConfig) -> Result<(), AmpomError> {
    cfg.validate()?;
    if cfg.scheme == Scheme::Ffa {
        return Err(AmpomError::InvalidConfig(
            "the FFA scheme pages from the file server, not the deputy \
             transport; use run_workload"
                .into(),
        ));
    }
    if cfg.faults.as_ref().is_some_and(|p| !p.is_null()) {
        return Err(AmpomError::InvalidConfig(
            "simulated fault injection is a link-model feature; use \
             run_workload (live transports inject faults on the wire)"
                .into(),
        ));
    }
    if cfg.resident_limit_mb.is_some() {
        return Err(AmpomError::InvalidConfig(
            "memory-pressure eviction is not modelled by the transport \
             loop; use run_workload"
                .into(),
        ));
    }
    Ok(())
}

/// Executes `workload` under `cfg` against an arbitrary [`Transport`].
///
/// With a [`SimulatedTransport`] this reproduces
/// [`run_workload`](crate::runner::run_workload)'s fault-free path
/// bit-for-bit (same fingerprints); with `ampom-rpc`'s live transport the
/// same protocol drives a real socket.
pub fn run_with_transport<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: &RunConfig,
    transport: &mut dyn Transport,
) -> Result<RunReport, AmpomError> {
    validate_for_transport(cfg)?;

    let layout = workload.layout().clone();
    let pre = PreMigrationState::new(layout.clone(), workload.allocation_pages());
    let program_mb = (pre.allocated.len() as u64 * PAGE_SIZE) >> 20;

    let mut trace = if cfg.trace {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    let freeze = transport.freeze(cfg.scheme, &pre, &mut trace)?;
    let mut space = freeze.space;
    let mut table = freeze.table;
    let mut now = SimTime::ZERO + freeze.freeze_time;

    let mut prefetcher: Option<Box<dyn Prefetcher>> =
        (cfg.scheme == Scheme::Ampom).then(|| cfg.policy.build(&cfg.ampom));

    let total_pages = layout.total_pages();
    let mut was_prefetched = vec![false; total_pages as usize];
    let mut series = cfg.sample_series_every.map(|_| RunSeries::default());
    let sample_every = cfg.sample_series_every.unwrap_or(u64::MAX);
    let mut faults_since_sample = 0u64;

    // Measurement state (same set as the legacy runner).
    let mut compute_time = SimDuration::ZERO;
    let mut stall_time = SimDuration::ZERO;
    let mut stall_sketch = QuantileSketch::new();
    let mut analysis_time = SimDuration::ZERO;
    // Phase attribution, mirroring the legacy runner: every clock advance
    // is charged to exactly one phase.
    let mut install_time = SimDuration::ZERO;
    let mut prefetch_overlap = SimDuration::ZERO;
    let mut faults_total = 0u64;
    let mut fault_requests = 0u64;
    let mut prefetch_only_requests = 0u64;
    let mut pages_demand = 0u64;
    let mut pages_prefetched = 0u64;
    let mut prefetched_used = 0u64;
    let mut pages_local_alloc = 0u64;

    let mut cpu_since_fault = SimDuration::ZERO;
    let mut last_fault_at = now;

    let mut syscalls_forwarded = 0u64;
    let mut syscall_time = SimDuration::ZERO;
    let mut refs_since_syscall = 0u64;

    // Background writeback (None on the fingerprint-pinned default path).
    let mut wb = cfg.writeback.map(ForwardWriteback::new);

    let page_limit = PageId(total_pages);

    for r in &mut *workload {
        if let Some(profile) = cfg.syscalls {
            refs_since_syscall += 1;
            if refs_since_syscall >= profile.every_refs {
                refs_since_syscall = 0;
                let done = transport.forward_syscall(now, profile.work)?;
                syscall_time += done.since(now);
                syscalls_forwarded += 1;
                trace.record(done, TraceKind::SyscallForwarded, TraceData::empty());
                now = done;
            }
        }

        let pidx = r.page.index() as usize;
        if was_prefetched[pidx] {
            was_prefetched[pidx] = false;
            prefetched_used += 1;
        }

        match space.touch(r.page, r.write) {
            TouchOutcome::Hit => {
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if transport.in_flight_count() > 0 {
                    prefetch_overlap += r.cpu;
                }
            }
            TouchOutcome::LocalAllocate => {
                faults_total += 1;
                pages_local_alloc += 1;
                if let Some(wb) = wb.as_mut() {
                    // First touches allocate dirty (zero-fill).
                    wb.note_touch(r.page, true);
                }
                now += MINOR_FAULT_COST;
                if table.lookup(r.page).is_none() {
                    table.create_at_destination(r.page);
                }
                let util = utilization(cpu_since_fault, now, last_fault_at);
                last_fault_at = now;
                cpu_since_fault = SimDuration::ZERO;
                if let Some(pf) = prefetcher.as_deref_mut() {
                    let prefetch = analyze(
                        pf,
                        r.page,
                        &mut now,
                        util,
                        transport,
                        page_limit,
                        &space,
                        PrefetchFeedback {
                            pages_prefetched,
                            prefetched_used,
                        },
                        &mut analysis_time,
                        &mut trace,
                    );
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        note_queued(
                            transport.request_pages(now, None, &prefetch, &mut table)?,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if transport.in_flight_count() > 0 {
                    prefetch_overlap += r.cpu;
                }
            }
            TouchOutcome::RemoteFault => {
                faults_total += 1;
                let fault_at = now;
                trace.record(now, TraceKind::PageFault, TraceData::page(r.page.index()));
                if let Some(wb) = wb.as_mut() {
                    if wb.on_fault() {
                        flush_writeback(wb, now, transport, &mut space, &mut trace)?;
                    }
                }
                let install_from = now;
                transport.install_arrived(&mut now, &mut space);
                install_time += now.since(install_from);

                let util = utilization(cpu_since_fault, fault_at, last_fault_at);
                last_fault_at = fault_at;
                cpu_since_fault = SimDuration::ZERO;

                let prefetch = match prefetcher.as_deref_mut() {
                    Some(pf) => analyze(
                        pf,
                        r.page,
                        &mut now,
                        util,
                        transport,
                        page_limit,
                        &space,
                        PrefetchFeedback {
                            pages_prefetched,
                            prefetched_used,
                        },
                        &mut analysis_time,
                        &mut trace,
                    ),
                    None => Vec::new(),
                };

                if let Some(series) = series.as_mut() {
                    faults_since_sample += 1;
                    if faults_since_sample >= sample_every {
                        faults_since_sample = 0;
                        series
                            .in_flight
                            .push(now, transport.in_flight_count() as f64);
                        series.resident.push(now, space.resident_pages() as f64);
                        if let Some(pf) = prefetcher.as_ref() {
                            series
                                .zone_budget
                                .push(now, pf.observe().stats.budgets.mean());
                        }
                        series
                            .link_utilization
                            .push(now, transport.reply_utilization(now));
                    }
                }

                if space.is_resident(r.page) {
                    // Arrived with the last batch: the install above
                    // resolved it. Any new zone pages still go out.
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        note_queued(
                            transport.request_pages(now, None, &prefetch, &mut table)?,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                } else if transport.is_in_flight(r.page) {
                    // Already requested: wait for the pipeline, no demand
                    // request ("wait for i to arrive").
                    if !prefetch.is_empty() {
                        prefetch_only_requests += 1;
                        note_queued(
                            transport.request_pages(now, None, &prefetch, &mut table)?,
                            &mut was_prefetched,
                            &mut pages_prefetched,
                        );
                    }
                    let arrival = transport.wait_for(r.page, now)?;
                    if arrival > now {
                        stall_time += arrival.since(now);
                        stall_sketch.record(arrival.since(now));
                        now = arrival;
                    }
                    let install_from = now;
                    transport.install_arrived(&mut now, &mut space);
                    install_time += now.since(install_from);
                    trace.record_with(now, TraceKind::FaultResolved, || {
                        TraceData::page(r.page.index()).with_note("pipelined")
                    });
                } else {
                    // Demand fetch from the deputy, zone piggy-backed.
                    fault_requests += 1;
                    pages_demand += 1;
                    trace.record(
                        now,
                        TraceKind::PagingRequest,
                        TraceData::page(r.page.index()).with_pages(prefetch.len() as u64),
                    );
                    note_queued(
                        transport.request_pages(now, Some(r.page), &prefetch, &mut table)?,
                        &mut was_prefetched,
                        &mut pages_prefetched,
                    );
                    let arrival = transport.wait_for(r.page, now)?;
                    stall_time += arrival.saturating_since(now);
                    stall_sketch.record(arrival.saturating_since(now));
                    now = now.max(arrival);
                    let install_from = now;
                    transport.install_arrived(&mut now, &mut space);
                    install_time += now.since(install_from);
                    trace.record(
                        now,
                        TraceKind::FaultResolved,
                        TraceData::page(r.page.index()),
                    );
                }

                // The faulted page is resident now; apply the touch.
                debug_assert!(space.is_resident(r.page));
                let outcome = space.touch(r.page, r.write);
                debug_assert_eq!(outcome, TouchOutcome::Hit);
                if let Some(wb) = wb.as_mut() {
                    wb.note_touch(r.page, r.write);
                }
                now += r.cpu;
                compute_time += r.cpu;
                cpu_since_fault += r.cpu;
                if transport.in_flight_count() > 0 {
                    prefetch_overlap += r.cpu;
                }
            }
        }
    }

    // Final writeback drain: the run ends with every dirty page home.
    if let Some(wb) = wb.as_mut() {
        flush_writeback(wb, now, transport, &mut space, &mut trace)?;
    }

    for (at, kind, data) in transport.drain_trace() {
        trace.record(at, kind, data);
    }
    trace.record(now, TraceKind::WorkloadDone, TraceData::empty());
    let total_time = now.since(SimTime::ZERO);

    let (analysis_count, prefetch_stats) = match prefetcher {
        Some(pf) => {
            let stats = pf.observe().stats;
            (stats.analyses, stats)
        }
        None => (0, PrefetchStats::default()),
    };

    let fault_stats = transport.fault_stats();
    let phases = PhaseBreakdown {
        freeze: freeze.freeze_time,
        compute: compute_time,
        minor_fault: MINOR_FAULT_COST.saturating_mul(pages_local_alloc),
        analysis: analysis_time,
        install: install_time,
        fault_stall: stall_time.saturating_sub(fault_stats.recovery_time),
        recovery: fault_stats.recovery_time,
        syscall: syscall_time,
        prefetch_overlap,
    };

    Ok(RunReport {
        scheme: cfg.scheme,
        workload: workload.name().to_string(),
        program_mb,
        freeze_time: freeze.freeze_time,
        total_time,
        compute_time,
        stall_time,
        stall_sketch,
        faults_total,
        fault_requests,
        prefetch_only_requests,
        pages_demand_fetched: pages_demand,
        pages_prefetched,
        prefetched_pages_used: prefetched_used,
        pages_local_alloc,
        syscalls_forwarded,
        syscall_time,
        pages_evicted: 0,
        bytes_to_dest: transport.bytes_to_dest(),
        bytes_from_dest: transport.bytes_from_dest(),
        mpt_bytes: freeze.mpt_bytes,
        analysis_time,
        analysis_count,
        prefetch_stats,
        faults: fault_stats,
        deputy: transport.deputy_stats(),
        writeback: wb.map(|w| w.stats()).unwrap_or_default(),
        trace,
        series,
        phases,
    })
}

/// Ships every ready writeback batch over the transport and accounts it.
fn flush_writeback(
    wb: &mut ForwardWriteback,
    now: SimTime,
    transport: &mut dyn Transport,
    space: &mut ampom_mem::space::AddressSpace,
    trace: &mut Trace,
) -> Result<(), AmpomError> {
    while let Some((seq, entries)) = wb.take_batch() {
        let (bytes, acked_at) = transport.writeback_batch(now, seq, &entries)?;
        trace.record_with(now, TraceKind::WritebackFlush, || TraceData {
            pages: Some(entries.len() as u64),
            bytes: Some(bytes),
            ..TraceData::default()
        });
        for &(p, _) in &entries {
            space.clean(p);
        }
        wb.complete(seq, &entries, bytes, now, acked_at);
    }
    Ok(())
}

/// Marks the prefetch pages a request actually queued.
fn note_queued(queued: Vec<PageId>, was_prefetched: &mut [bool], pages_prefetched: &mut u64) {
    for page in queued {
        *pages_prefetched += 1;
        was_prefetched[page.index() as usize] = true;
    }
}

/// Share of wall time spent computing since the last fault (the `C_i` of
/// each window record).
fn utilization(cpu: SimDuration, now: SimTime, last_fault: SimTime) -> f64 {
    let wall = now.saturating_since(last_fault).as_secs_f64();
    if wall <= 0.0 {
        1.0
    } else {
        (cpu.as_secs_f64() / wall).clamp(0.0, 1.0)
    }
}

/// One prefetch analysis against the transport's monitor estimates.
#[allow(clippy::too_many_arguments)]
fn analyze(
    pf: &mut dyn Prefetcher,
    page: PageId,
    now: &mut SimTime,
    util: f64,
    transport: &mut dyn Transport,
    page_limit: PageId,
    space: &AddressSpace,
    feedback: PrefetchFeedback,
    analysis_time: &mut SimDuration,
    trace: &mut Trace,
) -> Vec<PageId> {
    let est = transport.estimates(*now);
    pf.note_outcome(feedback);
    let decision = pf.on_fault(page, *now, util, est, page_limit, &mut |p| {
        space.state(p) == PageState::Remote && !transport.is_in_flight(p)
    });
    if decision.score_clamped {
        trace.record(
            *now,
            TraceKind::ScoreClamped,
            TraceData::page(page.index())
                .with_score(decision.score)
                .with_raw(decision.raw_score),
        );
    }
    trace.record(
        *now,
        TraceKind::ZoneAnalysis,
        TraceData::page(page.index())
            .with_zone(decision.budget)
            .with_raw(decision.n_raw)
            .with_score(decision.score)
            .with_rate(decision.rate)
            .with_rtt_ns(est.t0.saturating_mul(2).as_nanos()),
    );
    *now += AMPOM_ANALYSIS_COST;
    *analysis_time += AMPOM_ANALYSIS_COST;
    transport.on_window_wrap(*now, pf.observe().window_wraps);
    decision.prefetch
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_workloads::synthetic::Sequential;

    const CPU: SimDuration = SimDuration::from_micros(10);

    fn run_sim(cfg: &RunConfig, pages: u64) -> RunReport {
        let mut w = Sequential::new(pages, CPU);
        let mut t = SimulatedTransport::new(cfg);
        run_with_transport(&mut w, cfg, &mut t).expect("valid config")
    }

    #[test]
    fn simulated_transport_completes_all_schemes() {
        for scheme in [Scheme::Ampom, Scheme::NoPrefetch, Scheme::OpenMosix] {
            let r = run_sim(&RunConfig::new(scheme), 128);
            assert_eq!(r.scheme, scheme);
            assert!(r.total_time > SimDuration::ZERO);
        }
    }

    #[test]
    fn ffa_rejected_by_transport_loop() {
        let cfg = RunConfig::new(Scheme::Ffa);
        let mut w = Sequential::new(64, CPU);
        let mut t = SimulatedTransport::new(&cfg);
        let err = run_with_transport(&mut w, &cfg, &mut t).unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn simulated_faults_rejected_by_transport_loop() {
        let cfg =
            RunConfig::new(Scheme::Ampom).with_faults(crate::reliability::FaultProfile::lossy(0.1));
        let mut w = Sequential::new(64, CPU);
        let mut t = SimulatedTransport::new(&cfg);
        let err = run_with_transport(&mut w, &cfg, &mut t).unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn resident_limit_rejected_by_transport_loop() {
        let cfg = RunConfig::new(Scheme::Ampom).with_resident_limit_mb(1);
        let mut w = Sequential::new(64, CPU);
        let mut t = SimulatedTransport::new(&cfg);
        let err = run_with_transport(&mut w, &cfg, &mut t).unwrap_err();
        assert!(matches!(err, AmpomError::InvalidConfig(_)));
    }

    #[test]
    fn waiting_for_unrequested_page_is_a_transport_error() {
        let cfg = RunConfig::new(Scheme::Ampom);
        let mut t = SimulatedTransport::new(&cfg);
        let err = t.wait_for(PageId(3), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, AmpomError::Transport(_)));
    }
}
