//! The deputy process on the home node.
//!
//! Paper §2.2: after migration "the original process instance will be
//! switched to a 'deputy' process which only answers remote paging
//! requests and executes system calls on behalf of the migrant".
//!
//! [`Deputy`] models the home-node side of the protocol: it serves paging
//! requests (page-table walk + copy into the socket buffer per page, then
//! FIFO transmission on the reply link) and forwards system calls — the
//! "home dependency" the paper's §7 flags as the main cost for
//! I/O-intensive applications.
//!
//! [`MultiDeputy`] generalises it to a *multi-migrant* page service: one
//! home node serving N migrated processes at once (the 300-node
//! deployment of §5 makes a busy home node the common case). Work is
//! sharded per migrant, overlapping requests for the same page coalesce
//! into one service event, and the shared service capacity is divided by
//! a deficit-round-robin scheduler so one hot migrant cannot starve the
//! rest. A single-shard `MultiDeputy` driven FIFO reproduces [`Deputy`]'s
//! service arithmetic exactly (pinned by tests below and by the
//! `multi_identity` differential goldens).
//!
//! ## Arrival tie-breaking (audited, pinned by regression tests)
//!
//! A request arriving *exactly* at `busy_until` is **not** counted as
//! queued ([`Deputy`]'s backlog test is strictly positive) and starts
//! service immediately; among requests with equal arrival the submission
//! order decides, and across shards the deficit-round-robin visit order
//! (ascending shard index from the scheduler cursor) decides. The
//! sharded scheduler keeps all three rules.

use std::collections::{HashSet, VecDeque};

use ampom_mem::page::PageId;
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_net::fault::Fate;
use ampom_sim::time::{SimDuration, SimTime};

use crate::cluster::NetPath;
use crate::metrics::DeputyStats;

/// Per-page service cost at the deputy: HPT lookup, page-table walk, copy
/// into an skb and socket submission on a 2.4-era kernel.
pub const PAGE_SERVICE_COST: SimDuration = SimDuration::from_micros(30);

/// Fixed cost to parse one paging request.
pub const REQUEST_PARSE_COST: SimDuration = SimDuration::from_micros(10);

/// CPU cost of executing a forwarded system call at the home node
/// (getpid-class; I/O calls pass `work` explicitly).
pub const SYSCALL_EXEC_COST: SimDuration = SimDuration::from_micros(20);

/// One served page: which page, and when it lands at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedPage {
    /// The page sent.
    pub page: PageId,
    /// Arrival time at the destination node.
    pub arrives: SimTime,
}

/// The home-node deputy.
#[derive(Debug, Default)]
pub struct Deputy {
    /// When the deputy finishes its current work (requests queue behind
    /// one another — it is a single kernel thread).
    busy_until: SimTime,
    /// Pages served over this deputy's lifetime.
    pages_served: u64,
    /// Requests answered.
    requests_served: u64,
    /// Syscalls forwarded.
    syscalls_served: u64,
    /// Pages re-sent because the migrant re-requested a page already
    /// transferred (its reply was lost).
    pages_resent: u64,
    /// Saturation counters (queue depth, backlog, busy time).
    stats: DeputyStats,
}

impl Deputy {
    /// A fresh deputy.
    pub fn new() -> Self {
        Deputy::default()
    }

    /// Serves a paging request that arrived at the home node at
    /// `arrival`, asking for `pages`. Updates the page-table pair (the
    /// origin's copy is deleted as each page ships, §2.2) and enqueues the
    /// replies on the path. Returns per-page destination arrival times in
    /// request order.
    ///
    /// Pages not stored at the origin (already shipped, or created at the
    /// destination) are skipped defensively — the migrant's request may
    /// race a previous transfer.
    pub fn serve_request(
        &mut self,
        arrival: SimTime,
        pages: &[PageId],
        table: &mut PageTablePair,
        path: &mut NetPath,
    ) -> Vec<ServedPage> {
        self.note_arrival(arrival);
        self.requests_served += 1;
        let mut start = arrival.max(self.busy_until) + REQUEST_PARSE_COST;
        self.stats.busy_time += REQUEST_PARSE_COST;
        let mut served = Vec::with_capacity(pages.len());
        for &page in pages {
            if table.lookup(page) != Some(PageLocation::Origin) {
                continue;
            }
            start += PAGE_SERVICE_COST;
            self.stats.busy_time += PAGE_SERVICE_COST;
            table.transfer_to_destination(page);
            let arrives = path.send_page(start);
            self.pages_served += 1;
            served.push(ServedPage { page, arrives });
        }
        self.busy_until = start;
        served
    }

    /// Serves a paging request over a faulty reply direction: each page
    /// reply is given a fate by `reply_fate` — dropped replies occupy the
    /// link but never arrive, jittered replies arrive late.
    ///
    /// Unlike [`Deputy::serve_request`], pages already recorded at the
    /// destination are *re-sent* rather than skipped: with loss enabled
    /// the page table saying "transferred" no longer implies the migrant
    /// received the copy, and a re-request is the protocol's signal that
    /// the original reply was lost.
    pub fn serve_request_faulty(
        &mut self,
        arrival: SimTime,
        pages: &[PageId],
        table: &mut PageTablePair,
        path: &mut NetPath,
        mut reply_fate: impl FnMut() -> Fate,
    ) -> Vec<ServedPage> {
        self.note_arrival(arrival);
        self.requests_served += 1;
        let mut start = arrival.max(self.busy_until) + REQUEST_PARSE_COST;
        self.stats.busy_time += REQUEST_PARSE_COST;
        let mut served = Vec::with_capacity(pages.len());
        for &page in pages {
            let resend = match table.lookup(page) {
                Some(PageLocation::Origin) => false,
                Some(PageLocation::Destination) => true,
                _ => continue,
            };
            start += PAGE_SERVICE_COST;
            self.stats.busy_time += PAGE_SERVICE_COST;
            if resend {
                self.pages_resent += 1;
            } else {
                table.transfer_to_destination(page);
                self.pages_served += 1;
            }
            match reply_fate() {
                Fate::Dropped => path.send_page_lost(start),
                Fate::Delivered { extra_delay } => {
                    let arrives = path.send_page(start) + extra_delay;
                    served.push(ServedPage { page, arrives });
                }
            }
        }
        self.busy_until = start;
        served
    }

    /// Records queue-depth/backlog observations for a request arriving at
    /// `arrival`.
    fn note_arrival(&mut self, arrival: SimTime) {
        let backlog = self.busy_until.saturating_since(arrival);
        if backlog > SimDuration::ZERO {
            self.stats.queued_requests += 1;
            self.stats.max_backlog = self.stats.max_backlog.max(backlog);
        }
    }

    /// Forwards a system call issued by the migrant at `now`: control
    /// message to the home node, execution there (`SYSCALL_EXEC_COST` plus
    /// the call's own `work`), result message back. Returns when the
    /// migrant can continue.
    pub fn forward_syscall(
        &mut self,
        now: SimTime,
        work: SimDuration,
        path: &mut NetPath,
    ) -> SimTime {
        self.syscalls_served += 1;
        let at_home = path.send_control_to_home(now, 128);
        self.note_arrival(at_home);
        let start = at_home.max(self.busy_until);
        let done = start + SYSCALL_EXEC_COST + work;
        self.stats.busy_time += SYSCALL_EXEC_COST + work;
        self.busy_until = done;
        path.send_control_to_dest(done, 128)
    }

    /// Pages served so far.
    pub fn pages_served(&self) -> u64 {
        self.pages_served
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Syscalls forwarded so far.
    pub fn syscalls_served(&self) -> u64 {
        self.syscalls_served
    }

    /// Pages re-sent in response to re-requests (fault runs only).
    pub fn pages_resent(&self) -> u64 {
        self.pages_resent
    }

    /// Saturation counters: queued requests, worst backlog, busy time.
    pub fn stats(&self) -> DeputyStats {
        self.stats
    }

    /// When the deputy finishes its currently queued work.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

/// Identifies one migrant's shard in a [`MultiDeputy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MigrantId(pub u32);

impl MigrantId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Admission-control tuning for a [`MultiDeputy`] (and, with the same
/// semantics, the live `DeputyServer`).
///
/// Two independent mechanisms, both defaulting to "off" so existing
/// configurations keep today's unbounded behaviour bit-for-bit:
///
/// * **Per-shard page bound** — a shard whose pending (queued,
///   uncommitted) page set has reached `max_pending_pages` sheds further
///   *prefetch* pages from incoming requests. Demand pages are always
///   admitted: shedding speculative work first is the whole point, and a
///   shed prefetch merely degrades to a later demand fetch.
/// * **Hysteresis `Hello` gate** — new migrants are deferred once total
///   pending pages reach `gate_high` and re-admitted only after the
///   backlog drains below `gate_low`, so a deputy hovering at the
///   threshold does not flap between accepting and refusing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Pending-page bound per shard; `None` = unbounded (no shedding).
    pub max_pending_pages: Option<usize>,
    /// Total pending pages at which the `Hello` gate closes.
    pub gate_high: usize,
    /// Total pending pages below which a closed gate re-opens.
    pub gate_low: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_pending_pages: None,
            gate_high: usize::MAX,
            gate_low: usize::MAX,
        }
    }
}

impl AdmissionConfig {
    /// Bounds every shard at `max_pending_pages` and derives gate
    /// watermarks from it: close at four bounds' worth of total backlog,
    /// re-open at two.
    pub fn bounded(max_pending_pages: usize) -> Self {
        AdmissionConfig {
            max_pending_pages: Some(max_pending_pages),
            gate_high: max_pending_pages.saturating_mul(4),
            gate_low: max_pending_pages.saturating_mul(2),
        }
    }

    /// True when neither mechanism can ever fire.
    pub fn is_unbounded(&self) -> bool {
        self.max_pending_pages.is_none() && self.gate_high == usize::MAX
    }

    /// Checks the watermarks are ordered and the bound is non-degenerate.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_pending_pages == Some(0) {
            return Err(
                "max_pending_pages must be >= 1: a zero bound would shed every \
                 prefetch including the first"
                    .into(),
            );
        }
        if self.gate_low > self.gate_high {
            return Err(format!(
                "admission gate watermarks inverted: gate_low {} > gate_high {}",
                self.gate_low, self.gate_high
            ));
        }
        Ok(())
    }
}

/// The outcome of one admission-controlled request submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admitted {
    /// Pages accepted for service, in request order (as
    /// [`MultiDeputy::submit_request`] returns them). Coalesced pages
    /// appear in neither list — their earlier acceptance covers them.
    pub accepted: Vec<PageId>,
    /// Prefetch pages refused by the per-shard bound. The caller must
    /// treat these as never requested (they stay at the origin and will
    /// be demand-fetched if actually needed).
    pub shed: Vec<PageId>,
}

/// Deficit-round-robin tuning for the shared service capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrrConfig {
    /// Service time credited to a backlogged shard per scheduler round.
    /// Every backlogged shard receives at least one quantum of service
    /// per round, which is the fairness floor the property suite pins.
    pub quantum: SimDuration,
}

impl Default for DrrConfig {
    fn default() -> Self {
        // One parsed request plus a four-page zone per round: small enough
        // to interleave migrants at page granularity, large enough that a
        // typical demand+zone request completes in one visit.
        DrrConfig {
            quantum: SimDuration::from_micros(130),
        }
    }
}

/// One unit of deputy work queued on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkKind {
    /// Parsing one paging request.
    Parse,
    /// Serving one page (walk + copy + socket submission).
    Page(PageId),
    /// Executing one forwarded system call.
    Syscall,
}

#[derive(Debug, Clone, Copy)]
struct WorkItem {
    arrival: SimTime,
    cost: SimDuration,
    kind: WorkKind,
}

/// A committed service event: what finished, for whom, and when the
/// deputy CPU released it (reply transmission is the caller's path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A page left the deputy at `finish`.
    Page {
        /// The shard it belongs to.
        migrant: MigrantId,
        /// The page served.
        page: PageId,
        /// When its service (and socket submission) completed.
        finish: SimTime,
    },
    /// A forwarded system call completed at `finish`.
    Syscall {
        /// The shard it belongs to.
        migrant: MigrantId,
        /// When the call's execution completed.
        finish: SimTime,
    },
}

impl Completion {
    /// The shard this completion belongs to.
    pub fn migrant(&self) -> MigrantId {
        match self {
            Completion::Page { migrant, .. } | Completion::Syscall { migrant, .. } => *migrant,
        }
    }
}

/// One migrant's slice of the deputy: its request queue, the pages
/// currently pending service (the coalescing set), and its attribution
/// of the shared service capacity.
#[derive(Debug, Default)]
struct Shard {
    queue: VecDeque<WorkItem>,
    /// Pages submitted and not yet committed: a re-request for one of
    /// these coalesces into the existing service event.
    pending: HashSet<PageId>,
    /// Unspent DRR service credit.
    deficit: SimDuration,
    stats: DeputyStats,
    pages_served: u64,
    requests_served: u64,
    syscalls_served: u64,
    pages_coalesced: u64,
}

/// The home-node deputy serving N concurrent migrants.
///
/// Submissions are accounted *at submission time* against a virtual
/// serial-server clock (`virtual_busy_until`), which follows exactly the
/// eager `max(busy, arrival) + cost` recurrence of [`Deputy`]; a
/// work-conserving serial server's completion of all submitted work does
/// not depend on its internal service order, so the saturation stats a
/// single migrant observes are bit-identical to the eager deputy's.
/// Actual service order is decided lazily by [`MultiDeputy::commit_next`]
/// under deficit round robin, producing per-migrant [`Completion`]s that
/// callers batch into replies.
#[derive(Debug)]
pub struct MultiDeputy {
    shards: Vec<Shard>,
    drr: DrrConfig,
    /// Finish time of the last committed item (the real service clock).
    clock: SimTime,
    /// Eager-recurrence busy horizon over all submitted work.
    virtual_busy_until: SimTime,
    /// Next shard the DRR scheduler visits.
    cursor: usize,
    /// Whether the shard at `cursor` has already received its quantum
    /// for the visit currently in progress (classic DRR credits a queue
    /// once per visit, then serves while the deficit lasts).
    credited: bool,
    /// Whether the hysteresis `Hello` gate is currently closed.
    gated: bool,
    /// Hellos deferred while the gate was closed (deputy-level: the
    /// refused migrant has no shard to charge).
    gate_deferrals: u64,
}

impl MultiDeputy {
    /// A deputy with `migrants` empty shards and default DRR tuning.
    pub fn new(migrants: usize) -> Self {
        MultiDeputy::with_drr(migrants, DrrConfig::default())
    }

    /// A deputy with `migrants` empty shards and explicit DRR tuning.
    pub fn with_drr(migrants: usize, drr: DrrConfig) -> Self {
        assert!(migrants > 0, "a deputy serves at least one migrant");
        assert!(
            drr.quantum > SimDuration::ZERO,
            "a zero quantum would never credit service"
        );
        MultiDeputy {
            shards: (0..migrants).map(|_| Shard::default()).collect(),
            drr,
            clock: SimTime::ZERO,
            virtual_busy_until: SimTime::ZERO,
            cursor: 0,
            credited: false,
            gated: false,
            gate_deferrals: 0,
        }
    }

    /// Number of shards.
    pub fn migrants(&self) -> usize {
        self.shards.len()
    }

    /// Submits one paging request for shard `m` arriving at `arrival` and
    /// returns the pages accepted for service, in request order. Pages
    /// already pending on the shard coalesce into their existing service
    /// event and are not returned (their earlier acceptance covers them);
    /// pages whose earlier service already committed are accepted again
    /// (a re-request after a lost reply must be re-sent).
    pub fn submit_request(
        &mut self,
        m: MigrantId,
        arrival: SimTime,
        pages: &[PageId],
    ) -> Vec<PageId> {
        self.submit_request_admitted(m, arrival, pages, None, &AdmissionConfig::default())
            .accepted
    }

    /// Admission-controlled variant of [`MultiDeputy::submit_request`]:
    /// pages beyond the shard's `max_pending_pages` bound are shed rather
    /// than queued — except `demand`, which is always admitted (only
    /// speculative work is shed). With the default (unbounded) config
    /// this is exactly `submit_request`: same acceptance, same
    /// accounting, nothing shed.
    pub fn submit_request_admitted(
        &mut self,
        m: MigrantId,
        arrival: SimTime,
        pages: &[PageId],
        demand: Option<PageId>,
        adm: &AdmissionConfig,
    ) -> Admitted {
        let bound = adm.max_pending_pages.unwrap_or(usize::MAX);
        let shard = &mut self.shards[m.idx()];
        let mut accepted = Vec::with_capacity(pages.len());
        let mut shed = Vec::new();
        for &page in pages {
            if shard.pending.contains(&page) {
                shard.pages_coalesced += 1;
            } else if demand != Some(page) && shard.pending.len() >= bound {
                shard.stats.prefetch_pages_shed += 1;
                shed.push(page);
            } else {
                shard.pending.insert(page);
                accepted.push(page);
            }
        }
        if !shed.is_empty() {
            shard.stats.shed_events += 1;
        }
        shard.requests_served += 1;
        note_arrival_against(self.virtual_busy_until, arrival, &mut shard.stats);
        let cost = REQUEST_PARSE_COST + PAGE_SERVICE_COST.saturating_mul(accepted.len() as u64);
        shard.stats.busy_time += cost;
        shard.pages_served += accepted.len() as u64;
        self.virtual_busy_until = self.virtual_busy_until.max(arrival) + cost;
        shard.queue.push_back(WorkItem {
            arrival,
            cost: REQUEST_PARSE_COST,
            kind: WorkKind::Parse,
        });
        for &page in &accepted {
            shard.queue.push_back(WorkItem {
                arrival,
                cost: PAGE_SERVICE_COST,
                kind: WorkKind::Page(page),
            });
        }
        Admitted { accepted, shed }
    }

    /// The hysteresis `Hello` gate: returns true when a new migrant may
    /// be admitted now. The gate closes once total pending pages reach
    /// `gate_high` and re-opens only after they drain below `gate_low`;
    /// each refused call counts one deferral.
    pub fn admission_gate(&mut self, adm: &AdmissionConfig) -> bool {
        let pending = self.total_pending_pages();
        if self.gated {
            if pending < adm.gate_low {
                self.gated = false;
            }
        } else if pending >= adm.gate_high {
            self.gated = true;
        }
        if self.gated {
            self.gate_deferrals += 1;
        }
        !self.gated
    }

    /// Pages queued and not yet committed, across all shards (the
    /// admission gate's saturation signal).
    pub fn total_pending_pages(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Submits one forwarded system call for shard `m`, arriving at the
    /// home node at `arrival` with `work` of call-specific execution.
    pub fn submit_syscall(&mut self, m: MigrantId, arrival: SimTime, work: SimDuration) {
        let shard = &mut self.shards[m.idx()];
        shard.syscalls_served += 1;
        note_arrival_against(self.virtual_busy_until, arrival, &mut shard.stats);
        let cost = SYSCALL_EXEC_COST + work;
        shard.stats.busy_time += cost;
        self.virtual_busy_until = self.virtual_busy_until.max(arrival) + cost;
        shard.queue.push_back(WorkItem {
            arrival,
            cost,
            kind: WorkKind::Syscall,
        });
    }

    /// Picks the next item under deficit round robin without mutating
    /// scheduler state. Returns `(shard, start, deficits, credited)`
    /// where `deficits` holds every shard's credit after the selection
    /// sweep and `credited` says the chosen shard already received its
    /// quantum for the visit in progress.
    fn select_next(&self) -> Option<(usize, SimTime, Vec<SimDuration>, bool)> {
        if self.shards.iter().all(|s| s.queue.is_empty()) {
            return None;
        }
        // An idle deputy jumps its clock to the earliest queued arrival;
        // an item arriving exactly at the clock is immediately eligible
        // (the `>` in `note_arrival_against` is the same strict rule).
        let min_arrival = self
            .shards
            .iter()
            .filter_map(|s| s.queue.front().map(|i| i.arrival))
            .min()
            .expect("some queue is non-empty");
        let clock = self.clock.max(min_arrival);
        let eligible = |s: &Shard| s.queue.front().is_some_and(|item| item.arrival <= clock);

        let mut deficits: Vec<SimDuration> = self.shards.iter().map(|s| s.deficit).collect();
        let mut cursor = self.cursor;
        let mut credited = self.credited;
        // Each full sweep credits every eligible shard one quantum, so
        // the costliest queued item (bounded at submission) is reachable
        // in finitely many sweeps; at least one shard is eligible at
        // `clock` by construction, so the sweep cannot spin on an empty
        // schedule.
        loop {
            let shard = &self.shards[cursor];
            if eligible(shard) {
                if !credited {
                    deficits[cursor] += self.drr.quantum;
                    credited = true;
                }
                let item = shard.queue.front().expect("eligible shard has a head");
                if item.cost <= deficits[cursor] {
                    let start = clock.max(item.arrival);
                    return Some((cursor, start, deficits, credited));
                }
            } else if shard.queue.is_empty() {
                // Classic DRR: an emptied queue forfeits leftover credit.
                deficits[cursor] = SimDuration::ZERO;
            }
            cursor = (cursor + 1) % self.shards.len();
            credited = false;
        }
    }

    /// Commits the next service event in DRR order, if any work is
    /// queued. `Parse` items are folded into the pages they precede (a
    /// parse alone produces no completion), so this loops internally
    /// until a page or syscall finishes.
    pub fn commit_next(&mut self) -> Option<Completion> {
        self.commit_next_bounded(None)
    }

    /// Like [`MultiDeputy::commit_next`], but refuses to commit an item
    /// whose service would *start* after `horizon`. Callers that know no
    /// future submission can arrive at or before `horizon` use this to
    /// commit exactly the causally-settled prefix.
    pub fn commit_next_bounded(&mut self, horizon: Option<SimTime>) -> Option<Completion> {
        loop {
            let (i, start, deficits, credited) = self.select_next()?;
            if horizon.is_some_and(|h| start > h) {
                return None;
            }
            // Apply the selection: the sweep's credit/reset decisions
            // become real only when an item is actually committed.
            self.cursor = i;
            self.credited = credited;
            for (shard, d) in self.shards.iter_mut().zip(deficits) {
                shard.deficit = d;
            }
            let shard = &mut self.shards[i];
            let item = shard.queue.pop_front().expect("selected shard has a head");
            shard.deficit -= item.cost;
            if shard.queue.is_empty() {
                shard.deficit = SimDuration::ZERO;
            }
            let finish = start + item.cost;
            self.clock = finish;
            let migrant = MigrantId(i as u32);
            match item.kind {
                WorkKind::Parse => continue,
                WorkKind::Page(page) => {
                    shard.pending.remove(&page);
                    return Some(Completion::Page {
                        migrant,
                        page,
                        finish,
                    });
                }
                WorkKind::Syscall => return Some(Completion::Syscall { migrant, finish }),
            }
        }
    }

    /// Commits every service event starting at or before `horizon`, in
    /// order, into `out`.
    pub fn commit_until(&mut self, horizon: SimTime, out: &mut Vec<Completion>) {
        while let Some(c) = self.commit_next_bounded(Some(horizon)) {
            out.push(c);
        }
    }

    /// Drains every queued item to completion.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.commit_next() {
            out.push(c);
        }
        out
    }

    /// Queued (uncommitted) work items across all shards.
    pub fn queued_items(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Total service cost still queued (uncommitted) on shard `m`.
    pub fn queued_cost(&self, m: MigrantId) -> SimDuration {
        self.shards[m.idx()].queue.iter().map(|i| i.cost).sum()
    }

    /// Saturation counters of one shard.
    pub fn shard_stats(&self, m: MigrantId) -> DeputyStats {
        self.shards[m.idx()].stats
    }

    /// Aggregate saturation counters: `queued_requests` and `busy_time`
    /// sum exactly across shards; `max_backlog` is the shard maximum.
    pub fn aggregate_stats(&self) -> DeputyStats {
        let mut agg = DeputyStats::default();
        for s in &self.shards {
            agg.queued_requests += s.stats.queued_requests;
            agg.busy_time += s.stats.busy_time;
            agg.max_backlog = agg.max_backlog.max(s.stats.max_backlog);
            agg.prefetch_pages_shed += s.stats.prefetch_pages_shed;
            agg.demand_pages_shed += s.stats.demand_pages_shed;
            agg.shed_events += s.stats.shed_events;
            agg.hellos_deferred += s.stats.hellos_deferred;
        }
        agg.hellos_deferred += self.gate_deferrals;
        agg
    }

    /// Pages accepted for service on shard `m` so far.
    pub fn pages_served(&self, m: MigrantId) -> u64 {
        self.shards[m.idx()].pages_served
    }

    /// Requests submitted on shard `m` so far.
    pub fn requests_served(&self, m: MigrantId) -> u64 {
        self.shards[m.idx()].requests_served
    }

    /// Syscalls submitted on shard `m` so far.
    pub fn syscalls_served(&self, m: MigrantId) -> u64 {
        self.shards[m.idx()].syscalls_served
    }

    /// Page submissions on shard `m` coalesced into an already-pending
    /// service event.
    pub fn pages_coalesced(&self, m: MigrantId) -> u64 {
        self.shards[m.idx()].pages_coalesced
    }

    /// Shard `m`'s share of total deputy service time so far, in
    /// `[0, 1]`; `1.0` when the deputy has done no work at all.
    pub fn service_share(&self, m: MigrantId) -> f64 {
        let total: SimDuration = self.shards.iter().map(|s| s.stats.busy_time).sum();
        if total.is_zero() {
            return 1.0;
        }
        self.shards[m.idx()].stats.busy_time.as_secs_f64() / total.as_secs_f64()
    }

    /// The eager serial-server busy horizon over all submitted work
    /// (equals [`Deputy::busy_until`] for a single-shard FIFO history).
    pub fn virtual_busy_until(&self) -> SimTime {
        self.virtual_busy_until
    }

    /// Finish time of the last committed service event.
    pub fn clock(&self) -> SimTime {
        self.clock
    }
}

/// The arrival-vs-backlog observation shared by [`Deputy`] and
/// [`MultiDeputy`]: a request is "queued" only when the server is
/// *strictly* busy past its arrival — arriving exactly at `busy_until`
/// starts service immediately and leaves the queue-depth counters alone.
fn note_arrival_against(busy_until: SimTime, arrival: SimTime, stats: &mut DeputyStats) {
    let backlog = busy_until.saturating_since(arrival);
    if backlog > SimDuration::ZERO {
        stats.queued_requests += 1;
        stats.max_backlog = stats.max_backlog.max(backlog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::fast_ethernet;

    fn setup(pages: u64) -> (Deputy, PageTablePair, NetPath) {
        (
            Deputy::new(),
            PageTablePair::at_migration((0..pages).map(PageId)),
            NetPath::new(fast_ethernet()),
        )
    }

    #[test]
    fn serves_pages_in_order_with_pipelined_arrivals() {
        let (mut d, mut t, mut p) = setup(10);
        let req: Vec<PageId> = (0..4).map(PageId).collect();
        let served = d.serve_request(SimTime::ZERO, &req, &mut t, &mut p);
        assert_eq!(served.len(), 4);
        for w in served.windows(2) {
            assert!(w[1].arrives > w[0].arrives);
        }
        // The page table no longer stores them at the origin.
        for s in &served {
            assert_eq!(t.lookup(s.page), Some(PageLocation::Destination));
        }
        assert_eq!(d.pages_served(), 4);
    }

    #[test]
    fn already_transferred_pages_are_skipped() {
        let (mut d, mut t, mut p) = setup(4);
        t.transfer_to_destination(PageId(1));
        let served = d.serve_request(SimTime::ZERO, &[PageId(0), PageId(1)], &mut t, &mut p);
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].page, PageId(0));
    }

    #[test]
    fn unmapped_pages_are_skipped() {
        let (mut d, mut t, mut p) = setup(2);
        let served = d.serve_request(SimTime::ZERO, &[PageId(99)], &mut t, &mut p);
        assert!(served.is_empty());
        assert_eq!(d.requests_served(), 1);
    }

    #[test]
    fn requests_queue_behind_each_other() {
        let (mut d, mut t, mut p) = setup(100);
        let big: Vec<PageId> = (0..50).map(PageId).collect();
        let first = d.serve_request(SimTime::ZERO, &big, &mut t, &mut p);
        let second = d.serve_request(SimTime::ZERO, &[PageId(60)], &mut t, &mut p);
        assert!(second[0].arrives > first.last().unwrap().arrives);
    }

    #[test]
    fn syscall_round_trip_exceeds_rtt() {
        let (mut d, _t, mut p) = setup(1);
        let done = d.forward_syscall(SimTime::ZERO, SimDuration::ZERO, &mut p);
        assert!(done.since(SimTime::ZERO) >= p.latency() * 2);
        assert_eq!(d.syscalls_served(), 1);
    }

    #[test]
    fn saturation_stats_track_queueing() {
        let (mut d, mut t, mut p) = setup(100);
        let big: Vec<PageId> = (0..50).map(PageId).collect();
        d.serve_request(SimTime::ZERO, &big, &mut t, &mut p);
        assert_eq!(
            d.stats().queued_requests,
            0,
            "first request saw idle deputy"
        );
        d.serve_request(SimTime::ZERO, &[PageId(60)], &mut t, &mut p);
        let s = d.stats();
        assert_eq!(s.queued_requests, 1);
        assert!(s.max_backlog >= REQUEST_PARSE_COST + PAGE_SERVICE_COST * 50);
        assert!(s.busy_time >= REQUEST_PARSE_COST * 2 + PAGE_SERVICE_COST * 51);
        assert_eq!(d.busy_until(), SimTime::ZERO + s.busy_time);
    }

    #[test]
    fn faulty_serve_resends_transferred_pages_and_drops_on_fate() {
        let (mut d, mut t, mut p) = setup(4);
        // First reply dropped: page 0 transfers but never arrives.
        let served = d.serve_request_faulty(SimTime::ZERO, &[PageId(0)], &mut t, &mut p, || {
            Fate::Dropped
        });
        assert!(served.is_empty());
        assert_eq!(t.lookup(PageId(0)), Some(PageLocation::Destination));
        // Re-request: the deputy re-sends even though the table says
        // Destination.
        let served = d.serve_request_faulty(SimTime::ZERO, &[PageId(0)], &mut t, &mut p, || {
            Fate::Delivered {
                extra_delay: SimDuration::from_micros(5),
            }
        });
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].page, PageId(0));
        assert_eq!(d.pages_resent(), 1);
        assert_eq!(d.pages_served(), 1);
    }

    #[test]
    fn faulty_serve_with_clean_fates_matches_plain_serve() {
        let (mut d1, mut t1, mut p1) = setup(8);
        let (mut d2, mut t2, mut p2) = setup(8);
        let req: Vec<PageId> = (0..5).map(PageId).collect();
        let a = d1.serve_request(SimTime::ZERO, &req, &mut t1, &mut p1);
        let b =
            d2.serve_request_faulty(SimTime::ZERO, &req, &mut t2, &mut p2, || Fate::Delivered {
                extra_delay: SimDuration::ZERO,
            });
        assert_eq!(a, b);
    }

    #[test]
    fn syscall_work_adds_to_latency() {
        let (mut d, _t, mut p) = setup(1);
        let quick = d.forward_syscall(SimTime::ZERO, SimDuration::ZERO, &mut p);
        let (mut d2, _t2, mut p2) = setup(1);
        let slow = d2.forward_syscall(SimTime::ZERO, SimDuration::from_millis(5), &mut p2);
        assert!(
            slow.since(SimTime::ZERO) > quick.since(SimTime::ZERO) + SimDuration::from_millis(4)
        );
    }

    // --- MultiDeputy --------------------------------------------------

    const M0: MigrantId = MigrantId(0);
    const M1: MigrantId = MigrantId(1);

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + us(n)
    }

    /// Drives a `Deputy` and a single-shard `MultiDeputy` through the
    /// same request/syscall history and checks the service arithmetic
    /// (busy horizon, stats) agrees exactly.
    #[test]
    fn single_shard_matches_eager_deputy_arithmetic() {
        let (mut d, mut t, mut p) = setup(64);
        let mut md = MultiDeputy::new(1);
        let history: [(u64, Vec<u64>); 4] = [
            (0, vec![0, 1, 2]),
            (5, vec![3]),
            (400, vec![4, 5]),
            (401, vec![6, 7, 8, 9]),
        ];
        for (arrival_us, pages) in &history {
            let req: Vec<PageId> = pages.iter().copied().map(PageId).collect();
            d.serve_request(at(*arrival_us), &req, &mut t, &mut p);
            let accepted = md.submit_request(M0, at(*arrival_us), &req);
            assert_eq!(accepted, req, "fault-free run never coalesces");
        }
        assert_eq!(md.virtual_busy_until(), d.busy_until());
        assert_eq!(md.aggregate_stats(), d.stats());
        assert_eq!(md.shard_stats(M0), d.stats());
        // Committing everything FIFO lands the clock on the same horizon.
        let all = md.drain();
        assert_eq!(all.len(), 10);
        assert_eq!(md.clock(), d.busy_until());
    }

    /// Tie-break audit, rule 1: a request arriving exactly at
    /// `busy_until` is not queued and starts service immediately.
    #[test]
    fn arrival_exactly_at_busy_until_is_not_queued() {
        // Eager deputy first: the audited baseline behaviour.
        let (mut d, mut t, mut p) = setup(8);
        d.serve_request(SimTime::ZERO, &[PageId(0)], &mut t, &mut p);
        let horizon = d.busy_until();
        d.serve_request(horizon, &[PageId(1)], &mut t, &mut p);
        assert_eq!(d.stats().queued_requests, 0);
        assert_eq!(d.stats().max_backlog, SimDuration::ZERO);
        // One nanosecond earlier *is* queued: the backlog test is strict.
        let (mut d2, mut t2, mut p2) = setup(8);
        d2.serve_request(SimTime::ZERO, &[PageId(0)], &mut t2, &mut p2);
        let just_before = d2.busy_until() - SimDuration::from_nanos(1);
        d2.serve_request(just_before, &[PageId(1)], &mut t2, &mut p2);
        assert_eq!(d2.stats().queued_requests, 1);
        assert_eq!(d2.stats().max_backlog, SimDuration::from_nanos(1));

        // The sharded scheduler keeps both rules.
        let mut md = MultiDeputy::new(1);
        md.submit_request(M0, SimTime::ZERO, &[PageId(0)]);
        let horizon = md.virtual_busy_until();
        md.submit_request(M0, horizon, &[PageId(1)]);
        assert_eq!(md.aggregate_stats().queued_requests, 0);
        let mut md2 = MultiDeputy::new(1);
        md2.submit_request(M0, SimTime::ZERO, &[PageId(0)]);
        let just_before = md2.virtual_busy_until() - SimDuration::from_nanos(1);
        md2.submit_request(M0, just_before, &[PageId(1)]);
        assert_eq!(md2.aggregate_stats().queued_requests, 1);
        assert_eq!(
            md2.aggregate_stats().max_backlog,
            SimDuration::from_nanos(1)
        );
    }

    /// Tie-break audit, rules 2 and 3: equal arrivals serve in
    /// submission order within a shard, and in ascending shard index
    /// (from the scheduler cursor) across shards.
    #[test]
    fn equal_arrival_order_is_submission_then_shard_index() {
        let mut md = MultiDeputy::new(2);
        // Same arrival on both shards; shard 1 submitted first.
        md.submit_request(M1, SimTime::ZERO, &[PageId(10), PageId(11)]);
        md.submit_request(M0, SimTime::ZERO, &[PageId(20)]);
        let order: Vec<(MigrantId, PageId)> = md
            .drain()
            .into_iter()
            .map(|c| match c {
                Completion::Page { migrant, page, .. } => (migrant, page),
                Completion::Syscall { .. } => unreachable!("no syscalls submitted"),
            })
            .collect();
        // Cursor starts at shard 0, so shard 0 serves first despite the
        // later submission; within shard 1, pages keep submission order.
        assert_eq!(
            order,
            vec![(M0, PageId(20)), (M1, PageId(10)), (M1, PageId(11))]
        );
    }

    #[test]
    fn coalescing_merges_pending_pages_and_revives_committed_ones() {
        let mut md = MultiDeputy::new(1);
        let first = md.submit_request(M0, SimTime::ZERO, &[PageId(0), PageId(1)]);
        assert_eq!(first, vec![PageId(0), PageId(1)]);
        // Page 1 is still pending: the re-request coalesces.
        let second = md.submit_request(M0, at(1), &[PageId(1), PageId(2)]);
        assert_eq!(second, vec![PageId(2)]);
        assert_eq!(md.pages_coalesced(M0), 1);
        // Coalescing never drops a page: all three distinct pages come out.
        let mut served: Vec<PageId> = md
            .drain()
            .iter()
            .filter_map(|c| match c {
                Completion::Page { page, .. } => Some(*page),
                Completion::Syscall { .. } => None,
            })
            .collect();
        assert_eq!(served, vec![PageId(0), PageId(1), PageId(2)]);
        // After commit the page is no longer pending: a lost-reply
        // re-request is accepted (and re-served) again.
        let revived = md.submit_request(M0, at(500), &[PageId(1)]);
        assert_eq!(revived, vec![PageId(1)]);
        served = md
            .drain()
            .iter()
            .filter_map(|c| match c {
                Completion::Page { page, .. } => Some(*page),
                Completion::Syscall { .. } => None,
            })
            .collect();
        assert_eq!(served, vec![PageId(1)]);
    }

    #[test]
    fn drr_interleaves_a_hot_and_a_light_shard() {
        // Shard 0 floods 40 pages; shard 1 asks for one page slightly
        // later. Under FIFO the light shard would wait ~1.2ms; DRR must
        // serve it within a few quanta.
        let mut md = MultiDeputy::new(2);
        let flood: Vec<PageId> = (0..40).map(PageId).collect();
        md.submit_request(M0, SimTime::ZERO, &flood);
        md.submit_request(M1, at(1), &[PageId(100)]);
        let light_finish = md
            .drain()
            .iter()
            .find_map(|c| match c {
                Completion::Page {
                    migrant: m, finish, ..
                } if *m == M1 => Some(*finish),
                _ => None,
            })
            .expect("light shard's page is served");
        // FIFO completion would be parse + 40 pages + parse + 1 page
        // = 10 + 1200 + 10 + 30 = 1250us. DRR serves it after at most a
        // handful of the hot shard's quanta.
        assert!(
            light_finish < at(400),
            "light shard starved until {light_finish:?}"
        );
        // And the hot shard still gets the lion's share of service time.
        assert!(md.service_share(M0) > 0.85);
    }

    #[test]
    fn aggregate_stats_sum_exactly_across_shards() {
        let mut md = MultiDeputy::new(3);
        md.submit_request(M0, SimTime::ZERO, &[PageId(0), PageId(1)]);
        md.submit_request(M1, SimTime::ZERO, &[PageId(2)]);
        md.submit_syscall(MigrantId(2), at(1), us(5));
        md.submit_request(M0, at(2), &[PageId(3)]);
        let agg = md.aggregate_stats();
        let shards: Vec<DeputyStats> = (0..3).map(|i| md.shard_stats(MigrantId(i))).collect();
        assert_eq!(
            agg.queued_requests,
            shards.iter().map(|s| s.queued_requests).sum::<u64>()
        );
        assert_eq!(
            agg.busy_time,
            shards.iter().map(|s| s.busy_time).sum::<SimDuration>()
        );
        assert_eq!(
            agg.max_backlog,
            shards
                .iter()
                .map(|s| s.max_backlog)
                .max()
                .expect("three shards")
        );
        // Busy time is exactly the submitted service costs.
        let expect = REQUEST_PARSE_COST.saturating_mul(3)
            + PAGE_SERVICE_COST.saturating_mul(4)
            + SYSCALL_EXEC_COST
            + us(5);
        assert_eq!(agg.busy_time, expect);
    }

    #[test]
    fn commit_until_respects_the_horizon() {
        let mut md = MultiDeputy::new(1);
        md.submit_request(M0, SimTime::ZERO, &[PageId(0), PageId(1), PageId(2)]);
        let mut out = Vec::new();
        // Parse ends at 10us, page 0 starts at 10us: a 10us horizon
        // admits exactly the first page's service event.
        md.commit_until(at(10), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(md.queued_items(), 2);
        md.commit_until(at(10_000), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(md.queued_items(), 0);
        // Completion finish times are nondecreasing.
        let finishes: Vec<SimTime> = out
            .iter()
            .map(|c| match c {
                Completion::Page { finish, .. } | Completion::Syscall { finish, .. } => *finish,
            })
            .collect();
        assert!(finishes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn syscalls_and_pages_share_the_service_clock() {
        let mut md = MultiDeputy::new(1);
        md.submit_request(M0, SimTime::ZERO, &[PageId(0)]);
        md.submit_syscall(M0, SimTime::ZERO, SimDuration::ZERO);
        let all = md.drain();
        assert_eq!(all.len(), 2);
        // parse(10) + page(30) then syscall(20): finishes at 40 and 60us.
        assert_eq!(
            all[0],
            Completion::Page {
                migrant: M0,
                page: PageId(0),
                finish: at(40)
            }
        );
        assert_eq!(
            all[1],
            Completion::Syscall {
                migrant: M0,
                finish: at(60)
            }
        );
        assert_eq!(md.syscalls_served(M0), 1);
    }

    #[test]
    fn idle_deputy_jumps_clock_to_next_arrival() {
        let mut md = MultiDeputy::new(1);
        md.submit_request(M0, at(1_000), &[PageId(0)]);
        let all = md.drain();
        // Service starts at the arrival, not at the stale clock.
        assert_eq!(
            all[0],
            Completion::Page {
                migrant: M0,
                page: PageId(0),
                finish: at(1_040)
            }
        );
    }

    #[test]
    fn demand_is_always_admitted_while_prefetch_sheds_at_the_bound() {
        let mut md = MultiDeputy::new(1);
        let adm = AdmissionConfig::bounded(2);
        // Fill the shard to the bound with prefetch.
        let a = md.submit_request_admitted(M0, SimTime::ZERO, &[PageId(0), PageId(1)], None, &adm);
        assert_eq!(a.accepted.len(), 2);
        assert!(a.shed.is_empty());
        // At the bound: prefetch sheds, the demand page still gets in.
        let b = md.submit_request_admitted(
            M0,
            SimTime::ZERO,
            &[PageId(2), PageId(3), PageId(4)],
            Some(PageId(2)),
            &adm,
        );
        assert_eq!(b.accepted, vec![PageId(2)]);
        assert_eq!(b.shed, vec![PageId(3), PageId(4)]);
        let stats = md.shard_stats(M0);
        assert_eq!(stats.prefetch_pages_shed, 2);
        assert_eq!(stats.demand_pages_shed, 0);
        assert_eq!(stats.shed_events, 1);
        // Shed pages were never queued: draining serves only the admitted
        // three.
        let pages: Vec<_> = md
            .drain()
            .iter()
            .filter_map(|c| match c {
                Completion::Page { page, .. } => Some(*page),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![PageId(0), PageId(1), PageId(2)]);
    }

    #[test]
    fn unbounded_admission_is_submit_request_exactly() {
        let mut a = MultiDeputy::new(2);
        let mut b = MultiDeputy::new(2);
        let m1 = MigrantId(1);
        for (m, t, pages) in [
            (M0, 0, vec![PageId(0), PageId(1)]),
            (m1, 15, vec![PageId(0)]),
            (M0, 40, vec![PageId(1), PageId(2)]), // one coalesces
        ] {
            let legacy = a.submit_request(m, at(t), &pages);
            let admitted = b.submit_request_admitted(
                m,
                at(t),
                &pages,
                pages.first().copied(),
                &AdmissionConfig::default(),
            );
            assert_eq!(legacy, admitted.accepted);
            assert!(admitted.shed.is_empty());
        }
        assert_eq!(a.aggregate_stats(), b.aggregate_stats());
        assert_eq!(a.drain(), b.drain());
    }

    #[test]
    fn hello_gate_has_hysteresis() {
        let mut md = MultiDeputy::new(1);
        let adm = AdmissionConfig {
            max_pending_pages: None,
            gate_high: 3,
            gate_low: 2,
        };
        assert!(adm.validate().is_ok());
        assert!(md.admission_gate(&adm), "an idle deputy admits");
        md.submit_request(M0, SimTime::ZERO, &[PageId(0), PageId(1), PageId(2)]);
        assert!(!md.admission_gate(&adm), "gate closes at gate_high");
        // Drain one page: pending 2, still >= gate_low — stays closed.
        md.commit_next();
        assert!(!md.admission_gate(&adm), "hysteresis holds the gate shut");
        // Drain another: pending 1 < gate_low — re-opens.
        md.commit_next();
        assert!(md.admission_gate(&adm), "gate re-opens below gate_low");
        assert_eq!(md.aggregate_stats().hellos_deferred, 2);
    }

    #[test]
    fn admission_config_rejects_degenerate_settings() {
        assert!(AdmissionConfig::bounded(0).validate().is_err());
        assert!(AdmissionConfig {
            max_pending_pages: Some(4),
            gate_high: 2,
            gate_low: 5,
        }
        .validate()
        .is_err());
        assert!(AdmissionConfig::default().is_unbounded());
        assert!(!AdmissionConfig::bounded(8).is_unbounded());
    }
}
