//! The deputy process on the home node.
//!
//! Paper §2.2: after migration "the original process instance will be
//! switched to a 'deputy' process which only answers remote paging
//! requests and executes system calls on behalf of the migrant".
//!
//! [`Deputy`] models the home-node side of the protocol: it serves paging
//! requests (page-table walk + copy into the socket buffer per page, then
//! FIFO transmission on the reply link) and forwards system calls — the
//! "home dependency" the paper's §7 flags as the main cost for
//! I/O-intensive applications.

use ampom_mem::page::PageId;
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_net::fault::Fate;
use ampom_sim::time::{SimDuration, SimTime};

use crate::cluster::NetPath;
use crate::metrics::DeputyStats;

/// Per-page service cost at the deputy: HPT lookup, page-table walk, copy
/// into an skb and socket submission on a 2.4-era kernel.
pub const PAGE_SERVICE_COST: SimDuration = SimDuration::from_micros(30);

/// Fixed cost to parse one paging request.
pub const REQUEST_PARSE_COST: SimDuration = SimDuration::from_micros(10);

/// CPU cost of executing a forwarded system call at the home node
/// (getpid-class; I/O calls pass `work` explicitly).
pub const SYSCALL_EXEC_COST: SimDuration = SimDuration::from_micros(20);

/// One served page: which page, and when it lands at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedPage {
    /// The page sent.
    pub page: PageId,
    /// Arrival time at the destination node.
    pub arrives: SimTime,
}

/// The home-node deputy.
#[derive(Debug, Default)]
pub struct Deputy {
    /// When the deputy finishes its current work (requests queue behind
    /// one another — it is a single kernel thread).
    busy_until: SimTime,
    /// Pages served over this deputy's lifetime.
    pages_served: u64,
    /// Requests answered.
    requests_served: u64,
    /// Syscalls forwarded.
    syscalls_served: u64,
    /// Pages re-sent because the migrant re-requested a page already
    /// transferred (its reply was lost).
    pages_resent: u64,
    /// Saturation counters (queue depth, backlog, busy time).
    stats: DeputyStats,
}

impl Deputy {
    /// A fresh deputy.
    pub fn new() -> Self {
        Deputy::default()
    }

    /// Serves a paging request that arrived at the home node at
    /// `arrival`, asking for `pages`. Updates the page-table pair (the
    /// origin's copy is deleted as each page ships, §2.2) and enqueues the
    /// replies on the path. Returns per-page destination arrival times in
    /// request order.
    ///
    /// Pages not stored at the origin (already shipped, or created at the
    /// destination) are skipped defensively — the migrant's request may
    /// race a previous transfer.
    pub fn serve_request(
        &mut self,
        arrival: SimTime,
        pages: &[PageId],
        table: &mut PageTablePair,
        path: &mut NetPath,
    ) -> Vec<ServedPage> {
        self.note_arrival(arrival);
        self.requests_served += 1;
        let mut start = arrival.max(self.busy_until) + REQUEST_PARSE_COST;
        self.stats.busy_time += REQUEST_PARSE_COST;
        let mut served = Vec::with_capacity(pages.len());
        for &page in pages {
            if table.lookup(page) != Some(PageLocation::Origin) {
                continue;
            }
            start += PAGE_SERVICE_COST;
            self.stats.busy_time += PAGE_SERVICE_COST;
            table.transfer_to_destination(page);
            let arrives = path.send_page(start);
            self.pages_served += 1;
            served.push(ServedPage { page, arrives });
        }
        self.busy_until = start;
        served
    }

    /// Serves a paging request over a faulty reply direction: each page
    /// reply is given a fate by `reply_fate` — dropped replies occupy the
    /// link but never arrive, jittered replies arrive late.
    ///
    /// Unlike [`Deputy::serve_request`], pages already recorded at the
    /// destination are *re-sent* rather than skipped: with loss enabled
    /// the page table saying "transferred" no longer implies the migrant
    /// received the copy, and a re-request is the protocol's signal that
    /// the original reply was lost.
    pub fn serve_request_faulty(
        &mut self,
        arrival: SimTime,
        pages: &[PageId],
        table: &mut PageTablePair,
        path: &mut NetPath,
        mut reply_fate: impl FnMut() -> Fate,
    ) -> Vec<ServedPage> {
        self.note_arrival(arrival);
        self.requests_served += 1;
        let mut start = arrival.max(self.busy_until) + REQUEST_PARSE_COST;
        self.stats.busy_time += REQUEST_PARSE_COST;
        let mut served = Vec::with_capacity(pages.len());
        for &page in pages {
            let resend = match table.lookup(page) {
                Some(PageLocation::Origin) => false,
                Some(PageLocation::Destination) => true,
                _ => continue,
            };
            start += PAGE_SERVICE_COST;
            self.stats.busy_time += PAGE_SERVICE_COST;
            if resend {
                self.pages_resent += 1;
            } else {
                table.transfer_to_destination(page);
                self.pages_served += 1;
            }
            match reply_fate() {
                Fate::Dropped => path.send_page_lost(start),
                Fate::Delivered { extra_delay } => {
                    let arrives = path.send_page(start) + extra_delay;
                    served.push(ServedPage { page, arrives });
                }
            }
        }
        self.busy_until = start;
        served
    }

    /// Records queue-depth/backlog observations for a request arriving at
    /// `arrival`.
    fn note_arrival(&mut self, arrival: SimTime) {
        let backlog = self.busy_until.saturating_since(arrival);
        if backlog > SimDuration::ZERO {
            self.stats.queued_requests += 1;
            self.stats.max_backlog = self.stats.max_backlog.max(backlog);
        }
    }

    /// Forwards a system call issued by the migrant at `now`: control
    /// message to the home node, execution there (`SYSCALL_EXEC_COST` plus
    /// the call's own `work`), result message back. Returns when the
    /// migrant can continue.
    pub fn forward_syscall(
        &mut self,
        now: SimTime,
        work: SimDuration,
        path: &mut NetPath,
    ) -> SimTime {
        self.syscalls_served += 1;
        let at_home = path.send_control_to_home(now, 128);
        self.note_arrival(at_home);
        let start = at_home.max(self.busy_until);
        let done = start + SYSCALL_EXEC_COST + work;
        self.stats.busy_time += SYSCALL_EXEC_COST + work;
        self.busy_until = done;
        path.send_control_to_dest(done, 128)
    }

    /// Pages served so far.
    pub fn pages_served(&self) -> u64 {
        self.pages_served
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Syscalls forwarded so far.
    pub fn syscalls_served(&self) -> u64 {
        self.syscalls_served
    }

    /// Pages re-sent in response to re-requests (fault runs only).
    pub fn pages_resent(&self) -> u64 {
        self.pages_resent
    }

    /// Saturation counters: queued requests, worst backlog, busy time.
    pub fn stats(&self) -> DeputyStats {
        self.stats
    }

    /// When the deputy finishes its currently queued work.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_net::calibration::fast_ethernet;

    fn setup(pages: u64) -> (Deputy, PageTablePair, NetPath) {
        (
            Deputy::new(),
            PageTablePair::at_migration((0..pages).map(PageId)),
            NetPath::new(fast_ethernet()),
        )
    }

    #[test]
    fn serves_pages_in_order_with_pipelined_arrivals() {
        let (mut d, mut t, mut p) = setup(10);
        let req: Vec<PageId> = (0..4).map(PageId).collect();
        let served = d.serve_request(SimTime::ZERO, &req, &mut t, &mut p);
        assert_eq!(served.len(), 4);
        for w in served.windows(2) {
            assert!(w[1].arrives > w[0].arrives);
        }
        // The page table no longer stores them at the origin.
        for s in &served {
            assert_eq!(t.lookup(s.page), Some(PageLocation::Destination));
        }
        assert_eq!(d.pages_served(), 4);
    }

    #[test]
    fn already_transferred_pages_are_skipped() {
        let (mut d, mut t, mut p) = setup(4);
        t.transfer_to_destination(PageId(1));
        let served = d.serve_request(SimTime::ZERO, &[PageId(0), PageId(1)], &mut t, &mut p);
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].page, PageId(0));
    }

    #[test]
    fn unmapped_pages_are_skipped() {
        let (mut d, mut t, mut p) = setup(2);
        let served = d.serve_request(SimTime::ZERO, &[PageId(99)], &mut t, &mut p);
        assert!(served.is_empty());
        assert_eq!(d.requests_served(), 1);
    }

    #[test]
    fn requests_queue_behind_each_other() {
        let (mut d, mut t, mut p) = setup(100);
        let big: Vec<PageId> = (0..50).map(PageId).collect();
        let first = d.serve_request(SimTime::ZERO, &big, &mut t, &mut p);
        let second = d.serve_request(SimTime::ZERO, &[PageId(60)], &mut t, &mut p);
        assert!(second[0].arrives > first.last().unwrap().arrives);
    }

    #[test]
    fn syscall_round_trip_exceeds_rtt() {
        let (mut d, _t, mut p) = setup(1);
        let done = d.forward_syscall(SimTime::ZERO, SimDuration::ZERO, &mut p);
        assert!(done.since(SimTime::ZERO) >= p.latency() * 2);
        assert_eq!(d.syscalls_served(), 1);
    }

    #[test]
    fn saturation_stats_track_queueing() {
        let (mut d, mut t, mut p) = setup(100);
        let big: Vec<PageId> = (0..50).map(PageId).collect();
        d.serve_request(SimTime::ZERO, &big, &mut t, &mut p);
        assert_eq!(
            d.stats().queued_requests,
            0,
            "first request saw idle deputy"
        );
        d.serve_request(SimTime::ZERO, &[PageId(60)], &mut t, &mut p);
        let s = d.stats();
        assert_eq!(s.queued_requests, 1);
        assert!(s.max_backlog >= REQUEST_PARSE_COST + PAGE_SERVICE_COST * 50);
        assert!(s.busy_time >= REQUEST_PARSE_COST * 2 + PAGE_SERVICE_COST * 51);
        assert_eq!(d.busy_until(), SimTime::ZERO + s.busy_time);
    }

    #[test]
    fn faulty_serve_resends_transferred_pages_and_drops_on_fate() {
        let (mut d, mut t, mut p) = setup(4);
        // First reply dropped: page 0 transfers but never arrives.
        let served = d.serve_request_faulty(SimTime::ZERO, &[PageId(0)], &mut t, &mut p, || {
            Fate::Dropped
        });
        assert!(served.is_empty());
        assert_eq!(t.lookup(PageId(0)), Some(PageLocation::Destination));
        // Re-request: the deputy re-sends even though the table says
        // Destination.
        let served = d.serve_request_faulty(SimTime::ZERO, &[PageId(0)], &mut t, &mut p, || {
            Fate::Delivered {
                extra_delay: SimDuration::from_micros(5),
            }
        });
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].page, PageId(0));
        assert_eq!(d.pages_resent(), 1);
        assert_eq!(d.pages_served(), 1);
    }

    #[test]
    fn faulty_serve_with_clean_fates_matches_plain_serve() {
        let (mut d1, mut t1, mut p1) = setup(8);
        let (mut d2, mut t2, mut p2) = setup(8);
        let req: Vec<PageId> = (0..5).map(PageId).collect();
        let a = d1.serve_request(SimTime::ZERO, &req, &mut t1, &mut p1);
        let b =
            d2.serve_request_faulty(SimTime::ZERO, &req, &mut t2, &mut p2, || Fate::Delivered {
                extra_delay: SimDuration::ZERO,
            });
        assert_eq!(a, b);
    }

    #[test]
    fn syscall_work_adds_to_latency() {
        let (mut d, _t, mut p) = setup(1);
        let quick = d.forward_syscall(SimTime::ZERO, SimDuration::ZERO, &mut p);
        let (mut d2, _t2, mut p2) = setup(1);
        let slow = d2.forward_syscall(SimTime::ZERO, SimDuration::from_millis(5), &mut p2);
        assert!(
            slow.since(SimTime::ZERO) > quick.since(SimTime::ZERO) + SimDuration::from_millis(4)
        );
    }
}
