//! Concurrent multi-migrant execution against one shared deputy.
//!
//! The paper's deputy serves exactly one migrant, but its residual-
//! dependency argument (§2.2, §7) only matters at cluster scale, where a
//! single home node answers paging requests for *many* migrated
//! processes at once. [`run_multi`] executes N migrant protocol loops —
//! each the unmodified [`run_with_transport`] — against one
//! [`MultiDeputy`] that shards queues per
//! migrant, coalesces duplicate page requests, and divides the shared
//! service capacity by deficit round robin.
//!
//! ## Execution model
//!
//! Each migrant runs on its own OS thread behind a [`Transport`] handle
//! whose every operation is a *rendezvous*: the call (tagged with the
//! migrant's simulated clock) parks on a channel until the coordinator
//! answers it. The coordinator acts only when **every** live migrant is
//! parked, and always processes the parked call with the smallest
//! `(time, migrant index)` — so the interleaving is a pure function of
//! the simulated clocks and never of host scheduling. Determinism is
//! pinned by tests; the N=1 path is pinned bit-identical to
//! [`SimulatedTransport`](crate::transport::SimulatedTransport) by the
//! `multi_identity` golden fingerprints.
//!
//! ## Commit horizons
//!
//! Submissions enter the deputy immediately (that is where the
//! saturation stats live), but service events *commit* lazily, and a
//! commit is allowed only when no future submission could have been
//! scheduled before it:
//!
//! * with unprocessed parked calls, commits stop at the earliest parked
//!   clock (any future submission must arrive strictly later);
//! * when every parked call is blocked waiting on the deputy, commits
//!   proceed one event at a time until a wait resolves (the woken
//!   migrant's future submissions arrive after its wake time);
//! * with a single live migrant the deputy commits everything eagerly —
//!   one shard is FIFO, so order cannot change, and the eager path
//!   state is exactly what the single-migrant transport exposes.
//!
//! Each migrant gets its own [`NetPath`] and monitor daemon (N access
//! links into one home node); the deputy CPU is the shared resource.
//! Per-migrant `RunReport.deputy` stats carry that shard's attribution;
//! they sum exactly to the aggregate (pinned by the fairness property
//! suite).

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;

use ampom_mem::page::PageId;
use ampom_mem::space::AddressSpace;
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_net::cross::CrossTraffic;
use ampom_net::fault::{Fate, FaultPlan};
use ampom_sim::rng::SimRng;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_sim::trace::{Trace, TraceData, TraceEvent, TraceKind};

use crate::cluster::NetPath;
use crate::deputy::{AdmissionConfig, Completion, DrrConfig, MigrantId, MultiDeputy};
use crate::error::AmpomError;
use crate::experiment::WorkloadSpec;
use crate::lifecycle::writeback_batch_bytes;
use crate::metrics::{DeputyStats, FaultStats, RunReport};
use crate::migration::{perform_freeze, FreezeOutcome, PreMigrationState, Scheme};
use crate::monitor::MonitorDaemon;
use crate::prefetcher::NetEstimates;
use crate::reliability::{FaultProfile, RetrySchedule, RetryStep};
use crate::runner::RunConfig;
use crate::transport::{run_with_transport, validate_for_transport, Transport};

/// Control-message size for a forwarded syscall (matches
/// [`Deputy::forward_syscall`](crate::deputy::Deputy::forward_syscall)).
const SYSCALL_MSG_BYTES: u64 = 128;

/// Salt mixed into the run seed for the coordinator-side chaos RNG so
/// fault fates never correlate with workload or cross-traffic streams.
const CHAOS_SEED_SALT: u64 = 0xc4a0_5eed;

/// One migrant's workload in a multi-run.
#[derive(Debug, Clone)]
pub struct MigrantSpec {
    /// What the migrant executes.
    pub workload: WorkloadSpec,
    /// Seed the workload is built with.
    pub seed: u64,
}

/// A multi-migrant run: one shared deputy, N migrants under a common
/// link/scheme configuration.
#[derive(Debug, Clone)]
pub struct MultiRunSpec {
    /// Shared runner configuration (scheme, link, AMPoM tunables, …).
    pub cfg: RunConfig,
    /// The migrants, one shard each, in shard-index order.
    pub migrants: Vec<MigrantSpec>,
    /// Fairness tuning for the shared service capacity.
    pub drr: DrrConfig,
    /// Optional chaos profile: message loss/jitter on every migrant's
    /// request and reply path plus deputy downtime, resolved by the
    /// coordinator. `None` (or a null profile) leaves the run
    /// bit-identical to a chaos-free multi-run.
    pub chaos: Option<FaultProfile>,
    /// Deputy admission control. The default is unbounded, which is
    /// bit-identical to the pre-admission deputy.
    pub admission: AdmissionConfig,
}

impl MultiRunSpec {
    /// `n` migrants running identical copies of `workload` under `cfg`.
    /// Migrant 0 uses `seed` verbatim (so an N=1 multi-run reproduces
    /// the single-migrant run bit-identically); migrants `i > 0` fork
    /// their workload seed deterministically.
    pub fn homogeneous(cfg: RunConfig, workload: WorkloadSpec, seed: u64, n: u32) -> Self {
        let migrants = (0..n)
            .map(|i| MigrantSpec {
                workload: workload.clone(),
                seed: derive_member_seed(seed, i),
            })
            .collect();
        MultiRunSpec {
            cfg,
            migrants,
            drr: DrrConfig::default(),
            chaos: None,
            admission: AdmissionConfig::default(),
        }
    }

    /// Layers a chaos profile over the run.
    pub fn with_chaos(mut self, profile: FaultProfile) -> Self {
        self.chaos = Some(profile);
        self
    }

    /// Replaces the deputy admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
}

/// Deterministic per-migrant seed derivation: member 0 keeps the base
/// seed (single-migrant identity), later members fork it.
pub fn derive_member_seed(base: u64, member: u32) -> u64 {
    if member == 0 {
        base
    } else {
        SimRng::seed_from_u64(base)
            .fork(u64::from(member))
            .base_seed()
    }
}

/// What a multi-migrant run produced.
#[derive(Debug)]
pub struct MultiRunReport {
    /// Per-migrant reports, in shard-index order. Each report's `deputy`
    /// field carries that shard's attribution of the shared capacity.
    pub reports: Vec<RunReport>,
    /// Per-shard saturation counters (sum/max exactly to `deputy`).
    pub shard_stats: Vec<DeputyStats>,
    /// Aggregate deputy saturation counters.
    pub deputy: DeputyStats,
    /// Each shard's share of total deputy service time, in `[0, 1]`.
    pub service_shares: Vec<f64>,
    /// Page submissions coalesced into an already-pending service event.
    pub pages_coalesced: Vec<u64>,
    /// Latest migrant completion time.
    pub makespan: SimDuration,
}

impl MultiRunReport {
    /// Number of migrants.
    pub fn migrants(&self) -> usize {
        self.reports.len()
    }

    /// Max/min service share across migrants (1.0 = perfectly fair;
    /// infinite when a migrant received no service at all).
    pub fn fairness_ratio(&self) -> f64 {
        let max = self.service_shares.iter().copied().fold(0.0, f64::max);
        let min = self.service_shares.iter().copied().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Deputy busy time over the makespan, in `[0, 1]`: how saturated
    /// the shared service capacity was.
    pub fn saturation(&self) -> f64 {
        let wall = self.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            (self.deputy.busy_time.as_secs_f64() / wall).clamp(0.0, 1.0)
        }
    }

    /// Per-migrant slowdown versus solo baselines (same index order):
    /// `multi_total / solo_total`.
    pub fn slowdowns_vs(&self, solo: &[RunReport]) -> Vec<f64> {
        self.reports
            .iter()
            .zip(solo)
            .map(|(m, s)| {
                let base = s.total_time.as_secs_f64();
                if base <= 0.0 {
                    1.0
                } else {
                    m.total_time.as_secs_f64() / base
                }
            })
            .collect()
    }
}

impl ampom_obs::MetricSource for MultiRunReport {
    fn export_metrics(&self, reg: &mut ampom_obs::MetricsRegistry) {
        reg.export_gauge(
            "ampom_multi_migrants",
            "Concurrent migrants sharing the deputy",
            self.migrants() as f64,
        );
        reg.export_gauge(
            "ampom_multi_fairness_ratio",
            "Max/min service share across migrants (1.0 = perfectly fair)",
            self.fairness_ratio(),
        );
        reg.export_gauge(
            "ampom_multi_deputy_saturation",
            "Deputy busy time over the makespan, 0..1",
            self.saturation(),
        );
        reg.export_gauge(
            "ampom_multi_makespan_seconds",
            "Slowest migrant's total execution time",
            self.makespan.as_secs_f64(),
        );
        reg.export_counter(
            "ampom_multi_pages_coalesced_total",
            "Page requests absorbed by deputy-side coalescing, all migrants",
            self.pages_coalesced.iter().sum(),
        );
        reg.export_counter(
            "ampom_multi_deputy_queued_requests_total",
            "Requests that found the shared deputy busy",
            self.deputy.queued_requests,
        );
    }
}

// ---------------------------------------------------------------------
// Rendezvous protocol between migrant handles and the coordinator.

/// A transport operation, tagged with the migrant's simulated clock.
enum Call {
    Freeze {
        scheme: Scheme,
        pre: PreMigrationState,
        trace_on: bool,
    },
    Request {
        now: SimTime,
        /// Unfiltered page count (demand + zone): sizes the request
        /// message on the wire exactly like the single-migrant path.
        total_pages: usize,
        /// Pages still at the origin, in request order.
        submit: Vec<PageId>,
        /// The demanded page, when it is in `submit`. Admission control
        /// never sheds it, and downtime recovery is attributed only to
        /// requests that carry one (a pure-prefetch request stalls
        /// nobody).
        demand: Option<PageId>,
    },
    WaitFor {
        now: SimTime,
        page: PageId,
    },
    Install {
        now: SimTime,
    },
    Syscall {
        now: SimTime,
        work: SimDuration,
    },
    Estimates {
        now: SimTime,
    },
    WindowWrap {
        now: SimTime,
        wraps: u64,
    },
    Utilization {
        now: SimTime,
    },
    /// One writeback delta batch of `pages` dirty pages. Answered
    /// immediately (background traffic never blocks the migrant): the
    /// coordinator charges the member's dest→home link and replies with
    /// the wire bytes and the settle instant.
    Writeback {
        now: SimTime,
        pages: usize,
    },
    /// Final synchronisation: ship byte counters and shard stats.
    Sync,
    /// The migrant finished (or failed); its thread is exiting.
    Done,
}

impl Call {
    /// The simulated time the coordinator orders this call by.
    fn at(&self) -> SimTime {
        match self {
            Call::Freeze { .. } => SimTime::ZERO,
            Call::Request { now, .. }
            | Call::WaitFor { now, .. }
            | Call::Install { now }
            | Call::Syscall { now, .. }
            | Call::Estimates { now }
            | Call::WindowWrap { now, .. }
            | Call::Utilization { now }
            | Call::Writeback { now, .. } => *now,
            // Sync happens after the migrant's loop: order it last among
            // its peers by using its (maximal) observation time.
            Call::Sync => SimTime::ZERO + SimDuration::from_nanos(u64::MAX),
            Call::Done => SimTime::ZERO,
        }
    }
}

/// Pages delivered to one migrant: `(reply arrival, page)`, in commit
/// order (arrivals are nondecreasing — the reply link is FIFO).
type Deliveries = Vec<(SimTime, PageId)>;

enum ReplyBody {
    Frozen {
        outcome: FreezeOutcome,
        events: Vec<TraceEvent>,
    },
    Accepted {
        accepted: Vec<PageId>,
        /// Prefetch pages the deputy refused under load. The migrant
        /// reverts them to the origin so a later touch demand-fetches
        /// them (sheds are recoverable, never lost).
        shed: Vec<PageId>,
    },
    Ack,
    SyscallDone {
        at: SimTime,
    },
    Estimates {
        est: NetEstimates,
    },
    Utilization {
        value: f64,
    },
    WritebackDone {
        bytes: u64,
        settled_at: SimTime,
    },
    Synced {
        bytes_to_dest: u64,
        bytes_from_dest: u64,
        deputy: DeputyStats,
        /// Coordinator-side fault accounting for this migrant (all-zero
        /// without a chaos profile).
        faults: FaultStats,
    },
}

struct Reply {
    deliveries: Deliveries,
    body: ReplyBody,
}

// ---------------------------------------------------------------------
// Migrant-side transport handle.

/// The migrant-side endpoint: implements [`Transport`] by parking every
/// operation on the coordinator. Locally answerable operations (staged
/// installs, waits for pages whose arrival is already known) skip the
/// rendezvous — with one migrant the deputy commits eagerly, so *every*
/// wait and install is local, exactly like the single-migrant transport.
struct MigrantHandle {
    id: MigrantId,
    tx: Sender<(MigrantId, Call)>,
    rx: Receiver<Reply>,
    /// Requested-but-uninstalled pages; `None` until the reply arrival
    /// is known.
    in_flight: HashMap<PageId, Option<SimTime>>,
    /// How many `in_flight` entries still await their arrival.
    unknown: usize,
    /// Delivered pages not yet installed, in arrival order.
    staged: std::collections::VecDeque<(SimTime, PageId)>,
    /// Final counters cached by the `Sync` rendezvous.
    final_bytes: (u64, u64),
    final_deputy: DeputyStats,
    final_faults: FaultStats,
    /// Set when the coordinator went away; fallible calls error out.
    poisoned: bool,
}

impl MigrantHandle {
    fn new(id: MigrantId, tx: Sender<(MigrantId, Call)>, rx: Receiver<Reply>) -> Self {
        MigrantHandle {
            id,
            tx,
            rx,
            in_flight: HashMap::new(),
            unknown: 0,
            staged: std::collections::VecDeque::new(),
            final_bytes: (0, 0),
            final_deputy: DeputyStats::default(),
            final_faults: FaultStats::default(),
            poisoned: false,
        }
    }

    fn call(&mut self, call: Call) -> Result<Reply, AmpomError> {
        if self.poisoned {
            return Err(AmpomError::Transport("multi-run coordinator gone".into()));
        }
        if self.tx.send((self.id, call)).is_err() {
            self.poisoned = true;
            return Err(AmpomError::Transport("multi-run coordinator gone".into()));
        }
        match self.rx.recv() {
            Ok(reply) => Ok(reply),
            Err(_) => {
                self.poisoned = true;
                Err(AmpomError::Transport("multi-run coordinator gone".into()))
            }
        }
    }

    /// Merges a reply's deliveries into the local arrival state.
    fn absorb(&mut self, deliveries: Deliveries) {
        for (arrival, page) in deliveries {
            match self.in_flight.get_mut(&page) {
                Some(slot @ None) => {
                    *slot = Some(arrival);
                    self.unknown -= 1;
                }
                _ => debug_assert!(false, "delivery for page not awaiting arrival"),
            }
            self.staged.push_back((arrival, page));
        }
    }
}

impl Transport for MigrantHandle {
    fn freeze(
        &mut self,
        scheme: Scheme,
        pre: &PreMigrationState,
        trace: &mut Trace,
    ) -> Result<FreezeOutcome, AmpomError> {
        let reply = self.call(Call::Freeze {
            scheme,
            pre: pre.clone(),
            trace_on: trace.is_enabled(),
        })?;
        match reply.body {
            ReplyBody::Frozen { outcome, events } => {
                for e in events {
                    trace.record(e.at, e.kind, e.data);
                }
                self.absorb(reply.deliveries);
                Ok(outcome)
            }
            _ => Err(AmpomError::Transport("unexpected freeze reply".into())),
        }
    }

    fn request_pages(
        &mut self,
        now: SimTime,
        demand: Option<PageId>,
        prefetch: &[PageId],
        table: &mut PageTablePair,
    ) -> Result<Vec<PageId>, AmpomError> {
        let mut pages: Vec<PageId> = Vec::with_capacity(prefetch.len() + 1);
        if let Some(d) = demand {
            pages.push(d);
        }
        pages.extend_from_slice(prefetch);
        let total_pages = pages.len();
        // The deputy-side origin filter runs here against the migrant's
        // table view: only origin pages are serviceable, and they move
        // to the destination the moment the deputy accepts them (the
        // single-migrant deputy does both inside `serve_request`).
        let submit: Vec<PageId> = pages
            .into_iter()
            .filter(|&p| table.lookup(p) == Some(PageLocation::Origin))
            .collect();
        for &p in &submit {
            table.transfer_to_destination(p);
        }
        let demand_submitted = demand.filter(|d| submit.contains(d));
        let reply = self.call(Call::Request {
            now,
            total_pages,
            submit,
            demand: demand_submitted,
        })?;
        let ReplyBody::Accepted { accepted, shed } = reply.body else {
            return Err(AmpomError::Transport("unexpected request reply".into()));
        };
        // Shed prefetches revert to the origin: they were optimistically
        // marked in-transfer above, and the deputy never serviced them.
        // A later touch demand-fetches the page, so nothing is lost.
        for &p in &shed {
            table.return_to_origin(p);
        }
        let mut queued = Vec::new();
        for &p in &accepted {
            self.in_flight.insert(p, None);
            self.unknown += 1;
            if demand != Some(p) {
                queued.push(p);
            }
        }
        self.absorb(reply.deliveries);
        Ok(queued)
    }

    fn wait_for(&mut self, page: PageId, now: SimTime) -> Result<SimTime, AmpomError> {
        match self.in_flight.get(&page) {
            None => Err(AmpomError::Transport(format!(
                "page {page} awaited but never requested"
            ))),
            Some(Some(arrival)) => Ok(*arrival),
            Some(None) => {
                let reply = self.call(Call::WaitFor { now, page })?;
                self.absorb(reply.deliveries);
                match self.in_flight.get(&page) {
                    Some(Some(arrival)) => Ok(*arrival),
                    _ => Err(AmpomError::Transport(format!(
                        "page {page} wait resolved without a delivery"
                    ))),
                }
            }
        }
    }

    fn install_arrived(&mut self, now: &mut SimTime, space: &mut AddressSpace) {
        if self.unknown > 0 {
            // Some arrivals are still coordinator-side: sync first.
            if let Ok(reply) = self.call(Call::Install { now: *now }) {
                self.absorb(reply.deliveries);
            }
        }
        let mut installed = 0u64;
        while let Some(&(arrival, page)) = self.staged.front() {
            if arrival > *now {
                break;
            }
            self.staged.pop_front();
            self.in_flight.remove(&page);
            space.install(page);
            installed += 1;
        }
        if installed > 0 {
            *now += crate::runner::PAGE_INSTALL_COST.saturating_mul(installed);
        }
    }

    fn is_in_flight(&self, page: PageId) -> bool {
        self.in_flight.contains_key(&page)
    }

    fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    fn forward_syscall(&mut self, now: SimTime, work: SimDuration) -> Result<SimTime, AmpomError> {
        let reply = self.call(Call::Syscall { now, work })?;
        let ReplyBody::SyscallDone { at } = reply.body else {
            return Err(AmpomError::Transport("unexpected syscall reply".into()));
        };
        self.absorb(reply.deliveries);
        Ok(at)
    }

    fn estimates(&mut self, now: SimTime) -> NetEstimates {
        match self.call(Call::Estimates { now }) {
            Ok(Reply {
                deliveries,
                body: ReplyBody::Estimates { est },
            }) => {
                self.absorb(deliveries);
                est
            }
            _ => NetEstimates {
                t0: SimDuration::ZERO,
                td: SimDuration::ZERO,
            },
        }
    }

    fn on_window_wrap(&mut self, now: SimTime, wraps: u64) {
        if let Ok(reply) = self.call(Call::WindowWrap { now, wraps }) {
            self.absorb(reply.deliveries);
        }
    }

    fn writeback_batch(
        &mut self,
        now: SimTime,
        _seq: u64,
        entries: &[(PageId, u64)],
    ) -> Result<(u64, SimTime), AmpomError> {
        let reply = self.call(Call::Writeback {
            now,
            pages: entries.len(),
        })?;
        let ReplyBody::WritebackDone { bytes, settled_at } = reply.body else {
            return Err(AmpomError::Transport("unexpected writeback reply".into()));
        };
        self.absorb(reply.deliveries);
        Ok((bytes, settled_at))
    }

    fn reply_utilization(&mut self, now: SimTime) -> f64 {
        match self.call(Call::Utilization { now }) {
            Ok(Reply {
                deliveries,
                body: ReplyBody::Utilization { value },
            }) => {
                self.absorb(deliveries);
                value
            }
            _ => 0.0,
        }
    }

    fn bytes_to_dest(&self) -> u64 {
        self.final_bytes.0
    }

    fn bytes_from_dest(&self) -> u64 {
        self.final_bytes.1
    }

    fn deputy_stats(&self) -> DeputyStats {
        self.final_deputy
    }

    fn fault_stats(&self) -> FaultStats {
        self.final_faults
    }

    fn drain_trace(&mut self) -> Vec<(SimTime, TraceKind, TraceData)> {
        // The runner drains trace exactly once, after its loop and
        // before reading the byte/deputy counters: use it as the final
        // synchronisation point.
        if let Ok(reply) = self.call(Call::Sync) {
            if let ReplyBody::Synced {
                bytes_to_dest,
                bytes_from_dest,
                deputy,
                faults,
            } = reply.body
            {
                self.final_bytes = (bytes_to_dest, bytes_from_dest);
                self.final_deputy = deputy;
                self.final_faults = faults;
            }
            self.absorb(reply.deliveries);
        }
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Coordinator.

/// A parked migrant call and whether its deputy side effect ran already
/// (a processed `Syscall`/`WaitFor` stays parked until its completion
/// commits).
struct Parked {
    call: Call,
    submitted: bool,
}

/// Coordinator-side chaos: one deterministic fate stream per migrant per
/// direction, one retry schedule per migrant (the migrant's demand-wait
/// timer, resolved eagerly because the coordinator knows each message's
/// fate at send time), and per-migrant fault accounting shipped to the
/// migrant at `Sync`.
struct ChaosState {
    profile: FaultProfile,
    request_plans: Vec<FaultPlan>,
    reply_plans: Vec<FaultPlan>,
    retries: Vec<RetrySchedule>,
    faults: Vec<FaultStats>,
}

impl ChaosState {
    /// Charges one timeout to migrant `i` and returns how long the timer
    /// ran before firing.
    fn charge_timeout(&mut self, i: usize) -> SimDuration {
        let stats = &mut self.faults[i];
        let sched = &mut self.retries[i];
        stats.timeouts += 1;
        let waited = sched.current_timeout();
        match sched.on_timeout() {
            RetryStep::Retry => stats.retries += 1,
            RetryStep::Degrade(_) => {
                stats.reconnects += 1;
                sched.begin_wait();
            }
        }
        waited
    }
}

struct Coordinator {
    md: MultiDeputy,
    paths: Vec<NetPath>,
    monitors: Vec<MonitorDaemon>,
    reply_tx: Vec<Sender<Reply>>,
    parked: Vec<Option<Parked>>,
    alive: Vec<bool>,
    n_alive: usize,
    delivery_buf: Vec<Deliveries>,
    /// Completed-but-unshipped syscall reply time, at most one per
    /// migrant (the runner forwards syscalls synchronously).
    syscall_ready: Vec<Option<SimTime>>,
    trace_on: bool,
    /// `None` without a (non-null) chaos profile: the zero-chaos path
    /// draws no fates and stays bit-identical to the pre-chaos code.
    chaos: Option<ChaosState>,
    admission: AdmissionConfig,
}

impl Coordinator {
    /// Index of the parked, not-yet-submitted call with the smallest
    /// `(time, migrant index)`.
    fn next_unsubmitted(&self) -> Option<usize> {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, slot) in self.parked.iter().enumerate() {
            if let Some(p) = slot {
                if !p.submitted {
                    let key = (p.call.at(), i);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Resolves a paging request's arrival at the deputy under the chaos
    /// profile: lost sends burn retry timeouts and re-send, delivered
    /// sends pick up jitter, and a request landing in deputy downtime
    /// waits out the outage (charged as recovery only when a demand page
    /// was stalling on it).
    fn chaos_request_arrival(
        &mut self,
        u: usize,
        now: SimTime,
        total_pages: usize,
        has_demand: bool,
    ) -> SimTime {
        let Some(chaos) = self.chaos.as_mut() else {
            return self.paths[u].send_request(now, total_pages);
        };
        chaos.retries[u].begin_wait();
        let mut send_at = now;
        loop {
            match chaos.request_plans[u].fate() {
                Fate::Dropped => {
                    self.paths[u].send_request_lost(send_at, total_pages);
                    chaos.faults[u].messages_dropped += 1;
                    send_at += chaos.charge_timeout(u);
                }
                Fate::Delivered { extra_delay } => {
                    let mut arrival =
                        self.paths[u].send_request(send_at, total_pages) + extra_delay;
                    if chaos.profile.downtime.is_down(arrival) {
                        chaos.faults[u].deputy_unavailable += 1;
                        let up = chaos.profile.downtime.next_up(arrival);
                        // The migrant's timer keeps firing into the
                        // outage; each firing is a timeout (the re-sends
                        // also land on a down deputy, so they are not
                        // re-modelled individually).
                        let mut deadline = chaos.retries[u].deadline_after(send_at);
                        while deadline < up {
                            chaos.charge_timeout(u);
                            deadline += chaos.retries[u].current_timeout();
                        }
                        if has_demand {
                            chaos.faults[u].recovery_time += up.saturating_since(arrival);
                        }
                        arrival = up;
                    }
                    return arrival;
                }
            }
        }
    }

    /// Turns one committed service event into its reply-link delivery.
    fn deliver(&mut self, c: Completion) {
        match c {
            Completion::Page {
                migrant,
                page,
                finish,
            } => {
                let i = migrant.idx0();
                // A deputy that is down cannot transmit: service events
                // finishing inside an outage sit on the home node until
                // the restart, then drain in commit order (so arrivals
                // stay nondecreasing — everything in one outage maps to
                // the same restart instant).
                let finish = match self.chaos.as_mut() {
                    Some(chaos) if chaos.profile.downtime.is_down(finish) => {
                        chaos.faults[i].deputy_unavailable += 1;
                        chaos.profile.downtime.next_up(finish)
                    }
                    _ => finish,
                };
                let extra = match self.chaos.as_mut() {
                    None => SimDuration::ZERO,
                    Some(chaos) => match chaos.reply_plans[i].fate() {
                        Fate::Delivered { extra_delay } => extra_delay,
                        Fate::Dropped => {
                            // The reply is lost in flight. The migrant's
                            // demand timer fires and it re-requests the
                            // page; the coordinator resolves that
                            // re-request eagerly (it knows the timeout
                            // deadline), so the page re-enters the shard
                            // queue and a later commit re-delivers it.
                            self.paths[i].send_page_lost(finish);
                            chaos.faults[i].messages_dropped += 1;
                            let waited = chaos.charge_timeout(i);
                            let resend_at = finish + waited;
                            let arrival = self.paths[i].send_request(resend_at, 1);
                            self.md.submit_request(migrant, arrival, &[page]);
                            return;
                        }
                    },
                };
                let arrival = self.paths[i].send_page(finish) + extra;
                self.delivery_buf[i].push((arrival, page));
            }
            Completion::Syscall { migrant, finish } => {
                let at = self.paths[migrant.idx0()].send_control_to_dest(finish, SYSCALL_MSG_BYTES);
                debug_assert!(self.syscall_ready[migrant.idx0()].is_none());
                self.syscall_ready[migrant.idx0()] = Some(at);
            }
        }
    }

    /// Commits everything allowed by the current horizon rules.
    fn commit_to_horizon(&mut self) {
        if self.n_alive == 1 {
            // One live migrant: a shard queue is FIFO and no other
            // migrant can submit, so eager commits cannot reorder
            // anything — and they reproduce the eager single-migrant
            // deputy's path state exactly.
            while let Some(c) = self.md.commit_next() {
                self.deliver(c);
            }
            return;
        }
        // Future submissions arrive strictly after the earliest
        // unprocessed clock (its own send adds link latency), so
        // everything starting at or before it is settled. `Sync` calls
        // are excluded: a synced migrant submits nothing more, so it
        // does not constrain (or license) commits.
        let horizon = self
            .parked
            .iter()
            .filter_map(|slot| slot.as_ref())
            .filter(|p| !p.submitted && !matches!(p.call, Call::Sync))
            .map(|p| p.call.at())
            .min();
        if let Some(h) = horizon {
            while let Some(c) = self.md.commit_next_bounded(Some(h)) {
                self.deliver(c);
            }
        }
    }

    /// Resumes every parked-blocked migrant whose wait just resolved.
    /// Returns true if any migrant was woken.
    fn wake_resolved(&mut self) -> bool {
        let mut woke = false;
        for i in 0..self.parked.len() {
            let Some(p) = self.parked[i].as_ref() else {
                continue;
            };
            if !p.submitted {
                continue;
            }
            let resolved = match &p.call {
                Call::WaitFor { page, .. } => {
                    self.delivery_buf[i].iter().any(|&(_, dp)| dp == *page)
                }
                Call::Syscall { .. } => self.syscall_ready[i].is_some(),
                _ => false,
            };
            if !resolved {
                continue;
            }
            let parked = self.parked[i].take().expect("checked above");
            let body = match parked.call {
                Call::WaitFor { .. } => ReplyBody::Ack,
                Call::Syscall { .. } => ReplyBody::SyscallDone {
                    at: self.syscall_ready[i].take().expect("checked above"),
                },
                _ => unreachable!("only waits block"),
            };
            self.respond(i, body);
            woke = true;
        }
        woke
    }

    fn respond(&mut self, i: usize, body: ReplyBody) {
        let deliveries = std::mem::take(&mut self.delivery_buf[i]);
        // A send failure means the migrant died; its Done is in flight.
        let _ = self.reply_tx[i].send(Reply { deliveries, body });
    }

    /// One coordinator action: runs when every live migrant is parked,
    /// and resumes at least one of them (or errors on a stuck protocol).
    fn step(&mut self) -> Result<(), AmpomError> {
        loop {
            self.commit_to_horizon();
            if self.wake_resolved() {
                return Ok(());
            }
            let Some(u) = self.next_unsubmitted() else {
                // Every parked call is blocked on the deputy: advance
                // service one event at a time until a wait resolves.
                // (Safe: the woken migrant's future submissions arrive
                // at or after its wake time, which is at or after every
                // finish committed here.)
                match self.md.commit_next() {
                    Some(c) => {
                        self.deliver(c);
                        continue;
                    }
                    None => {
                        return Err(AmpomError::Transport(
                            "multi-run deadlock: all migrants blocked on an idle deputy".into(),
                        ));
                    }
                }
            };
            let parked = self.parked[u].as_mut().expect("next_unsubmitted checked");
            match &parked.call {
                Call::Freeze {
                    scheme,
                    pre,
                    trace_on,
                } => {
                    let mut trace = if *trace_on && self.trace_on {
                        Trace::enabled()
                    } else {
                        Trace::disabled()
                    };
                    let (scheme, pre) = (*scheme, pre.clone());
                    let outcome = perform_freeze(scheme, &pre, &mut self.paths[u], &mut trace);
                    let events = trace.events().to_vec();
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::Frozen { outcome, events });
                    return Ok(());
                }
                Call::Request {
                    now,
                    total_pages,
                    submit,
                    demand,
                } => {
                    let (now, total_pages, submit, demand) =
                        (*now, *total_pages, submit.clone(), *demand);
                    let arrival = self.chaos_request_arrival(u, now, total_pages, demand.is_some());
                    let admission = self.admission;
                    let admitted = self.md.submit_request_admitted(
                        MigrantId(u as u32),
                        arrival,
                        &submit,
                        demand,
                        &admission,
                    );
                    self.parked[u] = None;
                    self.commit_to_horizon();
                    self.respond(
                        u,
                        ReplyBody::Accepted {
                            accepted: admitted.accepted,
                            shed: admitted.shed,
                        },
                    );
                    return Ok(());
                }
                Call::WaitFor { .. } => {
                    // No side effect: the request was already submitted.
                    // Park as blocked; commits will resolve it.
                    parked.submitted = true;
                    continue;
                }
                Call::Install { .. } => {
                    // Commits up to this migrant's clock already ran (it
                    // holds the minimum): every arrival at or before
                    // `now` is in its delivery buffer.
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::Ack);
                    return Ok(());
                }
                Call::Syscall { now, work } => {
                    let (now, work) = (*now, *work);
                    let at_home = self.paths[u].send_control_to_home(now, SYSCALL_MSG_BYTES);
                    self.md.submit_syscall(MigrantId(u as u32), at_home, work);
                    parked.submitted = true;
                    continue;
                }
                Call::Estimates { now } => {
                    let now = *now;
                    self.monitors[u].advance(now, &mut self.paths[u]);
                    let est = self.monitors[u].estimates();
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::Estimates { est });
                    return Ok(());
                }
                Call::WindowWrap { now, wraps } => {
                    let (now, wraps) = (*now, *wraps);
                    self.monitors[u].on_window_wrap(now, wraps, &self.paths[u]);
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::Ack);
                    return Ok(());
                }
                Call::Utilization { now } => {
                    let value = self.paths[u].reply_utilization(*now);
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::Utilization { value });
                    return Ok(());
                }
                Call::Writeback { now, pages } => {
                    // Background traffic: charge the member's link and
                    // answer immediately (no deputy queueing — the sink
                    // apply is not on the migrant's critical path).
                    let (now, pages) = (*now, *pages);
                    let bytes = writeback_batch_bytes(pages);
                    let settled_at = self.paths[u].send_control_to_home(now, bytes);
                    self.parked[u] = None;
                    self.respond(u, ReplyBody::WritebackDone { bytes, settled_at });
                    return Ok(());
                }
                Call::Sync => {
                    let body = ReplyBody::Synced {
                        bytes_to_dest: self.paths[u].bytes_to_dest(),
                        bytes_from_dest: self.paths[u].bytes_from_dest(),
                        deputy: self.md.shard_stats(MigrantId(u as u32)),
                        faults: self.chaos.as_ref().map(|c| c.faults[u]).unwrap_or_default(),
                    };
                    self.parked[u] = None;
                    self.respond(u, body);
                    return Ok(());
                }
                Call::Done => unreachable!("Done is consumed by the receive loop"),
            }
        }
    }
}

impl MigrantId {
    fn idx0(self) -> usize {
        self.0 as usize
    }
}

/// Executes `spec`: N migrant protocol loops, each on its own thread,
/// against one shared sharded deputy. Deterministic — the interleaving
/// is a pure function of the simulated clocks (see the module docs).
pub fn run_multi(spec: &MultiRunSpec) -> Result<MultiRunReport, AmpomError> {
    if spec.migrants.is_empty() {
        return Err(AmpomError::InvalidConfig(
            "a multi-run needs at least one migrant".into(),
        ));
    }
    validate_for_transport(&spec.cfg)?;
    for m in &spec.migrants {
        m.workload.validate()?;
    }
    if let Some(profile) = &spec.chaos {
        profile.validate()?;
    }
    spec.admission
        .validate()
        .map_err(AmpomError::InvalidConfig)?;

    let n = spec.migrants.len();
    let (call_tx, call_rx) = channel::<(MigrantId, Call)>();
    let mut reply_txs = Vec::with_capacity(n);
    let mut reply_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::<Reply>();
        reply_txs.push(tx);
        reply_rxs.push(Some(rx));
    }

    let mut paths = Vec::with_capacity(n);
    let mut monitors = Vec::with_capacity(n);
    for i in 0..n {
        let mut path = NetPath::new(spec.cfg.link);
        if let Some(ct) = spec.cfg.cross_traffic {
            path = path.with_cross_traffic(CrossTraffic::new(
                ct.bytes_per_sec,
                ct.burst_bytes,
                SimRng::seed_from_u64(derive_member_seed(spec.cfg.seed, i as u32)),
            ));
        }
        monitors.push(MonitorDaemon::new(&path));
        paths.push(path);
    }

    // Chaos state is built only for a non-null profile: the null path
    // draws zero fates, which is what keeps chaos-free runs bit-identical
    // to the pre-chaos coordinator.
    let chaos = spec.chaos.as_ref().filter(|p| !p.is_null()).map(|profile| {
        let rng = SimRng::seed_from_u64(spec.cfg.seed ^ CHAOS_SEED_SALT);
        ChaosState {
            profile: profile.clone(),
            request_plans: (0..n)
                .map(|i| FaultPlan::new(profile.faults, rng.fork(2 * i as u64)))
                .collect(),
            reply_plans: (0..n)
                .map(|i| FaultPlan::new(profile.faults, rng.fork(2 * i as u64 + 1)))
                .collect(),
            retries: (0..n)
                .map(|_| RetrySchedule::for_link(profile.retry, profile.policy, spec.cfg.link))
                .collect(),
            faults: vec![FaultStats::default(); n],
        }
    });

    let mut coord = Coordinator {
        md: MultiDeputy::with_drr(n, spec.drr),
        paths,
        monitors,
        reply_tx: reply_txs,
        parked: (0..n).map(|_| None).collect(),
        alive: vec![true; n],
        n_alive: n,
        delivery_buf: vec![Vec::new(); n],
        syscall_ready: vec![None; n],
        trace_on: spec.cfg.trace,
        chaos,
        admission: spec.admission,
    };

    thread::scope(|scope| -> Result<MultiRunReport, AmpomError> {
        let mut workers = Vec::with_capacity(n);
        for (i, migrant) in spec.migrants.iter().enumerate() {
            let cfg = spec.cfg.clone();
            let workload = migrant.workload.clone();
            let seed = migrant.seed;
            let tx = call_tx.clone();
            let rx = reply_rxs[i].take().expect("each receiver moved once");
            workers.push(scope.spawn(move || {
                let id = MigrantId(i as u32);
                let done_tx = tx.clone();
                let result = (|| -> Result<RunReport, AmpomError> {
                    let mut w = workload.build(seed)?;
                    let mut handle = MigrantHandle::new(id, tx, rx);
                    run_with_transport(w.as_mut(), &cfg, &mut handle)
                })();
                let _ = done_tx.send((id, Call::Done));
                result
            }));
        }
        drop(call_tx);

        let coordination = (|| -> Result<(), AmpomError> {
            while coord.n_alive > 0 {
                // Wait until every live migrant is parked (or exits).
                loop {
                    let parked_count = coord.parked.iter().filter(|p| p.is_some()).count();
                    if parked_count >= coord.n_alive {
                        break;
                    }
                    let (id, call) = call_rx.recv().map_err(|_| {
                        AmpomError::Transport("multi-run migrant thread lost".into())
                    })?;
                    let i = id.idx0();
                    if matches!(call, Call::Done) {
                        if coord.alive[i] {
                            coord.alive[i] = false;
                            coord.n_alive -= 1;
                            debug_assert!(coord.parked[i].is_none());
                        }
                    } else {
                        coord.parked[i] = Some(Parked {
                            call,
                            submitted: false,
                        });
                    }
                }
                if coord.n_alive == 0 {
                    break;
                }
                coord.step()?;
            }
            Ok(())
        })();
        // Drop reply senders so a worker stuck on recv errors out
        // instead of deadlocking if coordination failed.
        coord.reply_tx.clear();

        let mut reports = Vec::with_capacity(n);
        for w in workers {
            let report = w
                .join()
                .map_err(|_| AmpomError::Transport("multi-run migrant thread panicked".into()))?;
            reports.push(report?);
        }
        coordination?;

        let shard_stats: Vec<DeputyStats> = (0..n)
            .map(|i| coord.md.shard_stats(MigrantId(i as u32)))
            .collect();
        let service_shares: Vec<f64> = (0..n)
            .map(|i| coord.md.service_share(MigrantId(i as u32)))
            .collect();
        let pages_coalesced: Vec<u64> = (0..n)
            .map(|i| coord.md.pages_coalesced(MigrantId(i as u32)))
            .collect();
        let makespan = reports
            .iter()
            .map(|r| r.total_time)
            .max()
            .unwrap_or(SimDuration::ZERO);
        Ok(MultiRunReport {
            reports,
            shard_stats,
            deputy: coord.md.aggregate_stats(),
            service_shares,
            pages_coalesced,
            makespan,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimulatedTransport;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec::Sequential {
            pages: 192,
            cpu: SimDuration::from_micros(10),
        }
    }

    fn solo_fingerprint(cfg: &RunConfig, spec: &WorkloadSpec, seed: u64) -> u64 {
        let mut w = spec.build(seed).expect("valid workload");
        let mut t = SimulatedTransport::new(cfg);
        run_with_transport(w.as_mut(), cfg, &mut t)
            .expect("valid config")
            .fingerprint()
    }

    #[test]
    fn n1_multi_run_is_bit_identical_to_simulated_transport() {
        for scheme in [Scheme::Ampom, Scheme::NoPrefetch, Scheme::OpenMosix] {
            let cfg = RunConfig::new(scheme);
            let solo = solo_fingerprint(&cfg, &quick_spec(), 7);
            let multi = run_multi(&MultiRunSpec::homogeneous(cfg, quick_spec(), 7, 1))
                .expect("multi-run succeeds");
            assert_eq!(
                multi.reports[0].fingerprint(),
                solo,
                "N=1 multi-run drifted from the single-migrant path for {scheme:?}"
            );
        }
    }

    #[test]
    fn n1_with_syscalls_and_series_is_bit_identical() {
        let mut cfg = RunConfig::new(Scheme::Ampom);
        cfg.syscalls = Some(crate::runner::SyscallProfile {
            every_refs: 37,
            work: SimDuration::from_micros(3),
        });
        cfg.sample_series_every = Some(5);
        cfg.trace = true;
        let solo = solo_fingerprint(&cfg, &quick_spec(), 11);
        let multi = run_multi(&MultiRunSpec::homogeneous(cfg, quick_spec(), 11, 1))
            .expect("multi-run succeeds");
        assert_eq!(multi.reports[0].fingerprint(), solo);
    }

    #[test]
    fn four_migrants_complete_and_report_fair_shares() {
        let cfg = RunConfig::new(Scheme::Ampom);
        let report = run_multi(&MultiRunSpec::homogeneous(cfg, quick_spec(), 42, 4))
            .expect("multi-run succeeds");
        assert_eq!(report.migrants(), 4);
        let share_sum: f64 = report.service_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        // Identical workloads: DRR must keep them close to even.
        assert!(
            report.fairness_ratio() < 1.5,
            "fairness ratio {} for identical workloads",
            report.fairness_ratio()
        );
        let sat = report.saturation();
        assert!(sat > 0.0 && sat <= 1.0, "saturation {sat}");
        // Shard stats sum exactly to the aggregate.
        let q: u64 = report.shard_stats.iter().map(|s| s.queued_requests).sum();
        assert_eq!(q, report.deputy.queued_requests);
        let busy: SimDuration = report.shard_stats.iter().map(|s| s.busy_time).sum();
        assert_eq!(busy, report.deputy.busy_time);
    }

    #[test]
    fn multi_runs_are_deterministic_across_invocations() {
        let cfg = RunConfig::new(Scheme::Ampom);
        let spec = MultiRunSpec::homogeneous(cfg, quick_spec(), 9, 3);
        let a = run_multi(&spec).expect("first run");
        let b = run_multi(&spec).expect("second run");
        let fa: Vec<u64> = a.reports.iter().map(|r| r.fingerprint()).collect();
        let fb: Vec<u64> = b.reports.iter().map(|r| r.fingerprint()).collect();
        assert_eq!(fa, fb, "thread scheduling leaked into the results");
        assert_eq!(a.deputy, b.deputy);
    }

    #[test]
    fn contended_migrants_slow_down_but_terminate() {
        let cfg = RunConfig::new(Scheme::NoPrefetch);
        let solo = {
            let mut w = quick_spec().build(5).expect("valid workload");
            let mut t = SimulatedTransport::new(&cfg);
            run_with_transport(w.as_mut(), &cfg, &mut t).expect("solo run")
        };
        let multi = run_multi(&MultiRunSpec::homogeneous(cfg, quick_spec(), 5, 4))
            .expect("multi-run succeeds");
        for r in &multi.reports {
            assert!(
                r.total_time >= solo.total_time,
                "a contended run beat the solo baseline: {:?} < {:?}",
                r.total_time,
                solo.total_time
            );
        }
    }

    #[test]
    fn empty_spec_is_rejected() {
        let spec = MultiRunSpec {
            cfg: RunConfig::new(Scheme::Ampom),
            migrants: Vec::new(),
            drr: DrrConfig::default(),
            chaos: None,
            admission: AdmissionConfig::default(),
        };
        assert!(matches!(
            run_multi(&spec),
            Err(AmpomError::InvalidConfig(_))
        ));
    }
}
