//! Propcheck suite for the bidirectional page lifecycle (PR 8).
//!
//! Three properties pin the subsystem:
//!
//! 1. **Dirty-page conservation** — across random workloads, away
//!    fractions and every chaos scenario (message loss, burst loss,
//!    deputy restarts mid-storm), the writeback protocol lands exactly
//!    the final version of every dirtied page at the home sink.
//! 2. **Forward-only identity** — a [`RunConfig`] without writeback is
//!    bit-identical to the pre-lifecycle goldens: the new subsystem is
//!    invisible unless asked for.
//! 3. **Replica equivalence** — an [`MptReplica`] driven by the same
//!    transfer/writeback/return events as the authoritative
//!    [`PageTablePair`] never serves a stale answer.

use ampom_core::chaos;
use ampom_core::experiment::WorkloadSpec;
use ampom_core::lifecycle::{run_lifecycle, LifecycleConfig};
use ampom_core::runner::RunConfig;
use ampom_core::transport::{run_with_transport, SimulatedTransport};
use ampom_core::Scheme;
use ampom_mem::page::PageId;
use ampom_mem::replica::MptReplica;
use ampom_mem::table::{PageLocation, PageTablePair};
use ampom_sim::propcheck::forall;
use ampom_sim::time::SimDuration;
use ampom_workloads::sizes::{Kernel, ProblemSize};
use ampom_workloads::synthetic::{SequentialWrite, UniformRandom};

// ---------------------------------------------------------------------
// 1. Dirty-page conservation under chaos.
// ---------------------------------------------------------------------

/// The chaos scenarios the acceptance criteria name, plus the null
/// profile (a reliable link) as the control.
const STORMS: [Option<&str>; 3] = [
    None,
    Some("flaky-link-storm"),
    Some("deputy-restart-midstorm"),
];

fn lifecycle_cfg(storm: Option<&str>) -> RunConfig {
    let cfg = RunConfig::new(Scheme::Ampom);
    match storm {
        None => cfg,
        Some(name) => {
            let sc = chaos::scenario(name).expect("scenario exists");
            let profile = sc.profile().expect("storm scenarios carry a profile");
            cfg.with_faults(profile.clone())
        }
    }
}

#[test]
fn conservation_holds_for_sweeps_under_every_storm() {
    forall("lifecycle-conservation-sweep", 24, |g| {
        let storm = *g.choose(&STORMS);
        let pages = g.u64(64..1024);
        let frac = 0.2 + 0.6 * g.unit_f64();
        let mut w = SequentialWrite::new(pages, SimDuration::from_micros(15));
        let report = run_lifecycle(&mut w, &lifecycle_cfg(storm), &LifecycleConfig::new(frac));
        report.check_conservation();
        assert!(
            report.pages_dirtied > 0,
            "a stores-only sweep must dirty pages ({storm:?})"
        );
    });
}

#[test]
fn conservation_holds_for_random_writers_under_every_storm() {
    forall("lifecycle-conservation-random", 24, |g| {
        let storm = *g.choose(&STORMS);
        let pages = g.u64(64..512);
        let touches = g.u64(200..2000);
        let frac = 0.2 + 0.6 * g.unit_f64();
        let rng = g.rng().fork(0x11fe);
        let mut w = UniformRandom::new(pages, touches, SimDuration::from_micros(15), rng);
        let report = run_lifecycle(&mut w, &lifecycle_cfg(storm), &LifecycleConfig::new(frac));
        report.check_conservation();
    });
}

#[test]
fn deputy_restarts_are_survived_not_avoided() {
    // The restart scenario must actually exercise the replay path at
    // least once across the seeds, or the suite is vacuous.
    let mut restarts = 0;
    for seed in 0..8u64 {
        let pages = 256 + seed * 64;
        let mut w = SequentialWrite::new(pages, SimDuration::from_micros(15));
        let report = run_lifecycle(
            &mut w,
            &lifecycle_cfg(Some("deputy-restart-midstorm")),
            &LifecycleConfig::new(0.7),
        );
        report.check_conservation();
        restarts += report.sink_restarts;
    }
    assert!(restarts > 0, "the storm never restarted the deputy sink");
}

// ---------------------------------------------------------------------
// 2. Forward-only identity: writeback off ⇒ bit-identical to goldens.
// ---------------------------------------------------------------------

/// The pre-lifecycle fingerprints from the multi-migrant golden harness
/// (`multi_identity.rs`), duplicated here on purpose: if an intentional
/// re-capture ever touches one table but not the other, this suite
/// flags the drift.
const GOLDENS: [(Kernel, Scheme, u64); 12] = [
    (Kernel::Dgemm, Scheme::Ampom, 0x88fbf10bfb8e1f97),
    (Kernel::Dgemm, Scheme::NoPrefetch, 0x3722ae905f44322e),
    (Kernel::Dgemm, Scheme::OpenMosix, 0x870b266e66ae3e69),
    (Kernel::Stream, Scheme::Ampom, 0x4d941b9d030acd1d),
    (Kernel::Stream, Scheme::NoPrefetch, 0x871d0ec60a0221b6),
    (Kernel::Stream, Scheme::OpenMosix, 0x577596eac700554e),
    (Kernel::RandomAccess, Scheme::Ampom, 0xb584e9e36c4d60e3),
    (Kernel::RandomAccess, Scheme::NoPrefetch, 0x53b8eba36e08173e),
    (Kernel::RandomAccess, Scheme::OpenMosix, 0x6c446c83958c2662),
    (Kernel::Fft, Scheme::Ampom, 0x95cc291f5a8172b1),
    (Kernel::Fft, Scheme::NoPrefetch, 0xba1d1e8746d27b9c),
    (Kernel::Fft, Scheme::OpenMosix, 0xb784448113d03781),
];

const SEED: u64 = 42;
const QUICK: ProblemSize = ProblemSize {
    problem: 0,
    memory_mb: 4,
};

#[test]
fn forward_only_runs_match_the_pre_lifecycle_goldens() {
    for (kernel, scheme, golden) in GOLDENS {
        let cfg = RunConfig::new(scheme);
        assert!(
            cfg.writeback.is_none(),
            "writeback must stay opt-in: the default config carries none"
        );
        let mut w = WorkloadSpec::kernel(kernel, QUICK)
            .build(SEED)
            .expect("valid kernel spec");
        let mut t = SimulatedTransport::new(&cfg);
        let fp = run_with_transport(w.as_mut(), &cfg, &mut t)
            .expect("transport-compatible config")
            .fingerprint();
        assert_eq!(
            fp, golden,
            "forward-only {kernel:?}/{scheme:?} drifted from its golden \
             fingerprint — the lifecycle subsystem leaked into forward runs"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Replica/table equivalence under random interleavings.
// ---------------------------------------------------------------------

#[test]
fn replica_agrees_with_the_table_under_random_interleavings() {
    forall("mpt-replica-equivalence", 96, |g| {
        let pages = g.u64(8..64);
        let mut table = PageTablePair::at_migration((0..pages).map(PageId));
        let mut replica = MptReplica::from_table(&table);

        let steps = g.usize(20..160);
        for _ in 0..steps {
            let page = PageId(g.u64(0..pages + 4)); // some unmapped ids too
            match g.u64(0..6) {
                // Transfer events: page moves to the remote node.
                0 => {
                    if matches!(
                        table.lookup(page),
                        Some(PageLocation::Origin) | Some(PageLocation::FileServer)
                    ) {
                        table.transfer_to_destination(page);
                        replica.invalidate(page);
                    }
                }
                // Writeback / home-return events: page moves home.
                1 => {
                    if table.lookup(page) == Some(PageLocation::Destination) {
                        table.return_to_origin(page);
                        replica.invalidate(page);
                    }
                }
                // FFA flush events.
                2 => {
                    if table.lookup(page) == Some(PageLocation::Origin) {
                        table.flush_to_file_server(page);
                        replica.invalidate(page);
                    }
                }
                // Remote zero-fill allocations of fresh pages.
                3 => {
                    if table.lookup(page).is_none() {
                        table.create_at_destination(page);
                        replica.invalidate(page);
                    }
                }
                // Update-log batches arriving out of band.
                4 => {
                    let batch: Vec<PageId> = (0..g.usize(1..4))
                        .map(|_| PageId(g.u64(0..pages)))
                        .collect();
                    for &p in &batch {
                        if table.lookup(p) == Some(PageLocation::Destination) {
                            table.return_to_origin(p);
                        }
                    }
                    replica.apply_updates(batch);
                }
                // Hot lookups between events must agree bit-for-bit.
                _ => {
                    assert_eq!(
                        replica.lookup(page, &table),
                        table.lookup(page),
                        "replica answer diverged on {page}"
                    );
                }
            }
            table.check_invariants();
        }

        // Every surviving valid entry must still match the authority.
        replica.check_equivalence(&table);

        // And a full sweep after the dust settles: lazy refreshes heal
        // every invalidated entry back to the truth.
        for p in 0..pages + 4 {
            let page = PageId(p);
            assert_eq!(replica.lookup(page, &table), table.lookup(page));
        }
    });
}
