//! The observability layer's two load-bearing guarantees (DESIGN.md §11):
//!
//! 1. **Zero perturbation** — enabling tracing/series sampling and
//!    exporting metrics must never change what a run *measures*. The
//!    fingerprint (an exact mix over every counter and nanosecond total)
//!    must be bit-identical with observability on or off, for every
//!    scheme and under fault injection. Golden values pin today's
//!    fingerprints so the guarantee holds against pre-observability
//!    `main`, not merely self-consistently.
//!
//! 2. **Exact phase attribution** — the per-phase breakdown is a
//!    *partition* of the run: the eight disjoint phases sum to the total
//!    simulated time exactly (the CLI's 1% tolerance is pure slack for
//!    wall-clock rounding on the live transport), recovery is carved out
//!    of stall time, and the prefetch-overlap diagnostic can never
//!    exceed compute.

use ampom_core::reliability::FaultProfile;
use ampom_core::runner::{run_workload, RunConfig, SyscallProfile};
use ampom_core::transport::{run_with_transport, SimulatedTransport};
use ampom_core::{RunReport, Scheme};
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;
use ampom_workloads::memref::Workload;
use ampom_workloads::synthetic::{Scripted, Sequential, UniformRandom};

const CPU: SimDuration = SimDuration::from_micros(10);

/// A deferred workload constructor, so each sweep entry can be run
/// several times (base, traced, sampled) on fresh reference streams.
type MakeWorkload = Box<dyn Fn() -> Box<dyn Workload>>;

/// Golden fingerprints captured on `main` immediately before the
/// observability layer landed (release build). Any drift here means
/// instrumentation changed what a run measures.
const GOLD_SEQ512_OM: u64 = 0x9a276cbafa3a36d5;
const GOLD_SEQ512_NOPF: u64 = 0xc5f6a86a554a782a;
const GOLD_SEQ512_AMPOM: u64 = 0xef7c94edaf2703bf;
const GOLD_SEQ512_FFA: u64 = 0xeff6bb89b4c3d41e;
const GOLD_RAND_AMPOM: u64 = 0x0b7f6cffc5d27ea5;
const GOLD_PRESSURE: u64 = 0xb1835e304ae556ae;
const GOLD_FAULTY: u64 = 0x6b34c7e509aed884;

fn seq512() -> Sequential {
    Sequential::new(512, CPU)
}

fn rand512() -> UniformRandom {
    UniformRandom::new(512, 4096, CPU, SimRng::seed_from_u64(7))
}

fn pressure_workload() -> Scripted {
    let refs: Vec<u64> = (0..256).chain(0..256).collect();
    Scripted::new(256, &refs, CPU)
}

fn pressure_cfg() -> RunConfig {
    RunConfig::new(Scheme::Ampom).with_resident_limit_mb(1)
}

fn faulty_cfg() -> RunConfig {
    RunConfig::new(Scheme::Ampom)
        .with_faults(FaultProfile::lossy(0.05))
        .with_seed(1337)
}

/// Every configuration the invariance sweep covers: all schemes, a
/// random-access pattern, memory pressure, forwarded syscalls, and a
/// lossy fault profile.
fn sweep() -> Vec<(&'static str, MakeWorkload, RunConfig)> {
    let mk_seq = || -> Box<dyn Workload> { Box::new(seq512()) };
    vec![
        (
            "openmosix",
            Box::new(mk_seq) as MakeWorkload,
            RunConfig::new(Scheme::OpenMosix),
        ),
        (
            "noprefetch",
            Box::new(mk_seq),
            RunConfig::new(Scheme::NoPrefetch),
        ),
        ("ampom", Box::new(mk_seq), RunConfig::new(Scheme::Ampom)),
        ("ffa", Box::new(mk_seq), RunConfig::new(Scheme::Ffa)),
        (
            "ampom_rand",
            Box::new(|| -> Box<dyn Workload> { Box::new(rand512()) }),
            RunConfig::new(Scheme::Ampom),
        ),
        (
            "pressure",
            Box::new(|| -> Box<dyn Workload> { Box::new(pressure_workload()) }),
            pressure_cfg(),
        ),
        (
            "syscalls",
            Box::new(mk_seq),
            RunConfig::new(Scheme::Ampom).with_syscalls(SyscallProfile {
                every_refs: 32,
                work: SimDuration::from_micros(100),
            }),
        ),
        ("faulty", Box::new(mk_seq), faulty_cfg()),
    ]
}

fn run(mk: &dyn Fn() -> Box<dyn Workload>, cfg: &RunConfig) -> RunReport {
    let mut w = mk();
    run_workload(&mut *w, cfg)
}

#[test]
fn fingerprints_match_pre_observability_main() {
    assert_eq!(
        run_workload(&mut seq512(), &RunConfig::new(Scheme::OpenMosix)).fingerprint(),
        GOLD_SEQ512_OM
    );
    assert_eq!(
        run_workload(&mut seq512(), &RunConfig::new(Scheme::NoPrefetch)).fingerprint(),
        GOLD_SEQ512_NOPF
    );
    assert_eq!(
        run_workload(&mut seq512(), &RunConfig::new(Scheme::Ampom)).fingerprint(),
        GOLD_SEQ512_AMPOM
    );
    assert_eq!(
        run_workload(&mut seq512(), &RunConfig::new(Scheme::Ffa)).fingerprint(),
        GOLD_SEQ512_FFA
    );
    assert_eq!(
        run_workload(&mut rand512(), &RunConfig::new(Scheme::Ampom)).fingerprint(),
        GOLD_RAND_AMPOM
    );
    assert_eq!(
        run_workload(&mut pressure_workload(), &pressure_cfg()).fingerprint(),
        GOLD_PRESSURE
    );
    assert_eq!(
        run_workload(&mut seq512(), &faulty_cfg()).fingerprint(),
        GOLD_FAULTY
    );
}

/// The satellite property: enabling tracing (and series sampling, and a
/// post-run metrics export) never changes a fingerprint, across every
/// scheme and a faulty profile.
#[test]
fn observability_never_changes_fingerprints() {
    for (name, mk, cfg) in sweep() {
        let base = run(&*mk, &cfg).fingerprint();

        let traced_cfg = cfg.clone().with_trace();
        let traced = run(&*mk, &traced_cfg);
        assert!(
            !traced.trace.events().is_empty(),
            "{name}: tracing was enabled but recorded nothing"
        );
        assert_eq!(
            traced.fingerprint(),
            base,
            "{name}: enabling the trace changed the measurement"
        );

        let sampled_cfg = cfg.clone().with_trace().with_sample_series(4);
        let sampled = run(&*mk, &sampled_cfg);
        assert_eq!(
            sampled.fingerprint(),
            base,
            "{name}: series sampling changed the measurement"
        );

        // Exporting metrics is pull-based and post-run; it cannot feed
        // back, but pin that reading every gauge leaves the report's
        // fingerprint untouched.
        let mut reg = ampom_obs::MetricsRegistry::new();
        ampom_obs::MetricSource::export_metrics(&sampled, &mut reg);
        assert!(!reg.is_empty());
        assert_eq!(
            sampled.fingerprint(),
            base,
            "{name}: metrics export fed back"
        );
    }
}

/// The eight phases are a partition: they sum to the total *exactly* for
/// every simulated configuration, recovery never exceeds stall, and the
/// overlap diagnostic never exceeds compute.
#[test]
fn phase_breakdown_partitions_the_run_exactly() {
    for (name, mk, cfg) in sweep() {
        let r = run(&*mk, &cfg);
        assert_eq!(
            r.phases.total(),
            r.total_time,
            "{name}: phases do not partition the run"
        );
        assert_eq!(r.phases.freeze, r.freeze_time, "{name}: freeze mismatch");
        assert_eq!(r.phases.compute, r.compute_time, "{name}: compute mismatch");
        assert_eq!(r.phases.syscall, r.syscall_time, "{name}: syscall mismatch");
        assert_eq!(
            r.phases.fault_stall + r.phases.recovery,
            r.stall_time,
            "{name}: recovery is not carved out of stall"
        );
        assert!(
            r.phases.prefetch_overlap <= r.phases.compute,
            "{name}: overlap exceeds compute"
        );
    }
}

/// The transport loop reproduces both guarantees: identical phases and
/// fingerprints to the legacy runner for transport-compatible configs.
#[test]
fn transport_loop_reports_identical_phases() {
    for (name, mk, cfg) in sweep() {
        if cfg.faults.is_some() || cfg.resident_limit_mb.is_some() || cfg.scheme == Scheme::Ffa {
            continue; // the transport loop rejects these by contract
        }
        let legacy = run(&*mk, &cfg);
        let mut w = mk();
        let mut t = SimulatedTransport::new(&cfg);
        let via_transport = run_with_transport(&mut *w, &cfg, &mut t).expect("compatible config");
        assert_eq!(
            via_transport.fingerprint(),
            legacy.fingerprint(),
            "{name}: transport fingerprint diverged"
        );
        assert_eq!(
            via_transport.phases, legacy.phases,
            "{name}: transport phase attribution diverged"
        );
        assert_eq!(via_transport.phases.total(), via_transport.total_time);
    }
}
