//! Golden-value tests for the paper's two central equations.
//!
//! Eq. 1 (the spatial locality score `S`) and Eq. 3 (the dependent-zone
//! size `N`) are checked against values worked out by hand — including
//! the paper's own §3.2 example — with the network terms taken from the
//! Fast Ethernet calibration the experiments use. Any change to the
//! formulas, the census, or the calibration constants moves these exact
//! numbers and fails loudly.

use ampom_core::census::census;
use ampom_core::score::spatial_score;
use ampom_core::zone::{dependent_zone_size, select_zone, ZoneSizeInputs};
use ampom_mem::page::PageId;
use ampom_net::calibration::{FAST_ETHERNET_GOODPUT, LAN_LATENCY, PAGE_SIZE, REPLY_HEADER_BYTES};
use ampom_sim::time::SimDuration;

const DMAX: usize = 4;

/// `td` for one 4 KB page on the calibrated Fast Ethernet link:
/// (4096 + 300) bytes at 11.2 MB/s = 392.5 µs exactly.
fn fast_ethernet_td() -> SimDuration {
    let ns = (PAGE_SIZE + REPLY_HEADER_BYTES) as f64 / FAST_ETHERNET_GOODPUT as f64 * 1e9;
    SimDuration::from_nanos(ns.round() as u64)
}

#[test]
fn eq1_paper_worked_example_is_exactly_one_quarter() {
    // §3.2: W = {10, 99, 11, 34, 12, 85}; pages 10, 11, 12 participate in
    // stride-2 links, so S = 3/(6·2) = 0.25.
    let c = census(&[10, 99, 11, 34, 12, 85], DMAX);
    assert_eq!(spatial_score(&c), 0.25);
}

#[test]
fn eq1_pure_sequential_is_exactly_one() {
    let pages: Vec<u64> = (1..=20).collect();
    assert_eq!(spatial_score(&census(&pages, DMAX)), 1.0);
}

#[test]
fn eq1_two_lane_interleave_is_exactly_one_half() {
    // Two interleaved sequential streams: every reference participates in
    // a stride-2 link, so S = 6/(6·2) = 0.5.
    let c = census(&[100, 200, 101, 201, 102, 202], DMAX);
    assert_eq!(spatial_score(&c), 0.5);
}

#[test]
fn eq1_seven_reference_example_is_four_fourteenths() {
    // {1,99,2,45,3,78,4}: references 1, 2, 3, 4 participate in stride-2
    // links → S = 4/(7·2).
    let c = census(&[1, 99, 2, 45, 3, 78, 4], DMAX);
    assert!((spatial_score(&c) - 4.0 / 14.0).abs() < 1e-15);
}

#[test]
fn eq1_random_window_is_exactly_zero() {
    let c = census(&[77, 3001, 12, 950, 444, 18, 7002], DMAX);
    assert_eq!(spatial_score(&c), 0.0);
}

#[test]
fn eq3_golden_value_on_fast_ethernet() {
    // S = 0.5, r = 20 000 faults/s, c'/c = 1 on the calibrated LAN:
    //   t = 2·120 µs + 392.5 µs + 50 µs = 682.5 µs
    //   N = 0.5 · 20 000 · 682.5e-6 = 6.825
    let inputs = ZoneSizeInputs {
        spatial_score: 0.5,
        paging_rate: 20_000.0,
        mean_cpu: 1.0,
        next_cpu: 1.0,
        t0: LAN_LATENCY,
        td: fast_ethernet_td(),
    };
    let n = dependent_zone_size(&inputs);
    assert!((n - 6.825).abs() < 1e-9, "N = {n}");
}

#[test]
fn eq3_cpu_ratio_scales_linearly() {
    // Halving the observed CPU share doubles N (c'/c term), exactly.
    let base = ZoneSizeInputs {
        spatial_score: 0.5,
        paging_rate: 20_000.0,
        mean_cpu: 1.0,
        next_cpu: 1.0,
        t0: LAN_LATENCY,
        td: fast_ethernet_td(),
    };
    let boosted = ZoneSizeInputs {
        mean_cpu: 0.5,
        ..base
    };
    let n0 = dependent_zone_size(&base);
    let n1 = dependent_zone_size(&boosted);
    assert!((n1 - 2.0 * n0).abs() < 1e-9);
}

#[test]
fn eq3_sequential_stream_on_lan_prefetches_a_handful() {
    // The headline behaviour the calibration is built around: a fully
    // sequential process (S = 1) faulting every 50 µs on the LAN wants
    // N = 1 · 20 000 · 682.5e-6 = 13.65 pages per analysis — a dependent
    // zone of roughly a dozen pages, matching Figure 8's LAN budgets.
    let inputs = ZoneSizeInputs {
        spatial_score: 1.0,
        paging_rate: 20_000.0,
        mean_cpu: 1.0,
        next_cpu: 1.0,
        t0: LAN_LATENCY,
        td: fast_ethernet_td(),
    };
    let n = dependent_zone_size(&inputs);
    assert!((n - 13.65).abs() < 1e-9, "N = {n}");
}

#[test]
fn zone_selection_golden_paper_pivots() {
    // §3.4's worked window: the outstanding streams pivot at 16, 5 and 6;
    // budget 3 gives each pivot exactly one page.
    let c = census(&[13, 27, 7, 8, 14, 8, 3, 15, 4, 5], DMAX);
    let zone = select_zone(&c.outstanding, 3, PageId(5), PageId(1_000));
    let mut got: Vec<u64> = zone.iter().map(|p| p.index()).collect();
    got.sort_unstable();
    assert_eq!(got, vec![5, 6, 16]);
}
