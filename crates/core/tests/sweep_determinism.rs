//! Determinism proof for the parallel sweep engine.
//!
//! The engine's contract is that parallelism is *invisible in the
//! results*: a sweep run on any number of worker threads is byte-for-byte
//! identical to the same sweep run serially, because every cell's seed is
//! derived from its grid coordinates, never from scheduling order. These
//! tests run the same spec serially and across several thread counts and
//! compare full report fingerprints (and the underlying numbers), plus —
//! on hosts with enough cores — check that the parallelism actually buys
//! wall-clock time.

use ampom_core::experiment::WorkloadSpec;
use ampom_core::migration::Scheme;
use ampom_core::sweep::SweepSpec;
use ampom_sim::time::SimDuration;

fn demo_spec() -> SweepSpec {
    SweepSpec::new()
        .workloads(vec![
            WorkloadSpec::Sequential {
                pages: 300,
                cpu: SimDuration::from_micros(15),
            },
            WorkloadSpec::UniformRandom {
                pages: 256,
                touches: 600,
                cpu: SimDuration::from_micros(15),
            },
            WorkloadSpec::Interleaved {
                streams: 3,
                stream_pages: 120,
                cpu: SimDuration::from_micros(15),
            },
        ])
        .repeats(3)
        .seed(0xDE7E_2217)
}

#[test]
fn parallel_is_bit_identical_to_serial_at_every_thread_count() {
    let spec = demo_spec();
    let serial = spec.run_serial().expect("spec is valid");
    for threads in [2usize, 3, 5, 16] {
        let parallel = spec.clone().threads(threads).run().expect("spec is valid");
        assert_eq!(
            parallel.fingerprint(),
            serial.fingerprint(),
            "{threads}-thread sweep diverged from the serial reference"
        );
        // The fingerprint covers the integer run facts; spot-check the
        // derived statistics too.
        for (p, s) in parallel.cells.iter().zip(serial.cells.iter()) {
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.workload, s.workload);
            assert_eq!(p.summary.mean_total_s, s.summary.mean_total_s);
            assert_eq!(p.summary.p99_total_s, s.summary.p99_total_s);
            assert_eq!(p.summary.ci95_total_s, s.summary.ci95_total_s);
        }
    }
}

#[test]
fn rerunning_the_same_spec_is_reproducible() {
    let spec = demo_spec();
    let a = spec.run().expect("spec is valid");
    let b = spec.run().expect("spec is valid");
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn seed_changes_the_stochastic_results() {
    let base = demo_spec().run().expect("spec is valid");
    let reseeded = demo_spec().seed(1).run().expect("spec is valid");
    // UniformRandom runs must differ under a different base seed; the
    // whole-report fingerprints therefore differ.
    assert_ne!(base.fingerprint(), reseeded.fingerprint());
    // ... while the deterministic Sequential workload is untouched by the
    // reference-stream seed.
    let seq_a = base.find(Scheme::Ampom, "Sequential(300)").expect("cell");
    let seq_b = reseeded
        .find(Scheme::Ampom, "Sequential(300)")
        .expect("cell");
    assert_eq!(seq_a.summary.mean_total_s, seq_b.summary.mean_total_s);
}

#[test]
fn multicore_hosts_see_real_speedup() {
    // The acceptance demo: on a multi-core host the pool must beat the
    // serial loop on wall-clock. Single-core CI machines can't show a
    // speedup, so the assertion is gated on available parallelism.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let spec = SweepSpec::new()
        .workloads(vec![
            WorkloadSpec::Sequential {
                pages: 2_000,
                cpu: SimDuration::from_micros(15),
            },
            WorkloadSpec::UniformRandom {
                pages: 1_024,
                touches: 4_000,
                cpu: SimDuration::from_micros(15),
            },
        ])
        .repeats(4)
        .seed(7);
    let t0 = std::time::Instant::now();
    let serial = spec.run_serial().expect("spec is valid");
    let serial_wall = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = spec.run().expect("spec is valid");
    let parallel_wall = t0.elapsed();
    assert_eq!(parallel.fingerprint(), serial.fingerprint());
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    eprintln!("sweep speedup on {cores} cores: {speedup:.2}x");
    assert!(
        speedup > 1.2,
        "expected parallel speedup on {cores} cores, got {speedup:.2}x"
    );
}
