//! Differential golden harness for the multi-migrant deputy.
//!
//! Captured *before* the multi-migrant refactor: the fingerprints below
//! are what `run_with_transport` over a [`SimulatedTransport`] produced
//! for every HPCC kernel × transport-supported scheme at the quick
//! 4 MB size (workload seed 42, stock link). Two assertions pin them:
//!
//! 1. The single-migrant path still reproduces them after the refactor.
//! 2. The N=1 multi-migrant path (`run_multi` with one migrant — the
//!    full coordinator/shard machinery, not a special-cased shortcut)
//!    reproduces them bit-identically.
//!
//! To re-capture after an *intentional* semantic change:
//! `cargo test -p ampom-core --test multi_identity -- --ignored --nocapture`

use ampom_core::experiment::WorkloadSpec;
use ampom_core::multirun::{run_multi, MultiRunSpec};
use ampom_core::runner::RunConfig;
use ampom_core::transport::{run_with_transport, SimulatedTransport};
use ampom_core::Scheme;
use ampom_workloads::sizes::{Kernel, ProblemSize};

/// The `hpcc` matrix seed: every scheme sees the same reference stream.
const SEED: u64 = 42;

/// The quick 4 MB size used by smoke runs.
const QUICK: ProblemSize = ProblemSize {
    problem: 0,
    memory_mb: 4,
};

/// Schemes the transport loop supports (FFA pages from the file server).
const SCHEMES: [Scheme; 3] = [Scheme::Ampom, Scheme::NoPrefetch, Scheme::OpenMosix];

/// Pre-refactor golden fingerprints, in `Kernel::ALL` × `SCHEMES` order.
const GOLDENS: [(Kernel, Scheme, u64); 12] = [
    (Kernel::Dgemm, Scheme::Ampom, 0x88fbf10bfb8e1f97),
    (Kernel::Dgemm, Scheme::NoPrefetch, 0x3722ae905f44322e),
    (Kernel::Dgemm, Scheme::OpenMosix, 0x870b266e66ae3e69),
    (Kernel::Stream, Scheme::Ampom, 0x4d941b9d030acd1d),
    (Kernel::Stream, Scheme::NoPrefetch, 0x871d0ec60a0221b6),
    (Kernel::Stream, Scheme::OpenMosix, 0x577596eac700554e),
    (Kernel::RandomAccess, Scheme::Ampom, 0xb584e9e36c4d60e3),
    (Kernel::RandomAccess, Scheme::NoPrefetch, 0x53b8eba36e08173e),
    (Kernel::RandomAccess, Scheme::OpenMosix, 0x6c446c83958c2662),
    (Kernel::Fft, Scheme::Ampom, 0x95cc291f5a8172b1),
    (Kernel::Fft, Scheme::NoPrefetch, 0xba1d1e8746d27b9c),
    (Kernel::Fft, Scheme::OpenMosix, 0xb784448113d03781),
];

fn single_fp(kernel: Kernel, scheme: Scheme) -> u64 {
    let cfg = RunConfig::new(scheme);
    let mut w = WorkloadSpec::kernel(kernel, QUICK)
        .build(SEED)
        .expect("valid kernel spec");
    let mut t = SimulatedTransport::new(&cfg);
    run_with_transport(w.as_mut(), &cfg, &mut t)
        .expect("transport-compatible config")
        .fingerprint()
}

#[test]
#[ignore = "capture helper: prints the golden table for this tree"]
fn capture_golden_fingerprints() {
    for kernel in Kernel::ALL {
        for scheme in SCHEMES {
            println!(
                "    (Kernel::{kernel:?}, Scheme::{scheme:?}, {:#018x}),",
                single_fp(kernel, scheme)
            );
        }
    }
}

#[test]
fn single_migrant_path_matches_pre_refactor_goldens() {
    for (kernel, scheme, golden) in GOLDENS {
        assert_eq!(
            single_fp(kernel, scheme),
            golden,
            "single-migrant {kernel:?}/{scheme:?} drifted from its pre-refactor fingerprint"
        );
    }
}

/// The differential half of the harness: an N=1 *multi-migrant* run —
/// the full sharded deputy, DRR scheduler, rendezvous coordinator and
/// delivery batching, not a special-cased shortcut — must reproduce the
/// pre-refactor single-migrant fingerprints bit-identically.
#[test]
fn n1_multi_migrant_path_matches_pre_refactor_goldens() {
    for (kernel, scheme, golden) in GOLDENS {
        let cfg = RunConfig::new(scheme);
        let spec = MultiRunSpec::homogeneous(
            cfg,
            WorkloadSpec::Kernel {
                kernel,
                size: QUICK,
            },
            SEED,
            1,
        );
        let report = run_multi(&spec).expect("N=1 multi-run succeeds");
        assert_eq!(
            report.reports[0].fingerprint(),
            golden,
            "N=1 multi-migrant {kernel:?}/{scheme:?} drifted from its pre-refactor fingerprint"
        );
    }
}
