//! Regression guard for the [`Transport`] trait extraction.
//!
//! Two layers of protection:
//!
//! 1. **Golden fingerprints** pin the legacy `run_workload` path to the
//!    exact counters/times it produced *before* the transport refactor
//!    (captured from the release build at the refactor's base commit).
//!    Any arithmetic drift in the runner, deputy, link model or
//!    reliability layer trips these.
//! 2. **Legacy ↔ transport identity**: `run_with_transport` over a
//!    [`SimulatedTransport`] must reproduce the legacy fingerprint
//!    bit-for-bit for every configuration the transport loop supports.
//!
//! The fingerprint mixes every exact field of the report (times in
//! nanoseconds, all counters, fault and deputy stats), so equality here
//! is equality of the whole measurement record.

use ampom_core::reliability::{FailurePolicy, FaultProfile, RetryPolicy};
use ampom_core::runner::{run_workload, CrossTrafficSpec, RunConfig, SyscallProfile};
use ampom_core::transport::{run_with_transport, SimulatedTransport};
use ampom_core::Scheme;
use ampom_net::fault::FaultSpec;
use ampom_sim::event::DowntimeSchedule;
use ampom_sim::time::{SimDuration, SimTime};
use ampom_workloads::memref::Workload;
use ampom_workloads::synthetic::{Sequential, UniformRandom};

const CPU: SimDuration = SimDuration::from_micros(10);

/// Golden fingerprints of the pre-refactor runner (release build).
const AMPOM_SEQ512: u64 = 0xef7c94edaf2703bf;
const NOPF_SEQ512: u64 = 0xc5f6a86a554a782a;
const OM_SEQ256_SYSCALL: u64 = 0x9508299f16242982;
const AMPOM_RAND_CROSS: u64 = 0xeb16e00af8ed2b39;
const AMPOM_LOSSY2: u64 = 0x16ff32a3b7c12846;
const AMPOM_OUTAGE_FALLBACK: u64 = 0x071ebfb4e2e4c0e0;
const AMPOM_OUTAGE_STALL: u64 = 0xe7ebca8a831f66f6;

fn seq(pages: u64) -> Sequential {
    Sequential::new(pages, CPU)
}

fn rand_workload() -> UniformRandom {
    UniformRandom::new(512, 2048, CPU, ampom_sim::rng::SimRng::seed_from_u64(7))
}

fn syscall_cfg() -> RunConfig {
    RunConfig::new(Scheme::OpenMosix).with_syscalls(SyscallProfile {
        every_refs: 32,
        work: SimDuration::from_micros(100),
    })
}

fn cross_cfg() -> RunConfig {
    RunConfig::new(Scheme::Ampom).with_cross_traffic(CrossTrafficSpec {
        bytes_per_sec: 8_000_000,
        burst_bytes: 64 * 1024,
    })
}

fn legacy_fp<W: Workload>(mut w: W, cfg: &RunConfig) -> u64 {
    run_workload(&mut w, cfg).fingerprint()
}

fn transport_fp<W: Workload>(mut w: W, cfg: &RunConfig) -> u64 {
    let mut t = SimulatedTransport::new(cfg);
    run_with_transport(&mut w, cfg, &mut t)
        .expect("transport-compatible config")
        .fingerprint()
}

#[test]
fn legacy_runner_matches_golden_fingerprints() {
    assert_eq!(
        legacy_fp(seq(512), &RunConfig::new(Scheme::Ampom)),
        AMPOM_SEQ512
    );
    assert_eq!(
        legacy_fp(seq(512), &RunConfig::new(Scheme::NoPrefetch)),
        NOPF_SEQ512
    );
    assert_eq!(legacy_fp(seq(256), &syscall_cfg()), OM_SEQ256_SYSCALL);
    assert_eq!(legacy_fp(rand_workload(), &cross_cfg()), AMPOM_RAND_CROSS);
}

#[test]
fn legacy_fault_paths_match_golden_fingerprints() {
    let cfg = RunConfig::new(Scheme::Ampom).with_faults(FaultProfile::lossy(0.02));
    assert_eq!(legacy_fp(seq(512), &cfg), AMPOM_LOSSY2);

    let retry = RetryPolicy {
        timeout_factor: 1,
        max_retries: 2,
    };
    let downtime = || {
        DowntimeSchedule::single(
            SimTime::from_nanos(60_000_000),
            SimTime::from_nanos(250_000_000),
        )
    };
    let fallback = FaultProfile {
        faults: FaultSpec::lossy(0.02),
        downtime: downtime(),
        retry,
        policy: FailurePolicy::EagerFallback,
    };
    let cfg = RunConfig::new(Scheme::Ampom).with_faults(fallback);
    assert_eq!(legacy_fp(seq(512), &cfg), AMPOM_OUTAGE_FALLBACK);

    let stall = FaultProfile {
        faults: FaultSpec::lossy(0.05),
        downtime: downtime(),
        retry,
        policy: FailurePolicy::StallReconnect,
    };
    let cfg = RunConfig::new(Scheme::Ampom).with_faults(stall);
    assert_eq!(legacy_fp(seq(512), &cfg), AMPOM_OUTAGE_STALL);
}

#[test]
fn simulated_transport_is_bit_identical_to_legacy() {
    let cases: [(&str, RunConfig, u64); 4] = [
        ("ampom_seq512", RunConfig::new(Scheme::Ampom), AMPOM_SEQ512),
        (
            "nopf_seq512",
            RunConfig::new(Scheme::NoPrefetch),
            NOPF_SEQ512,
        ),
        ("om_seq256_syscall", syscall_cfg(), OM_SEQ256_SYSCALL),
        ("ampom_rand_cross", cross_cfg(), AMPOM_RAND_CROSS),
    ];
    for (name, cfg, golden) in cases {
        let fp = match name {
            "ampom_rand_cross" => transport_fp(rand_workload(), &cfg),
            "om_seq256_syscall" => transport_fp(seq(256), &cfg),
            _ => transport_fp(seq(512), &cfg),
        };
        assert_eq!(fp, golden, "transport diverged from legacy on {name}");
    }
}

#[test]
fn transport_identity_holds_with_series_and_trace() {
    // Sampling and tracing exercise the remaining transport surface
    // (reply_utilization, in_flight_count); both paths must still agree
    // with each other (series content is not fingerprinted, timing is).
    let cfg = RunConfig::new(Scheme::Ampom)
        .with_trace()
        .with_sample_series(50);
    let legacy = legacy_fp(seq(2048), &cfg);
    let via_transport = transport_fp(seq(2048), &cfg);
    assert_eq!(legacy, via_transport);
}
