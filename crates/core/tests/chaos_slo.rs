//! Property suite for SLO-governed serving: zero-chaos identity,
//! shed conservation, and monotone degradation.
//!
//! Three invariants keep the chaos layer honest:
//!
//! 1. **Zero-chaos identity** — a `None` chaos profile, a *null* chaos
//!    profile and an unbounded admission config are all exact no-ops:
//!    the run fingerprint is bit-identical to a spec that never heard of
//!    chaos. (The golden N=1 fingerprints in `multi_identity` pin the
//!    same property against the single-migrant transport.)
//! 2. **Shed conservation** — admission control may refuse prefetch
//!    pages, but every page still crosses the wire exactly once: the
//!    per-migrant demand+prefetch delivery total is unchanged, only the
//!    mix shifts toward demand. Demand itself is never shed.
//! 3. **Monotone degradation** — walking a scenario's loss ladder at a
//!    fixed seed never flips a `Breached` grade back to `Met`.

use ampom_core::chaos::{scenario, standard_workload};
use ampom_core::deputy::AdmissionConfig;
use ampom_core::multirun::{run_multi, MultiRunSpec};
use ampom_core::reliability::FaultProfile;
use ampom_core::runner::RunConfig;
use ampom_core::slo::SloVerdict;
use ampom_core::Scheme;
use ampom_sim::propcheck::{forall, Gen};

fn fingerprints(spec: &MultiRunSpec) -> Vec<u64> {
    run_multi(spec)
        .expect("multi-run succeeds")
        .reports
        .iter()
        .map(|r| r.fingerprint())
        .collect()
}

#[test]
fn null_chaos_and_unbounded_admission_are_exact_noops() {
    forall("zero-chaos-identity", 24, |g: &mut Gen| {
        let seed = g.u64(0..u64::MAX / 2);
        let n = g.u64(1..4) as u32;
        let scheme = *g.choose(&[Scheme::Ampom, Scheme::NoPrefetch, Scheme::OpenMosix]);
        let mut cfg = RunConfig::new(scheme);
        cfg.seed = seed;

        let plain = MultiRunSpec::homogeneous(cfg, standard_workload(), seed, n);
        let baseline = fingerprints(&plain);

        // A null profile draws zero fates; an unbounded admission config
        // takes the exact `submit_request` path.
        let dressed = plain
            .clone()
            .with_chaos(FaultProfile::default())
            .with_admission(AdmissionConfig::default());
        assert_eq!(
            fingerprints(&dressed),
            baseline,
            "null chaos or unbounded admission perturbed the run"
        );
    });
}

#[test]
fn shed_pages_are_conserved_not_lost() {
    forall("shed-conservation", 12, |g: &mut Gen| {
        let seed = g.u64(0..u64::MAX / 2);
        let n = g.u64(2..4) as u32;
        let bound = g.u64(4..24) as usize;
        let cfg = {
            let mut c = RunConfig::new(Scheme::Ampom);
            c.seed = seed;
            c
        };

        let plain = MultiRunSpec::homogeneous(cfg, standard_workload(), seed, n);
        let baseline = run_multi(&plain).expect("baseline runs");
        let bounded = run_multi(
            &plain
                .clone()
                .with_admission(AdmissionConfig::bounded(bound)),
        )
        .expect("bounded run terminates");

        // Demand is never shed, ever.
        assert_eq!(bounded.deputy.demand_pages_shed, 0, "demand was shed");
        // Every page still crosses the wire exactly once per migrant:
        // sheds shift prefetches to (later) demand or re-prefetch, they
        // do not lose or duplicate deliveries.
        for (b, p) in bounded.reports.iter().zip(baseline.reports.iter()) {
            assert_eq!(
                b.pages_demand_fetched + b.pages_prefetched,
                p.pages_demand_fetched + p.pages_prefetched,
                "shedding changed the delivered-page total (bound {bound})"
            );
        }
        // Shed events and the shed-page counter agree in direction.
        let shed = bounded.deputy.prefetch_pages_shed;
        let events = bounded.deputy.shed_events;
        assert_eq!(shed > 0, events > 0, "shed pages without shed events");
    });
}

#[test]
fn loss_ladder_degrades_monotonically() {
    // Fixed seed, increasing loss on the storm scenario: a Breached
    // grade must never heal back to Met further up the ladder.
    let ladder = [0.0, 0.05, 0.15, 0.30];
    let mut verdicts = Vec::new();
    for &loss in &ladder {
        let outcome = scenario("flaky-link-storm")
            .expect("storm exists")
            .with_loss(loss)
            .run(2, 1337)
            .expect("ladder rung runs");
        verdicts.push(outcome.worst_verdict());
    }
    for i in 0..verdicts.len() {
        for j in i + 1..verdicts.len() {
            assert!(
                !(verdicts[i] == SloVerdict::Breached && verdicts[j] == SloVerdict::Met),
                "loss {} breached but loss {} met: {verdicts:?}",
                ladder[i],
                ladder[j]
            );
        }
    }
    // The ladder's ends are strictly ordered: no loss meets the SLOs,
    // heavy loss does not.
    assert_eq!(verdicts[0], SloVerdict::Met, "clean link failed its SLOs");
    assert_eq!(
        *verdicts.last().expect("non-empty"),
        SloVerdict::Breached,
        "30% loss met every SLO"
    );
}

#[test]
fn restart_midstorm_sheds_prefetch_never_demand_at_n8() {
    let outcome = scenario("deputy-restart-midstorm")
        .expect("scenario exists")
        .run(8, 42)
        .expect("scenario runs");
    assert!(
        outcome.prefetch_pages_shed() > 0,
        "bounded admission under storm shed no prefetch"
    );
    assert_eq!(
        outcome.demand_pages_shed(),
        0,
        "demand-fault service was shed"
    );
    // Shed accounting is visible per shard and sums to the aggregate.
    let per_shard: u64 = outcome
        .report
        .shard_stats
        .iter()
        .map(|s| s.prefetch_pages_shed)
        .sum();
    assert_eq!(per_shard, outcome.prefetch_pages_shed());
    // The outages were actually hit.
    let unavailable: u64 = outcome
        .report
        .reports
        .iter()
        .map(|r| r.faults.deputy_unavailable)
        .sum();
    assert!(unavailable > 0, "no request or reply saw the deputy down");
}
