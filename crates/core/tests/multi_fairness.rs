//! Fairness and termination properties of the multi-migrant deputy.
//!
//! Under random per-migrant load — random request sizes, arrivals,
//! syscalls, and fault-style re-requests of already-served pages — the
//! sharded deputy must:
//!
//! 1. terminate (every drain completes, every accepted page commits
//!    exactly once — coalescing never drops or duplicates work),
//! 2. keep every continuously-backlogged shard above the DRR service
//!    floor (no starvation by a hot tenant),
//! 3. report queue-depth stats that sum *exactly* across shards.
//!
//! The end-to-end variant drives full `run_multi` protocol loops with
//! random migrant counts and workload shapes and checks the same
//! invariants from the outside.

use std::collections::HashMap;

use ampom_core::deputy::{
    Completion, DrrConfig, MigrantId, MultiDeputy, PAGE_SERVICE_COST, REQUEST_PARSE_COST,
    SYSCALL_EXEC_COST,
};
use ampom_core::multirun::{run_multi, MigrantSpec, MultiRunSpec};
use ampom_core::runner::RunConfig;
use ampom_core::{Scheme, WorkloadSpec};
use ampom_mem::page::PageId;
use ampom_sim::propcheck::{forall, Gen};
use ampom_sim::time::{SimDuration, SimTime};

/// Largest single work item a random plan can submit (syscall with max
/// work): bounds the DRR lag we tolerate below.
fn max_item_cost(max_work_us: u64) -> SimDuration {
    PAGE_SERVICE_COST
        .max(REQUEST_PARSE_COST)
        .max(SYSCALL_EXEC_COST + SimDuration::from_micros(max_work_us))
}

#[test]
fn random_load_terminates_and_conserves_pages() {
    forall("multi-deputy-conservation", 96, |g: &mut Gen| {
        let shards = g.usize(1..6);
        let mut md = MultiDeputy::new(shards);
        // Every page the deputy accepted, per shard, in accept order.
        let mut accepted: Vec<Vec<PageId>> = vec![Vec::new(); shards];
        let mut syscalls = vec![0u64; shards];
        let steps = g.usize(1..40);
        let mut now = 0u64;
        for _ in 0..steps {
            now += g.u64(0..200);
            let m = MigrantId(g.usize(0..shards) as u32);
            let arrival = SimTime::ZERO + SimDuration::from_micros(now);
            if g.bool(0.15) {
                md.submit_syscall(m, arrival, SimDuration::from_micros(g.u64(0..50)));
                syscalls[m.0 as usize] += 1;
            } else {
                // Small page universe per shard so re-requests (the
                // fault plan: replies presumed lost) hit both pending
                // pages (coalesce) and committed pages (revive).
                let pages: Vec<PageId> =
                    g.vec(1..9, |g| PageId(g.u64(0..12))).into_iter().collect();
                let acc = md.submit_request(m, arrival, &pages);
                accepted[m.0 as usize].extend(&acc);
                // A request must never be accepted twice while pending:
                // the accept list itself is duplicate-free.
                let mut sorted = acc.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), acc.len(), "duplicate accept in one batch");
            }
            // Occasionally commit a random horizon mid-load, exercising
            // bounded commits interleaved with submissions.
            if g.bool(0.3) {
                let mut out = Vec::new();
                md.commit_until(
                    SimTime::ZERO + SimDuration::from_micros(now + g.u64(0..500)),
                    &mut out,
                );
                for c in out {
                    note_commit(c, &mut accepted, &mut syscalls);
                }
            }
        }
        // Termination: the final drain empties every queue.
        for c in md.drain() {
            note_commit(c, &mut accepted, &mut syscalls);
        }
        assert_eq!(md.queued_items(), 0, "drain left queued work behind");
        // Conservation: every accepted page committed exactly once, in
        // shard-FIFO order (note_commit pops from the front), and every
        // syscall completed.
        for (i, rest) in accepted.iter().enumerate() {
            assert!(rest.is_empty(), "shard {i} lost accepted pages: {rest:?}");
            assert_eq!(syscalls[i], 0, "shard {i} lost syscalls");
        }
        // Stats sum exactly across shards.
        let agg = md.aggregate_stats();
        let mut q = 0u64;
        let mut busy = SimDuration::ZERO;
        let mut backlog = SimDuration::ZERO;
        for i in 0..shards {
            let s = md.shard_stats(MigrantId(i as u32));
            q += s.queued_requests;
            busy += s.busy_time;
            backlog = backlog.max(s.max_backlog);
        }
        assert_eq!(agg.queued_requests, q);
        assert_eq!(agg.busy_time, busy);
        assert_eq!(agg.max_backlog, backlog);
    });
}

/// Removes `c` from the outstanding-work ledgers, asserting shard-FIFO
/// page order.
fn note_commit(c: Completion, accepted: &mut [Vec<PageId>], syscalls: &mut [u64]) {
    match c {
        Completion::Page { migrant, page, .. } => {
            let i = migrant.0 as usize;
            assert!(
                !accepted[i].is_empty(),
                "shard {i} committed {page} with nothing outstanding"
            );
            let expect = accepted[i].remove(0);
            assert_eq!(page, expect, "shard {i} served out of FIFO order");
        }
        Completion::Syscall { migrant, .. } => {
            let i = migrant.0 as usize;
            assert!(syscalls[i] > 0, "shard {i} committed a phantom syscall");
            syscalls[i] -= 1;
        }
    }
}

#[test]
fn backlogged_shards_stay_above_the_drr_floor() {
    forall("multi-deputy-drr-floor", 64, |g: &mut Gen| {
        let shards = g.usize(2..6);
        let quantum = SimDuration::from_micros(g.u64(40..300));
        let mut md = MultiDeputy::with_drr(shards, DrrConfig { quantum });
        let max_work = 200u64;
        // Load every shard at t=0 with a random deep backlog, so every
        // shard stays continuously backlogged until the first empties.
        for i in 0..shards {
            let m = MigrantId(i as u32);
            for _ in 0..g.usize(1..5) {
                if g.bool(0.2) {
                    md.submit_syscall(
                        m,
                        SimTime::ZERO,
                        SimDuration::from_micros(g.u64(0..max_work)),
                    );
                } else {
                    let base = g.u64(0..100_000);
                    let pages: Vec<PageId> = (0..g.u64(4..40)).map(|k| PageId(base + k)).collect();
                    md.submit_request(m, SimTime::ZERO, &pages);
                }
            }
        }
        // Submitted cost per shard == its busy-time attribution.
        let outstanding: Vec<SimDuration> = (0..shards)
            .map(|i| md.shard_stats(MigrantId(i as u32)).busy_time)
            .collect();
        // Commit until the first shard runs dry: up to there, every
        // shard was backlogged, so the DRR lag bound applies to all.
        while first_empty(&md, shards).is_none() {
            if md.commit_next().is_none() {
                break;
            }
        }
        // Committed service per shard = submitted minus still-queued.
        let committed: Vec<SimDuration> = (0..shards)
            .map(|i| outstanding[i] - md.queued_cost(MigrantId(i as u32)))
            .collect();
        // Classic DRR lag bound between two continuously-backlogged
        // flows with equal weights: a laggard's deficit never exceeds
        // one quantum plus one maximal item, and the leader is at most
        // one visit ahead — 2·(quantum + max item) covers both.
        let bound = (quantum + max_item_cost(max_work)).saturating_mul(2);
        let max = committed.iter().copied().max().unwrap_or(SimDuration::ZERO);
        for (i, &c) in committed.iter().enumerate() {
            assert!(
                max.saturating_sub(c) <= bound,
                "shard {i} fell {:?} behind the leader (bound {bound:?}, quantum {quantum:?})",
                max.saturating_sub(c),
            );
        }
    });
}

/// Index of the first shard with an empty queue, if any.
fn first_empty(md: &MultiDeputy, shards: usize) -> Option<usize> {
    (0..shards).find(|&i| md.queued_cost(MigrantId(i as u32)).is_zero())
}

#[test]
fn random_multi_runs_terminate_with_exact_stat_sums() {
    forall("multi-run-termination", 10, |g: &mut Gen| {
        let n = g.usize(2..5);
        let scheme = *g.choose(&[Scheme::Ampom, Scheme::NoPrefetch, Scheme::OpenMosix]);
        let migrants = (0..n)
            .map(|i| MigrantSpec {
                workload: WorkloadSpec::Sequential {
                    pages: g.u64(32..160),
                    cpu: SimDuration::from_micros(g.u64(1..20)),
                },
                seed: i as u64,
            })
            .collect();
        let spec = MultiRunSpec {
            cfg: RunConfig::new(scheme),
            migrants,
            drr: DrrConfig::default(),
            chaos: None,
            admission: ampom_core::deputy::AdmissionConfig::default(),
        };
        let report = run_multi(&spec).expect("random multi-run terminates");
        assert_eq!(report.migrants(), n);
        // Per-migrant deputy attribution equals the shard stats and
        // sums exactly to the aggregate.
        let mut q = 0u64;
        let mut busy = SimDuration::ZERO;
        for (r, s) in report.reports.iter().zip(&report.shard_stats) {
            assert_eq!(r.deputy, *s, "report deputy stats drifted from shard");
            q += s.queued_requests;
            busy += s.busy_time;
        }
        assert_eq!(q, report.deputy.queued_requests);
        assert_eq!(busy, report.deputy.busy_time);
        // Shares partition the deputy's service time — unless the
        // deputy never worked at all (an Ampom freeze can prefetch a
        // small workload whole, leaving no remote faults to serve), in
        // which case every share reports the idle sentinel 1.0.
        let share_sum: f64 = report.service_shares.iter().sum();
        if report.deputy.busy_time.is_zero() {
            assert!(report.service_shares.iter().all(|&s| s == 1.0));
            assert_eq!(report.saturation(), 0.0);
        } else {
            assert!(
                (share_sum - 1.0).abs() < 1e-9,
                "shares {:?} sum to {share_sum}",
                report.service_shares
            );
            assert!(report.saturation() > 0.0 && report.saturation() <= 1.0);
        }
    });
}

/// Identical always-backlogged migrants must split deputy service near
/// evenly — the end-to-end fairness claim `multisweep` reports.
#[test]
fn identical_migrants_share_service_evenly() {
    let spec = MultiRunSpec::homogeneous(
        RunConfig::new(Scheme::NoPrefetch),
        WorkloadSpec::Sequential {
            pages: 256,
            cpu: SimDuration::from_micros(5),
        },
        3,
        4,
    );
    let report = run_multi(&spec).expect("multi-run succeeds");
    let ratio = report.fairness_ratio();
    assert!(
        ratio < 1.05,
        "identical demand-paging migrants diverged: fairness ratio {ratio}"
    );
}

/// The deterministic tie-break (equal arrivals resolve by submission
/// order within a shard, ascending shard index across shards) holds for
/// random equal-arrival batches — the multi-shard extension of the
/// pinned `Deputy` tie-break audit.
#[test]
fn equal_arrival_ties_resolve_by_shard_index() {
    forall("multi-deputy-tie-break", 48, |g: &mut Gen| {
        let shards = g.usize(2..5);
        let mut md = MultiDeputy::new(shards);
        // One small batch per shard, all arriving at the same instant,
        // submitted in random shard order.
        let mut order: Vec<usize> = (0..shards).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, g.usize(0..i + 1));
        }
        let mut expect: HashMap<u32, Vec<PageId>> = HashMap::new();
        for &i in &order {
            let pages: Vec<PageId> = (0..g.u64(1..4))
                .map(|k| PageId(1000 * i as u64 + k))
                .collect();
            md.submit_request(MigrantId(i as u32), SimTime::ZERO, &pages);
            expect.insert(i as u32, pages);
        }
        // With a default quantum each shard's whole batch fits one
        // visit: completions must walk shards in ascending index from
        // the cursor (shard 0), regardless of submission order.
        let mut seen: Vec<(u32, PageId)> = Vec::new();
        for c in md.drain() {
            if let Completion::Page { migrant, page, .. } = c {
                seen.push((migrant.0, page));
            }
        }
        let mut want: Vec<(u32, PageId)> = Vec::new();
        for i in 0..shards as u32 {
            for &p in &expect[&i] {
                want.push((i, p));
            }
        }
        assert_eq!(seen, want, "tie-break order drifted");
    });
}
