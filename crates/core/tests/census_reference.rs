//! Property tests of the stride census against an independent
//! brute-force reference implementation.
//!
//! The census is the heart of the paper's analysis; a subtle off-by-one in
//! the minimum-distance or outstanding-stream rules would silently skew
//! every experiment. This suite re-derives the definitions from scratch in
//! the most literal (and least efficient) way possible and checks the
//! production implementation against it on random windows.

use ampom_core::census::{census, Census};
use ampom_sim::propcheck::{forall, Gen};

/// Reference: for each position p (0-based), the minimal d ≥ 1 with
/// `pages[p + d] == pages[p] + 1`, capped at `dmax`.
fn reference_links(pages: &[u64], dmax: usize) -> Vec<(usize, usize, usize)> {
    let mut links = Vec::new();
    for p in 0..pages.len() {
        for d in 1..=dmax {
            if p + d >= pages.len() {
                break;
            }
            if pages[p + d] == pages[p] + 1 {
                links.push((p, p + d, d));
                break; // minimal distance only
            }
        }
    }
    links
}

/// Reference stride_d: distinct positions participating in minimal-d links.
fn reference_stride_counts(pages: &[u64], dmax: usize) -> Vec<u64> {
    let links = reference_links(pages, dmax);
    (1..=dmax)
        .map(|d| {
            let mut positions = std::collections::BTreeSet::new();
            for &(s, e, ld) in &links {
                if ld == d {
                    positions.insert(s);
                    positions.insert(e);
                }
            }
            positions.len() as u64
        })
        .collect()
}

/// Reference outstanding rule: 1-based (p + d) > l − d.
fn reference_outstanding(pages: &[u64], dmax: usize) -> Vec<u64> {
    let l = pages.len();
    reference_links(pages, dmax)
        .into_iter()
        .filter(|&(_, e, d)| (e + 1) + d > l) // e is 0-based, (e+1) is 1-based p+d
        .map(|(_, e, _)| pages[e] + 1)
        .collect()
}

/// Small page universe to force collisions, stride chains and
/// duplicates; windows up to 24 entries (the paper uses 20).
fn random_window(g: &mut Gen) -> Vec<u64> {
    g.vec_u64(0..24, 0..40)
}

fn random_dmax(g: &mut Gen) -> usize {
    g.usize(1..6)
}

#[test]
fn stride_counts_match_reference() {
    forall("stride-counts", 512, |g| {
        let pages = random_window(g);
        let dmax = random_dmax(g);
        let got: Census = census(&pages, dmax);
        let want = reference_stride_counts(&pages, dmax);
        assert_eq!(got.stride_counts, want);
    });
}

#[test]
fn outstanding_pivots_match_reference() {
    forall("outstanding-pivots", 512, |g| {
        let pages = random_window(g);
        let dmax = random_dmax(g);
        let got = census(&pages, dmax);
        let mut got_pivots: Vec<u64> = got.outstanding.iter().map(|o| o.pivot).collect();
        let mut want = reference_outstanding(&pages, dmax);
        got_pivots.sort_unstable();
        want.sort_unstable();
        assert_eq!(got_pivots, want);
    });
}

#[test]
fn links_are_minimal_distance() {
    forall("minimal-links", 512, |g| {
        let pages = random_window(g);
        let dmax = random_dmax(g);
        let got = census(&pages, dmax);
        for link in &got.links {
            // The link target really is the successor page.
            assert_eq!(pages[link.end], pages[link.start] + 1);
            assert_eq!(link.d, link.end - link.start);
            // No closer occurrence of the successor exists.
            for between in (link.start + 1)..link.end {
                assert_ne!(pages[between], pages[link.start] + 1);
            }
        }
    });
}

#[test]
fn score_is_always_in_unit_interval() {
    forall("score-unit-interval", 512, |g| {
        let pages = random_window(g);
        let dmax = random_dmax(g);
        let got = census(&pages, dmax);
        let s = ampom_core::score::spatial_score(&got);
        assert!((0.0..=1.0).contains(&s));
    });
}

#[test]
fn sequential_windows_score_one() {
    forall("sequential-score-one", 256, |g| {
        let start = g.u64(0..1000);
        let len = g.usize(2..24);
        let pages: Vec<u64> = (start..start + len as u64).collect();
        let got = census(&pages, 4);
        let s = ampom_core::score::spatial_score(&got);
        assert!((s - 1.0).abs() < 1e-12);
        // Exactly one outstanding stream: the live run.
        assert_eq!(got.outstanding.len(), 1);
        assert_eq!(got.outstanding[0].pivot, start + len as u64);
    });
}

#[test]
fn reversed_sequential_scores_zero() {
    forall("reversed-score-zero", 256, |g| {
        let start = g.u64(100..1000);
        let len = g.usize(2..24);
        // Descending pages have no successor links at all.
        let pages: Vec<u64> = (start..start + len as u64).rev().collect();
        let got = census(&pages, 4);
        assert!(got.links.is_empty());
        assert_eq!(ampom_core::score::spatial_score(&got), 0.0);
    });
}

#[test]
fn census_is_translation_invariant() {
    forall("translation-invariant", 512, |g| {
        let pages = random_window(g);
        let offset = g.u64(0..100_000);
        let dmax = random_dmax(g);
        let shifted: Vec<u64> = pages.iter().map(|p| p + offset).collect();
        let a = census(&pages, dmax);
        let b = census(&shifted, dmax);
        assert_eq!(a.stride_counts, b.stride_counts);
        assert_eq!(a.links.len(), b.links.len());
        let pa: Vec<u64> = a.outstanding.iter().map(|o| o.pivot + offset).collect();
        let pb: Vec<u64> = b.outstanding.iter().map(|o| o.pivot).collect();
        assert_eq!(pa, pb);
    });
}
