//! Property tests for the fault-injection and recovery layer.
//!
//! Three protocol invariants, checked over randomized fault schedules
//! (seeded via `ampom_sim::propcheck`, so every failure is replayable):
//!
//! 1. **Termination with a complete address space** — any admissible
//!    fault schedule (loss, bursts, jitter, a deputy outage, any failure
//!    policy) lets the workload run to completion, executing every
//!    reference: `compute_time` equals the fault-free baseline.
//! 2. **Zero-fault bit-identity** — a null `FaultProfile` produces a
//!    report fingerprint identical to a run with no profile at all: the
//!    reliability layer is pay-for-what-you-use.
//! 3. **Duplicate replies never double-install** — when a retry races a
//!    late original reply, the loser is counted in
//!    `faults.duplicate_replies` and the run is otherwise unperturbed
//!    (a double install would panic inside `AddressSpace::install`).
//!
//! The CI fault matrix runs this suite under two fixed values of
//! `AMPOM_FAULT_SEED`, which perturbs every generated schedule.

use ampom_core::metrics::RunReport;
use ampom_core::reliability::{FailurePolicy, FaultProfile, RetryPolicy};
use ampom_core::runner::{run_workload, RunConfig};
use ampom_core::Scheme;
use ampom_net::fault::FaultSpec;
use ampom_sim::event::DowntimeSchedule;
use ampom_sim::propcheck::{forall, Gen};
use ampom_sim::time::{SimDuration, SimTime};
use ampom_workloads::synthetic::Scripted;

/// Extra entropy for the CI seed matrix: every generated schedule is
/// XORed with this, so two matrix entries explore disjoint schedules.
fn env_seed() -> u64 {
    std::env::var("AMPOM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

const CPU: SimDuration = SimDuration::from_micros(12);

fn run_scripted(refs: &[u64], pages: u64, cfg: &RunConfig) -> RunReport {
    let mut w = Scripted::new(pages, refs, CPU);
    run_workload(&mut w, cfg)
}

/// A random admissible fault profile: loss up to 30%, short bursts,
/// jitter up to 200µs, an optional deputy outage, any policy, a small
/// retry budget.
fn random_profile(g: &mut Gen) -> FaultProfile {
    let downtime = if g.bool(0.5) {
        let down = 60_000_000 + g.u64(0..60_000_000); // 60–120ms, around first faults
        let up = down + 500_000 + g.u64(0..80_000_000); // 0.5–80.5ms outage
        DowntimeSchedule::single(SimTime::from_nanos(down), SimTime::from_nanos(up))
    } else {
        DowntimeSchedule::default()
    };
    FaultProfile {
        faults: FaultSpec {
            loss_rate: g.unit_f64() * 0.3,
            burst_len: g.u64(1..4) as u32,
            jitter: SimDuration::from_nanos(g.u64(0..200_000)),
        },
        downtime,
        retry: RetryPolicy {
            timeout_factor: g.u64(1..4) as u32,
            max_retries: g.u64(1..4) as u32,
        },
        policy: *g.choose(&FailurePolicy::ALL),
    }
}

#[test]
fn any_fault_schedule_terminates_with_the_full_reference_stream() {
    forall("fault-termination", 24, |g| {
        let pages = 48 + g.u64(0..48);
        let refs = g.vec_u64(200..400, 0..pages);
        let scheme = *g.choose(&[Scheme::NoPrefetch, Scheme::Ampom]);
        let seed = g.u64(1..u64::MAX / 2) ^ env_seed();
        let profile = random_profile(g);

        let baseline = run_scripted(&refs, pages, &RunConfig::new(scheme).with_seed(seed));
        let faulty = run_scripted(
            &refs,
            pages,
            &RunConfig::new(scheme)
                .with_seed(seed)
                .with_faults(profile.clone()),
        );
        assert_eq!(
            faulty.compute_time, baseline.compute_time,
            "every reference must execute despite faults (scheme {scheme:?}, \
             profile {profile:?})"
        );
        // Faults only ever add wall time.
        assert!(
            faulty.total_time >= baseline.total_time,
            "faults cannot make a run faster: {:?} < {:?}",
            faulty.total_time,
            baseline.total_time
        );
    });
}

#[test]
fn zero_fault_profile_is_bit_identical_to_no_profile() {
    forall("null-profile-identity", 12, |g| {
        let pages = 32 + g.u64(0..64);
        let refs = g.vec_u64(150..300, 0..pages);
        let scheme = *g.choose(&[Scheme::NoPrefetch, Scheme::Ampom, Scheme::OpenMosix]);
        let seed = g.u64(1..u64::MAX / 2) ^ env_seed();

        let bare = run_scripted(&refs, pages, &RunConfig::new(scheme).with_seed(seed));
        let null = run_scripted(
            &refs,
            pages,
            &RunConfig::new(scheme)
                .with_seed(seed)
                .with_faults(FaultProfile::default()),
        );
        assert_eq!(
            bare.fingerprint(),
            null.fingerprint(),
            "a null profile must leave the runner on the exact fault-free path"
        );
        assert_eq!(null.faults, Default::default());
    });
}

#[test]
fn duplicate_replies_are_suppressed_not_double_installed() {
    // Randomized: lossy links force retries; a double install would
    // panic inside AddressSpace::install, so mere completion with an
    // unchanged compute_time is the invariant.
    forall("duplicate-suppression", 16, |g| {
        let pages = 48 + g.u64(0..32);
        let refs = g.vec_u64(200..350, 0..pages);
        let seed = g.u64(1..u64::MAX / 2) ^ env_seed();
        let profile = FaultProfile {
            faults: FaultSpec {
                loss_rate: 0.1 + g.unit_f64() * 0.2,
                burst_len: 1,
                jitter: SimDuration::from_micros(g.u64(0..5_000)),
            },
            retry: RetryPolicy {
                timeout_factor: 1,
                max_retries: 2 + g.u64(0..3) as u32,
            },
            ..FaultProfile::default()
        };
        let baseline = run_scripted(&refs, pages, &RunConfig::new(Scheme::Ampom).with_seed(seed));
        let faulty = run_scripted(
            &refs,
            pages,
            &RunConfig::new(Scheme::Ampom)
                .with_seed(seed)
                .with_faults(profile),
        );
        assert_eq!(faulty.compute_time, baseline.compute_time);
    });

    // Engineered: huge reply jitter with zero loss makes every original
    // reply miss its (tight) timeout, so retries race originals and both
    // eventually arrive — duplicates must show up in the counter.
    let refs: Vec<u64> = (0..96).collect();
    let profile = FaultProfile {
        faults: FaultSpec {
            loss_rate: 0.0,
            burst_len: 1,
            jitter: SimDuration::from_millis(20),
        },
        retry: RetryPolicy {
            timeout_factor: 1,
            max_retries: 6,
        },
        ..FaultProfile::default()
    };
    let r = run_scripted(
        &refs,
        96,
        &RunConfig::new(Scheme::NoPrefetch)
            .with_seed(7)
            .with_faults(profile),
    );
    assert!(
        r.faults.timeouts > 0,
        "tight timeouts must fire: {:?}",
        r.faults
    );
    assert!(
        r.faults.duplicate_replies > 0,
        "retry/original races must produce suppressed duplicates: {:?}",
        r.faults
    );
}

/// Regression: under deep prefetch the per-page install charge advances
/// the clock past the next staged arrivals, so the demand wait loop can
/// find an in-flight reply whose arrival is already in the past — it
/// must treat it as arrived, not stall backwards (this panicked on a
/// 4096-page DGEMM at 5% loss).
#[test]
fn congested_pipeline_with_loss_terminates() {
    use ampom_core::Experiment;
    use ampom_workloads::sizes::ProblemSize;
    use ampom_workloads::Kernel;

    let size = ProblemSize {
        problem: 0,
        memory_mb: 16,
    };
    let r = Experiment::new(Scheme::Ampom)
        .kernel(Kernel::Dgemm, size)
        .seed(42)
        .faults(FaultProfile::lossy(0.05))
        .build()
        .expect("congestion experiment is valid")
        .run()
        .expect("congestion run completes");
    let clean = Experiment::new(Scheme::Ampom)
        .kernel(Kernel::Dgemm, size)
        .seed(42)
        .build()
        .expect("clean experiment is valid")
        .run()
        .expect("clean run completes");
    assert_eq!(r.compute_time, clean.compute_time);
    assert!(r.faults.messages_dropped > 0);
}

/// One deputy crash/restart bracketing the first demand faults; every
/// failure policy must carry the run to completion and leave its
/// signature in the counters.
#[test]
fn every_failure_policy_survives_a_deputy_restart() {
    let refs: Vec<u64> = (0..128).collect();
    let outage = DowntimeSchedule::single(
        SimTime::from_nanos(60_000_000),
        SimTime::from_nanos(250_000_000),
    );
    let baseline = run_scripted(&refs, 128, &RunConfig::new(Scheme::Ampom).with_seed(3));

    for policy in FailurePolicy::ALL {
        let profile = FaultProfile {
            faults: FaultSpec::lossy(0.02),
            downtime: outage.clone(),
            retry: RetryPolicy {
                timeout_factor: 1,
                max_retries: 2,
            },
            policy,
        };
        let r = run_scripted(
            &refs,
            128,
            &RunConfig::new(Scheme::Ampom)
                .with_seed(3)
                .with_faults(profile),
        );
        assert_eq!(
            r.compute_time,
            baseline.compute_time,
            "policy {} must complete the workload",
            policy.name()
        );
        assert!(
            r.faults.timeouts > 0 && r.faults.reconnects > 0,
            "the outage must exhaust the retry budget under {}: {:?}",
            policy.name(),
            r.faults
        );
        assert!(
            r.faults.recovery_time > SimDuration::ZERO,
            "recovery time must be attributed under {}",
            policy.name()
        );
        match policy {
            FailurePolicy::StallReconnect => {
                assert_eq!(r.faults.fallback_pages, 0);
                assert!(!r.faults.remigrated);
            }
            FailurePolicy::EagerFallback => {
                assert!(
                    r.faults.fallback_pages > 0,
                    "eager fallback must ship residual pages: {:?}",
                    r.faults
                );
            }
            FailurePolicy::Remigrate => {
                assert!(r.faults.remigrated, "remigration must be recorded");
            }
        }
    }
}
