//! Minimal JSON writing and parsing.
//!
//! The workspace is dependency-free, so the JSONL emitted by the
//! observability layer is hand-rolled here: a [`JsonWriter`] for building
//! one object per line, and a small recursive-descent [`parse`] used by
//! `hpcc-repro profile --json` to verify its own output and by tests.
//! This is not a general JSON library — it covers the subset the repo
//! emits (objects, arrays, strings, finite numbers, booleans, null).

use std::fmt::Write as _;

use ampom_sim::trace::TraceEvent;

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds one JSON object incrementally.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Starts an object.
    pub fn object() -> Self {
        JsonWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&escape(name));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push_str(&escape(value));
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field; non-finite values are written as `null`.
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn field_raw(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push_str(value);
    }

    /// Closes the object and returns the JSON text.
    pub fn close(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders one trace event as a `{"type":"event",...}` JSON object with
/// only its populated payload fields.
pub fn trace_event_json(e: &TraceEvent) -> String {
    let mut w = JsonWriter::object();
    w.field_str("type", "event");
    w.field_u64("at_ns", e.at.as_nanos());
    w.field_str("kind", e.kind.name());
    let d = &e.data;
    if let Some(v) = d.page {
        w.field_u64("page", v);
    }
    if let Some(v) = d.pages {
        w.field_u64("pages", v);
    }
    if let Some(v) = d.bytes {
        w.field_u64("bytes", v);
    }
    if let Some(v) = d.zone {
        w.field_u64("zone", v);
    }
    if let Some(v) = d.score {
        w.field_f64("score", v);
    }
    if let Some(v) = d.raw {
        w.field_f64("raw", v);
    }
    if let Some(v) = d.rate {
        w.field_f64("rate", v);
    }
    if let Some(v) = d.rtt_ns {
        w.field_u64("rtt_ns", v);
    }
    if let Some(v) = d.retry {
        w.field_u64("retry", v);
    }
    if let Some(v) = &d.note {
        w.field_str("note", v);
    }
    w.close()
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the full input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by this repo;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampom_sim::time::SimTime;
    use ampom_sim::trace::{TraceData, TraceKind};

    #[test]
    fn writer_builds_valid_objects() {
        let mut w = JsonWriter::object();
        w.field_str("kind", "page-fault");
        w.field_u64("page", 42);
        w.field_f64("score", 0.25);
        w.field_bool("clamped", false);
        w.field_f64("bad", f64::NAN);
        let text = w.close();
        assert_eq!(
            text,
            r#"{"kind":"page-fault","page":42,"score":0.25,"clamped":false,"bad":null}"#
        );
        let v = parse(&text).unwrap();
        assert_eq!(v.get("page").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut w = JsonWriter::object();
        w.field_str("s", nasty);
        let v = parse(&w.close()).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn parser_handles_nesting_and_rejects_garbage() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":true}"#).unwrap();
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].as_f64(), Some(2.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"x":01e}"#).is_err());
    }

    #[test]
    fn trace_event_serializes_only_populated_fields() {
        let e = TraceEvent {
            at: SimTime::from_nanos(1500),
            kind: TraceKind::ZoneAnalysis,
            data: TraceData::page(7).with_zone(16).with_score(0.5),
        };
        let text = trace_event_json(&e);
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("zone-analysis")
        );
        assert_eq!(v.get("at_ns").and_then(JsonValue::as_u64), Some(1500));
        assert_eq!(v.get("page").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("zone").and_then(JsonValue::as_u64), Some(16));
        assert_eq!(v.get("score").and_then(JsonValue::as_f64), Some(0.5));
        assert!(v.get("rate").is_none());
        assert!(v.get("note").is_none());
    }
}
