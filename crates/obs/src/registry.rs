//! A counters/gauges/histograms registry with named handles.
//!
//! Every subsystem that has something to report — the runner, the
//! prefetcher, the reliability layer, the live deputy/migrant — implements
//! [`MetricSource`] and exports into one shared [`MetricsRegistry`], which
//! renders as a Prometheus-style text dump. Metric names follow
//! `ampom_<subsystem>_<metric>[_<unit>]`: lowercase, underscore-separated,
//! seconds for durations, totals as `_total` counters.
//!
//! The registry is pull-based: nothing in the simulation hot path touches
//! it. Runs accumulate their counters in plain structs exactly as before
//! and export once at the end, so enabling metrics cannot perturb a run.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Anything that can export its counters into a [`MetricsRegistry`].
pub trait MetricSource {
    /// Registers/updates this source's metrics in `reg`.
    fn export_metrics(&self, reg: &mut MetricsRegistry);
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A log2-bucketed histogram of non-negative integer observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// `buckets[i]` counts observations whose bit length is `i`, i.e.
    /// values in `[2^(i-1), 2^i - 1]` (index 0 holds exactly the zeros).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize; // ceil(log2(v+1))
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Cumulative `(upper_bound, count)` pairs for rendering.
    fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut acc = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            acc += n;
            // Bucket i holds values of bit length i, i.e. at most 2^i - 1.
            let bound = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            out.push((bound, acc));
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    value: Value,
}

/// The shared registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    index: HashMap<String, usize>,
}

/// Panics on names outside the `ampom_snake_case` convention — a metric
/// name is a programmer-chosen constant, so this is a programming error.
fn check_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit());
    assert!(ok, "invalid metric name {name:?}: use lowercase_snake_case");
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, help: &str, value: Value) -> usize {
        check_name(name);
        if let Some(&i) = self.index.get(name) {
            let existing = &self.metrics[i].value;
            let same_kind = matches!(
                (existing, &value),
                (Value::Counter(_), Value::Counter(_))
                    | (Value::Gauge(_), Value::Gauge(_))
                    | (Value::Histogram(_), Value::Histogram(_))
            );
            assert!(
                same_kind,
                "metric {name:?} re-registered as a different kind"
            );
            return i;
        }
        let i = self.metrics.len();
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value,
        });
        self.index.insert(name.to_string(), i);
        i
    }

    /// Registers (or finds) a counter and returns its handle.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterHandle {
        CounterHandle(self.register(name, help, Value::Counter(0)))
    }

    /// Registers (or finds) a gauge and returns its handle.
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeHandle {
        GaugeHandle(self.register(name, help, Value::Gauge(0.0)))
    }

    /// Registers (or finds) a histogram and returns its handle.
    pub fn histogram(&mut self, name: &str, help: &str) -> HistogramHandle {
        HistogramHandle(self.register(name, help, Value::Histogram(Histogram::default())))
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, h: CounterHandle, n: u64) {
        match &mut self.metrics[h.0].value {
            Value::Counter(v) => *v = v.saturating_add(n),
            _ => unreachable!("counter handle points at a non-counter"),
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, h: CounterHandle) {
        self.add(h, 1);
    }

    /// Sets a gauge.
    pub fn set(&mut self, h: GaugeHandle, value: f64) {
        match &mut self.metrics[h.0].value {
            Value::Gauge(v) => *v = value,
            _ => unreachable!("gauge handle points at a non-gauge"),
        }
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, h: HistogramHandle, value: u64) {
        match &mut self.metrics[h.0].value {
            Value::Histogram(hist) => hist.observe(value),
            _ => unreachable!("histogram handle points at a non-histogram"),
        }
    }

    /// Convenience: register-and-add a counter in one call (the common
    /// shape for end-of-run exports).
    pub fn export_counter(&mut self, name: &str, help: &str, value: u64) {
        let h = self.counter(name, help);
        self.add(h, value);
    }

    /// Convenience: register-and-set a gauge in one call.
    pub fn export_gauge(&mut self, name: &str, help: &str, value: f64) {
        let h = self.gauge(name, help);
        self.set(h, value);
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name).map(|&i| &self.metrics[i].value) {
            Some(Value::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name).map(|&i| &self.metrics[i].value) {
            Some(Value::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram under `name`, if registered.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        match self.index.get(name).map(|&i| &self.metrics[i].value) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders every metric as Prometheus text exposition, sorted by name.
    pub fn render_prometheus(&self) -> String {
        let mut order: Vec<&Metric> = self.metrics.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for m in order {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            match &m.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, fmt_f64(*v));
                }
                Value::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    for (bound, cum) in h.cumulative() {
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, bound, cum);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", m.name, h.count());
                }
            }
        }
        out
    }
}

/// Prometheus-friendly float formatting (no exponent for common values,
/// `NaN`/`+Inf`/`-Inf` spelled the way scrapers expect).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ampom_run_faults_total", "remote faults");
        reg.inc(c);
        reg.add(c, 4);
        // Re-registering the same name returns the same handle.
        let c2 = reg.counter("ampom_run_faults_total", "remote faults");
        assert_eq!(c, c2);
        reg.inc(c2);
        let g = reg.gauge("ampom_run_total_seconds", "run length");
        reg.set(g, 1.25);
        assert_eq!(reg.counter_value("ampom_run_faults_total"), Some(6));
        assert_eq!(reg.gauge_value("ampom_run_total_seconds"), Some(1.25));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("ampom_prefetch_zone_pages", "zone sizes");
        for v in [0, 1, 2, 3, 16] {
            reg.observe(h, v);
        }
        let hist = reg.histogram_value("ampom_prefetch_zone_pages").unwrap();
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum(), 22);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ampom_prefetch_zone_pages histogram"));
        assert!(text.contains("ampom_prefetch_zone_pages_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("ampom_prefetch_zone_pages_sum 22"));
    }

    #[test]
    fn prometheus_dump_is_sorted_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.export_gauge("ampom_z_last", "", 2.0);
        reg.export_counter("ampom_a_first_total", "first", 7);
        let text = reg.render_prometheus();
        let a = text.find("ampom_a_first_total").unwrap();
        let z = text.find("ampom_z_last").unwrap();
        assert!(a < z, "metrics must be sorted by name:\n{text}");
        assert!(text.contains("# HELP ampom_a_first_total first"));
        assert!(text.contains("# TYPE ampom_a_first_total counter"));
        assert!(text.contains("ampom_a_first_total 7"));
        assert!(text.contains("ampom_z_last 2"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        MetricsRegistry::new().counter("Ampom-Bad Name", "");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.counter("ampom_thing", "");
        reg.gauge("ampom_thing", "");
    }
}
