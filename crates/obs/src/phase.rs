//! Per-phase time attribution.
//!
//! The paper's evaluation (§5) attributes execution time to phases —
//! freeze, compute, fault stalls, recovery, … — and both run loops
//! (`ampom_core::run_workload` and `run_with_transport`) charge every
//! clock advance to exactly one phase as it happens. The disjoint phases
//! therefore sum *exactly* to the reported total simulated time; the CI
//! tolerance on that identity is pure slack.
//!
//! `prefetch_overlap` is the one diagnostic that deliberately overlaps:
//! compute time spent while at least one prefetched page was still in
//! flight (useful prefetch pipelining). It is excluded from the sum.

use std::fmt::Write as _;

use ampom_sim::time::SimDuration;

use crate::json::JsonWriter;
use crate::registry::{MetricSource, MetricsRegistry};

/// Where every nanosecond of a run's simulated clock went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Migration freeze: process stopped, initial state on the wire.
    pub freeze: SimDuration,
    /// Useful instruction execution after resume.
    pub compute: SimDuration,
    /// Minor faults served from already-resident/zero-filled pages.
    pub minor_fault: SimDuration,
    /// AMPoM per-fault analysis (Eqs. 1–3) on the fault path.
    pub analysis: SimDuration,
    /// Installing arrived pages into the address space.
    pub install: SimDuration,
    /// Stalled on a demand page, excluding failure recovery.
    pub fault_stall: SimDuration,
    /// Stalled specifically in failure recovery (timeouts, reconnects,
    /// fallback transfers, remigration).
    pub recovery: SimDuration,
    /// Forwarded system calls (home-node round trips + remote work).
    pub syscall: SimDuration,
    /// Diagnostic overlap, not part of the sum: compute that ran while a
    /// prefetch was still in flight.
    pub prefetch_overlap: SimDuration,
}

impl PhaseBreakdown {
    /// Names of the disjoint phases, in report order.
    pub const PHASES: [&'static str; 8] = [
        "freeze",
        "compute",
        "minor_fault",
        "analysis",
        "install",
        "fault_stall",
        "recovery",
        "syscall",
    ];

    /// The disjoint phases as `(name, duration)` rows, in report order.
    pub fn rows(&self) -> [(&'static str, SimDuration); 8] {
        [
            ("freeze", self.freeze),
            ("compute", self.compute),
            ("minor_fault", self.minor_fault),
            ("analysis", self.analysis),
            ("install", self.install),
            ("fault_stall", self.fault_stall),
            ("recovery", self.recovery),
            ("syscall", self.syscall),
        ]
    }

    /// Sum of the disjoint phases. Equal to the run's total simulated
    /// time for reports produced by the core run loops.
    pub fn total(&self) -> SimDuration {
        self.rows().iter().map(|(_, d)| *d).sum()
    }

    /// Renders one `{"type":"phase",...}` JSONL line per disjoint phase,
    /// plus one `{"type":"overlap",...}` line for `prefetch_overlap`.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for (name, d) in self.rows() {
            let mut w = JsonWriter::object();
            w.field_str("type", "phase");
            w.field_str("phase", name);
            w.field_u64("ns", d.as_nanos());
            w.field_f64("seconds", d.as_secs_f64());
            let _ = writeln!(out, "{}", w.close());
        }
        let mut w = JsonWriter::object();
        w.field_str("type", "overlap");
        w.field_str("phase", "prefetch_overlap");
        w.field_u64("ns", self.prefetch_overlap.as_nanos());
        w.field_f64("seconds", self.prefetch_overlap.as_secs_f64());
        let _ = writeln!(out, "{}", w.close());
        out
    }
}

impl MetricSource for PhaseBreakdown {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        for (name, d) in self.rows() {
            reg.export_gauge(
                &format!("ampom_phase_{name}_seconds"),
                "simulated time attributed to this phase",
                d.as_secs_f64(),
            );
        }
        reg.export_gauge(
            "ampom_phase_prefetch_overlap_seconds",
            "compute time overlapped with in-flight prefetches (diagnostic)",
            self.prefetch_overlap.as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    fn sample() -> PhaseBreakdown {
        PhaseBreakdown {
            freeze: SimDuration::from_millis(5),
            compute: SimDuration::from_millis(40),
            minor_fault: SimDuration::from_micros(300),
            analysis: SimDuration::from_micros(200),
            install: SimDuration::from_micros(500),
            fault_stall: SimDuration::from_millis(3),
            recovery: SimDuration::from_millis(1),
            syscall: SimDuration::from_micros(120),
            prefetch_overlap: SimDuration::from_millis(7),
        }
    }

    #[test]
    fn total_sums_disjoint_phases_only() {
        let p = sample();
        let expected = p.freeze
            + p.compute
            + p.minor_fault
            + p.analysis
            + p.install
            + p.fault_stall
            + p.recovery
            + p.syscall;
        assert_eq!(p.total(), expected);
        // The overlap diagnostic must not inflate the sum.
        assert!(p.total() < expected + p.prefetch_overlap);
    }

    #[test]
    fn jsonl_parses_and_covers_every_phase() {
        let p = sample();
        let text = p.jsonl();
        let mut phases = Vec::new();
        for line in text.lines() {
            let v = parse(line).expect("phase JSONL line must parse");
            if v.get("type").and_then(JsonValue::as_str) == Some("phase") {
                phases.push(
                    v.get("phase")
                        .and_then(JsonValue::as_str)
                        .unwrap()
                        .to_string(),
                );
            }
        }
        assert_eq!(phases, PhaseBreakdown::PHASES);
    }

    #[test]
    fn metrics_export_uses_phase_naming() {
        let mut reg = MetricsRegistry::new();
        sample().export_metrics(&mut reg);
        assert_eq!(reg.gauge_value("ampom_phase_freeze_seconds"), Some(0.005));
        assert!(reg
            .gauge_value("ampom_phase_prefetch_overlap_seconds")
            .is_some());
        assert_eq!(reg.len(), 9);
    }
}
