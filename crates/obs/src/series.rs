//! A bounded, self-decimating time series.
//!
//! Cluster-life runs sample load statistics once per simulated second for
//! hours across 1000+ nodes; storing every sample would let the horizon
//! dictate memory. [`Series`] keeps at most a fixed number of points: when
//! full it drops every other retained point and doubles its sampling
//! stride, so the series always spans the whole run at a resolution that
//! degrades gracefully (a classic decimating recorder). Recording is pure
//! accumulation — like the rest of `ampom-obs` it cannot perturb a run,
//! and its contents are a deterministic function of the recorded values.

/// One retained sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Seconds since the run started.
    pub at_secs: f64,
    /// The recorded value.
    pub value: f64,
}

/// A bounded time series that decimates itself when full.
#[derive(Debug, Clone)]
pub struct Series {
    points: Vec<SamplePoint>,
    capacity: usize,
    /// Record every `stride`-th offered sample; doubles on decimation.
    stride: u64,
    /// Offered samples since the last retained one.
    since_kept: u64,
    offered: u64,
}

impl Series {
    /// A series retaining at most `capacity` points (minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        Series {
            points: Vec::with_capacity(capacity.min(4096)),
            capacity,
            stride: 1,
            since_kept: 0,
            offered: 0,
        }
    }

    /// Offers a sample; it is retained if it falls on the current stride.
    pub fn record(&mut self, at_secs: f64, value: f64) {
        self.offered += 1;
        if self.since_kept > 0 {
            self.since_kept -= 1;
            return;
        }
        self.since_kept = self.stride - 1;
        self.points.push(SamplePoint { at_secs, value });
        if self.points.len() >= self.capacity {
            // Keep points at even indices (0, 2, 4, ...): the first point
            // survives every decimation, so the series always anchors at
            // the run start.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Total samples offered (retained or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current sampling stride (1 until the first decimation).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Mean of the retained values (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// The last retained value, if any.
    pub fn last(&self) -> Option<SamplePoint> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_until_full() {
        let mut s = Series::new(16);
        for i in 0..10 {
            s.record(i as f64, i as f64 * 2.0);
        }
        assert_eq!(s.points().len(), 10);
        assert_eq!(s.stride(), 1);
        assert_eq!(
            s.points()[3],
            SamplePoint {
                at_secs: 3.0,
                value: 6.0
            }
        );
    }

    #[test]
    fn decimates_and_doubles_stride_when_full() {
        let mut s = Series::new(8);
        for i in 0..1000 {
            s.record(i as f64, 1.0);
        }
        assert!(s.points().len() < 8, "bounded: {}", s.points().len());
        assert!(s.stride() > 1);
        assert_eq!(s.offered(), 1000);
        // The first sample always survives.
        assert_eq!(s.points()[0].at_secs, 0.0);
        // Retained points still span (most of) the run.
        assert!(s.points().last().unwrap().at_secs > 500.0);
    }

    #[test]
    fn bounded_regardless_of_volume() {
        let mut s = Series::new(64);
        for i in 0..100_000 {
            s.record(i as f64, (i % 7) as f64);
        }
        assert!(s.points().len() <= 64);
        assert_eq!(s.offered(), 100_000);
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        let run = || {
            let mut s = Series::new(32);
            for i in 0..5000 {
                s.record(i as f64 * 0.5, (i as f64).sin());
            }
            s.points().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mean_and_last_track_retained_points() {
        let mut s = Series::new(8);
        assert_eq!(s.mean(), 0.0);
        assert!(s.last().is_none());
        s.record(0.0, 2.0);
        s.record(1.0, 4.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.last().unwrap().value, 4.0);
    }
}
