//! # ampom-obs — unified observability layer
//!
//! The paper's evaluation (§5, Figures 5–11) is an exercise in time
//! attribution: freeze cost, demand stalls, prefetch overlap, deputy
//! service. This crate is the one place those observations flow through
//! (see `DESIGN.md` §11):
//!
//! * [`registry`] — a counters/gauges/histograms [`MetricsRegistry`] with
//!   named handles; every subsystem implements [`MetricSource`] and the
//!   whole lot renders as a Prometheus-style text dump,
//! * [`phase`] — [`PhaseBreakdown`], the per-phase simulated-time split
//!   whose disjoint phases sum exactly to a run's total time,
//! * [`json`] — dependency-free JSONL writing plus the small parser
//!   `hpcc-repro profile` uses to verify its own output,
//! * [`series`] — a bounded, self-decimating [`Series`] recorder for
//!   over-time samples (cluster load stddev across multi-hour horizons)
//!   whose memory never grows with the run length.
//!
//! ## Read-only by construction
//!
//! Observability here is pull-based and side-effect-free: runs accumulate
//! plain counters exactly as they always have and export *after* the
//! simulated clock has stopped. Nothing in this crate can advance
//! simulated time, so run fingerprints are bit-identical with metrics and
//! tracing on or off — a property pinned by `crates/core/tests/observability.rs`.

pub mod json;
pub mod phase;
pub mod registry;
pub mod series;

pub use json::{parse, trace_event_json, JsonValue, JsonWriter};
pub use phase::PhaseBreakdown;
pub use registry::{
    CounterHandle, GaugeHandle, Histogram, HistogramHandle, MetricSource, MetricsRegistry,
};
pub use series::{SamplePoint, Series};
