//! # ampom-workloads — HPC Challenge kernel models
//!
//! The paper evaluates AMPoM on four HPCC kernels — DGEMM, STREAM,
//! RandomAccess, and FFT — chosen because "they represent different degrees
//! of spatial and temporal localities that bound the behavior and
//! performance of most applications" (§5.1, Figure 4).
//!
//! AMPoM never sees a kernel's arithmetic; it sees the kernel's **page-fault
//! stream and its timing**. Each workload here is therefore a deterministic
//! generator of page-granular references ([`memref::MemRef`]): which page,
//! read or write, and how much CPU time the kernel spends on that touch.
//! The access *patterns* mirror the real kernels (sequential triad sweeps,
//! blocked matrix multiply, GUPS-style random updates, FFT butterflies and
//! bit-reversal); the compute-per-touch constants are calibrated to the
//! paper's P4-2GHz testbed and documented in each module.
//!
//! * [`sizes`] — the paper's Table 1 problem-size ↔ memory-size map,
//! * [`stream_kernel`] — STREAM (high spatial, low temporal locality),
//! * [`dgemm`] — DGEMM (high spatial *and* temporal locality) plus the
//!   small-working-set variant of the Figure 10 experiment,
//! * [`random_access`] — RandomAccess / GUPS (no locality of either kind),
//! * [`fft`] — FFT (middling locality: strided butterflies + bit-reversal),
//! * [`synthetic`] — elementary streams for unit tests and ablations,
//! * [`locality`] — offline locality analytics over any reference stream,
//! * [`ptrans`] — extension: the transpose pattern that defeats a
//!   stride-dmax window (not part of the paper's evaluation),
//! * [`interactive`] — extension: the §5.6 bursty interactive application
//!   with a small per-action working set.
//!
//! Three further extension modules deliberately *break* the localities the
//! HPCC kernels exhibit, to stress prefetch policies beyond the paper's
//! evaluation:
//!
//! * [`pointer_chase`] — a random-cycle pointer chase (graph traversal):
//!   no spatial locality, temporal reuse only after a full lap,
//! * [`zipf`] — Zipfian key-value reuse over hash-scattered pages: extreme
//!   temporal locality, zero spatial locality,
//! * [`churn`] — bursty interactive churn: a scattered hot set that
//!   partially moves every epoch.

pub mod churn;
pub mod compose;
pub mod dgemm;
pub mod fft;
pub mod hpl;
pub mod interactive;
pub mod locality;
pub mod memref;
pub mod pointer_chase;
pub mod ptrans;
pub mod random_access;
pub mod sizes;
pub mod stream_kernel;
pub mod synthetic;
pub mod trace_io;
pub mod zipf;

pub use memref::{MemRef, Workload};
pub use sizes::{Kernel, ProblemSize};

use ampom_sim::rng::SimRng;

/// Instantiates the named kernel at one of its Table 1 problem sizes.
///
/// `seed` controls the stochastic kernels (RandomAccess's update sequence,
/// FFT's bit-reversal shuffle); the sequential kernels ignore it.
pub fn build_kernel(kernel: Kernel, size: &ProblemSize, seed: u64) -> Box<dyn Workload> {
    let rng = SimRng::seed_from_u64(seed);
    match kernel {
        Kernel::Dgemm => Box::new(dgemm::Dgemm::new(size.memory_bytes())),
        Kernel::Stream => Box::new(stream_kernel::StreamKernel::new(size.memory_bytes())),
        Kernel::RandomAccess => {
            Box::new(random_access::RandomAccess::new(size.memory_bytes(), rng))
        }
        Kernel::Fft => Box::new(fft::Fft::new(size.memory_bytes(), rng)),
    }
}
