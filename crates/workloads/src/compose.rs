//! Workload combinators.
//!
//! Real processes have phases: an interactive warm-up, a compute burst, a
//! scan, idle periods. These adapters compose the primitive workloads
//! into such lifecycles while preserving the [`Workload`] contract
//! (deterministic streams, exact `total_refs_hint`, references inside the
//! layout):
//!
//! * [`Concat`] — run several workloads one after another in a shared
//!   address space (each gets its own slice, like a program moving
//!   between data structures),
//! * [`Repeat`] — loop one workload's reference stream `n` times
//!   (steady-state services re-enter their main loop),
//! * [`Scaled`] — multiply every touch's CPU cost (model a slower or
//!   faster machine without re-deriving a generator).

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Several workloads executed back to back, each in its own slice of a
/// shared data region.
pub struct Concat {
    layout: MemoryLayout,
    parts: Vec<(Box<dyn Workload>, u64)>, // (workload, page offset)
    current: usize,
    total_refs: u64,
    data_bytes: u64,
}

impl Concat {
    /// Concatenates `parts` into one address space.
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Workload>>) -> Self {
        assert!(!parts.is_empty(), "Concat of nothing");
        let data_bytes: u64 = parts.iter().map(|w| w.data_bytes()).sum();
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let mut offset = layout.data_start().index();
        let mut placed = Vec::new();
        let mut total_refs = 0;
        for w in parts {
            let guest_start = w.layout().data_start().index();
            total_refs += w.total_refs_hint();
            let pages = w.data_bytes().div_ceil(ampom_mem::PAGE_SIZE);
            placed.push((w, offset - guest_start));
            offset += pages;
        }
        Concat {
            layout,
            parts: placed,
            current: 0,
            total_refs,
            data_bytes,
        }
    }
}

impl Iterator for Concat {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        while self.current < self.parts.len() {
            let (w, offset) = &mut self.parts[self.current];
            if let Some(r) = w.next() {
                return Some(MemRef {
                    page: PageId(r.page.index() + *offset),
                    ..r
                });
            }
            self.current += 1;
        }
        None
    }
}

impl Workload for Concat {
    fn name(&self) -> &'static str {
        "Concat"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }
    fn allocation_pages(&self) -> Vec<PageId> {
        let mut pages = Vec::new();
        for (w, offset) in &self.parts {
            for p in w.allocation_pages() {
                pages.push(PageId(p.index() + offset));
            }
        }
        pages
    }
    fn total_refs_hint(&self) -> u64 {
        self.total_refs
    }
}

/// One workload's reference stream, looped `n` times. The stream is
/// materialised on first pass so later passes replay it exactly.
pub struct Repeat {
    layout: MemoryLayout,
    data_bytes: u64,
    refs: Vec<MemRef>,
    passes: u32,
    pass: u32,
    index: usize,
}

impl Repeat {
    /// Loops `inner`'s stream `passes` times.
    ///
    /// # Panics
    /// Panics if `passes` is zero.
    pub fn new(mut inner: Box<dyn Workload>, passes: u32) -> Self {
        assert!(passes > 0, "Repeat zero times");
        let layout = inner.layout().clone();
        let data_bytes = inner.data_bytes();
        let refs: Vec<MemRef> = inner.by_ref().collect();
        Repeat {
            layout,
            data_bytes,
            refs,
            passes,
            pass: 0,
            index: 0,
        }
    }
}

impl Iterator for Repeat {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.pass >= self.passes {
            return None;
        }
        let r = self.refs.get(self.index).copied();
        match r {
            Some(r) => {
                self.index += 1;
                if self.index == self.refs.len() {
                    self.index = 0;
                    self.pass += 1;
                }
                Some(r)
            }
            None => None, // inner stream was empty
        }
    }
}

impl Workload for Repeat {
    fn name(&self) -> &'static str {
        "Repeat"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }
    fn total_refs_hint(&self) -> u64 {
        self.refs.len() as u64 * self.passes as u64
    }
}

/// The tail of a workload: the first `skip` references are consumed at
/// construction (their total CPU is reported via [`Skip::skipped_cpu`]),
/// and the stream resumes from reference `skip`. Used to model a process
/// migrated *mid-execution* rather than right after allocation.
pub struct Skip {
    inner: Box<dyn Workload>,
    skipped: u64,
    skipped_cpu: SimDuration,
    last_skipped: Option<PageId>,
}

impl Skip {
    /// Consumes the first `skip` references of `inner`.
    pub fn new(mut inner: Box<dyn Workload>, skip: u64) -> Self {
        let mut skipped_cpu = SimDuration::ZERO;
        let mut last = None;
        let mut n = 0;
        for _ in 0..skip {
            match inner.next() {
                Some(r) => {
                    skipped_cpu += r.cpu;
                    last = Some(r.page);
                    n += 1;
                }
                None => break,
            }
        }
        Skip {
            inner,
            skipped: n,
            skipped_cpu,
            last_skipped: last,
        }
    }

    /// CPU the skipped prefix would have consumed (the pre-migration
    /// execution time at the home node).
    pub fn skipped_cpu(&self) -> SimDuration {
        self.skipped_cpu
    }

    /// How many references were actually skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The last page the skipped prefix touched (the "currently accessed"
    /// data page at migration time).
    pub fn last_skipped_page(&self) -> Option<PageId> {
        self.last_skipped
    }
}

impl Iterator for Skip {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        self.inner.next()
    }
}

impl Workload for Skip {
    fn name(&self) -> &'static str {
        "Skip"
    }
    fn layout(&self) -> &MemoryLayout {
        self.inner.layout()
    }
    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
    fn allocation_pages(&self) -> Vec<PageId> {
        self.inner.allocation_pages()
    }
    fn total_refs_hint(&self) -> u64 {
        self.inner.total_refs_hint().saturating_sub(self.skipped)
    }
}

/// A workload with every touch's CPU cost multiplied by a fixed factor.
pub struct Scaled {
    inner: Box<dyn Workload>,
    factor: f64,
}

impl Scaled {
    /// Scales `inner`'s per-touch CPU by `factor` (> 0).
    pub fn new(inner: Box<dyn Workload>, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        Scaled { inner, factor }
    }
}

impl Iterator for Scaled {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        self.inner.next().map(|r| MemRef {
            cpu: SimDuration::from_secs_f64(r.cpu.as_secs_f64() * self.factor),
            ..r
        })
    }
}

impl Workload for Scaled {
    fn name(&self) -> &'static str {
        "Scaled"
    }
    fn layout(&self) -> &MemoryLayout {
        self.inner.layout()
    }
    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
    fn allocation_pages(&self) -> Vec<PageId> {
        self.inner.allocation_pages()
    }
    fn total_refs_hint(&self) -> u64 {
        self.inner.total_refs_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;
    use crate::synthetic::{Sequential, UniformRandom};
    use ampom_sim::rng::SimRng;

    const CPU: SimDuration = SimDuration::from_micros(10);

    #[test]
    fn concat_runs_parts_in_order_in_disjoint_slices() {
        let c = Concat::new(vec![
            Box::new(Sequential::new(16, CPU)),
            Box::new(Sequential::new(8, CPU)),
        ]);
        let refs = check_stream_invariants(c);
        assert_eq!(refs.len(), 24);
        // The second part's pages come after the first's.
        let first_max = refs[..16].iter().map(|r| r.page).max().unwrap();
        let second_min = refs[16..].iter().map(|r| r.page).min().unwrap();
        assert!(second_min > first_max);
    }

    #[test]
    fn concat_allocation_covers_all_parts() {
        let c = Concat::new(vec![
            Box::new(Sequential::new(10, CPU)),
            Box::new(UniformRandom::new(10, 5, CPU, SimRng::seed_from_u64(1))),
        ]);
        assert_eq!(c.allocation_pages().len(), 20);
    }

    #[test]
    fn repeat_replays_exactly() {
        let r = Repeat::new(Box::new(Sequential::new(8, CPU)), 3);
        let refs = check_stream_invariants(r);
        assert_eq!(refs.len(), 24);
        assert_eq!(refs[..8], refs[8..16]);
        assert_eq!(refs[..8], refs[16..24]);
    }

    #[test]
    fn scaled_multiplies_cpu_only() {
        let plain: Vec<_> = Sequential::new(8, CPU).collect();
        let scaled: Vec<_> = Scaled::new(Box::new(Sequential::new(8, CPU)), 2.0).collect();
        for (a, b) in plain.iter().zip(&scaled) {
            assert_eq!(a.page, b.page);
            assert_eq!(b.cpu, a.cpu * 2);
        }
    }

    #[test]
    fn combinators_nest() {
        // (sequential ×2 passes) followed by a scaled random phase.
        let w = Concat::new(vec![
            Box::new(Repeat::new(Box::new(Sequential::new(8, CPU)), 2)),
            Box::new(Scaled::new(
                Box::new(UniformRandom::new(8, 20, CPU, SimRng::seed_from_u64(2))),
                0.5,
            )),
        ]);
        let refs = check_stream_invariants(w);
        assert_eq!(refs.len(), 16 + 20);
    }

    #[test]
    fn skip_consumes_a_prefix_and_reports_it() {
        let s = Skip::new(Box::new(Sequential::new(16, CPU)), 5);
        assert_eq!(s.skipped(), 5);
        assert_eq!(s.skipped_cpu(), CPU * 5);
        assert_eq!(s.total_refs_hint(), 11);
        let last = s.last_skipped_page().unwrap();
        let refs: Vec<_> = s.collect();
        assert_eq!(refs.len(), 11);
        assert!(refs[0].page.is_succ_of(last));
    }

    #[test]
    fn skip_past_the_end_is_safe() {
        let s = Skip::new(Box::new(Sequential::new(4, CPU)), 100);
        assert_eq!(s.skipped(), 4);
        assert_eq!(s.total_refs_hint(), 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "Concat of nothing")]
    fn empty_concat_rejected() {
        let _ = Concat::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "Repeat zero times")]
    fn zero_repeat_rejected() {
        let _ = Repeat::new(Box::new(Sequential::new(4, CPU)), 0);
    }
}
