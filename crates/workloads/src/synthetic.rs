//! Elementary synthetic reference streams.
//!
//! These are not HPCC kernels; they are the minimal access patterns the
//! paper uses in its worked examples (§3.2's `{1,2,3,4,…}` sequential
//! stream, `{10,99,11,34,12,85}` interleaved stream) and the building
//! blocks for unit tests, property tests and ablation benches of the
//! AMPoM algorithm itself.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// A purely sequential sweep: pages `0, 1, 2, …` of the data region —
/// spatial locality score 1 by the paper's definition.
#[derive(Debug)]
pub struct Sequential {
    layout: MemoryLayout,
    pages: u64,
    cpu: SimDuration,
    next: u64,
}

impl Sequential {
    /// Sweeps `pages` pages once, spending `cpu` per touch.
    pub fn new(pages: u64, cpu: SimDuration) -> Self {
        assert!(pages > 0);
        Sequential {
            layout: MemoryLayout::with_data_bytes(pages * ampom_mem::PAGE_SIZE),
            pages,
            cpu,
            next: 0,
        }
    }
}

impl Iterator for Sequential {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.next >= self.pages {
            return None;
        }
        let page = self.layout.data_start().offset(self.next);
        self.next += 1;
        Some(MemRef::read(page, self.cpu))
    }
}

impl Workload for Sequential {
    fn name(&self) -> &'static str {
        "Sequential"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.pages * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.pages
    }
}

/// A sequential sweep of *stores*: pages `0, 1, 2, …`, each written —
/// the dirty-page-maximising counterpart of [`Sequential`] (a STREAM
/// fill pass). Every page it touches must eventually travel home, which
/// makes it the canonical driver for writeback and page-lifecycle
/// experiments.
#[derive(Debug)]
pub struct SequentialWrite {
    layout: MemoryLayout,
    pages: u64,
    cpu: SimDuration,
    next: u64,
}

impl SequentialWrite {
    /// Writes `pages` pages once, spending `cpu` per store.
    pub fn new(pages: u64, cpu: SimDuration) -> Self {
        assert!(pages > 0);
        SequentialWrite {
            layout: MemoryLayout::with_data_bytes(pages * ampom_mem::PAGE_SIZE),
            pages,
            cpu,
            next: 0,
        }
    }
}

impl Iterator for SequentialWrite {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.next >= self.pages {
            return None;
        }
        let page = self.layout.data_start().offset(self.next);
        self.next += 1;
        Some(MemRef::write(page, self.cpu))
    }
}

impl Workload for SequentialWrite {
    fn name(&self) -> &'static str {
        "SequentialWrite"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.pages * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.pages
    }
}

/// `k` interleaved sequential streams at distant bases — the pattern of
/// STREAM's arrays and the §3.2 worked example `{10,99,11,34,12,85}`.
#[derive(Debug)]
pub struct Interleaved {
    layout: MemoryLayout,
    streams: u64,
    stream_pages: u64,
    cpu: SimDuration,
    emitted: u64,
}

impl Interleaved {
    /// `streams` sequential streams of `stream_pages` pages each,
    /// round-robin interleaved.
    pub fn new(streams: u64, stream_pages: u64, cpu: SimDuration) -> Self {
        assert!(streams > 0 && stream_pages > 0);
        Interleaved {
            layout: MemoryLayout::with_data_bytes(streams * stream_pages * ampom_mem::PAGE_SIZE),
            streams,
            stream_pages,
            cpu,
            emitted: 0,
        }
    }
}

impl Iterator for Interleaved {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.emitted >= self.streams * self.stream_pages {
            return None;
        }
        let lane = self.emitted % self.streams;
        let idx = self.emitted / self.streams;
        self.emitted += 1;
        let page = self
            .layout
            .data_start()
            .offset(lane * self.stream_pages + idx);
        Some(MemRef::read(page, self.cpu))
    }
}

impl Workload for Interleaved {
    fn name(&self) -> &'static str {
        "Interleaved"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.streams * self.stream_pages * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.streams * self.stream_pages
    }
}

/// A value-strided sweep: pages `0, k, 2k, …` then `1, k+1, …`, covering
/// every page once. Note the subtlety: AMPoM's census detects *positional*
/// strides (a page's successor appearing `d` window slots later, as in
/// [`Interleaved`]); this sweep's successor pages are a whole lane apart,
/// so it is **invisible to the census at any `dmax`** — an adversarial
/// pattern (like a column-major matrix walk) that only the read-ahead
/// fallback can help with. The dmax knife edge itself is exercised with
/// [`Interleaved`] streams.
#[derive(Debug)]
pub struct Strided {
    layout: MemoryLayout,
    pages: u64,
    stride: u64,
    cpu: SimDuration,
    emitted: u64,
}

impl Strided {
    /// Sweeps `pages` pages in stride-`stride` order.
    ///
    /// # Panics
    /// Panics unless `0 < stride ≤ pages`.
    pub fn new(pages: u64, stride: u64, cpu: SimDuration) -> Self {
        assert!(stride > 0 && stride <= pages);
        Strided {
            layout: MemoryLayout::with_data_bytes(pages * ampom_mem::PAGE_SIZE),
            pages,
            stride,
            cpu,
            emitted: 0,
        }
    }
}

impl Iterator for Strided {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.emitted >= self.pages {
            return None;
        }
        let i = self.emitted;
        self.emitted += 1;
        // Column-major walk of a (stride × ceil(pages/stride)) grid,
        // skipping the ragged tail.
        let per_lane = self.pages / self.stride;
        let lane = i / per_lane;
        let idx = i % per_lane;
        let page_idx = (idx * self.stride + lane).min(self.pages - 1);
        Some(MemRef::read(
            self.layout.data_start().offset(page_idx),
            self.cpu,
        ))
    }
}

impl Workload for Strided {
    fn name(&self) -> &'static str {
        "Strided"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.pages * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.pages
    }
}

/// Uniformly random page touches — spatial locality score ≈ 0.
#[derive(Debug)]
pub struct UniformRandom {
    layout: MemoryLayout,
    pages: u64,
    touches: u64,
    cpu: SimDuration,
    emitted: u64,
    rng: SimRng,
}

impl UniformRandom {
    /// `touches` uniform touches over `pages` pages.
    pub fn new(pages: u64, touches: u64, cpu: SimDuration, rng: SimRng) -> Self {
        assert!(pages > 0);
        UniformRandom {
            layout: MemoryLayout::with_data_bytes(pages * ampom_mem::PAGE_SIZE),
            pages,
            touches,
            cpu,
            emitted: 0,
            rng,
        }
    }
}

impl Iterator for UniformRandom {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        if self.emitted >= self.touches {
            return None;
        }
        self.emitted += 1;
        let page = self.layout.data_start().offset(self.rng.below(self.pages));
        Some(MemRef::write(page, self.cpu))
    }
}

impl Workload for UniformRandom {
    fn name(&self) -> &'static str {
        "UniformRandom"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.pages * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.touches
    }
}

/// A fixed, explicit reference list over a given page count — used to feed
/// the paper's literal worked examples through the real machinery.
#[derive(Debug)]
pub struct Scripted {
    layout: MemoryLayout,
    refs: std::vec::IntoIter<MemRef>,
    total: u64,
}

impl Scripted {
    /// Wraps an explicit page-number sequence; `pages` sizes the address
    /// space and must exceed every listed page.
    pub fn new(pages: u64, sequence: &[u64], cpu: SimDuration) -> Self {
        let layout = MemoryLayout::with_data_bytes(pages * ampom_mem::PAGE_SIZE);
        let base = layout.data_start();
        let refs: Vec<MemRef> = sequence
            .iter()
            .map(|&p| {
                assert!(p < pages, "scripted page {p} out of range");
                MemRef::read(base.offset(p), cpu)
            })
            .collect();
        let total = refs.len() as u64;
        Scripted {
            layout,
            refs: refs.into_iter(),
            total,
        }
    }
}

impl Iterator for Scripted {
    type Item = MemRef;
    fn next(&mut self) -> Option<MemRef> {
        self.refs.next()
    }
}

impl Workload for Scripted {
    fn name(&self) -> &'static str {
        "Scripted"
    }
    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
    fn data_bytes(&self) -> u64 {
        self.layout.data_pages().len() * ampom_mem::PAGE_SIZE
    }
    fn total_refs_hint(&self) -> u64 {
        self.total
    }
}

/// Convenience: the data-region page for index `i` of a workload.
pub fn data_page(w: &dyn Workload, i: u64) -> PageId {
    w.layout().data_start().offset(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    const CPU: SimDuration = SimDuration::from_micros(10);

    #[test]
    fn sequential_is_successive() {
        let refs = check_stream_invariants(Sequential::new(16, CPU));
        for w in refs.windows(2) {
            assert!(w[1].page.is_succ_of(w[0].page));
        }
    }

    #[test]
    fn interleaved_round_robins() {
        let w = Interleaved::new(3, 4, CPU);
        let base = w.layout().data_start();
        let refs: Vec<_> = w.collect();
        assert_eq!(refs[0].page, base);
        assert_eq!(refs[1].page, base.offset(4));
        assert_eq!(refs[2].page, base.offset(8));
        assert_eq!(refs[3].page, base.offset(1));
        assert_eq!(refs.len(), 12);
    }

    #[test]
    fn strided_sweep_has_the_declared_stride() {
        let w = Strided::new(64, 4, CPU);
        let refs: Vec<_> = w.collect();
        assert_eq!(refs.len(), 64);
        // Within a lane, consecutive refs are `stride` pages apart.
        assert_eq!(refs[1].page.distance(refs[0].page), 4);
        // A page's successor appears `stride` refs later.
        assert!(refs[4].page.index() > refs[0].page.index());
    }

    #[test]
    fn uniform_random_stays_in_range() {
        let w = UniformRandom::new(10, 1000, CPU, SimRng::seed_from_u64(1));
        check_stream_invariants(w);
    }

    #[test]
    fn scripted_reproduces_paper_example() {
        // §3.2: {10,99,11,34,12,85}
        let seq = [10u64, 99, 11, 34, 12, 85];
        let w = Scripted::new(100, &seq, CPU);
        let base = w.layout().data_start();
        let got: Vec<_> = w.map(|r| r.page.index() - base.index()).collect();
        assert_eq!(got, seq);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scripted_range_checked() {
        let _ = Scripted::new(10, &[11], CPU);
    }
}
