//! The FFT kernel (1-D complex transform).
//!
//! FFT sits between the extremes in the paper's Figure 4 quadrant: its
//! butterfly passes read two sequential streams offset by the butterfly
//! distance (good spatial locality, detectable as interleaved stride
//! streams), while the bit-reversal reordering pass scatters accesses
//! almost randomly. The paper reports a 97% fault-prevention rate and a
//! prefetch aggressiveness well below STREAM's (Figures 7–8), which this
//! access structure reproduces: the analyzer sees *two* outstanding
//! streams during butterflies (splitting the prefetch quota) and nearly
//! none during bit-reversal.
//!
//! ## Model and down-scaling
//!
//! A real radix-2 FFT over a 513 MB array runs ~26 passes; per-page the
//! later passes are indistinguishable (two interleaved sequential sweeps),
//! so we model `log2(pages)/2` representative butterfly passes plus one
//! bit-reversal pass, and fold the remaining passes' arithmetic into the
//! per-touch CPU cost — calibrated so the 513 MB run costs ≈ 40 s of pure
//! compute, matching the ≈ 85 s openMosix total of Figure 6(d).
//!
//! The pass order is decimation-in-frequency (as in FFTW and HPCC's FFTE):
//! butterfly passes first, the reordering pass last. The post-migration
//! *fault* stream is therefore the first butterfly pass — two interleaved
//! sequential lanes the prefetcher can latch onto — while the scattered
//! reordering runs against already-local pages.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Radix-2 FFT at page granularity: a bit-reversal permutation pass
/// followed by butterfly passes of decreasing distance.
#[derive(Debug)]
pub struct Fft {
    layout: MemoryLayout,
    data_bytes: u64,
    pages: u64,
    base: PageId,
    cpu_per_touch: SimDuration,
    /// The bit-reversal visit order (a seeded pseudo-random permutation —
    /// true bit-reversal at page granularity is statistically equivalent).
    reversal_order: Vec<u64>,
    butterfly_passes: u64,
    // Iteration state.
    phase: Phase,
    pass: u64,
    i: u64,
    half: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Reversal,
    Butterfly,
    Done,
}

impl Fft {
    /// CPU per page-touch, folding in the unmodelled passes' arithmetic.
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_nanos(35_000);

    /// Builds an FFT instance over a `data_bytes` array.
    pub fn new(data_bytes: u64, mut rng: SimRng) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let pages = layout.data_pages().len();
        let mut reversal_order: Vec<u64> = (0..pages).collect();
        rng.shuffle(&mut reversal_order);
        let butterfly_passes = ((64 - pages.leading_zeros() as u64) / 2).max(2);
        Fft {
            base: layout.data_start(),
            layout,
            data_bytes,
            pages,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            reversal_order,
            butterfly_passes,
            phase: Phase::Butterfly,
            pass: 0,
            i: 0,
            half: false,
        }
    }

    /// Butterfly distance for a pass: halves each pass, floored at one
    /// page (later real passes fall inside a single page).
    fn distance(&self, pass: u64) -> u64 {
        (self.pages >> (pass + 1)).max(1)
    }

    /// Number of butterfly passes modelled.
    pub fn butterfly_passes(&self) -> u64 {
        self.butterfly_passes
    }
}

impl Iterator for Fft {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        match self.phase {
            Phase::Reversal => {
                let page = self.base.offset(self.reversal_order[self.i as usize]);
                self.i += 1;
                if self.i == self.pages {
                    self.phase = Phase::Done;
                    self.i = 0;
                }
                Some(MemRef {
                    page,
                    write: true,
                    cpu: self.cpu_per_touch,
                })
            }
            Phase::Butterfly => {
                let d = self.distance(self.pass);
                // Visit pairs (i, i+d) where i walks each 2d-aligned block's
                // lower half; both halves are written (in-place butterfly).
                let block = self.i / d;
                let within = self.i % d;
                let lo = block * 2 * d + within;
                let page_idx = if self.half {
                    (lo + d).min(self.pages - 1)
                } else {
                    lo
                };
                let r = MemRef {
                    page: self.base.offset(page_idx),
                    write: true,
                    cpu: self.cpu_per_touch,
                };
                if self.half {
                    self.half = false;
                    self.i += 1;
                    if self.i >= self.pages / 2 {
                        self.i = 0;
                        self.pass += 1;
                        if self.pass == self.butterfly_passes {
                            self.phase = Phase::Reversal;
                        }
                    }
                } else {
                    self.half = true;
                }
                Some(r)
            }
            Phase::Done => None,
        }
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        // One reversal pass + butterfly passes of 2·(pages/2) touches each.
        self.pages + self.butterfly_passes * (self.pages / 2) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;
    use std::collections::HashSet;

    fn build(bytes: u64, seed: u64) -> Fft {
        Fft::new(bytes, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(2 * 1024 * 1024, 1));
    }

    #[test]
    fn first_butterfly_pass_touches_every_page_once() {
        let f = build(1024 * 1024, 2);
        let pages = f.pages;
        let first: Vec<_> = f.take(pages as usize).collect();
        let distinct: HashSet<_> = first.iter().map(|r| r.page).collect();
        assert_eq!(distinct.len() as u64, pages);
    }

    #[test]
    fn reversal_pass_comes_last_and_permutes_all_pages() {
        let f = build(1024 * 1024, 2);
        let pages = f.pages as usize;
        let refs: Vec<_> = f.collect();
        let last: Vec<_> = refs[refs.len() - pages..].to_vec();
        let distinct: HashSet<_> = last.iter().map(|r| r.page).collect();
        assert_eq!(distinct.len(), pages);
        // Scattered, not sequential: successor pairs are rare.
        let succ = last
            .windows(2)
            .filter(|w| w[1].page.is_succ_of(w[0].page))
            .count();
        assert!(succ < pages / 10, "reversal must look random: {succ}");
    }

    #[test]
    fn butterfly_pairs_are_offset_by_distance() {
        let mut f = build(64 * 4096, 3);
        let d = f.distance(0);
        let refs: Vec<_> = f.by_ref().take(8).collect();
        for pair in refs.chunks(2) {
            let delta = pair[1].page.distance(pair[0].page);
            assert_eq!(delta, d, "butterfly pair distance");
        }
    }

    #[test]
    fn butterfly_low_halves_are_sequential_across_pairs() {
        let mut f = build(64 * 4096, 3);
        let refs: Vec<_> = f.by_ref().take(10).collect();
        // Even-indexed refs are the "low" stream: must advance by one page.
        let lows: Vec<_> = refs.iter().step_by(2).map(|r| r.page).collect();
        for w in lows.windows(2) {
            assert!(w[1].is_succ_of(w[0]), "low stream sequential");
        }
    }

    #[test]
    fn pass_count_scales_logarithmically() {
        let small = build(1024 * 1024, 4);
        let large = build(256 * 1024 * 1024, 4);
        assert!(large.butterfly_passes() > small.butterfly_passes());
        assert!(large.butterfly_passes() < 16);
    }

    #[test]
    fn compute_calibration_513mb() {
        let f = build(513 * 1024 * 1024, 5);
        let total = f.total_refs_hint() as f64 * Fft::CPU_PER_TOUCH.as_secs_f64();
        assert!((30.0..55.0).contains(&total), "513MB FFT compute {total}s");
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = build(1024 * 1024, 7).collect();
        let b: Vec<_> = build(1024 * 1024, 7).collect();
        assert_eq!(a, b);
    }
}
