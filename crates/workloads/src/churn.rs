//! Bursty interactive churn — a working set that keeps partially moving.
//!
//! [`crate::interactive`] models the paper's §5.6 GUI application as
//! contiguous feature regions: friendly to a stride census. Real
//! interactive services are harsher — each burst re-touches a *scattered*
//! hot set (widgets, session state, JIT caches), and between bursts part of
//! that hot set churns as the user changes activity. The prefetcher
//! therefore sees (a) no strides inside a burst, because the hot set is
//! hash-ordered, and (b) a moving target across bursts, because yesterday's
//! hot pages go cold just as the history window has learned them.
//!
//! [`BurstyChurn`] keeps a hot set of `hot_pages` distinct, randomly placed
//! pages; every epoch touches `touches_per_epoch` of them uniformly at
//! random, then replaces `churn_pct` percent of the set with fresh pages.
//! Think time lands on the last touch of each epoch, like
//! [`crate::interactive`].

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// A scattered hot set with per-epoch partial replacement.
#[derive(Debug)]
pub struct BurstyChurn {
    layout: MemoryLayout,
    data_bytes: u64,
    base: PageId,
    /// A shuffled deck of every data-page offset. The first `hot_pages`
    /// entries are the current hot set; churn swaps hot slots with the
    /// cold tail, so the hot set stays distinct by construction.
    deck: Vec<u64>,
    hot_pages: u64,
    /// Next cold-tail index to promote on churn (walks the tail circularly).
    next_fresh: usize,
    epochs: u32,
    touches_per_epoch: u64,
    churn_per_epoch: u64,
    think_time: SimDuration,
    cpu_per_touch: SimDuration,
    rng: SimRng,
    // Iteration state.
    epoch: u32,
    within: u64,
}

impl BurstyChurn {
    /// CPU per touch (event-handler-level work).
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_micros(25);
    /// Default think time between epochs (declarative-spec builds).
    pub const THINK_TIME: SimDuration = SimDuration::from_millis(150);

    /// Builds a churn workload over `data_bytes` of heap: `epochs` bursts
    /// of `touches_per_epoch` touches over a hot set of `hot_pages`,
    /// replacing `churn_pct`% of the hot set after each burst.
    pub fn new(
        data_bytes: u64,
        epochs: u32,
        hot_pages: u64,
        touches_per_epoch: u64,
        churn_pct: u32,
        think_time: SimDuration,
        mut rng: SimRng,
    ) -> Self {
        assert!(epochs > 0 && hot_pages > 0 && touches_per_epoch > 0);
        assert!(churn_pct <= 100, "churn_pct is a percentage");
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total_pages = layout.data_pages().len();
        assert!(
            hot_pages < total_pages,
            "hot set must leave cold pages to churn in"
        );
        let mut deck: Vec<u64> = (0..total_pages).collect();
        rng.shuffle(&mut deck);
        BurstyChurn {
            base: layout.data_start(),
            layout,
            data_bytes,
            deck,
            hot_pages,
            next_fresh: hot_pages as usize,
            epochs,
            touches_per_epoch,
            churn_per_epoch: hot_pages * churn_pct as u64 / 100,
            think_time,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            rng,
            epoch: 0,
            within: 0,
        }
    }

    /// Pages replaced in the hot set after each epoch.
    pub fn churn_per_epoch(&self) -> u64 {
        self.churn_per_epoch
    }

    fn churn(&mut self) {
        let n = self.deck.len();
        for _ in 0..self.churn_per_epoch {
            let hot_slot = self.rng.below(self.hot_pages) as usize;
            self.deck.swap(hot_slot, self.next_fresh);
            self.next_fresh += 1;
            if self.next_fresh >= n {
                self.next_fresh = self.hot_pages as usize;
            }
        }
    }
}

impl Iterator for BurstyChurn {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.epoch >= self.epochs {
            return None;
        }
        let slot = self.rng.below(self.hot_pages) as usize;
        let page = self.base.offset(self.deck[slot]);
        let last_of_epoch = self.within + 1 == self.touches_per_epoch;
        let cpu = if last_of_epoch {
            self.cpu_per_touch + self.think_time
        } else {
            self.cpu_per_touch
        };
        self.within += 1;
        if last_of_epoch {
            self.within = 0;
            self.epoch += 1;
            if self.epoch < self.epochs {
                self.churn();
            }
        }
        Some(MemRef::write(page, cpu))
    }
}

impl Workload for BurstyChurn {
    fn name(&self) -> &'static str {
        "BurstyChurn"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.epochs as u64 * self.touches_per_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use crate::memref::testutil::check_stream_invariants;

    fn build(mb: u64, epochs: u32, hot: u64, touches: u64, churn: u32) -> BurstyChurn {
        BurstyChurn::new(
            mb * 1024 * 1024,
            epochs,
            hot,
            touches,
            churn,
            SimDuration::from_millis(150),
            SimRng::seed_from_u64(17),
        )
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(8, 5, 64, 256, 25));
    }

    #[test]
    fn each_epoch_stays_inside_its_hot_set() {
        let touches = 512u64;
        let hot = 32u64;
        let w = build(8, 4, hot, touches, 50);
        let refs: Vec<_> = w.collect();
        for epoch in refs.chunks(touches as usize) {
            let distinct: HashSet<_> = epoch.iter().map(|r| r.page).collect();
            assert!(distinct.len() as u64 <= hot);
        }
    }

    #[test]
    fn hot_set_moves_between_epochs() {
        let touches = 2_000u64; // enough to cover the hot set w.h.p.
        let hot = 32u64;
        let w = build(8, 2, hot, touches, 50);
        let refs: Vec<_> = w.collect();
        let first: HashSet<_> = refs[..touches as usize].iter().map(|r| r.page).collect();
        let second: HashSet<_> = refs[touches as usize..].iter().map(|r| r.page).collect();
        let fresh = second.difference(&first).count();
        assert!(fresh >= 8, "only {fresh} new pages after 50% churn");
    }

    #[test]
    fn zero_churn_reuses_one_working_set() {
        let w = build(8, 6, 16, 400, 0);
        let pages: HashSet<_> = w.map(|r| r.page).collect();
        assert!(pages.len() as u64 <= 16);
    }

    #[test]
    fn think_time_lands_on_epoch_boundaries() {
        let w = build(4, 2, 8, 10, 25);
        let refs: Vec<_> = w.collect();
        assert!(refs[9].cpu > SimDuration::from_millis(100));
        assert!(refs[8].cpu < SimDuration::from_millis(1));
        assert!(refs[19].cpu > SimDuration::from_millis(100));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = build(4, 3, 16, 64, 25).collect();
        let b: Vec<_> = build(4, 3, 16, 64, 25).collect();
        assert_eq!(a, b);
    }
}
