//! PTRANS (parallel matrix transpose) — an extension workload.
//!
//! The paper skips PTRANS ("network communication performance in parallel
//! programs is not the focus of AMPoM", §5.1), but its *memory* pattern is
//! the most adversarial of all HPCC kernels for a stride-window prefetcher:
//! `A = A + Bᵀ` reads `B` row-major (sequential pages) while writing `A`
//! column-major — consecutive writes land `row_pages` apart, a stride far
//! beyond `dmax = 4`. AMPoM can latch onto the read lane but is blind to
//! the write lane, so it should land *between* STREAM and RandomAccess in
//! fault prevention. The `ext-ptrans` experiment quantifies exactly that
//! limitation; it is the kind of pattern the paper's §6 "prefetching based
//! on spatial locality" discussion implicitly concedes.
//!
//! ## Model
//!
//! Two equal matrices of `n × n` pages (one page per block row segment).
//! The trace interleaves, per element-block: a read of `B[i][j]` (row
//! major: page `i·n + j`) and a write of `A[j][i]` (column major walk:
//! page `j·n + i`), sweeping `j` innermost. CPU per touch is STREAM-class
//! (a transpose is pure data movement).

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// Blocked matrix transpose at page granularity.
#[derive(Debug)]
pub struct Ptrans {
    layout: MemoryLayout,
    data_bytes: u64,
    /// Matrix side length in pages.
    n: u64,
    base: PageId,
    cpu_per_touch: SimDuration,
    // Iteration state.
    i: u64,
    j: u64,
    reading: bool,
    done: bool,
}

impl Ptrans {
    /// CPU per page-touch (data movement, STREAM-class).
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_nanos(14_000);

    /// Builds a PTRANS over `data_bytes` (two equal square matrices).
    pub fn new(data_bytes: u64) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total = layout.data_pages().len();
        let per_matrix = (total / 2).max(1);
        let n = (per_matrix as f64).sqrt().floor() as u64;
        let n = n.max(1);
        Ptrans {
            base: layout.data_start(),
            layout,
            data_bytes,
            n,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            i: 0,
            j: 0,
            reading: true,
            done: false,
        }
    }

    /// Matrix side in pages.
    pub fn side_pages(&self) -> u64 {
        self.n
    }

    fn b_base(&self) -> PageId {
        // B occupies the second half of the data region.
        self.base.offset(self.n * self.n)
    }
}

impl Iterator for Ptrans {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.done {
            return None;
        }
        let r = if self.reading {
            // Read B row-major: page i·n + j — sequential as j sweeps.
            MemRef::read(
                self.b_base().offset(self.i * self.n + self.j),
                self.cpu_per_touch,
            )
        } else {
            // Write A column-major: page j·n + i — stride-n as j sweeps.
            MemRef::write(
                self.base.offset(self.j * self.n + self.i),
                self.cpu_per_touch,
            )
        };
        if self.reading {
            self.reading = false;
        } else {
            self.reading = true;
            self.j += 1;
            if self.j == self.n {
                self.j = 0;
                self.i += 1;
                if self.i == self.n {
                    self.done = true;
                }
            }
        }
        Some(r)
    }
}

impl Workload for Ptrans {
    fn name(&self) -> &'static str {
        "PTRANS"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        2 * self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    #[test]
    fn invariants_hold() {
        check_stream_invariants(Ptrans::new(2 * 1024 * 1024));
    }

    #[test]
    fn read_lane_is_sequential_write_lane_is_strided() {
        let p = Ptrans::new(4096 * 2 * 64); // n = 8
        let n = p.side_pages();
        assert_eq!(n, 8);
        let refs: Vec<_> = p.take(8).collect();
        // Alternating read/write.
        assert!(refs.iter().step_by(2).all(|r| !r.write));
        assert!(refs.iter().skip(1).step_by(2).all(|r| r.write));
        // Reads advance by one page; writes by n pages.
        assert!(refs[2].page.is_succ_of(refs[0].page));
        assert_eq!(refs[3].page.distance(refs[1].page), n);
    }

    #[test]
    fn touches_every_page_of_both_matrices() {
        let p = Ptrans::new(4096 * 2 * 36); // n = 6
        let n = p.side_pages();
        let pages: std::collections::HashSet<_> = p.map(|r| r.page).collect();
        assert_eq!(pages.len() as u64, 2 * n * n);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = Ptrans::new(1024 * 1024).collect();
        let b: Vec<_> = Ptrans::new(1024 * 1024).collect();
        assert_eq!(a, b);
    }
}
