//! The STREAM kernel (McCalpin memory-bandwidth benchmark).
//!
//! STREAM sits in the paper's Figure 4 quadrant at **high spatial, low
//! temporal** locality: it sweeps three large arrays (`c[i] = a[i] + s·b[i]`
//! and friends) sequentially, touching every element exactly once per pass
//! and never revisiting until the next pass. At page granularity that is
//! three interleaved stride-1 reference streams — exactly the multi-stream
//! pattern AMPoM's outstanding-stream/pivot machinery is built to detect,
//! and the workload on which the paper reports the most aggressive
//! prefetching (Figure 8) and a 99% fault-prevention rate (Figure 7).
//!
//! ## Calibration
//!
//! HPCC runs each STREAM operation `NTIMES` times; we model
//! [`StreamKernel::PASSES`] full sweeps. CPU per page-touch is set so a
//! 575 MB run costs ≈ 20 s of pure compute on the P4-2GHz testbed, which
//! together with the ≈ 51 s eager-copy wire time reproduces the ≈ 75 s
//! openMosix total of Figure 6(b). STREAM is the paper's clearest
//! "memory-intensive, high paging rate" case: compute per page (≈ 13.5 µs)
//! is far below the page wire time (≈ 360 µs), so execution is
//! network-bound after migration and the pipelining effect dominates.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// The STREAM triad at page granularity: three interleaved sequential
/// array sweeps, repeated for a fixed number of passes.
#[derive(Debug)]
pub struct StreamKernel {
    layout: MemoryLayout,
    data_bytes: u64,
    /// Pages per array (the data region holds three equal arrays).
    array_pages: u64,
    /// First data page.
    base: PageId,
    cpu_per_touch: SimDuration,
    // Iteration state.
    pass: u64,
    index: u64,
    lane: u8,
}

impl StreamKernel {
    /// Number of full sweeps over the three arrays (HPCC `NTIMES`).
    pub const PASSES: u64 = 10;

    /// CPU per page-touch: 4 KB of triad arithmetic on a P4 2 GHz.
    pub const CPU_PER_TOUCH: SimDuration = SimDuration::from_nanos(13_500);

    /// Builds a STREAM instance over `data_bytes` of memory.
    pub fn new(data_bytes: u64) -> Self {
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total = layout.data_pages().len();
        let array_pages = (total / 3).max(1);
        StreamKernel {
            base: layout.data_start(),
            layout,
            data_bytes,
            array_pages,
            cpu_per_touch: Self::CPU_PER_TOUCH,
            pass: 0,
            index: 0,
            lane: 0,
        }
    }

    fn lane_base(&self, lane: u8) -> PageId {
        self.base.offset(self.array_pages * lane as u64)
    }
}

impl Iterator for StreamKernel {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.pass >= Self::PASSES {
            return None;
        }
        let page = self.lane_base(self.lane).offset(self.index);
        // Lane 2 is the destination array `c`: writes; lanes 0/1 read.
        let write = self.lane == 2;
        let r = MemRef {
            page,
            write,
            cpu: self.cpu_per_touch,
        };
        self.lane += 1;
        if self.lane == 3 {
            self.lane = 0;
            self.index += 1;
            if self.index == self.array_pages {
                self.index = 0;
                self.pass += 1;
            }
        }
        Some(r)
    }
}

impl Workload for StreamKernel {
    fn name(&self) -> &'static str {
        "STREAM"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        Self::PASSES * self.array_pages * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    #[test]
    fn stream_invariants_hold() {
        let refs = check_stream_invariants(StreamKernel::new(2 * 1024 * 1024));
        assert!(!refs.is_empty());
    }

    #[test]
    fn three_interleaved_sequential_lanes() {
        let mut k = StreamKernel::new(12 * 4096 * 3);
        let base = k.layout().data_start();
        let ap = 12; // 36 data pages split into 3 arrays of 12
        let refs: Vec<_> = k.by_ref().take(6).collect();
        assert_eq!(refs[0].page, base);
        assert_eq!(refs[1].page, base.offset(ap));
        assert_eq!(refs[2].page, base.offset(2 * ap));
        assert_eq!(refs[3].page, base.offset(1));
        assert_eq!(refs[4].page, base.offset(ap + 1));
        assert_eq!(refs[5].page, base.offset(2 * ap + 1));
    }

    #[test]
    fn only_lane_c_writes() {
        let k = StreamKernel::new(4096 * 9);
        for (i, r) in k.take(30).enumerate() {
            assert_eq!(r.write, i % 3 == 2, "ref {i}");
        }
    }

    #[test]
    fn touches_every_array_page_each_pass() {
        let mut k = StreamKernel::new(4096 * 30);
        let hint = k.total_refs_hint();
        let per_pass = hint / StreamKernel::PASSES;
        let first_pass: Vec<_> = k.by_ref().take(per_pass as usize).collect();
        let mut pages: Vec<_> = first_pass.iter().map(|r| r.page).collect();
        pages.sort();
        pages.dedup();
        assert_eq!(
            pages.len() as u64,
            per_pass,
            "each page touched once per pass"
        );
    }

    #[test]
    fn compute_time_calibration_575mb() {
        let k = StreamKernel::new(575 * 1024 * 1024);
        let total_cpu = k.total_refs_hint() as f64 * StreamKernel::CPU_PER_TOUCH.as_secs_f64();
        assert!(
            (15.0..25.0).contains(&total_cpu),
            "575MB STREAM compute = {total_cpu}s"
        );
    }

    #[test]
    fn deterministic_stream() {
        let a: Vec<_> = StreamKernel::new(4096 * 40).collect();
        let b: Vec<_> = StreamKernel::new(4096 * 40).collect();
        assert_eq!(a, b);
    }
}
