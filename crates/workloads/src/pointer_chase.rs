//! Pointer-chasing / graph traversal — a locality-breaking workload.
//!
//! The HPCC kernels of §5.1 bound *benign* behaviour: even RandomAccess
//! draws pages uniformly, which at least keeps every stride equally
//! (un)likely. A linked-structure traversal is nastier for a stride-census
//! prefetcher — each hop lands on the page holding the next node of a
//! randomly laid-out structure, so consecutive faults have essentially
//! unpredictable *signed* deltas and no stride ever stabilises, yet the
//! *set* of pages visited is exactly the allocation (every page once per
//! lap). This is the pattern of graph analytics, garbage-collected heaps,
//! and cold B-tree walks.
//!
//! [`PointerChase`] materialises one random Hamiltonian cycle over the data
//! pages (a successor permutation, as a real pointer-stitched arena would)
//! and walks it for a configurable number of hops. Spatial locality is
//! destroyed by construction; temporal locality only reappears after a full
//! lap, far beyond any lookback window.

use ampom_mem::page::PageId;
use ampom_mem::region::MemoryLayout;
use ampom_sim::rng::SimRng;
use ampom_sim::time::SimDuration;

use crate::memref::{MemRef, Workload};

/// A random-cycle pointer chase over the whole data region.
#[derive(Debug)]
pub struct PointerChase {
    layout: MemoryLayout,
    data_bytes: u64,
    base: PageId,
    /// `succ[i]` is the page offset the node on page-offset `i` points to.
    succ: Vec<u64>,
    hops: u64,
    cpu_per_hop: SimDuration,
    // Iteration state.
    at: u64,
    done: u64,
}

impl PointerChase {
    /// CPU per hop: one dependent load plus a little per-node work. The
    /// chase is latency-bound, not compute-bound.
    pub const CPU_PER_HOP: SimDuration = SimDuration::from_micros(4);

    /// Builds a chase over `data_bytes` of heap, walking `hops` pointer
    /// dereferences along a seeded random cycle.
    pub fn new(data_bytes: u64, hops: u64, mut rng: SimRng) -> Self {
        assert!(hops > 0, "a chase must take at least one hop");
        let layout = MemoryLayout::with_data_bytes(data_bytes);
        let total_pages = layout.data_pages().len();
        assert!(total_pages >= 2, "need at least two pages to chase");
        // A uniformly random Hamiltonian cycle: shuffle the pages, then
        // let each point at the next. Every page has exactly one
        // predecessor and one successor, as in a circularly linked list.
        let mut order: Vec<u64> = (0..total_pages).collect();
        rng.shuffle(&mut order);
        let mut succ = vec![0u64; total_pages as usize];
        for w in order.windows(2) {
            succ[w[0] as usize] = w[1];
        }
        succ[*order.last().unwrap() as usize] = order[0];
        let at = order[0];
        PointerChase {
            base: layout.data_start(),
            layout,
            data_bytes,
            succ,
            hops,
            cpu_per_hop: Self::CPU_PER_HOP,
            at,
            done: 0,
        }
    }

    /// Pages per full lap of the cycle (the structure's node count).
    pub fn cycle_len(&self) -> u64 {
        self.succ.len() as u64
    }
}

impl Iterator for PointerChase {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.done >= self.hops {
            return None;
        }
        let r = MemRef::read(self.base.offset(self.at), self.cpu_per_hop);
        self.at = self.succ[self.at as usize];
        self.done += 1;
        Some(r)
    }
}

impl Workload for PointerChase {
    fn name(&self) -> &'static str {
        "PointerChase"
    }

    fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn total_refs_hint(&self) -> u64 {
        self.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::testutil::check_stream_invariants;

    fn build(mb: u64, hops: u64, seed: u64) -> PointerChase {
        PointerChase::new(mb * 1024 * 1024, hops, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn invariants_hold() {
        check_stream_invariants(build(2, 800, 3));
    }

    #[test]
    fn one_lap_visits_every_page_exactly_once() {
        let n = build(1, 1, 0).cycle_len();
        let lap = build(1, n, 0);
        let pages: std::collections::HashSet<_> = lap.map(|r| r.page).collect();
        assert_eq!(pages.len() as u64, n, "cycle must be Hamiltonian");
    }

    #[test]
    fn deltas_never_stabilise_into_a_stride() {
        let refs: Vec<_> = build(4, 500, 7).collect();
        let mut repeats = 0usize;
        for w in refs.windows(3) {
            let d1 = w[1].page.index() as i64 - w[0].page.index() as i64;
            let d2 = w[2].page.index() as i64 - w[1].page.index() as i64;
            if d1 == d2 {
                repeats += 1;
            }
        }
        // A random cycle over ~1k pages almost never repeats a delta
        // back-to-back; a handful of coincidences is tolerable.
        assert!(repeats < refs.len() / 20, "{repeats} repeated deltas");
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let a: Vec<_> = build(2, 300, 11).collect();
        let b: Vec<_> = build(2, 300, 11).collect();
        let c: Vec<_> = build(2, 300, 12).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
